"""Table 3: L1 references and misses per mode — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('compress', 'db')


def test_bench_table3(benchmark):
    result = run_experiment(benchmark, "table3", scale="s0",
                            benchmarks=BENCHMARKS)
    by = {(r[0], r[1]): r for r in result.rows}
    assert by[("compress", "jit")][5] < by[("compress", "interp")][5]
