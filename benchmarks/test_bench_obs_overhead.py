"""Disabled-tracer overhead guard.

The observability layer promises that a disabled tracer costs one
attribute check at each instrumentation site.  This guard keeps that
promise honest two ways: absolute per-call ceilings on the disabled
fast path, and a relative budget — the events an *enabled* fig3 run
actually records, priced at the disabled ``span()`` cost, must stay
under 2% of fig3's wall time.  Plain pytest, no benchmark fixture, so
CI can run it without pytest-benchmark.
"""

import time

import pytest

from repro.analysis.replay import clear_replay_memo
from repro.experiments import get_experiment
from repro.obs.tracer import TRACER, measure_disabled_overhead

BENCHMARKS = ("db",)

# Generous absolute ceilings: the real cost is tens of nanoseconds; a
# slow CI box gets 10x headroom before these trip.
MAX_CHECK_NS = 500.0
MAX_SPAN_NS = 4000.0


@pytest.fixture(autouse=True)
def _tracer_off():
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


def test_disabled_tracer_absolute_ceilings():
    probe = measure_disabled_overhead(200_000)
    assert probe["check_ns"] < MAX_CHECK_NS, probe
    assert probe["span_ns"] < MAX_SPAN_NS, probe


def test_disabled_tracer_overhead_under_two_percent_of_fig3():
    fn = get_experiment("fig3")

    # Warm once so workload construction noise doesn't inflate either
    # measurement, then time a cold-simulator untraced run.
    fn(scale="s0", benchmarks=BENCHMARKS)
    clear_replay_memo()
    started = time.perf_counter()
    fn(scale="s0", benchmarks=BENCHMARKS)
    fig3_seconds = time.perf_counter() - started

    # Count the events the same run records when tracing is on.
    clear_replay_memo()
    TRACER.enable()
    try:
        fn(scale="s0", benchmarks=BENCHMARKS)
        n_events = len(TRACER.events) + len(TRACER.counters)
    finally:
        TRACER.disable()
        TRACER.reset()

    probe = measure_disabled_overhead(200_000)
    worst_case = n_events * probe["span_ns"] * 1e-9
    budget = 0.02 * fig3_seconds
    assert worst_case <= budget, (
        f"{n_events} events x {probe['span_ns']:.0f}ns = "
        f"{worst_case * 1e3:.2f}ms exceeds 2% of fig3's "
        f"{fig3_seconds:.2f}s ({budget * 1e3:.2f}ms)"
    )
