"""Figure 4: average miss rates vs C/C++ — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'compress')


def test_bench_fig4(benchmark):
    result = run_experiment(benchmark, "fig4", scale="s0",
                            benchmarks=BENCHMARKS)
    rows = result.row_map()
    assert rows["java/interp"][1] <= rows["C"][1]
