"""Input-scale sensitivity study — regeneration benchmark."""

from bench_util import run_experiment

BENCHMARKS = ("db",)


def test_bench_scale_study(benchmark):
    result = run_experiment(benchmark, "scale_study", benchmarks=BENCHMARKS)
    shares = [r[3] for r in result.rows]    # s0, s1, s10 translate shares
    assert shares[0] > shares[-1]           # amortization with scale
