"""Ablation: generate-into-I-cache bound — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'javac')


def test_bench_ablation_install(benchmark):
    result = run_experiment(benchmark, "ablation_install", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[2] <= row[1]
