"""Table 2: branch misprediction, four predictors — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('compress', 'db')


def test_bench_table2(benchmark):
    result = run_experiment(benchmark, "table2", scale="s0",
                            benchmarks=BENCHMARKS)
    h = result.headers
    by = {(r[0], r[1]): r for r in result.rows}
    g = h.index("gshare")
    assert by[("compress", "interp")][g] > by[("compress", "jit")][g]
