"""Ablation: three lock designs — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('jack', 'db')


def test_bench_ablation_locks(benchmark):
    result = run_experiment(benchmark, "ablation_locks", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[4] > 1.0    # thin lock wins
