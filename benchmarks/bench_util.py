"""Shared runner for experiment benchmarks.

Each guard times one full experiment regeneration ``rounds`` times
(``REPRO_BENCH_ROUNDS``, default 3) through pytest-benchmark and runs
the per-round wall times through the statistical harness
(:mod:`repro.bench.stats`): the reported quantity is the median with a
seeded bootstrap confidence interval and a warmup/steady-state verdict,
all attached to ``benchmark.extra_info`` so the pytest-benchmark JSON
carries them.  Shape assertions still run against the (deterministic)
experiment result itself.
"""

import os

from repro.bench.stats import bootstrap_ci, steady_report
from repro.experiments import get_experiment

#: Per-guard timing rounds; raise via REPRO_BENCH_ROUNDS for tighter CIs.
DEFAULT_ROUNDS = 3


def bench_rounds() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", DEFAULT_ROUNDS)))


def run_experiment(benchmark, exp_id, scale="s0", benchmarks=None):
    """Time one full experiment regeneration; sanity-check the result."""
    result = benchmark.pedantic(
        lambda: get_experiment(exp_id)(scale=scale, benchmarks=benchmarks),
        rounds=bench_rounds(),
        iterations=1,
    )
    assert result.rows, f"{exp_id} produced no rows"
    samples = list(benchmark.stats.stats.data)  # temporal order
    if len(samples) >= 2:
        ci = bootstrap_ci(samples)
        benchmark.extra_info["median_ci"] = ci
        benchmark.extra_info["steady"] = {
            k: v for k, v in steady_report(samples).items()
            if k in ("steady", "warmup_discarded", "cv", "cv_threshold")}
        # The interval must contain its own point estimate — a sanity
        # bound that catches degenerate sample streams (e.g. a stuck
        # timer) without asserting machine-dependent absolute times.
        assert ci["lo"] <= ci["point"] <= ci["hi"], ci
    return result
