"""Shared runner for experiment benchmarks."""

from repro.experiments import get_experiment


def run_experiment(benchmark, exp_id, scale="s0", benchmarks=None):
    """Time one full experiment regeneration; sanity-check the result."""
    result = benchmark.pedantic(
        lambda: get_experiment(exp_id)(scale=scale, benchmarks=benchmarks),
        rounds=1,
        iterations=1,
    )
    assert result.rows, f"{exp_id} produced no rows"
    return result
