"""Figure 3: write share of data misses — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'javac')


def test_bench_fig3(benchmark):
    result = run_experiment(benchmark, "fig3", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[2] > 25.0
