"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures through the
real experiment code path, timed once (the experiments are deterministic,
so a single round measures the real cost without repeating minutes-long
sweeps).  Scales and benchmark subsets are chosen to keep the whole
harness runnable in a few minutes; the full-scale reproduction is
``python -m repro.experiments all --scale s1`` (see EXPERIMENTS.md).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

# Benchmarks must be self-contained and deterministic: no trace cache.
os.environ.setdefault("REPRO_TRACE_CACHE", "")
