"""Figure 10: normalized execution time vs width — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'compress')


def test_bench_fig10(benchmark):
    result = run_experiment(benchmark, "fig10", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[2] == 1.0 or row[2] <= 1.0
