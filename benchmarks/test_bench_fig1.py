"""Figure 1: translate/execute split, oracle, interp/JIT ratio — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('hello', 'db', 'compress')


def test_bench_fig1(benchmark):
    result = run_experiment(benchmark, "fig1", scale="s0",
                            benchmarks=BENCHMARKS)
    rows = result.row_map()
    assert rows["db"][1] > rows["compress"][1]      # db translate-heavier
    assert all(r[4] <= 1.01 for r in rows.values())  # oracle never loses
