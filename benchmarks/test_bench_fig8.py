"""Figure 8: line-size sweep — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'compress')


def test_bench_fig8(benchmark):
    result = run_experiment(benchmark, "fig8", scale="s0",
                            benchmarks=BENCHMARKS)
    assert {r[1] for r in result.rows} == {"interp", "jit"}
