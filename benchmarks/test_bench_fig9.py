"""Figure 9: IPC vs issue width — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'compress')


def test_bench_fig9(benchmark):
    result = run_experiment(benchmark, "fig9", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[2] <= row[5] + 0.2   # wider machines not slower
