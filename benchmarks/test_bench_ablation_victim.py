"""Victim-buffer ablation — regeneration benchmark."""

from bench_util import run_experiment

BENCHMARKS = ("javac",)


def test_bench_ablation_victim(benchmark):
    result = run_experiment(benchmark, "ablation_victim", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[3] <= row[2] + 1e-9   # victim never hurts
