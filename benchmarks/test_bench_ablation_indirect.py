"""Indirect-target predictor ablation — regeneration benchmark."""

from bench_util import run_experiment

BENCHMARKS = ("compress",)


def test_bench_ablation_indirect(benchmark):
    result = run_experiment(benchmark, "ablation_indirect", scale="s0",
                            benchmarks=BENCHMARKS)
    by = {(r[0], r[1]): r for r in result.rows}
    interp = by[("compress", "interp")]
    assert interp[4] > interp[3]            # target cache beats BTB
