"""Bytecode/method locality statistics — regeneration benchmark."""

from bench_util import run_experiment

BENCHMARKS = ("compress", "db")


def test_bench_locality(benchmark):
    result = run_experiment(benchmark, "locality", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[2] > 50          # top-15 coverage %
