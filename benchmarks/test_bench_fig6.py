"""Figure 6: miss-count time series (db) — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db',)


def test_bench_fig6(benchmark):
    result = run_experiment(benchmark, "fig6", scale="s0",
                            benchmarks=BENCHMARKS)
    assert len(result.rows) == 2
