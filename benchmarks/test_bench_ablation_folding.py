"""Folding-interpreter ablation — regeneration benchmark."""

from bench_util import run_experiment

BENCHMARKS = ("compress",)


def test_bench_ablation_folding(benchmark):
    result = run_experiment(benchmark, "ablation_folding", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[1] > 5                   # cycle saving %
        assert row[6] > row[5]              # wide-issue IPC improves
