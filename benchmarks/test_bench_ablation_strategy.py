"""Ablation: counter-threshold heuristics vs oracle — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db',)


def test_bench_ablation_strategy(benchmark):
    result = run_experiment(benchmark, "ablation_strategy", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[-1] <= min(row[1:]) + 1e-9
