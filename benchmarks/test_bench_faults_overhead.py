"""Disabled fault-layer overhead guard.

The fault-injection layer promises that when no plan is active every
hook site costs one module-attribute check (``if faults.ACTIVE is not
None``).  Two guards keep that honest: an absolute per-check ceiling,
and a relative budget — the hook crossings a cache-backed fig3 run
actually performs (counted under an injection-free ``noop`` plan),
priced at the disabled-check cost, must stay under 1% of fig3's wall
time.  Plain pytest, no benchmark fixture, so CI can run it without
pytest-benchmark.
"""

import time

import pytest

from repro import faults
from repro.analysis import cache
from repro.analysis.replay import clear_replay_memo
from repro.experiments import get_experiment

BENCHMARKS = ("db",)

# Generous absolute ceiling: the real cost is tens of nanoseconds; a
# slow CI box gets ~10x headroom before this trips.
MAX_CHECK_NS = 500.0


@pytest.fixture(autouse=True)
def _faults_off():
    faults.deactivate()
    faults.LEDGER.reset()
    yield
    faults.deactivate()
    faults.LEDGER.reset()


def test_disabled_faults_absolute_ceiling():
    probe = faults.measure_disabled_overhead(200_000)
    assert probe["check_ns"] < MAX_CHECK_NS, probe


def test_disabled_fault_layer_under_one_percent_of_fig3(tmp_path,
                                                        monkeypatch):
    # The hook sites live in the cache layer, so the budget only means
    # something for a cache-backed run.
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    cache.reset_stats()
    fn = get_experiment("fig3")

    # Cold run populates the cache; the timed run is the warm (hook-
    # heavy, lookup-dominated) path the disabled layer must not tax.
    fn(scale="s0", benchmarks=BENCHMARKS)
    clear_replay_memo()
    started = time.perf_counter()
    fn(scale="s0", benchmarks=BENCHMARKS)
    fig3_seconds = time.perf_counter() - started

    # Count the hook crossings of the same run under a plan that
    # injects nothing.
    clear_replay_memo()
    active = faults.activate("noop")
    try:
        fn(scale="s0", benchmarks=BENCHMARKS)
        crossings = active.checks
    finally:
        faults.deactivate()

    assert crossings > 0, "cache-backed run must cross fault hooks"
    probe = faults.measure_disabled_overhead(200_000)
    worst_case = crossings * probe["check_ns"] * 1e-9
    budget = 0.01 * fig3_seconds
    assert worst_case <= budget, (
        f"{crossings} hook crossings x {probe['check_ns']:.0f}ns = "
        f"{worst_case * 1e6:.1f}us exceeds 1% of fig3's "
        f"{fig3_seconds:.2f}s ({budget * 1e3:.2f}ms)"
    )
