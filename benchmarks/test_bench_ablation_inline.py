"""Ablation: JIT inlining on/off — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db',)


def test_bench_ablation_inline(benchmark):
    result = run_experiment(benchmark, "ablation_inline", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[3] >= row[4]
