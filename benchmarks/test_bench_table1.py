"""Table 1: memory footprint interp vs JIT — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'compress', 'jess')


def test_bench_table1(benchmark):
    result = run_experiment(benchmark, "table1", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[2] > row[1]   # JIT needs more memory
