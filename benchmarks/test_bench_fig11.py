"""Figure 11: sync case mix and thin-lock speedup — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('jack', 'db', 'mtrt')


def test_bench_fig11(benchmark):
    result = run_experiment(benchmark, "fig11", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[1] > 80.0   # case (a) dominates
