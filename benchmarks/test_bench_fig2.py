"""Figure 2: instruction mix vs C/C++ — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'compress')


def test_bench_fig2(benchmark):
    result = run_experiment(benchmark, "fig2", scale="s0",
                            benchmarks=BENCHMARKS)
    rows = result.row_map()
    assert rows["java/interp"][1] > rows["java/jit"][1]  # more memory ops
