"""Figure 7: associativity sweep — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'compress')


def test_bench_fig7(benchmark):
    result = run_experiment(benchmark, "fig7", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[6] >= row[7] - 1e-9   # D: 1-way >= 2-way
