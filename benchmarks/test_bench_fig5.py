"""Figure 5: cache misses inside translate — regeneration benchmark.

Times the full experiment pipeline (VM runs, trace replay, simulators)
at reduced scale and asserts the paper's shape on the result.
"""

from bench_util import run_experiment

BENCHMARKS = ('db', 'javac')


def test_bench_fig5(benchmark):
    result = run_experiment(benchmark, "fig5", scale="s0",
                            benchmarks=BENCHMARKS)
    for row in result.rows:
        assert row[3] > 40.0   # translate misses mostly writes
