"""Trace disassembler and region profiler."""

from repro.analysis import run_vm
from repro.native.disasm import (
    disassemble,
    format_region_profile,
    region_profile,
)
from repro.native.nisa import NCat
from repro.native.template import PATCH, TemplateBuilder
from repro.native.trace import RecordingSink


def _tiny_trace():
    b = TemplateBuilder("t")
    b.load(dst=5, src1=2, ea=PATCH)
    b.ialu(dst=6, src1=5)
    b.store(src1=6, ea=PATCH)
    b.instr(NCat.BRANCH, src1=6, taken=True, target=0x100)
    tpl = b.build(base_pc=0x0100_0000)
    sink = RecordingSink()
    sink.emit(tpl, (0x0600_0010, 0x0800_0020))
    return sink.trace()


class TestDisassemble:
    def test_lists_requested_rows(self):
        text = disassemble(_tiny_trace())
        lines = text.splitlines()
        assert len(lines) == 4
        assert "load" in lines[0] and "stack" in lines[0]
        assert "heap" in lines[2] and "<-" in lines[2]
        assert "taken" in lines[3]

    def test_window_clamps(self):
        assert disassemble(_tiny_trace(), start=3, count=10).count("\n") == 0

    def test_registers_rendered(self):
        text = disassemble(_tiny_trace())
        assert "r5" in text and "r6" in text

    def test_real_trace(self):
        trace = run_vm("hello", scale="s0", mode="interp", record=True,
                       profile=False).trace
        text = disassemble(trace, start=0, count=50)
        assert len(text.splitlines()) == 50


class TestRegionProfile:
    def test_counts_by_region(self):
        profile = region_profile(_tiny_trace())
        assert profile["fetch"]["interp_text"] == 4
        assert profile["data_read"] == {"stack": 1}
        assert profile["data_write"] == {"heap": 1}

    def test_formatting(self):
        out = format_region_profile(_tiny_trace())
        assert "fetch" in out and "interp_text" in out and "%" in out

    def test_real_interpreter_profile(self):
        trace = run_vm("hello", scale="s0", mode="interp", record=True,
                       profile=False).trace
        profile = region_profile(trace)
        assert "interp_text" in profile["fetch"]
        assert "bytecode" in profile["data_read"]
