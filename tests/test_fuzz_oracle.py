"""The oracle must have teeth: planted miscompiles get flagged.

The fuzzer found no real divergence during bring-up (the engines agree
on every generated program), so these tests prove the *detector* works:
mutate the program handed to exactly one configuration — simulating a
JIT that translates one opcode wrongly — and assert the differential
harness reports the divergence.
"""

from __future__ import annotations

import random

import pytest

from repro.fuzz.gen import gen_program
from repro.fuzz.mutate import _FLIPS, flip_one_opcode, mutation_sites
from repro.fuzz.oracle import run_oracle
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op


class _BuiltSpec:
    """Oracle-compatible spec over a deterministic builder function."""

    def __init__(self, build):
        self._build = build

    def render(self, verify: bool = True):
        return self._build()


def _print_sum_spec():
    """print(2 + 3) — the smallest program with observable arithmetic."""

    def build():
        pb = ProgramBuilder("planted", main_class="P")
        m = pb.cls("P").method("main", static=True)
        m.getstatic("java/lang/System", "out")
        m.iconst(2).iconst(3).iadd()
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        return pb.build()

    return _BuiltSpec(build)


def _flip_iadd(program):
    method = program.get_class("P").methods["main"]
    for instr in method.code:
        if instr.op is Op.IADD:
            instr.op = Op.ISUB
            return program
    raise AssertionError("no IADD found")


class TestPlantedMiscompile:
    def test_clean_program_agrees(self):
        verdict = run_oracle(_print_sum_spec())
        assert verdict.agreed and not verdict.anomalies
        assert verdict.outcomes["interp"].result.stdout == ["5"]

    @pytest.mark.parametrize("victim", ("interp", "jit", "jit_opt",
                                        "lock_elision"))
    def test_single_opcode_flip_is_flagged(self, victim):
        verdict = run_oracle(_print_sum_spec(), mutate=(victim, _flip_iadd))
        assert not verdict.agreed, (
            f"oracle missed a planted IADD->ISUB miscompile in {victim}")
        keys = {d.key for d in verdict.divergences}
        assert "stdout" in keys
        # The mutated config really computed 2-3.
        assert verdict.outcomes[victim].result.stdout == ["-1"]

    def test_generated_program_flip_is_flagged(self):
        """A random-but-fixed generated program: walking its mutation
        sites in order, a plant must be caught within a few tries
        (individual flips can land in dead code, but not all of them)."""
        spec = gen_program(3)
        sites = mutation_sites(spec.render())
        assert sites, "generated program has no mutable site"

        def plant_at(site):
            def plant(program):
                cls, mname, index, kind = site
                instr = program.classes[cls].methods[mname].code[index]
                if kind == "flip":
                    instr.op = _FLIPS[instr.op]
                elif instr.op is Op.IINC:
                    instr.b += 1
                else:
                    instr.a += 1
                return program
            return plant

        for site in sites[:15]:
            verdict = run_oracle(spec, mutate=("jit", plant_at(site)))
            if not verdict.agreed:
                return
        raise AssertionError(
            "oracle missed 15 consecutive planted miscompiles")

    def test_mutation_sites_are_deterministic(self):
        spec = gen_program(11)
        a = mutation_sites(spec.render())
        b = mutation_sites(spec.render())
        assert a == b and len(a) > 0

    def test_flip_table_is_involution_free(self):
        """Every flip changes semantics: no op maps to itself."""
        for src, dst in _FLIPS.items():
            assert src is not dst


class TestMinimizer:
    def test_shrinks_to_interesting_core(self):
        """Delta debugging with an injected interestingness predicate:
        a large generated program must collapse to (nearly) just the
        statements the predicate depends on."""
        from repro.fuzz.gen import Print
        from repro.fuzz.minimize import Minimizer

        spec = gen_program(5)
        assert spec.size() > 10

        def has_print(candidate):
            return any(isinstance(s, Print)
                       for block in candidate.all_blocks()
                       for s in block)

        if not has_print(spec):
            pytest.skip("seed 5 generated no Print statement")
        reduced = Minimizer(spec, None, fuel=200_000, tolerance=0.02,
                            predicate=has_print).minimize()
        assert has_print(reduced)
        assert reduced.size() <= 2, (
            f"minimizer left {reduced.size()} statements")
        reduced.render()          # still a verifiable program

    def test_reduction_preserves_verifiability(self):
        """Every minimizer output must render through the verifier."""
        from repro.fuzz.minimize import Minimizer

        spec = gen_program(9)
        reduced = Minimizer(spec, None, fuel=200_000, tolerance=0.02,
                            predicate=lambda c: True).minimize()
        reduced.render()
        assert reduced.size() <= spec.size()
