"""Heap allocator and mark-sweep collector."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import ClassBuilder, Field
from repro.vm.heap import Heap, OutOfMemoryError
from repro.vm.objects import (
    ARRAY_HEADER_BYTES,
    OBJECT_HEADER_BYTES,
    JArray,
    JString,
)
from repro.isa.opcodes import ArrayType


def _point_class():
    cb = ClassBuilder("Point")
    cb.field("x", "int").field("y", "int")
    cls = cb.build()
    cls.field_offsets = {"x": 0, "y": 4}
    cls.field_types = {"x": "int", "y": "int"}
    cls.instance_bytes = 8
    return cls


class TestAllocation:
    def test_addresses_disjoint_and_aligned(self):
        heap = Heap()
        cls = _point_class()
        a = heap.new_object(cls)
        b = heap.new_object(cls)
        assert a.addr != b.addr
        assert a.addr % 8 == 0 and b.addr % 8 == 0
        assert b.addr >= a.addr + a.byte_size

    def test_field_addresses(self):
        heap = Heap()
        obj = heap.new_object(_point_class())
        assert obj.field_addr("x") == obj.addr + OBJECT_HEADER_BYTES
        assert obj.field_addr("y") == obj.addr + OBJECT_HEADER_BYTES + 4

    def test_fields_initialized(self):
        obj = Heap().new_object(_point_class())
        assert obj.fields == {"x": 0, "y": 0}

    def test_array_element_addresses(self):
        heap = Heap()
        arr = heap.new_array(ArrayType.INT, 10)
        assert arr.elem_addr(0) == arr.addr + ARRAY_HEADER_BYTES
        assert arr.elem_addr(3) == arr.elem_addr(0) + 12

    def test_byte_array_element_width(self):
        arr = Heap().new_array(ArrayType.BYTE, 10)
        assert arr.elem_addr(5) - arr.elem_addr(4) == 1

    def test_char_array_element_width(self):
        arr = Heap().new_array(ArrayType.CHAR, 10)
        assert arr.elem_addr(5) - arr.elem_addr(4) == 2

    def test_float_array_default(self):
        arr = Heap().new_array(ArrayType.FLOAT, 2)
        assert arr.data == [0.0, 0.0]

    def test_ref_array_default(self):
        arr = Heap().new_array("ref", 2)
        assert arr.data == [None, None]

    def test_negative_array_rejected(self):
        with pytest.raises(ValueError):
            Heap().new_array(ArrayType.INT, -1)

    def test_array_bounds_check(self):
        arr = Heap().new_array(ArrayType.INT, 3)
        arr.check(0)
        arr.check(2)
        with pytest.raises(IndexError):
            arr.check(3)
        with pytest.raises(IndexError):
            arr.check(-1)

    def test_string_allocation(self):
        heap = Heap()
        s = heap.new_string("hello")
        assert isinstance(s, JString)
        assert s.value == "hello"
        assert s.data_addr(1) - s.data_addr(0) == 2

    def test_stats_track_liveness(self):
        heap = Heap()
        heap.new_object(_point_class())
        snap = heap.stats.snapshot()
        assert snap["allocations"] == 1
        assert snap["live_bytes"] > 0
        assert snap["peak_live_bytes"] == snap["live_bytes"]


class TestCollection:
    def test_unreachable_objects_swept(self):
        heap = Heap()
        cls = _point_class()
        keep = heap.new_object(cls)
        heap.new_object(cls)  # garbage
        heap.root_provider = lambda: [keep]
        freed = heap.collect()
        assert freed > 0
        assert heap.live_object_count == 1
        assert keep.addr in heap.objects

    def test_reachability_through_fields(self):
        heap = Heap()
        cls = _point_class()
        cls.field_types = {"x": "ref", "y": "int"}
        root = heap.new_object(cls)
        child = heap.new_object(cls)
        root.fields["x"] = child
        heap.root_provider = lambda: [root]
        heap.collect()
        assert heap.live_object_count == 2

    def test_reachability_through_ref_arrays(self):
        heap = Heap()
        cls = _point_class()
        arr = heap.new_array("ref", 3)
        child = heap.new_object(cls)
        arr.data[1] = child
        heap.root_provider = lambda: [arr]
        heap.collect()
        assert heap.live_object_count == 2

    def test_cycles_collected(self):
        heap = Heap()
        cls = _point_class()
        cls.field_types = {"x": "ref", "y": "ref"}
        a = heap.new_object(cls)
        b = heap.new_object(cls)
        a.fields["x"] = b
        b.fields["x"] = a
        heap.root_provider = lambda: []
        heap.collect()
        assert heap.live_object_count == 0

    def test_freed_space_reused(self):
        heap = Heap(limit_bytes=4096)
        cls = _point_class()
        objs = [heap.new_object(cls) for _ in range(100)]
        addr0 = objs[0].addr
        heap.root_provider = lambda: []
        heap.collect()
        again = heap.new_object(cls)
        assert again.addr == addr0  # first-fit reuses the first gap

    def test_gc_triggered_on_exhaustion(self):
        heap = Heap(limit_bytes=2048)
        cls = _point_class()
        heap.root_provider = lambda: []
        for _ in range(500):  # would exceed the limit without sweeping
            heap.new_object(cls)
        assert heap.stats.gc_count >= 1

    def test_oom_when_all_live(self):
        heap = Heap(limit_bytes=1024)
        cls = _point_class()
        live = []
        heap.root_provider = lambda: live
        with pytest.raises(OutOfMemoryError):
            for _ in range(500):
                live.append(heap.new_object(cls))

    def test_gc_listener_called(self):
        heap = Heap()
        freed_amounts = []
        heap.gc_listener = freed_amounts.append
        heap.new_object(_point_class())
        heap.root_provider = lambda: []
        heap.collect()
        assert len(freed_amounts) == 1 and freed_amounts[0] > 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                    max_size=60))
    def test_live_bytes_invariant(self, sizes):
        """allocated - freed == live, and live objects keep their data."""
        heap = Heap(limit_bytes=1 << 20)
        keep = []
        heap.root_provider = lambda: keep
        for i, n in enumerate(sizes):
            arr = heap.new_array(ArrayType.INT, n)
            if i % 2 == 0:
                arr.data[:] = [i] * n
                keep.append(arr)
        heap.collect()
        assert heap.live_object_count == len(keep)
        for i, arr in zip(range(0, 2 * len(keep), 2), keep):
            assert all(v == i for v in arr.data)
        assert heap.stats.live_bytes <= heap.stats.allocated_bytes
