"""The traffic scenario engine: specs, schedules, codegen, measurement.

Small request counts keep these inside tier-1 budgets; the full-scale
ladder runs in the server-bench CI job (repro.experiments.server).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.server import evaluate_guards, run_server
from repro.traffic import (HANDLERS, PRESETS, ScenarioSpec, get_preset,
                           run_scenario)

SMALL = get_preset("api").replace(requests=1500)


@pytest.fixture(scope="module")
def tiered_small():
    """One shared small tiered run for the read-only assertions."""
    return run_scenario(SMALL, "tiered")


# -- spec validation and round-trip ------------------------------------
def test_spec_rejects_unknown_handler():
    with pytest.raises(ValueError, match="unknown handler"):
        ScenarioSpec(name="x", mix={"nosuch": 1.0})


def test_spec_rejects_bad_arrival_and_weights():
    with pytest.raises(ValueError, match="arrival"):
        ScenarioSpec(name="x", mix={"get": 1.0}, arrival="weekly")
    with pytest.raises(ValueError, match="positive"):
        ScenarioSpec(name="x", mix={"get": 0.0})
    with pytest.raises(ValueError):
        ScenarioSpec(name="x", mix={"get": 1.0}, requests=0)


def test_spec_json_round_trip():
    spec = get_preset("burst")
    again = ScenarioSpec.from_json(json.dumps(spec.to_dict()))
    assert again == spec
    with pytest.raises(ValueError, match="unknown spec fields"):
        ScenarioSpec.from_dict({**spec.to_dict(), "bogus": 1})


def test_presets_are_valid_and_cover_arrivals():
    arrivals = {s.arrival for s in PRESETS.values()}
    assert {"closed", "open", "burst", "diurnal"} <= arrivals
    for spec in PRESETS.values():
        assert set(spec.mix) <= set(HANDLERS)


# -- schedules ---------------------------------------------------------
def test_schedules_are_deterministic_and_seed_sensitive():
    spec = SMALL
    assert np.array_equal(spec.handler_schedule(), spec.handler_schedule())
    assert np.array_equal(spec.payload_schedule(), spec.payload_schedule())
    other = spec.replace(seed=spec.seed + 1)
    assert not np.array_equal(spec.handler_schedule(),
                              other.handler_schedule())


def test_payloads_stay_inside_the_working_set():
    payloads = SMALL.payload_schedule()
    assert payloads.min() >= 0
    assert payloads.max() < SMALL.working_set


@pytest.mark.parametrize("arrival", ["open", "burst", "diurnal"])
def test_arrival_schedules_are_monotone(arrival):
    spec = SMALL.replace(arrival=arrival)
    arr = spec.arrival_schedule()
    assert arr is not None and len(arr) == spec.requests
    assert np.all(np.diff(arr) >= 0)


def test_closed_loop_has_no_arrival_schedule():
    assert SMALL.arrival_schedule() is None


# -- execution and measurement -----------------------------------------
def test_runs_are_deterministic(tiered_small):
    again = run_scenario(SMALL, "tiered")
    assert again.vm_result.cycles == tiered_small.vm_result.cycles
    assert again.vm_result.stdout == tiered_small.vm_result.stdout
    assert np.array_equal(again.tracker.end, tiered_small.tracker.end)


def test_all_requests_complete_with_valid_spans(tiered_small):
    t = tiered_small.tracker
    assert t.completed == SMALL.requests
    assert np.all(t.end >= t.start)
    assert np.all(t.start >= t.arrive)
    assert tiered_small.service.min() > 0


def test_checksum_is_identical_across_execution_configs(tiered_small):
    interp = run_scenario(SMALL, "interp")
    jit = run_scenario(SMALL, "jit")
    assert (interp.vm_result.stdout == jit.vm_result.stdout
            == tiered_small.vm_result.stdout)


def test_closed_loop_sojourn_equals_service(tiered_small):
    assert np.array_equal(tiered_small.sojourn, tiered_small.service)
    assert tiered_small.tracker.idle_cycles == 0


def test_open_loop_tracks_idle_and_queueing():
    # Offered load well under capacity, so the machine demonstrably
    # drains and idles between arrivals.
    spec = get_preset("open-poisson").replace(requests=800, rate=0.2)
    res = run_scenario(spec, "tiered")
    t = res.tracker
    assert t.completed == spec.requests
    # The machine idled at least once waiting for an arrival, and
    # sojourn (arrival -> completion) dominates service once queued.
    assert t.idle_cycles > 0
    assert t.blocked_polls > 0
    assert res.sojourn.sum() >= res.service.sum()
    assert np.all(t.start >= t.arrive)


def test_window_samples_cover_the_run(tiered_small):
    samples = tiered_small.window_samples()
    w = tiered_small.window_requests
    assert len(samples) == SMALL.requests // w
    assert np.all(samples > 0)


def test_result_record_is_json_ready(tiered_small):
    record = tiered_small.to_dict()
    json.dumps(record)  # must not raise
    assert record["requests"] == SMALL.requests
    assert record["mode"] == "tiered"
    assert record["mix_realized"].keys() == set(SMALL.mix)
    assert sum(record["mix_realized"].values()) == SMALL.requests
    lat = record["latency_cycles"]["service"]
    assert lat["p50"] <= lat["p99"] <= lat["max"]
    assert record["cycles"] == (record["busy_cycles"]
                                + record["idle_cycles"])


def test_handler_mix_respects_weights():
    # 55% get vs 1% rare at 1500 draws: get must dominate rare.
    counts = np.bincount(SMALL.handler_schedule(),
                         minlength=len(SMALL.handler_kinds()))
    by_kind = dict(zip(SMALL.handler_kinds(), counts.tolist()))
    assert by_kind["get"] > 10 * by_kind["rare"]


def test_incomplete_scenarios_raise():
    # A drained-too-early tracker (more threads than work is fine; a
    # wrong budget is not): starve the VM with a tiny bytecode budget.
    from repro.vm.machine import ExecutionLimitExceeded
    with pytest.raises(ExecutionLimitExceeded):
        run_scenario(SMALL, "interp", max_bytecodes=1000)


# -- the server experiment ladder --------------------------------------
def test_server_ladder_guards_at_small_scale():
    spec = get_preset("api").replace(requests=2500)
    data = run_server(spec, windows=25)
    # Checksums and completion must hold even at toy scale.
    assert data["guards"]["checksums_agree"]
    assert data["guards"]["requests_completed"]
    assert data["guards"]["cold_archive_populated"]
    assert data["guards"]["warm_archive_all_hits"]
    assert data["guards"]["monitor_ladder_exercised"]
    assert evaluate_guards(data) == data["guards"]
    cold = data["configs"]["tiered_cold"]
    warm = data["configs"]["tiered_warm"]
    assert warm["translate_cycles"] < cold["translate_cycles"]
