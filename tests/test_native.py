"""Native layer: layout, templates, trace recording."""

import numpy as np
import pytest

from repro.native import (
    CYCLES_BY_CAT,
    CountingSink,
    FLAG_TAKEN,
    FLAG_TRANSLATE,
    FLAG_WRITE,
    NCat,
    PATCH,
    RecordingSink,
    Template,
    TemplateBuilder,
    TextRegion,
    Trace,
    concat_templates,
    mix_bucket,
    region_name,
)
from repro.native.layout import (
    BYTECODE_BASE,
    CODE_CACHE_BASE,
    HEAP_BASE,
    INTERP_TEXT_BASE,
    NATIVE_INSTR_BYTES,
    thread_stack_base,
)


class TestLayout:
    def test_regions_disjoint(self):
        names = {
            region_name(a)
            for a in (INTERP_TEXT_BASE, CODE_CACHE_BASE, BYTECODE_BASE,
                      HEAP_BASE)
        }
        assert len(names) == 4

    def test_region_name_unmapped(self):
        assert region_name(0x10) == "unmapped"

    def test_thread_stacks_disjoint(self):
        assert thread_stack_base(1) - thread_stack_base(0) >= 0x10000

    def test_text_region_alloc_sequential(self):
        r = TextRegion(0x1000, 0x100, "t")
        a = r.alloc(4)
        b = r.alloc(2)
        assert b == a + 4 * NATIVE_INSTR_BYTES
        assert r.used_bytes == 24

    def test_text_region_exhaustion(self):
        r = TextRegion(0x1000, 16, "t")
        with pytest.raises(MemoryError):
            r.alloc(5)

    def test_text_region_negative(self):
        r = TextRegion(0x1000, 16, "t")
        with pytest.raises(ValueError):
            r.alloc(-1)


class TestTemplateBuilder:
    def test_pcs_sequential(self):
        b = TemplateBuilder("t")
        b.ialu(n=3)
        t = b.build(base_pc=0x100)
        assert list(t.pc) == [0x100, 0x104, 0x108]

    def test_patch_slots_recorded_in_order(self):
        b = TemplateBuilder("t")
        b.load(ea=PATCH)
        b.ialu()
        b.store(ea=PATCH)
        t = b.build(base_pc=0)
        assert list(t.patch_ea) == [0, 2]

    def test_static_ea_not_patched(self):
        b = TemplateBuilder("t")
        b.load(ea=0x1234)
        t = b.build(base_pc=0)
        assert len(t.patch_ea) == 0
        assert t.ea[0] == 0x1234

    def test_store_gets_write_flag(self):
        b = TemplateBuilder("t")
        b.store(ea=0x10)
        t = b.build(base_pc=0)
        assert t.flags[0] & FLAG_WRITE

    def test_unconditional_transfers_taken(self):
        b = TemplateBuilder("t")
        b.instr(NCat.JUMP, target=0x50)
        b.instr(NCat.RET, target=0x60)
        t = b.build(base_pc=0)
        assert all(t.flags & FLAG_TAKEN)

    def test_conditional_branch_not_taken_by_default(self):
        b = TemplateBuilder("t")
        b.instr(NCat.BRANCH, target=0x50)
        t = b.build(base_pc=0)
        assert not (t.flags[0] & FLAG_TAKEN)

    def test_relative_target_resolution(self):
        b = TemplateBuilder("t")
        b.ialu()
        b.instr(NCat.BRANCH, target=b.rel(2))
        t = b.build(base_pc=0x100)
        assert t.target[1] == 0x104 + 8

    def test_base_flags_applied_everywhere(self):
        b = TemplateBuilder("t", base_flags=FLAG_TRANSLATE)
        b.ialu(n=2)
        t = b.build(base_pc=0)
        assert all(t.flags & FLAG_TRANSLATE)

    def test_cycles_match_cost_model(self):
        b = TemplateBuilder("t")
        b.instr(NCat.IDIV)
        b.ialu()
        t = b.build(base_pc=0)
        assert t.cycles == int(CYCLES_BY_CAT[NCat.IDIV] + CYCLES_BY_CAT[NCat.IALU])

    def test_requires_region_or_pc(self):
        with pytest.raises(ValueError):
            TemplateBuilder("t").ialu().build()

    def test_cat_counts(self):
        b = TemplateBuilder("t")
        b.ialu(n=3)
        b.load(ea=0)
        t = b.build(base_pc=0)
        assert t.cat_counts[NCat.IALU] == 3
        assert t.cat_counts[NCat.LOAD] == 1


class TestConcat:
    def test_concat_rebases_patches(self):
        b1 = TemplateBuilder("a")
        b1.load(ea=PATCH)
        t1 = b1.build(base_pc=0)
        b2 = TemplateBuilder("b")
        b2.ialu()
        b2.store(ea=PATCH)
        t2 = b2.build(base_pc=0x100)
        t = concat_templates("ab", [t1, t2])
        assert list(t.patch_ea) == [0, 2]
        assert t.n == 3

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat_templates("x", [])


def _simple_template():
    b = TemplateBuilder("t")
    b.load(dst=5, ea=PATCH)
    b.instr(NCat.BRANCH, src1=5, taken=PATCH, target=PATCH)
    b.store(src1=5, ea=0xAA)
    return b.build(base_pc=0x40)


class TestRecordingSink:
    def test_records_and_patches(self):
        sink = RecordingSink()
        sink.emit(_simple_template(), (0x99,), (True,), (0x123,))
        tr = sink.trace()
        assert tr.n == 3
        assert tr.ea[0] == 0x99
        assert tr.flags[1] & FLAG_TAKEN
        assert tr.target[1] == 0x123
        assert tr.ea[2] == 0xAA

    def test_taken_false_patch(self):
        sink = RecordingSink()
        sink.emit(_simple_template(), (0x99,), (False,), (0x123,))
        tr = sink.trace()
        assert not (tr.flags[1] & FLAG_TAKEN)

    def test_grows_past_initial_capacity(self):
        sink = RecordingSink(initial_capacity=4)
        t = _simple_template()
        for _ in range(100):
            sink.emit(t, (1,), (False,), (2,))
        assert len(sink) == 300

    def test_counting_totals_match(self):
        t = _simple_template()
        c = CountingSink()
        r = RecordingSink()
        for _ in range(7):
            c.emit(t, (1,), (True,), (2,))
            r.emit(t, (1,), (True,), (2,))
        assert c.cycles == r.cycles == 7 * t.cycles
        assert c.instructions == r.instructions == 21
        assert (c.cat_counts == r.cat_counts).all()

    def test_translate_cycles_tracked_by_flag(self):
        b = TemplateBuilder("x", base_flags=FLAG_TRANSLATE)
        b.ialu(n=2)
        t = b.build(base_pc=0)
        sink = CountingSink()
        sink.emit(t)
        assert sink.translate_cycles == t.cycles
        sink.emit(_simple_template(), (1,), (True,), (2,))
        assert sink.translate_cycles == t.cycles  # unflagged not counted


class TestTrace:
    def test_roundtrip_save_load(self, tmp_path):
        sink = RecordingSink()
        sink.emit(_simple_template(), (0x99,), (True,), (0x123,))
        tr = sink.trace()
        path = str(tmp_path / "t.npz")
        tr.save(path)
        tr2 = Trace.load(path)
        assert tr2.n == tr.n
        assert (tr2.pc == tr.pc).all()
        assert (tr2.flags == tr.flags).all()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Trace.load(str(tmp_path / "nope.npz"))

    def test_select_and_views(self):
        sink = RecordingSink()
        sink.emit(_simple_template(), (0x99,), (True,), (0x123,))
        tr = sink.trace()
        mem = tr.select(tr.is_memory)
        assert mem.n == 2
        assert int(tr.is_write.sum()) == 1
        assert int(tr.is_transfer.sum()) == 1

    def test_concatenate(self):
        sink = RecordingSink()
        sink.emit(_simple_template(), (1,), (True,), (2,))
        a = sink.trace()
        combined = Trace.concatenate([a, a, a])
        assert combined.n == 3 * a.n

    def test_concatenate_empty(self):
        assert Trace.concatenate([]).n == 0

    def test_mismatched_columns_raise(self):
        with pytest.raises(ValueError):
            Trace(
                pc=np.zeros(2, np.int64), cat=np.zeros(1, np.int16),
                ea=np.zeros(2, np.int64), flags=np.zeros(2, np.int16),
                target=np.zeros(2, np.int64), dst=np.zeros(2, np.int16),
                src1=np.zeros(2, np.int16), src2=np.zeros(2, np.int16),
            )

    def test_base_cycles(self):
        sink = RecordingSink()
        t = _simple_template()
        sink.emit(t, (1,), (True,), (2,))
        assert sink.trace().base_cycles() == t.cycles


class TestMixBuckets:
    @pytest.mark.parametrize("cat,bucket", [
        (NCat.LOAD, "load"), (NCat.STORE, "store"), (NCat.BRANCH, "branch"),
        (NCat.CALL, "call"), (NCat.ICALL, "call"), (NCat.IJUMP, "ijump"),
        (NCat.JUMP, "jump"), (NCat.RET, "ret"), (NCat.FALU, "fpu"),
        (NCat.IALU, "ialu"), (NCat.IMUL, "ialu"), (NCat.NOP, "nop"),
    ])
    def test_bucket(self, cat, bucket):
        assert mix_bucket(cat) == bucket
