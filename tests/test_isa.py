"""Bytecode ISA: opcode metadata, instructions, pools, builders."""

import pytest

from repro.isa import (
    ArrayType,
    ClassBuilder,
    ConstantPool,
    FieldRef,
    Instr,
    MethodRef,
    N_OPCODES,
    OPINFO,
    Op,
    ProgramBuilder,
    StringConst,
)


class TestOpcodeMetadata:
    def test_every_opcode_has_info(self):
        assert set(OPINFO) == set(Op)

    def test_opcode_count_reasonable(self):
        # The subset ISA: big enough for the workloads, documented in
        # DESIGN.md as a rescaling of the real 220-opcode set.
        assert 70 <= N_OPCODES <= 120

    def test_lengths_match_jvm_conventions(self):
        assert OPINFO[Op.IADD].length == 1
        assert OPINFO[Op.ILOAD].length == 2
        assert OPINFO[Op.GETFIELD].length == 3
        assert OPINFO[Op.GOTO].length == 3

    def test_stack_effects(self):
        assert (OPINFO[Op.IADD].pops, OPINFO[Op.IADD].pushes) == (2, 1)
        assert (OPINFO[Op.DUP].pops, OPINFO[Op.DUP].pushes) == (1, 2)
        assert (OPINFO[Op.PUTFIELD].pops, OPINFO[Op.PUTFIELD].pushes) == (2, 0)
        assert (OPINFO[Op.IASTORE].pops, OPINFO[Op.IASTORE].pushes) == (3, 0)

    def test_invoke_effects_pool_dependent(self):
        assert OPINFO[Op.INVOKEVIRTUAL].pops is None

    def test_kinds(self):
        assert OPINFO[Op.IFEQ].kind == "branch"
        assert OPINFO[Op.TABLESWITCH].kind == "switch"
        assert OPINFO[Op.MONITORENTER].kind == "monitor"


class TestInstr:
    def test_encoded_length_plain(self):
        assert Instr(Op.IADD).encoded_length() == 1

    def test_encoded_length_tableswitch_scales(self):
        i = Instr(Op.TABLESWITCH, extra=(0, [1, 2, 3], 9))
        assert i.encoded_length() == 12 + 12

    def test_encoded_length_lookupswitch_scales(self):
        i = Instr(Op.LOOKUPSWITCH, extra=({1: 4, 9: 5}, 7))
        assert i.encoded_length() == 12 + 16

    def test_branch_targets(self):
        assert Instr(Op.IFEQ, 7).branch_targets() == [7]
        assert Instr(Op.GOTO, 3).branch_targets() == [3]
        assert Instr(Op.IADD).branch_targets() == []
        sw = Instr(Op.TABLESWITCH, extra=(0, [1, 2], 9))
        assert sw.branch_targets() == [1, 2, 9]

    def test_equality(self):
        assert Instr(Op.ICONST, 5) == Instr(Op.ICONST, 5)
        assert Instr(Op.ICONST, 5) != Instr(Op.ICONST, 6)


class TestConstantPool:
    def test_dedup_strings(self):
        pool = ConstantPool()
        assert pool.string("x") == pool.string("x")
        assert pool.string("y") != pool.string("x")

    def test_dedup_method_refs_by_signature(self):
        pool = ConstantPool()
        a = pool.method_ref("C", "m", 1, True)
        b = pool.method_ref("C", "m", 1, True)
        c = pool.method_ref("C", "m", 2, True)
        assert a == b != c

    def test_entry_types(self):
        pool = ConstantPool()
        assert isinstance(pool[pool.string("s")], StringConst)
        assert isinstance(pool[pool.field_ref("C", "f")], FieldRef)
        assert isinstance(pool[pool.method_ref("C", "m", 0, False)], MethodRef)

    def test_resolution_cache_starts_empty(self):
        pool = ConstantPool()
        assert pool[pool.class_ref("C")].resolved is None


class TestMethodBuilder:
    def test_labels_resolve_forward_and_back(self):
        cb = ClassBuilder("C")
        m = cb.method("m", static=True)
        top = m.new_label()
        out = m.new_label()
        m.bind(top)
        m.iconst(1).ifne(out)
        m.goto(top)
        m.bind(out)
        m.return_()
        method = m.build()
        assert method.code[1].a == 3   # ifne -> out
        assert method.code[2].a == 0   # goto -> top

    def test_unbound_label_raises(self):
        cb = ClassBuilder("C")
        m = cb.method("m", static=True)
        m.goto(m.new_label())
        m.return_()
        with pytest.raises(ValueError, match="unbound"):
            m.build()

    def test_double_bind_raises(self):
        cb = ClassBuilder("C")
        m = cb.method("m", static=True)
        label = m.new_label()
        m.bind(label)
        with pytest.raises(ValueError):
            m.bind(label)

    def test_max_locals_tracks_usage(self):
        cb = ClassBuilder("C")
        m = cb.method("m", argc=1, static=True)
        m.iload(0).istore(5)
        m.return_()
        assert m.build().max_locals == 6

    def test_switch_labels_resolve(self):
        cb = ClassBuilder("C")
        m = cb.method("m", argc=1, static=True)
        a, b, d = m.new_label(), m.new_label(), m.new_label()
        m.iload(0).tableswitch(0, [a, b], d)
        m.bind(a)
        m.return_()
        m.bind(b)
        m.return_()
        m.bind(d)
        m.return_()
        method = m.build()
        low, targets, default = method.code[1].extra
        assert (low, targets, default) == (0, [2, 3], 4)

    def test_synchronized_flag(self):
        cb = ClassBuilder("C")
        m = cb.method("m", synchronized=True)
        m.return_()
        assert m.build().is_synchronized


class TestClassAndProgramBuilders:
    def test_duplicate_method_rejected(self):
        cb = ClassBuilder("C")
        cb.method("m").return_()
        cb.method("m").return_()
        with pytest.raises(ValueError, match="duplicate"):
            cb.build()

    def test_duplicate_class_rejected(self):
        pb = ProgramBuilder("p")
        pb.cls("C").method("main", static=True).return_()
        pb.cls("C")
        with pytest.raises(ValueError, match="duplicate"):
            pb.build()

    def test_native_method(self):
        cb = ClassBuilder("C")
        cb.native_method("n", 1, True, lambda vm, t, a: 1)
        cls = cb.build()
        assert cls.methods["n"].is_native

    def test_find_method_walks_hierarchy(self):
        pb = ProgramBuilder("p", main_class="B")
        a = pb.cls("A")
        a.method("m", returns=True).iconst(1).ireturn()
        b = pb.cls("B", super_name="A")
        b.method("main", static=True).return_()
        program = pb.build()
        ca, cb_ = program.get_class("A"), program.get_class("B")
        cb_.super_class = ca
        assert cb_.find_method("m") is ca.methods["m"]
        assert cb_.find_method("nope") is None

    def test_entry_method_lookup(self):
        pb = ProgramBuilder("p", main_class="Main")
        pb.cls("Main").method("main", static=True).return_()
        assert pb.build().entry_method.name == "main"

    def test_program_merge_conflict(self):
        pb1 = ProgramBuilder("a")
        pb1.cls("X").method("main", static=True).return_()
        pb2 = ProgramBuilder("b")
        pb2.cls("X").method("main", static=True).return_()
        p1, p2 = pb1.build(), pb2.build()
        with pytest.raises(ValueError):
            p1.merge(p2)

    def test_field_declarations(self):
        cb = ClassBuilder("C")
        cb.field("x", "int").field("y", "float").static_field("z", "ref")
        cls = cb.build()
        names = {f.name: (f.ftype, f.is_static) for f in cls.fields}
        assert names == {"x": ("int", False), "y": ("float", False),
                         "z": ("ref", True)}

    def test_bad_field_type_rejected(self):
        from repro.isa import Field
        with pytest.raises(ValueError):
            Field("x", "long")
