"""Cross-process shared JIT code archive (repro.vm.codecache_archive).

The archive may only move cycles between the translate and install
buckets — never change what executes.  These tests pin that contract
plus the satellites that ride with it: corrupt-entry quarantine,
key sensitivity, LRU eviction, tiered promotion pricing, the unified
translate-accounting choke point, the identity-keyed ``thread_for``
map, and the worker-respawn source-digest reset.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro import faults
from repro.analysis import cache
from repro.analysis.runner import run_vm
from repro.vm.codecache_archive import CodeArchive, resolve_archive_dir


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.deactivate()
    faults.LEDGER.reset()
    yield
    faults.deactivate()
    faults.LEDGER.reset()


def _run(workload, archive, mode="jit", **kw):
    return run_vm(workload, scale="s0", mode=mode, cache_dir="",
                  code_archive=archive, **kw)


def _same_execution(a, b):
    assert a.stdout == b.stdout
    assert a.heap == b.heap
    assert a.classes_loaded == b.classes_loaded
    assert a.execute_cycles == b.execute_cycles


class TestWarmColdDifferential:
    def test_disabled_cold_warm_execute_identically(self, tmp_path):
        d = str(tmp_path / "archive")
        base = _run("db", "")
        cold = _run("db", d)
        warm = _run("db", d)
        _same_execution(base, cold)
        _same_execution(base, warm)
        # disabled and cold do identical *work* too
        assert base.cycles == cold.cycles
        assert base.translate_cycles == cold.translate_cycles
        assert base.archive is None and cold.archive is not None

    def test_warm_run_pays_install_not_translate(self, tmp_path):
        d = str(tmp_path / "archive")
        cold = _run("db", d)
        warm = _run("db", d)
        assert cold.methods_compiled >= 1
        assert cold.archive["misses"] == cold.methods_compiled
        assert warm.archive["hits"] == cold.methods_compiled
        assert warm.archive["misses"] == 0
        assert warm.methods_compiled == 0
        assert warm.methods_installed == cold.methods_compiled
        # every warm translate cycle is an install cycle, and the
        # install path is far cheaper than translation (the >=50% bar
        # the bench holds suite-wide; a single workload clears it too)
        assert warm.translate_cycles == warm.install_cycles
        assert warm.translate_cycles < cold.translate_cycles / 2

    def test_disabled_when_unconfigured(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODE_ARCHIVE", raising=False)
        assert resolve_archive_dir(None) is None
        assert resolve_archive_dir("") is None
        res = _run("hello", "")
        assert res.archive is None

    def test_env_var_enables_archive(self, tmp_path, monkeypatch):
        d = str(tmp_path / "via-env")
        monkeypatch.setenv("REPRO_CODE_ARCHIVE", d)
        assert resolve_archive_dir(None) == d
        res = run_vm("hello", scale="s0", mode="jit", cache_dir="")
        assert res.archive is not None and res.archive["dir"] == d


class TestQuarantine:
    def test_corrupt_entry_quarantined_recompiled_never_executed(
            self, tmp_path):
        d = str(tmp_path / "archive")
        base = _run("db", "")
        _run("db", d)  # populate
        entries = sorted(glob.glob(os.path.join(d, "code", "*.pkl")))
        with open(entries[0], "r+b") as fh:
            fh.write(b"\xde\xad\xbe\xef")
        before = cache.STATS.snapshot()
        warm = _run("db", d)
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        assert delta["corrupt"] == 1
        assert delta["quarantined"] == 1
        assert delta["code_misses"] == 1   # the corrupt one
        assert delta["code_stores"] == 1   # ...recompiled and re-stored
        assert faults.LEDGER.count("recovered", "quarantine") == 1
        # the corpse moved aside; the run never executed it
        assert len(os.listdir(os.path.join(d, "quarantine"))) == 1
        _same_execution(base, warm)
        # the re-store healed the archive: next run is all hits
        healed = _run("db", d)
        assert healed.archive["misses"] == 0

    def test_truncated_pickle_is_a_miss_not_a_crash(self, tmp_path):
        d = str(tmp_path / "archive")
        _run("hello", d)
        entry = sorted(glob.glob(os.path.join(d, "code", "*.pkl")))[0]
        payload = open(entry, "rb").read()[:10]
        with open(entry, "wb") as fh:
            fh.write(payload)
        # rewrite the sidecar so only unpickling (not the digest) fails
        import hashlib
        with open(entry + ".sha256", "w") as fh:
            fh.write(hashlib.sha256(payload).hexdigest())
        base = _run("hello", "")
        warm = _run("hello", d)
        _same_execution(base, warm)


class TestKeySensitivity:
    def test_config_changes_miss_instead_of_serving_wrong_code(
            self, tmp_path):
        d = str(tmp_path / "archive")
        _run("db", d)  # populate with inlining on
        other = _run("db", d, inline=False)
        assert other.archive["hits"] == 0
        assert other.archive["misses"] == other.methods_compiled
        # and the original config still hits
        again = _run("db", d)
        assert again.archive["misses"] == 0

    def test_source_digest_memo_reset_on_worker_spawn(self, monkeypatch):
        """Satellite: a respawned pool worker must rehash the sources
        instead of trusting a digest memoized by an earlier worker
        generation — a stale digest would let the shared archive serve
        native code compiled from old sources."""
        from repro.analysis import parallel
        cache.source_digest()
        assert cache._digest_cache            # memo populated
        parallel._worker_init([])
        assert not cache._digest_cache        # memo cleared


class TestEviction:
    def test_gc_evicts_lru_down_to_limit(self, tmp_path):
        d = str(tmp_path / "archive")
        _run("db", d)
        code_dir = os.path.join(d, "code")
        entries = sorted(glob.glob(os.path.join(code_dir, "*.pkl")))
        assert len(entries) > 2
        total = sum(os.path.getsize(p) for p in entries)
        keep = total // 3
        before = cache.STATS.snapshot()
        CodeArchive(d, limit_bytes=keep).gc()
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        left = glob.glob(os.path.join(code_dir, "*.pkl"))
        assert delta["code_evicted"] >= 1
        assert 0 < len(left) < len(entries)
        assert sum(os.path.getsize(p) for p in left) <= keep
        # eviction is not corruption: evicted methods just recompile
        base = _run("db", "")
        warm = _run("db", d)
        _same_execution(base, warm)
        assert warm.archive["hits"] >= 1
        assert warm.archive["misses"] >= 1


class TestTieredArchive:
    def test_promotions_price_against_install_and_record_provenance(
            self, tmp_path):
        d = str(tmp_path / "archive")
        cold = _run("jess", d, mode="tiered")
        warm = _run("jess", d, mode="tiered")
        assert cold.tiering["archive_installs"] == 0
        assert warm.tiering["archive_installs"] >= 1
        # the cheaper promotion price makes the whole run cheaper
        assert warm.cycles < cold.cycles
        assert warm.stdout == cold.stdout
        # transitions carry the archive provenance tag
        tagged = [t for m in warm.tiering["methods"].values()
                  for t in m["transitions"] if t[:1] == ["promote"]
                  and t[-1] == "archive"]
        assert len(tagged) == warm.tiering["archive_installs"]


class TestAccountingChokePoint:
    """Satellite: every compile path — strategy, tiered promotion,
    archive install — charges translate cycles through
    ``VM._account_translation``, so the per-method profiler total
    always reconciles exactly with the sink's translate counter."""

    @pytest.mark.parametrize("mode", ["jit", "tiered"])
    def test_profiles_reconcile_with_sink(self, tmp_path, mode):
        d = str(tmp_path / "archive")
        for attempt in ("cold", "warm"):
            res = _run("jess", d, mode=mode)
            psum = sum(p["translate_cycles"]
                       for p in res.profiles.values())
            isum = sum(p.get("install_cycles", 0)
                       for p in res.profiles.values())
            assert psum == res.translate_cycles, (mode, attempt)
            assert isum == res.install_cycles, (mode, attempt)

    def test_install_subset_bounded_by_translate(self, tmp_path):
        d = str(tmp_path / "archive")
        _run("db", d)
        warm = _run("db", d)
        for p in warm.profiles.values():
            assert p.get("install_cycles", 0) <= p["translate_cycles"]


class TestThreadForMap:
    def test_identity_map_matches_linear_scan(self):
        """Satellite: ``VM.thread_for`` moved from an O(threads) scan
        to an identity-keyed dict; both must agree on every thread."""
        from repro.experiments.tiered import lock_escape_program
        from repro.vm import JavaVM
        vm = JavaVM(lock_escape_program().build(), spawn_daemons=False)
        vm.run()
        with_obj = [t for t in vm.threads if t.java_obj is not None]
        assert len(with_obj) >= 2   # spinner + toucher at minimum
        for t in with_obj:
            scan = next(x for x in vm.threads if x.java_obj is t.java_obj)
            assert vm.thread_for(t.java_obj) is scan is t
        # unknown object: no thread
        assert vm.thread_for(vm.heap.new_object(vm.object_class)) is None
