"""Branch predictors and BTB on crafted event sequences."""

import pytest

from repro.arch.branch import (
    BTB,
    BimodalBHT,
    GAp,
    Gshare,
    PREDICTORS,
    SingleTwoBit,
    run_predictor,
)
from repro.native.nisa import NCat


def _events(seq):
    """seq: list of (pc, cat, taken, target)."""
    pcs = [e[0] for e in seq]
    cats = [int(e[1]) for e in seq]
    takens = [e[2] for e in seq]
    targets = [e[3] for e in seq]
    return pcs, cats, takens, targets


def _branch(pc, taken, target=0x9000):
    return (pc, NCat.BRANCH, taken, target if taken else 0)


class TestDirectionPredictors:
    @pytest.mark.parametrize("name", sorted(PREDICTORS))
    def test_learns_always_taken(self, name):
        events = _events([_branch(0x100, True)] * 50)
        res = run_predictor(PREDICTORS[name](), *events)
        # After warm-up everything predicts taken; BTB learns the target.
        assert res.cond_mispredicts <= 2
        assert res.misprediction_rate < 0.1

    @pytest.mark.parametrize("name", sorted(PREDICTORS))
    def test_learns_never_taken(self, name):
        events = _events([_branch(0x100, False)] * 50)
        res = run_predictor(PREDICTORS[name](), *events)
        assert res.cond_mispredicts <= 2

    def test_single_2bit_shared_counter_interferes(self):
        # Two branches with opposite biases thrash one counter...
        seq = []
        for _ in range(40):
            seq.append(_branch(0x100, True))
            seq.append(_branch(0x200, False))
        events = _events(seq)
        shared = run_predictor(SingleTwoBit(), *events)
        table = run_predictor(BimodalBHT(), *events)
        # ...while per-pc counters keep them apart.
        assert table.cond_mispredicts < shared.cond_mispredicts

    def test_gshare_learns_alternation(self):
        # T,N,T,N at one pc: bimodal is ~50%; gshare's history resolves it.
        seq = [_branch(0x100, i % 2 == 0) for i in range(200)]
        events = _events(seq)
        gshare = run_predictor(Gshare(), *events)
        bimodal = run_predictor(BimodalBHT(), *events)
        assert gshare.cond_mispredicts < bimodal.cond_mispredicts
        assert gshare.cond_mispredicts <= 12

    def test_gap_learns_per_branch_patterns(self):
        # Branch A alternates, branch B always taken.
        seq = []
        for i in range(200):
            seq.append(_branch(0x100, i % 2 == 0))
            seq.append(_branch(0x200, True))
        events = _events(seq)
        res = run_predictor(GAp(), *events)
        assert res.conditional_rate < 0.2


class TestBTBAndIndirect:
    def test_btb_stores_and_overwrites(self):
        btb = BTB(entries=16)
        btb.update(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500
        btb.update(0x100, 0x700)
        assert btb.lookup(0x100) == 0x700
        assert btb.lookup(0x104) is None

    def test_btb_conflict_eviction(self):
        btb = BTB(entries=16)
        btb.update(0x100, 0x500)
        btb.update(0x100 + 16 * 4, 0x900)   # same index, different tag
        assert btb.lookup(0x100) is None

    def test_stable_indirect_predicted(self):
        seq = [(0x100, NCat.IJUMP, True, 0x5000)] * 50
        res = run_predictor(Gshare(), *_events(seq))
        assert res.indirect_mispredicts == 1  # only the cold miss

    def test_varying_indirect_defeats_btb(self):
        # The interpreter dispatch pattern: one pc, rotating targets.
        seq = [(0x100, NCat.IJUMP, True, 0x5000 + 64 * (i % 7))
               for i in range(70)]
        res = run_predictor(Gshare(), *_events(seq))
        assert res.indirect_rate > 0.8

    def test_direct_jumps_always_correct(self):
        seq = [(0x100, NCat.JUMP, True, 0x5000)] * 20
        res = run_predictor(Gshare(), *_events(seq))
        assert res.mispredicts == 0

    def test_ras_predicts_returns(self):
        seq = []
        for i in range(20):
            call_pc = 0x1000 + 64 * i
            seq.append((call_pc, NCat.CALL, True, 0x8000))
            seq.append((0x8004, NCat.RET, True, call_pc + 4))
        res = run_predictor(Gshare(), *_events(seq))
        assert res.indirect_mispredicts == 0

    def test_returns_without_ras_fall_back_to_btb(self):
        seq = []
        for i in range(20):
            call_pc = 0x1000 + 64 * i
            seq.append((call_pc, NCat.CALL, True, 0x8000))
            seq.append((0x8004, NCat.RET, True, call_pc + 4))
        res = run_predictor(Gshare(), *_events(seq), use_ras=False)
        assert res.indirect_mispredicts > 10

    def test_taken_branch_needs_btb_target(self):
        # Correct direction but unseen target still counts as a target miss.
        seq = [_branch(0x100, True, 0x9000), _branch(0x100, True, 0x9100)]
        res = run_predictor(BimodalBHT(), *_events(seq))
        assert res.target_mispredicts >= 1


class TestResultAccounting:
    def test_counts_sum(self):
        seq = (
            [_branch(0x100, True)] * 3
            + [(0x200, NCat.IJUMP, True, 0x5000)] * 2
            + [(0x300, NCat.JUMP, True, 0x6000)]
        )
        res = run_predictor(Gshare(), *_events(seq))
        assert res.transfers == 6
        assert res.conditional == 3
        assert res.indirect == 2
