"""End-to-end trace realism: the address-map invariants the paper's
methodology depends on (which region each mode fetches from, where
bytecodes are read, where compiled code is installed and later fetched)."""

import numpy as np
import pytest

from repro.analysis import run_vm
from repro.native.layout import (
    BYTECODE_BASE,
    BYTECODE_SIZE,
    CODE_CACHE_BASE,
    CODE_CACHE_SIZE,
    HEAP_BASE,
    HEAP_SIZE,
    INTERP_TEXT_BASE,
    INTERP_TEXT_SIZE,
    JITC_TEXT_BASE,
    JITC_TEXT_SIZE,
    STACK_BASE,
    STACK_REGION_SIZE,
)


def _in(arr, base, size):
    return (arr >= base) & (arr < base + size)


@pytest.fixture(scope="module")
def interp_trace():
    return run_vm("db", scale="s0", mode="interp", record=True,
                  profile=False).trace


@pytest.fixture(scope="module")
def jit_trace():
    return run_vm("db", scale="s0", mode="jit", record=True,
                  profile=False).trace


class TestInterpreterMode:
    def test_never_fetches_from_code_cache(self, interp_trace):
        assert not _in(interp_trace.pc, CODE_CACHE_BASE,
                       CODE_CACHE_SIZE).any()

    def test_mostly_fetches_interpreter_text(self, interp_trace):
        frac = _in(interp_trace.pc, INTERP_TEXT_BASE,
                   INTERP_TEXT_SIZE).mean()
        assert frac > 0.8

    def test_reads_bytecode_as_data(self, interp_trace):
        mem = interp_trace.select(interp_trace.is_memory)
        bc_reads = _in(mem.ea, BYTECODE_BASE, BYTECODE_SIZE) & ~mem.is_write
        assert bc_reads.sum() > 1000

    def test_touches_operand_stacks(self, interp_trace):
        mem = interp_trace.select(interp_trace.is_memory)
        assert _in(mem.ea, STACK_BASE, STACK_REGION_SIZE).mean() > 0.2

    def test_heap_accesses_present(self, interp_trace):
        mem = interp_trace.select(interp_trace.is_memory)
        assert _in(mem.ea, HEAP_BASE, HEAP_SIZE).any()


class TestJITMode:
    def test_fetches_compiled_code_from_code_cache(self, jit_trace):
        # db at s0 is translate-dominated, so compiled-code fetches are
        # a minority of the stream — but must be clearly present.
        frac = _in(jit_trace.pc, CODE_CACHE_BASE, CODE_CACHE_SIZE).mean()
        assert frac > 0.15

    def test_translator_text_fetched_during_translate(self, jit_trace):
        xl = jit_trace.select(jit_trace.in_translate)
        assert _in(xl.pc, JITC_TEXT_BASE, JITC_TEXT_SIZE).mean() > 0.95

    def test_install_stores_precede_fetches(self, jit_trace):
        """Every code-cache pc fetched was first written by translate —
        the D-to-I flow behind the paper's Section 6 proposal."""
        installs = jit_trace.select(
            jit_trace.is_write
            & _in(jit_trace.ea, CODE_CACHE_BASE, CODE_CACHE_SIZE)
        )
        fetch_mask = _in(jit_trace.pc, CODE_CACHE_BASE, CODE_CACHE_SIZE)
        fetched_pcs = set(np.unique(jit_trace.pc[fetch_mask]).tolist())
        installed = set(np.unique(installs.ea).tolist())
        # prologue/chunk pcs all appear among installed words
        missing = fetched_pcs - installed
        assert not missing, f"{len(missing)} fetched pcs never installed"

    def test_bytecode_read_during_translation_only_sparsely_after(self, jit_trace):
        xl = jit_trace.select(jit_trace.in_translate)
        rest = jit_trace.select(~jit_trace.in_translate)
        xl_bc = _in(xl.ea[xl.is_memory], BYTECODE_BASE, BYTECODE_SIZE).sum()
        rest_mem = rest.select(rest.is_memory)
        rest_bc_frac = _in(rest_mem.ea, BYTECODE_BASE, BYTECODE_SIZE).mean()
        assert xl_bc > 0
        assert rest_bc_frac < 0.05   # compiled code does not re-read bytecode

    def test_fewer_data_refs_than_interpreter(self, interp_trace, jit_trace):
        interp_refs = int(interp_trace.is_memory.sum())
        jit_refs = int(jit_trace.is_memory.sum())
        assert 0.05 * interp_refs < jit_refs < 0.8 * interp_refs

    def test_no_indirect_dispatch_jumps(self, jit_trace):
        """Compiled code has calls/branches; the dispatch IJUMP is gone."""
        from repro.native.nisa import NCat
        outside = jit_trace.select(~jit_trace.in_translate)
        compiled = outside.select(
            _in(outside.pc, CODE_CACHE_BASE, CODE_CACHE_SIZE)
        )
        ijumps = (compiled.cat == int(NCat.IJUMP)).sum()
        assert ijumps / max(1, compiled.n) < 0.01


class TestCrossMode:
    def test_same_bytecode_addresses_both_modes(self, interp_trace, jit_trace):
        """Class loading is deterministic: both runs place method
        bytecode at identical addresses."""
        a = interp_trace.select(interp_trace.is_memory)
        b = jit_trace.select(jit_trace.is_memory)
        a_bc = set(np.unique(a.ea[_in(a.ea, BYTECODE_BASE, BYTECODE_SIZE)]).tolist())
        b_bc = set(np.unique(b.ea[_in(b.ea, BYTECODE_BASE, BYTECODE_SIZE)]).tolist())
        # translation reads every method byte; interpretation reads the
        # executed subset
        assert b_bc >= a_bc or len(a_bc - b_bc) / max(1, len(a_bc)) < 0.3
