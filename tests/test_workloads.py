"""Workloads: registry, determinism, mode equivalence, characteristics."""

import pytest

from repro.vm import CompileOnFirstUse, InterpretOnly, JavaVM
from repro.workloads import SPEC_BENCHMARKS, all_workloads, get_workload

ALL = sorted(all_workloads())


class TestRegistry:
    def test_all_spec_benchmarks_present(self):
        for name in SPEC_BENCHMARKS:
            assert name in all_workloads()
        assert "hello" in all_workloads()

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("quake")

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError, match="scale"):
            get_workload("hello").build("s99")

    def test_builds_are_fresh_programs(self):
        w = get_workload("db")
        assert w.build("s0") is not w.build("s0")

    def test_mtrt_flagged_multithreaded(self):
        assert get_workload("mtrt").multithreaded
        assert not get_workload("compress").multithreaded


@pytest.mark.parametrize("name", ALL)
class TestEveryWorkload:
    def test_verifies_and_runs_interp(self, name):
        program = get_workload(name).build("s0")
        result = JavaVM(program, strategy=InterpretOnly()).run()
        assert result.stdout, f"{name} produced no output"
        assert result.bytecodes_executed > 0

    def test_modes_agree(self, name):
        w = get_workload(name)
        interp = JavaVM(w.build("s0"), strategy=InterpretOnly()).run()
        jit = JavaVM(w.build("s0"), strategy=CompileOnFirstUse()).run()
        assert interp.stdout == jit.stdout

    def test_deterministic(self, name):
        w = get_workload(name)
        a = JavaVM(w.build("s0"), strategy=InterpretOnly()).run()
        b = JavaVM(w.build("s0"), strategy=InterpretOnly()).run()
        assert a.stdout == b.stdout
        assert a.cycles == b.cycles
        assert a.bytecodes_executed == b.bytecodes_executed

    def test_scales_increase_work(self, name):
        if name == "hello":
            pytest.skip("hello has no scale knob")
        w = get_workload(name)
        small = JavaVM(w.build("s0"), strategy=InterpretOnly()).run()
        big = JavaVM(w.build("s1"), strategy=InterpretOnly()).run()
        assert big.bytecodes_executed > small.bytecodes_executed


class TestCharacteristics:
    """Each benchmark's architectural personality (the paper's Table/Fig
    commentary), asserted at s0 so the suite stays fast."""

    def _run(self, name, mode="jit", scale="s0"):
        strategy = (CompileOnFirstUse() if mode == "jit"
                    else InterpretOnly())
        return JavaVM(get_workload(name).build(scale), strategy=strategy).run()

    def test_jit_beats_interpreter_on_hot_code(self):
        for name in ("compress", "mpegaudio", "mtrt"):
            interp = self._run(name, "interp")
            jit = self._run(name, "jit")
            assert interp.cycles > 2 * jit.cycles, name

    def test_translate_share_ordering(self):
        """hello/db translate-heavy; compress/jack execution-heavy."""
        shares = {}
        for name in ("hello", "db", "compress", "jack"):
            r = self._run(name, "jit", scale="s1")
            shares[name] = r.translate_cycles / r.cycles
        assert shares["hello"] > shares["compress"]
        assert shares["db"] > shares["compress"]
        assert shares["db"] > shares["jack"]

    def test_mtrt_uses_two_worker_threads(self):
        program = get_workload("mtrt").build("s0")
        vm = JavaVM(program, strategy=InterpretOnly())
        vm.run()
        workers = [t for t in vm.threads if t.name == "spec/RenderThread"]
        assert len(workers) == 2
        assert all(not t.is_alive for t in workers)

    def test_jack_is_sync_heaviest(self):
        ops = {
            name: self._run(name, "jit", "s1").sync["acquire_ops"]
            for name in ("jack", "compress", "mpegaudio")
        }
        assert ops["jack"] > 10 * ops["compress"]
        assert ops["jack"] > 10 * ops["mpegaudio"]

    def test_compress_has_high_method_reuse(self):
        r = self._run("compress", "jit", "s1")
        profiles = r.profiles
        find = profiles.get("spec/Compressor.findEntry")
        assert find and find["invocations"] > 500

    def test_db_methods_mostly_run_once(self):
        r = self._run("db", "jit", "s1")
        setups = [p for name, p in r.profiles.items() if "setup" in name]
        assert len(setups) >= 20
        assert all(p["invocations"] == 1 for p in setups)

    def test_mpegaudio_uses_fpu(self):
        from repro.native.nisa import NCat
        r = self._run("mpegaudio", "jit")
        fpu = (r.category_counts[NCat.FALU] + r.category_counts[NCat.FMUL]
               + r.category_counts[NCat.FDIV])
        assert fpu / r.instructions > 0.01

    def test_hello_prints_hello(self):
        assert self._run("hello").stdout == ["Hello, world"]

    def test_javac_emits_code_for_all_statements(self):
        r = self._run("javac", "interp", "s0")
        assert int(r.stdout[0]) > 0
