"""JIT compiler: chunk generation, layout, spills, inlining, code cache."""

import pytest

from repro.isa import ArrayType, ProgramBuilder
from repro.native.layout import CODE_CACHE_BASE
from repro.native.nisa import NCat
from repro.vm import CompileOnFirstUse, JavaVM
from repro.vm.jit.inline import ClassHierarchy, is_inlinable

from helpers import eval_both_modes, expr_main, run_program


def _compile_main(body_fn):
    """Build a main with ``body_fn`` and compile it; returns CompiledMethod."""
    pb = expr_main(body_fn)
    program = pb.build()
    vm = JavaVM(program, strategy=CompileOnFirstUse())
    vm.boot()
    main = program.entry_method
    return vm._compiled[main.method_id], vm


class TestChunkGeneration:
    def test_chunks_align_with_bytecode(self):
        compiled, _vm = _compile_main(lambda m: m.iconst(1) and None)
        assert len(compiled.chunks) == len(compiled.method.code)

    def test_chunks_contiguous_in_code_cache(self):
        compiled, _vm = _compile_main(
            lambda m: m.iconst(1).iconst(2).iadd() and None
        )
        pcs = []
        for chunk in compiled.chunks:
            if chunk is not None:
                pcs.extend(chunk.template.pc.tolist())
        assert pcs == sorted(pcs)
        assert all(pc >= CODE_CACHE_BASE for pc in pcs)
        assert compiled.entry_pc <= pcs[0] < compiled.end_pc

    def test_branch_targets_point_at_chunks(self):
        def body(m):
            out = m.new_label()
            m.iconst(1).istore(1)
            m.iload(1).ifeq(out)
            m.iinc(1, 5)
            m.bind(out)
            m.iload(1)
        compiled, _vm = _compile_main(body)
        # find the BRANCH instruction in the chunk stream
        branch_targets = []
        chunk_pcs = set()
        for chunk in compiled.chunks:
            if chunk is None:
                continue
            chunk_pcs.add(chunk.base_pc)
            t = chunk.template
            for i in range(t.n):
                if t.cat[i] == int(NCat.BRANCH) and t.target[i]:
                    branch_targets.append(int(t.target[i]))
        assert branch_targets
        assert all(t in chunk_pcs for t in branch_targets)

    def test_pop_and_nop_produce_no_code(self):
        def body(m):
            m.iconst(1).iconst(2).pop().nop()
        compiled, _vm = _compile_main(body)
        kinds = [c is None for c in compiled.chunks]
        # pop (index 2) and nop (index 3) generate nothing
        assert kinds[2] and kinds[3]

    def test_getstatic_address_baked(self):
        def body(m):
            m.getstatic("Test", "s")
        pb = expr_main(body)
        pb._class_builders[0].static_field("s", "int")
        program = pb.build()
        vm = JavaVM(program, strategy=CompileOnFirstUse())
        vm.boot()
        compiled = vm._compiled[program.entry_method.method_id]
        loads = []
        for chunk in compiled.chunks:
            if chunk is None:
                continue
            t = chunk.template
            for i in range(t.n):
                if t.cat[i] == int(NCat.LOAD) and t.ea[i]:
                    loads.append(int(t.ea[i]))
        statics_addr = program.get_class("Test").static_addr["s"]
        assert statics_addr in loads

    def test_code_cache_accounting(self):
        compiled, vm = _compile_main(lambda m: m.iconst(1) and None)
        assert vm.code_cache.used_bytes >= compiled.code_bytes > 0
        assert vm.jit.methods_compiled >= 1
        assert vm.jit.native_instructions_emitted > 0


class TestDeepStacksAndSpills:
    def test_deep_operand_stack_semantics(self):
        # Push 20 constants (beyond the 12 stack registers), sum them.
        def body(m):
            for i in range(20):
                m.iconst(i)
            for _ in range(19):
                m.iadd()
        assert eval_both_modes(body) == sum(range(20))

    def test_many_locals_semantics(self):
        def body(m):
            for i in range(1, 14):
                m.iconst(i).istore(i)
            m.iconst(0)
            for i in range(1, 14):
                m.iload(i).iadd()
        assert eval_both_modes(body) == sum(range(1, 14))

    def test_spilled_chunks_are_frame_relative(self):
        def body(m):
            for i in range(20):
                m.iconst(i)
            for _ in range(19):
                m.iadd()
        compiled, _vm = _compile_main(body)
        assert any(c is not None and c.ea_plan is not None
                   for c in compiled.chunks)


class TestInlining:
    def _getter_program(self):
        pb = ProgramBuilder("t", main_class="Main")
        holder = pb.cls("Holder")
        holder.field("v", "int")
        holder.method("<init>").return_()
        get = holder.method("get", returns=True)
        get.aload(0).getfield("Holder", "v").ireturn()
        m = pb.cls("Main").method("main", static=True)
        m.new("Holder").dup()
        m.invokespecial("Holder", "<init>", 0)
        m.astore(1)
        m.aload(1).iconst(41).putfield("Holder", "v")
        m.aload(1).invokevirtual("Holder", "get", 0, True)
        m.iconst(1).iadd().istore(2)
        m.getstatic("java/lang/System", "out").iload(2)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        return pb

    def test_monomorphic_getter_inlined(self):
        result = run_program(self._getter_program(), mode="jit")
        assert result.stdout == ["42"]
        assert result.inlined_sites >= 1

    def test_inline_disabled_flag(self):
        program = self._getter_program().build()
        vm = JavaVM(program, strategy=CompileOnFirstUse(), inline=False)
        result = vm.run()
        assert result.stdout == ["42"]
        assert result.inlined_sites == 0

    def test_polymorphic_target_not_inlined(self):
        pb = ProgramBuilder("t", main_class="Main")
        base = pb.cls("B")
        base.method("<init>").return_()
        bm = base.method("f", returns=True)
        bm.iconst(1).ireturn()
        sub = pb.cls("S", super_name="B")
        sub.method("<init>").return_()
        sm = sub.method("f", returns=True)
        sm.iconst(2).ireturn()
        m = pb.cls("Main").method("main", static=True)
        m.new("S").dup().invokespecial("S", "<init>", 0)
        m.invokevirtual("B", "f", 0, True).istore(1)
        m.getstatic("java/lang/System", "out").iload(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        program = pb.build()
        hierarchy = ClassHierarchy(program)
        assert hierarchy.unique_target("B", "f") is None
        result = run_program(pb, mode="jit")
        assert result.stdout == ["2"]

    def test_cha_unique_target(self):
        pb = ProgramBuilder("t", main_class="Main")
        base = pb.cls("B")
        bm = base.method("f", returns=True)
        bm.iconst(1).ireturn()
        pb.cls("S", super_name="B")
        pb.cls("Main").method("main", static=True).return_()
        program = pb.build()
        hierarchy = ClassHierarchy(program)
        target = hierarchy.unique_target("B", "f")
        assert target is program.get_class("B").methods["f"]

    def test_is_inlinable_filters(self):
        pb = ProgramBuilder("t", main_class="M")
        cb = pb.cls("M")
        tiny = cb.method("tiny", returns=True)
        tiny.iconst(1).ireturn()
        loopy = cb.method("loopy", returns=True)
        top = loopy.new_label()
        loopy.bind(top)
        loopy.iconst(1).ifne(top)
        loopy.iconst(0).ireturn()
        sync = cb.method("sync", returns=True, synchronized=True)
        sync.iconst(1).ireturn()
        cb.method("main", static=True).return_()
        program = pb.build()
        methods = program.get_class("M").methods
        assert is_inlinable(methods["tiny"])
        assert not is_inlinable(methods["loopy"])   # has a branch
        assert not is_inlinable(methods["sync"])    # synchronized


class TestTranslateTrace:
    def test_translation_charged_to_trace(self):
        pb = expr_main(lambda m: m.iconst(1) and None)
        program = pb.build()
        vm = JavaVM(program, strategy=CompileOnFirstUse(), record=True)
        result = vm.run()
        assert result.translate_cycles > 0
        trace = result.trace
        xl = trace.select(trace.in_translate)
        assert xl.n > 0
        # install stores target the code cache
        installs = xl.select(xl.is_write)
        assert (installs.ea >= CODE_CACHE_BASE).sum() > 0

    def test_translate_cost_scales_with_method_size(self):
        small, _ = _compile_main(lambda m: m.iconst(1) and None)
        def big(m):
            for i in range(40):
                m.iconst(i)
            for _ in range(39):
                m.iadd()
        large, _ = _compile_main(big)
        assert large.translate_cycles > small.translate_cycles
