"""Scalar-vs-vector kernel equivalence (property-based).

The vectorized replay kernels must be *bit-identical* to the scalar
reference loops they replace — every statistics field, every piece of
persistent simulator state, on adversarial streams hypothesis invents:
mixed read/write streams, statistic groups, miss windows, victim
buffers, write-no-allocate caches, multi-segment state continuation,
and mixed-kernel interleaving where scalar and vector calls share one
simulator instance.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.branch.predictors import (
    PREDICTORS,
    BranchSimResult,
    DirectionPredictor,
    run_predictor,
)
from repro.arch.caches import CacheConfig, CacheSim
from repro.arch.kernels import ENV_VAR, active_kernel
from repro.arch.pipeline import PipelineConfig, simulate_pipeline
from repro.native.nisa import FLAG_TAKEN, FLAG_WRITE, NCat
from repro.native.trace import Trace

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- strategies --------------------------------------------------------

geometries = st.tuples(
    st.sampled_from([256, 512, 1024, 4096]),   # size
    st.sampled_from([16, 32]),                  # block
    st.sampled_from([1, 2, 4]),                 # assoc
    st.booleans(),                              # write_allocate
    st.sampled_from([0, 2, 4]),                 # victim_entries
)

# Few distinct blocks relative to the cache → constant conflict churn.
addr_streams = st.lists(
    st.tuples(st.integers(0, 1 << 13), st.booleans()),
    min_size=0, max_size=300,
)


def _build_sim(geometry) -> CacheSim:
    size, block, assoc, wa, victim = geometry
    return CacheSim(CacheConfig(size, block, assoc, write_allocate=wa,
                                victim_entries=victim))


def _split(stream, cuts):
    """Partition ``stream`` at the (sorted, deduplicated) cut points."""
    points = sorted({min(c, len(stream)) for c in cuts})
    segments, start = [], 0
    for p in points + [len(stream)]:
        segments.append(stream[start:p])
        start = p
    return segments


def _run(sim, stream, kernel, n_groups=1, window=0):
    if not stream:
        addrs = np.zeros(0, dtype=np.int64)
        writes = np.zeros(0, dtype=bool)
    else:
        addrs = np.asarray([a for a, _ in stream], dtype=np.int64)
        writes = np.asarray([w for _, w in stream], dtype=bool)
    groups = (addrs % n_groups).astype(np.int64) if n_groups > 1 else None
    return sim.run(addrs, writes=writes, groups=groups, n_groups=n_groups,
                   window=window, kernel=kernel)


def _assert_stats_equal(a, b, context=""):
    for field in ("refs", "misses", "victim_hits", "write_refs",
                  "write_misses", "compulsory", "window_misses",
                  "window_refs"):
        assert np.array_equal(getattr(a, field), getattr(b, field)), (
            f"{context}: CacheStats.{field} diverges: "
            f"{getattr(a, field)} != {getattr(b, field)}"
        )


def _assert_state_equal(a: CacheSim, b: CacheSim, context=""):
    assert a._clock == b._clock, context
    assert a._seen_blocks == b._seen_blocks, context
    assert a._victim == b._victim, context
    assert a._sets == b._sets, context


# -- cache kernels -----------------------------------------------------

class TestCacheParity:
    @RELAXED
    @given(geometry=geometries, stream=addr_streams,
           n_groups=st.sampled_from([1, 2, 3]),
           window=st.sampled_from([0, 7, 64]))
    def test_single_run(self, geometry, stream, n_groups, window):
        scalar_sim = _build_sim(geometry)
        vector_sim = _build_sim(geometry)
        s = _run(scalar_sim, stream, "scalar", n_groups, window)
        v = _run(vector_sim, stream, "vector", n_groups, window)
        _assert_stats_equal(s, v, f"{geometry}")
        _assert_state_equal(scalar_sim, vector_sim, f"{geometry}")

    @RELAXED
    @given(geometry=geometries, stream=addr_streams,
           cuts=st.lists(st.integers(0, 300), max_size=3))
    def test_segmented_state_continuation(self, geometry, stream, cuts):
        """Per-segment runs must leave identical persistent state, so a
        later segment classifies identically under either kernel."""
        scalar_sim = _build_sim(geometry)
        vector_sim = _build_sim(geometry)
        for segment in _split(stream, cuts):
            s = _run(scalar_sim, segment, "scalar")
            v = _run(vector_sim, segment, "vector")
            _assert_stats_equal(s, v, f"{geometry} segment")
            _assert_state_equal(scalar_sim, vector_sim, f"{geometry}")

    @RELAXED
    @given(geometry=geometries, stream=addr_streams,
           cuts=st.lists(st.integers(0, 300), max_size=3),
           picks=st.lists(st.booleans(), min_size=4, max_size=4))
    def test_mixed_kernel_interleave(self, geometry, stream, cuts, picks):
        """Alternating kernels over one simulator equals all-scalar."""
        reference = _build_sim(geometry)
        mixed = _build_sim(geometry)
        for i, segment in enumerate(_split(stream, cuts)):
            s = _run(reference, segment, "scalar")
            m = _run(mixed, segment,
                     "vector" if picks[i % len(picks)] else "scalar")
            _assert_stats_equal(s, m, f"{geometry} segment {i}")
        _assert_state_equal(reference, mixed, f"{geometry}")


# -- branch kernels ----------------------------------------------------

_TRANSFER_CATS = tuple(int(c) for c in (
    NCat.BRANCH, NCat.JUMP, NCat.IJUMP, NCat.CALL, NCat.ICALL, NCat.RET,
))

transfer_streams = st.lists(
    st.tuples(
        st.integers(0, 63),                    # pc pool (aligned below)
        st.sampled_from(_TRANSFER_CATS),
        st.booleans(),                         # taken
        st.integers(0, 63),                    # target pool
    ),
    min_size=0, max_size=250,
)


class StutterPredictor(DirectionPredictor):
    """Custom predictor with no predict_batch override: exercises the
    generic per-event fallback of the vector kernel."""

    name = "stutter"

    def __init__(self) -> None:
        self._last = True

    def predict(self, pc: int) -> bool:
        return self._last

    def update(self, pc: int, taken: bool) -> None:
        self._last = bool(taken)


_BRANCH_FACTORIES = dict(PREDICTORS, stutter=StutterPredictor)


def _assert_branch_equal(a: BranchSimResult, b: BranchSimResult, context=""):
    for field in ("transfers", "conditional", "cond_mispredicts",
                  "target_mispredicts", "indirect", "indirect_mispredicts"):
        assert getattr(a, field) == getattr(b, field), (
            f"{context}: BranchSimResult.{field} diverges: "
            f"{getattr(a, field)} != {getattr(b, field)}"
        )


class TestBranchParity:
    @RELAXED
    @given(stream=transfer_streams,
           name=st.sampled_from(sorted(_BRANCH_FACTORIES)),
           btb_entries=st.sampled_from([4, 16, 1024]),
           use_ras=st.booleans())
    def test_run_predictor(self, stream, name, btb_entries, use_ras):
        pcs = np.asarray([4 * pc for pc, _, _, _ in stream], dtype=np.int64)
        cats = np.asarray([c for _, c, _, _ in stream], dtype=np.int16)
        takens = np.asarray([t for _, _, t, _ in stream], dtype=bool)
        targets = np.asarray([4 * t for _, _, _, t in stream],
                             dtype=np.int64)
        factory = _BRANCH_FACTORIES[name]
        s = run_predictor(factory(), pcs, cats, takens, targets,
                          btb_entries=btb_entries, use_ras=use_ras,
                          kernel="scalar")
        v = run_predictor(factory(), pcs, cats, takens, targets,
                          btb_entries=btb_entries, use_ras=use_ras,
                          kernel="vector")
        _assert_branch_equal(s, v, f"{name} btb={btb_entries} ras={use_ras}")


# -- pipeline kernel ---------------------------------------------------

_PIPE_CATS = tuple(int(c) for c in (
    NCat.IALU, NCat.IMUL, NCat.FALU, NCat.LOAD, NCat.STORE,
    NCat.BRANCH, NCat.JUMP, NCat.IJUMP, NCat.CALL, NCat.ICALL, NCat.RET,
))

pipe_events = st.lists(
    st.tuples(
        st.sampled_from(_PIPE_CATS),
        st.integers(0, 255),      # ea pool (scaled below)
        st.booleans(),            # taken
        st.integers(0, 63),       # target pool
        st.integers(-1, 15),      # dst
        st.integers(-1, 15),      # src1
        st.integers(-1, 15),      # src2
    ),
    min_size=0, max_size=250,
)

pipe_configs = st.builds(
    PipelineConfig,
    width=st.sampled_from([1, 2, 4]),
    rob_size=st.sampled_from([8, 32]),
    mispredict_penalty=st.sampled_from([2, 4]),
    icache_size=st.sampled_from([1024, 4096]),
    dcache_size=st.sampled_from([1024, 4096]),
    block=st.sampled_from([16, 32]),
    icache_assoc=st.sampled_from([1, 2]),
    dcache_assoc=st.sampled_from([1, 4]),
)


def _build_trace(events) -> Trace:
    n = len(events)
    LOAD, STORE = int(NCat.LOAD), int(NCat.STORE)
    pc = np.arange(n, dtype=np.int64) * 4
    cat = np.asarray([e[0] for e in events], dtype=np.int16)
    mem = (cat == LOAD) | (cat == STORE)
    ea = np.where(mem, np.asarray([e[1] * 8 for e in events],
                                  dtype=np.int64), 0)
    flags = np.where(cat == STORE, FLAG_WRITE, 0)
    flags = flags | np.where(
        np.asarray([e[2] for e in events], dtype=bool), FLAG_TAKEN, 0)
    target = np.asarray([e[3] * 4 for e in events], dtype=np.int64)
    dst = np.asarray([e[4] for e in events], dtype=np.int16)
    src1 = np.asarray([e[5] for e in events], dtype=np.int16)
    src2 = np.asarray([e[6] for e in events], dtype=np.int16)
    return Trace.from_columns(pc=pc, cat=cat, ea=ea, flags=flags.astype(np.int16),
                              target=target, dst=dst, src1=src1, src2=src2)


class TestPipelineParity:
    @RELAXED
    @given(events=pipe_events, config=pipe_configs)
    def test_simulate_pipeline(self, events, config):
        trace = _build_trace(events)
        s = simulate_pipeline(trace, config, kernel="scalar")
        v = simulate_pipeline(trace, config, kernel="vector")
        for field in ("instructions", "cycles", "mispredicts",
                      "imisses", "dmisses"):
            assert getattr(s, field) == getattr(v, field), (
                f"PipelineResult.{field} diverges: "
                f"{getattr(s, field)} != {getattr(v, field)}"
            )


# -- kernel selection --------------------------------------------------

class TestKernelSelection:
    def test_env_and_override(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_kernel(None) == "vector"
        monkeypatch.setenv(ENV_VAR, "scalar")
        assert active_kernel(None) == "scalar"
        assert active_kernel("vector") == "vector"
        with pytest.raises(ValueError):
            active_kernel("simd")
        monkeypatch.setenv(ENV_VAR, "turbo")
        with pytest.raises(ValueError):
            active_kernel(None)


# -- whole experiments -------------------------------------------------

class TestExperimentParity:
    @pytest.mark.parametrize("exp_id", ["fig3", "table2"])
    def test_experiment_identical_under_both_kernels(
            self, exp_id, tmp_path, monkeypatch):
        from repro.analysis.replay import clear_replay_memo
        from repro.experiments.base import get_experiment

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        fn = get_experiment(exp_id)
        results = {}
        for kernel in ("scalar", "vector"):
            monkeypatch.setenv(ENV_VAR, kernel)
            clear_replay_memo()
            results[kernel] = fn(scale="s0", benchmarks=["hello"]).to_dict()
        assert results["scalar"] == results["vector"]


# -- mmap trace archives -----------------------------------------------

class TestTraceNpyFormat:
    def _trace(self) -> Trace:
        rng = np.random.default_rng(7)
        n = 64
        return Trace.from_columns(
            pc=rng.integers(0, 1 << 20, n) * 4,
            cat=rng.integers(0, 15, n),
            ea=rng.integers(0, 1 << 16, n),
            flags=rng.integers(0, 8, n),
            target=rng.integers(0, 1 << 20, n) * 4,
            dst=rng.integers(-1, 16, n),
            src1=rng.integers(-1, 16, n),
            src2=rng.integers(-1, 16, n),
        )

    def test_npy_roundtrip_is_mapped(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "t.npy")
        trace.save(path)
        loaded = Trace.load(path)
        assert isinstance(
            loaded.pc if loaded.pc.base is None else loaded.pc.base,
            np.memmap)
        for column in ("pc", "cat", "ea", "flags", "target",
                       "dst", "src1", "src2"):
            assert np.array_equal(getattr(trace, column),
                                  getattr(loaded, column)), column

    def test_npz_roundtrip_still_works(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "t.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert np.array_equal(trace.pc, loaded.pc)

    def test_npy_rejects_foreign_arrays(self, tmp_path):
        path = str(tmp_path / "bogus.npy")
        np.save(path, np.zeros(10, dtype=np.int64))
        with pytest.raises(ValueError):
            Trace.load(path)
