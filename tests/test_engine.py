"""VM engine: results, footprint, GC under the VM, strategy plumbing."""

import pytest

from repro.isa import ArrayType, ProgramBuilder
from repro.vm import (
    CompileOnFirstUse,
    CounterThreshold,
    InterpretOnly,
    JavaVM,
    OracleStrategy,
)

from helpers import expr_main, run_program


class TestVMResult:
    def test_result_fields_consistent(self):
        result = run_program(expr_main(lambda m: m.iconst(1) and None),
                             mode="jit")
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.execute_cycles == result.cycles - result.translate_cycles
        assert result.bytecodes_executed > 0
        assert result.classes_loaded > 0
        assert int(result.category_counts.sum()) == result.instructions

    def test_trace_none_without_recording(self):
        result = run_program(expr_main(lambda m: m.iconst(1) and None))
        assert result.trace is None

    def test_trace_matches_counts_when_recording(self):
        result = run_program(expr_main(lambda m: m.iconst(1) and None),
                             record=True)
        assert result.trace.n == result.instructions
        assert result.trace.base_cycles() == result.cycles

    def test_counting_and_recording_agree(self):
        pb = expr_main(lambda m: m.iconst(5).iconst(6).imul() and None)
        counted = run_program(pb, mode="jit")
        pb2 = expr_main(lambda m: m.iconst(5).iconst(6).imul() and None)
        recorded = run_program(pb2, mode="jit", record=True)
        assert counted.cycles == recorded.cycles
        assert counted.instructions == recorded.instructions


class TestFootprint:
    def test_components_positive(self):
        result = run_program(expr_main(lambda m: m.iconst(1) and None),
                             mode="jit")
        fp = result.footprint
        for key in ("vm_metadata", "bytecode", "heap_peak", "stacks",
                    "interp_text", "code_cache"):
            assert fp[key] > 0, key
        assert fp["jit_total"] > fp["interpreter_total"]

    def test_interp_mode_has_no_code_cache(self):
        result = run_program(expr_main(lambda m: m.iconst(1) and None),
                             mode="interp")
        assert result.footprint["code_cache"] == 0
        assert result.methods_compiled == 0


class TestGCUnderVM:
    def _alloc_loop(self, n):
        def body(m):
            loop = m.new_label()
            done = m.new_label()
            m.iconst(0).istore(1)
            m.bind(loop)
            m.iload(1).iconst(n).if_icmpge(done)
            # allocate garbage each iteration
            m.iconst(64).newarray(ArrayType.INT).pop()
            m.iinc(1, 1)
            m.goto(loop)
            m.bind(done)
            m.iload(1)
        return expr_main(body)

    def test_collector_reclaims_garbage(self):
        program = self._alloc_loop(500).build()
        vm = JavaVM(program, strategy=InterpretOnly(), heap_limit=64 << 10)
        result = vm.run()
        assert result.stdout == ["500"]
        assert result.heap["gc_count"] >= 1
        assert result.heap["gc_freed_bytes"] > 0

    def test_live_data_survives_collection(self):
        def body(m):
            loop = m.new_label()
            done = m.new_label()
            m.iconst(32).newarray(ArrayType.INT).astore(2)   # keep alive
            m.aload(2).iconst(0).iconst(777).iastore()
            m.iconst(0).istore(1)
            m.bind(loop)
            m.iload(1).iconst(400).if_icmpge(done)
            m.iconst(64).newarray(ArrayType.INT).pop()
            m.iinc(1, 1)
            m.goto(loop)
            m.bind(done)
            m.aload(2).iconst(0).iaload()
        program = expr_main(body).build()
        vm = JavaVM(program, strategy=InterpretOnly(), heap_limit=64 << 10)
        result = vm.run()
        assert result.stdout == ["777"]
        assert result.heap["gc_count"] >= 1

    def test_gc_consistent_across_modes(self):
        outs = []
        for strategy in (InterpretOnly(), CompileOnFirstUse()):
            vm = JavaVM(self._alloc_loop(300).build(), strategy=strategy,
                        heap_limit=64 << 10)
            outs.append(vm.run().stdout)
        assert outs[0] == outs[1]


class TestStrategies:
    def _counting_program(self):
        pb = ProgramBuilder("t", main_class="Main")
        cb = pb.cls("Main")
        f = cb.method("f", argc=1, returns=True, static=True)
        f.iload(0).iconst(1).iadd().ireturn()
        m = cb.method("main", static=True)
        m.iconst(0).istore(1)
        for _ in range(10):
            m.iload(1).invokestatic("Main", "f", 1, True).istore(1)
        m.getstatic("java/lang/System", "out").iload(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        return pb.build()

    def test_counter_threshold_compiles_later(self):
        vm = JavaVM(self._counting_program(), strategy=CounterThreshold(5))
        result = vm.run()
        assert result.stdout == ["10"]
        prof = result.profiles["Main.f"]
        # interpreted 4 times, compiled from the 5th invocation
        assert prof["interp_cycles"] > 0
        assert prof["translate_cycles"] > 0

    def test_oracle_strategy_honours_set(self):
        vm = JavaVM(self._counting_program(),
                    strategy=OracleStrategy({"Main.f"}))
        result = vm.run()
        prof = result.profiles["Main.f"]
        assert prof["translate_cycles"] > 0
        main_prof = result.profiles["Main.main"]
        assert main_prof["translate_cycles"] == 0
        assert main_prof["interp_cycles"] > 0

    def test_methods_compiled_once(self):
        vm = JavaVM(self._counting_program(), strategy=CompileOnFirstUse())
        result = vm.run()
        assert result.methods_compiled == len(
            {k for k, p in result.profiles.items()
             if p["translate_cycles"] > 0}
        )


class TestBootErrors:
    def test_main_must_be_static(self):
        from repro.vm import VMError
        pb = ProgramBuilder("t", main_class="Main")
        pb.cls("Main").method("main").return_()
        vm = JavaVM(pb.build())
        with pytest.raises(VMError, match="static"):
            vm.run()

    def test_missing_main_class(self):
        from repro.vm.classloader import ClassLoadError
        pb = ProgramBuilder("t", main_class="Nope")
        pb.cls("Main").method("main", static=True).return_()
        vm = JavaVM(pb.build())
        with pytest.raises(ClassLoadError):
            vm.run()

    def test_stdout_captured_in_order(self):
        def body(m):
            for text in ("one", "two", "three"):
                m.getstatic("java/lang/System", "out")
                m.ldc_str(text)
                m.invokevirtual("java/io/PrintStream", "println", 1, False)
            m.iconst(0)
        result = run_program(expr_main(body))
        assert result.stdout == ["one", "two", "three", "0"]
