"""Hardened scheduler and cache: retry/backoff, pool replacement,
serial fallback, stale-lock breaking, and the pre-warm failure exit."""

from __future__ import annotations

import os
import threading

import pytest

from repro import faults
from repro.analysis import cache
from repro.analysis.parallel import (
    RetryPolicy,
    run_jobs,
    trace_job,
    trace_jobs,
)
from repro.faults.plan import _dead_pid


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.deactivate()
    faults.LEDGER.reset()
    yield
    faults.deactivate()
    faults.LEDGER.reset()


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(5) == pytest.approx(0.3)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_RETRIES", "4")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "12.5")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 5
        assert policy.job_timeout == 12.5
        monkeypatch.delenv("REPRO_JOB_RETRIES")
        monkeypatch.delenv("REPRO_JOB_TIMEOUT")
        assert RetryPolicy.from_env() == RetryPolicy()


class TestInlineRetry:
    def test_transient_failure_retried_to_success(self, tmp_path,
                                                  monkeypatch):
        from repro.analysis import runner
        real = runner.get_trace
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient infrastructure failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner, "get_trace", flaky)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.001)
        summary = run_jobs([trace_job("hello", "s0", "interp")],
                           max_workers=1, cache_dir=str(tmp_path),
                           policy=policy)
        assert not summary.errors
        assert summary.retries == 2
        outcome = summary.outcomes[0]
        assert outcome["attempts"] == 3
        assert outcome["recovery"] == "retry"
        assert faults.LEDGER.count("recovered", "retry") == 1
        assert faults.LEDGER.count("observed", "job_error") == 2

    def test_permanent_failure_exhausts_attempts(self, tmp_path):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.001)
        summary = run_jobs([trace_job("no-such-workload", "s0")],
                           max_workers=1, cache_dir=str(tmp_path),
                           policy=policy)
        assert len(summary.errors) == 1
        assert summary.errors[0]["attempts"] == 2
        assert summary.retries == 1


@pytest.mark.slow
class TestPooledResilience:
    """Real spawn pools under injected worker faults."""

    def test_worker_kill_recovers_and_completes(self, tmp_path):
        faults.activate("worker-kill@1;seed=7")
        jobs = trace_jobs(("hello",), "s0")
        summary = run_jobs(jobs, max_workers=2, cache_dir=str(tmp_path),
                           policy=RetryPolicy(backoff_base=0.001))
        assert not summary.errors, summary.errors
        assert summary.pool_replacements >= 1
        assert faults.LEDGER.count("injected", "worker-kill") == 1
        assert faults.LEDGER.total("recovered") >= 1
        # the cache is complete despite the crash: warm rerun is all hits
        faults.deactivate()
        warm = run_jobs(jobs, max_workers=1, cache_dir=str(tmp_path))
        assert warm.stats.hits == len(jobs) and warm.stats.misses == 0

    def test_worker_raise_falls_back_to_serial(self, tmp_path):
        faults.activate("worker-raise@1:times=5")
        jobs = trace_jobs(("hello",), "s0")
        summary = run_jobs(jobs, max_workers=2, cache_dir=str(tmp_path),
                           policy=RetryPolicy(max_attempts=2,
                                              backoff_base=0.001))
        assert not summary.errors, summary.errors
        assert summary.serial_recoveries == 1
        (outcome,) = [o for o in summary.outcomes
                      if o["recovery"] == "serial"]
        assert outcome["attempts"] == 3  # two pool attempts + serial
        assert faults.LEDGER.count("recovered", "serial") == 1

    def test_worker_hang_hits_job_timeout(self, tmp_path):
        faults.activate("worker-hang@1:seconds=30")
        jobs = trace_jobs(("hello",), "s0")
        summary = run_jobs(jobs, max_workers=2, cache_dir=str(tmp_path),
                           policy=RetryPolicy(job_timeout=2.0,
                                              backoff_base=0.001))
        assert not summary.errors, summary.errors
        assert faults.LEDGER.count("observed", "job_timeout") >= 1
        assert summary.pool_replacements >= 1

    def test_replacement_budget_spent_drains_serially(self, tmp_path):
        faults.activate("worker-kill@1;seed=7")
        jobs = trace_jobs(("hello",), "s0")
        summary = run_jobs(jobs, max_workers=2, cache_dir=str(tmp_path),
                           policy=RetryPolicy(max_pool_replacements=0,
                                              backoff_base=0.001))
        assert not summary.errors, summary.errors
        assert summary.serial_recoveries >= 1
        assert faults.LEDGER.count("recovered", "serial") >= 1

    def test_unrecoverable_job_reports_error(self, tmp_path):
        jobs = [trace_job("no-such-workload", "s0"),
                trace_job("hello", "s0", "interp")]
        summary = run_jobs(jobs, max_workers=2, cache_dir=str(tmp_path),
                           policy=RetryPolicy(max_attempts=2,
                                              backoff_base=0.001))
        assert len(summary.errors) == 1
        assert "no-such-workload" in summary.errors[0]["error"]
        # two pool attempts plus the failed serial fallback
        assert summary.errors[0]["attempts"] == 3
        # the healthy neighbour still landed
        assert len(summary.outcomes) == 2


@pytest.mark.slow
class TestPrewarmFailureExit:
    def test_prewarm_errors_yield_nonzero_exit(self, tmp_path, capsys,
                                               monkeypatch):
        """A pre-warm job failing beyond all recovery must not abort the
        run — experiments still render — but the exit code reports it."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", "")
        monkeypatch.setenv("REPRO_JOB_RETRIES", "0")
        from repro.experiments import cli
        monkeypatch.setattr(
            cli, "collect_jobs",
            lambda *a, **k: [trace_job("no-such-workload", "s0")])
        out_json = str(tmp_path / "out.json")
        status = cli.main(["fig3", "--scale", "s0", "--benchmarks", "db",
                           "--jobs", "2",
                           "--cache-dir", str(tmp_path / "c"),
                           "--json", out_json])
        assert status == 1
        out = capsys.readouterr()
        assert "pre-warm error" in out.err
        # the rendering pass recomputed inline and still delivered
        assert "(fig3 completed" in out.out
        assert os.path.exists(out_json)


class TestStaleLockRecovery:
    def test_lock_left_by_dead_process_is_broken(self, tmp_path):
        path = str(tmp_path / "entry.pkl")
        with open(path + ".lock", "w") as fh:
            fh.write(str(_dead_pid()))
        before = cache.STATS.snapshot()
        with cache.FileLock(path, timeout=5.0):
            pass
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        assert delta["locks_broken"] == 1
        assert faults.LEDGER.count("recovered", "lock_break") == 1
        assert not os.path.exists(path + ".lock")

    def test_store_lands_exactly_once_under_contention(self, tmp_path):
        """Concurrent contenders racing a stale lock: the lock is
        broken, every store completes, and exactly one verified entry
        remains."""
        cache_dir = tmp_path / "runs"
        cache_dir.mkdir()
        path = str(cache_dir / "entry.pkl")
        with open(path + ".lock", "w") as fh:
            fh.write(str(_dead_pid()))
        payload = {"rows": list(range(64))}
        before = cache.STATS.snapshot()
        errors = []

        def contend():
            try:
                cache.store_run(path, payload)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=contend) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        assert delta["locks_broken"] >= 1
        assert delta["stores"] == 4
        entries = [f for f in os.listdir(cache_dir)
                   if not f.endswith((".lock", ".sha256"))]
        assert entries == ["entry.pkl"]
        assert not os.path.exists(path + ".lock")
        assert cache.load_run(path) == payload

    def test_live_owner_is_waited_for_not_broken(self, tmp_path):
        path = str(tmp_path / "entry.pkl")
        held = cache.FileLock(path, timeout=10.0)
        held.__enter__()
        before = cache.STATS.snapshot()
        acquired = threading.Event()

        def waiter():
            with cache.FileLock(path, timeout=10.0):
                acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        try:
            assert not acquired.wait(0.15)  # still held: waiter blocks
        finally:
            held.__exit__(None, None, None)
        assert acquired.wait(10)
        thread.join(timeout=10)
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        assert delta["locks_broken"] == 0

    def test_live_owner_forced_break_after_timeout(self, tmp_path):
        path = str(tmp_path / "entry.pkl")
        with open(path + ".lock", "w") as fh:
            fh.write(str(os.getpid()))  # alive, and never releasing
        before = cache.STATS.snapshot()
        with cache.FileLock(path, timeout=0.2):
            pass
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        assert delta["locks_broken"] == 1
        assert faults.LEDGER.count("recovered", "lock_break_forced") == 1

    def test_exactly_one_contender_wins_the_break(self, tmp_path):
        """Many waiters conclude "stale" about the same dead-owner lock
        at once; the rename commit point lets exactly one win."""
        import time as _time
        path = str(tmp_path / "entry.pkl")
        with open(path + ".lock", "w") as fh:
            fh.write(str(_dead_pid()))
        n = 8
        barrier = threading.Barrier(n)
        wins = []

        def contend():
            lock = cache.FileLock(path, timeout=10.0)
            deadline = _time.perf_counter() + 10.0
            barrier.wait()
            wins.append(lock._break_if_stale(deadline))

        threads = [threading.Thread(target=contend) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert sum(wins) == 1, wins
        assert not os.path.exists(path + ".lock")
        # no grave droppings left behind either
        assert os.listdir(tmp_path) == []

    def test_fresh_live_lock_survives_slow_breaker(self, tmp_path,
                                                   monkeypatch):
        """The race the rename closes: a slow waiter probed the dead
        owner, got descheduled, and meanwhile a faster waiter broke the
        lock and re-acquired it.  The slow waiter's break must NOT
        remove the fresh live lock — it captures it, notices the owner
        changed and is alive, and puts it back intact."""
        import time as _time
        path = str(tmp_path / "entry.pkl")
        lock_path = path + ".lock"
        # On disk now: the fast waiter's fresh lock (a live pid).
        with open(lock_path, "w") as fh:
            fh.write(str(os.getpid()))
        slow = cache.FileLock(path, timeout=10.0)
        # The slow waiter still acts on its pre-break probe result.
        monkeypatch.setattr(slow, "_owner_pid", lambda: _dead_pid())
        before = cache.STATS.snapshot()
        assert slow._break_if_stale(_time.perf_counter() + 10.0) is False
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        assert delta["locks_broken"] == 0
        # the live lock is back, same owner, and nothing else remains
        with open(lock_path) as fh:
            assert int(fh.read()) == os.getpid()
        assert os.listdir(tmp_path) == [os.path.basename(lock_path)]

    def test_unreadable_lock_broken_after_grace(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setattr(cache, "LOCK_UNREADABLE_GRACE", 0.05)
        path = str(tmp_path / "entry.pkl")
        with open(path + ".lock", "w") as fh:
            fh.write("not-a-pid")
        with cache.FileLock(path, timeout=5.0):
            pass
        assert faults.LEDGER.count("recovered", "lock_break") == 1


class TestQuarantine:
    def test_corrupt_run_archive_quarantined_and_recomputed(self,
                                                            tmp_path):
        from repro.analysis.runner import run_vm
        cache_dir = str(tmp_path)
        run_vm("hello", scale="s0", mode="interp", cache_dir=cache_dir)
        runs = os.path.join(cache_dir, "runs")
        (entry,) = [f for f in os.listdir(runs) if f.endswith(".pkl")]
        path = os.path.join(runs, entry)
        with open(path, "wb") as fh:
            fh.write(b"\x80garbage")  # digest mismatch
        before = cache.STATS.snapshot()
        again = run_vm("hello", scale="s0", mode="interp",
                       cache_dir=cache_dir)
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        assert delta["corrupt"] == 1
        assert delta["quarantined"] == 1
        assert again is not None  # recomputed fine
        qdir = os.path.join(cache_dir, "quarantine")
        assert os.listdir(qdir) == [entry]
        assert faults.LEDGER.count("recovered", "quarantine") == 1
        # pruning clears the corpse
        assert cache.prune(cache_dir) >= 1
        assert not os.listdir(qdir)
