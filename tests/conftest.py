"""Test configuration: make tests/ importable and keep runs fast."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

# Keep trace archives out of the repo during tests.
os.environ.setdefault("REPRO_TRACE_CACHE", "")
