"""Textual assembler."""

import pytest

from repro.isa.asm import AsmError, assemble, list_method
from repro.vm import CompileOnFirstUse, InterpretOnly, JavaVM

COUNTER = """
.class demo/Main
.method main static
    iconst 0
    istore 1
loop:
    iload 1
    iconst 10
    if_icmpge done
    iinc 1 1
    goto loop
done:
    getstatic java/lang/System out
    iload 1
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
"""


def _run(program, mode="interp"):
    strategy = InterpretOnly() if mode == "interp" else CompileOnFirstUse()
    return JavaVM(program, strategy=strategy).run()


class TestAssemble:
    def test_counter_program_runs(self):
        program = assemble(COUNTER)
        assert _run(program).stdout == ["10"]
        assert _run(assemble(COUNTER), mode="jit").stdout == ["10"]

    def test_fields_and_objects(self):
        src = """
.class demo/Box
.field value int
.method <init>
    return
.end
.method get returns
    aload 0
    getfield demo/Box value
    ireturn
.end
.class demo/Main
.method main static
    new demo/Box
    dup
    invokespecial demo/Box <init> 0
    astore 1
    aload 1
    iconst 41
    putfield demo/Box value
    getstatic java/lang/System out
    aload 1
    invokevirtual demo/Box get 0 ret
    iconst 1
    iadd
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
"""
        program = assemble(src, main_class="demo/Main")
        assert _run(program).stdout == ["42"]

    def test_arrays_and_strings(self):
        src = """
.class demo/Main
.method main static
    iconst 3
    newarray int
    astore 1
    aload 1
    iconst 1
    iconst 99
    iastore
    getstatic java/lang/System out
    ldc_str "from asm"
    invokevirtual java/io/PrintStream println 1 void
    getstatic java/lang/System out
    aload 1
    iconst 1
    iaload
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
"""
        assert _run(assemble(src)).stdout == ["from asm", "99"]

    def test_method_args(self):
        src = """
.class demo/Main
.method add3 static returns argc=2
    iload 0
    iload 1
    iadd
    iconst 3
    iadd
    ireturn
.end
.method main static
    getstatic java/lang/System out
    iconst 10
    iconst 20
    invokestatic demo/Main add3 2 ret
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
"""
        assert _run(assemble(src)).stdout == ["33"]

    def test_comments_and_blank_lines(self):
        src = """
; leading comment
.class demo/Main

.method main static   ; trailing comment
    return            ; done
.end
"""
        program = assemble(src)
        assert "demo/Main" in program.classes


class TestAsmErrors:
    @pytest.mark.parametrize("src,fragment", [
        ("iconst 1", "outside a method"),
        (".method m\nreturn\n.end", ".method outside a class"),
        (".class A\n.method m static\n", "unterminated"),
        (".class A\n.method m bogus\nreturn\n.end", "unknown flags"),
        (".class A\n.method m static\nfrobnicate\nreturn\n.end",
         "unknown mnemonic"),
        (".class A\n.method m static\niconst\nreturn\n.end",
         "bad operands"),
        ("", "no .class"),
    ])
    def test_rejects(self, src, fragment):
        with pytest.raises(AsmError, match=fragment):
            assemble(src)

    def test_verifier_errors_surface(self):
        src = """
.class demo/Main
.method main static
    iadd
    return
.end
"""
        with pytest.raises(AsmError, match="verification"):
            assemble(src)


class TestListing:
    def test_lists_with_depths(self):
        program = assemble(COUNTER)
        text = list_method(program.entry_method)
        assert "demo/Main.main" in text
        assert "iconst" in text
        assert "[ 0]" in text


class TestSwitchSyntax:
    def test_tableswitch(self):
        src = """
.class demo/Main
.method pick static returns argc=1
    iload 0
    tableswitch 0 a b default other
a:
    iconst 10
    ireturn
b:
    iconst 20
    ireturn
other:
    iconst -1
    ireturn
.end
.method main static
    getstatic java/lang/System out
    iconst 1
    invokestatic demo/Main pick 1 ret
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
"""
        assert _run(assemble(src)).stdout == ["20"]

    def test_lookupswitch(self):
        src = """
.class demo/Main
.method main static
    getstatic java/lang/System out
    iconst 42
    lookupswitch 7:seven 42:answer default other
seven:
    iconst 1
    goto out
answer:
    iconst 2
    goto out
other:
    iconst 3
out:
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
"""
        assert _run(assemble(src)).stdout == ["2"]

    def test_switch_missing_default(self):
        src = """
.class demo/Main
.method main static
    iconst 0
    tableswitch 0 a
a:
    return
.end
"""
        with pytest.raises(AsmError, match="default"):
            assemble(src)
