"""Experiment harness: structure and key paper shapes at small scale.

These run the real experiment code paths on ``s0`` inputs and reduced
benchmark sets — fast enough for CI while still asserting the headline
qualitative results.  The full-scale numbers live in EXPERIMENTS.md and
the benchmark harness.
"""

import pytest

from repro.experiments import all_experiments, get_experiment
from repro.experiments.base import ExperimentResult

SMALL = ("db", "compress")


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(all_experiments())
        for required in [f"fig{i}" for i in range(1, 12)] + [
            "table1", "table2", "table3",
            "ablation_strategy", "ablation_install", "ablation_locks",
            "ablation_inline",
        ]:
            assert required in ids, required

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")


def _run(exp_id, benchmarks=SMALL):
    return get_experiment(exp_id)(scale="s0", benchmarks=benchmarks)


class TestResultProtocol:
    def test_render_and_dict(self):
        res = _run("table1")
        assert isinstance(res, ExperimentResult)
        text = res.render()
        assert res.exp_id in text
        assert res.paper_claim in text
        d = res.to_dict()
        assert d["rows"] and d["headers"]

    def test_row_map(self):
        res = _run("table1")
        assert set(res.row_map()) == set(SMALL)


class TestFig1:
    def test_shapes(self):
        res = get_experiment("fig1")(scale="s0",
                                     benchmarks=("hello", "db", "compress"))
        rows = res.row_map()
        # translate + execute sum to 1 (normalized to the JIT run)
        for r in rows.values():
            assert r[1] + r[2] == pytest.approx(1.0, abs=0.01)
        # db more translate-heavy than compress; compress reuses heavily
        assert rows["db"][1] > rows["compress"][1]
        # opt never loses to always-JIT
        assert all(r[4] <= 1.01 for r in rows.values())


class TestTable1:
    def test_jit_needs_more_memory(self):
        res = _run("table1")
        for row in res.rows:
            assert row[2] > row[1]            # jit KB > interp KB
            assert row[3] > 0                 # positive overhead %


class TestFig2:
    def test_modes_and_references_present(self):
        res = _run("fig2")
        labels = {r[0] for r in res.rows}
        assert {"java/interp", "java/jit", "C", "C++"} <= labels

    def test_interp_more_memory_ops_than_jit(self):
        rows = _run("fig2").row_map()
        assert rows["java/interp"][1] > rows["java/jit"][1]

    def test_interp_has_indirect_jumps_jit_does_not(self):
        rows = _run("fig2").row_map()
        assert rows["java/interp"][7] > 1.0
        assert rows["java/jit"][7] < 0.5


class TestTable2:
    def test_interp_predicts_worse(self):
        # compress is execution-dominated even at s0, so the mode
        # difference is visible at tiny scale.
        res = _run("table2", benchmarks=("compress",))
        by_mode = {r[1]: r for r in res.rows}
        gshare_col = res.headers.index("gshare")
        assert by_mode["interp"][gshare_col] > by_mode["jit"][gshare_col]

    def test_gshare_beats_single_2bit(self):
        res = _run("table2", benchmarks=("db",))
        h = res.headers
        for row in res.rows:
            assert row[h.index("gshare")] <= row[h.index("2bit")] + 1.0


class TestTable3:
    def test_interp_icache_near_perfect(self):
        res = _run("table3", benchmarks=("compress",))
        for row in res.rows:
            if row[1] == "interp":
                assert row[4] < 0.2   # I miss % well under 0.2

    def test_jit_fewer_data_refs(self):
        res = _run("table3", benchmarks=("compress",))
        by_mode = {r[1]: r for r in res.rows}
        assert by_mode["jit"][5] < by_mode["interp"][5]


class TestFig3:
    def test_jit_write_miss_share_substantial(self):
        res = _run("fig3", benchmarks=("db",))
        for row in res.rows:
            assert row[2] > 25.0   # JIT-mode write-miss share (%)


class TestFig5:
    def test_translate_attribution(self):
        res = _run("fig5", benchmarks=("db",))
        row = res.rows[0]
        assert row[1] > 0      # some I misses in translate
        assert row[2] > 10     # translate D-miss share
        assert row[3] > 40     # translate misses mostly writes


class TestFig9And10:
    def test_interp_ipc_higher(self):
        res = _run("fig9", benchmarks=("db",))
        by_mode = {r[1]: r for r in res.rows}
        # compare at 4-wide (column index 4)
        assert by_mode["interp"][4] >= by_mode["jit"][4] * 0.95

    def test_jit_faster_in_absolute_time(self):
        res = _run("fig10", benchmarks=("compress",))
        by_mode = {r[1]: r for r in res.rows}
        abs_col = res.headers.index("abs cycles @4-wide")
        assert by_mode["jit"][abs_col] < by_mode["interp"][abs_col]


class TestFig11:
    def test_case_a_dominates(self):
        res = _run("fig11", benchmarks=("db", "jack"))
        for row in res.rows:
            assert row[1] > 80.0

    def test_thin_lock_speedup(self):
        res = _run("fig11", benchmarks=("jack",))
        speedup_col = res.headers.index("thin-lock speedup")
        assert all(1.5 <= r[speedup_col] <= 6.0 for r in res.rows)


class TestAblations:
    def test_strategy_ablation_normalized(self):
        res = get_experiment("ablation_strategy")(
            scale="s0", benchmarks=("db",)
        )
        for row in res.rows:
            assert row[1] == 1.0                    # jit baseline
            assert row[-1] <= min(row[1:]) + 1e-9   # oracle minimal

    def test_install_ablation_reduces_misses(self):
        res = get_experiment("ablation_install")(
            scale="s0", benchmarks=("db",)
        )
        for row in res.rows:
            assert row[2] <= row[1]
            assert row[3] > 0

    def test_inline_ablation(self):
        res = get_experiment("ablation_inline")(
            scale="s0", benchmarks=("db",)
        )
        for row in res.rows:
            assert row[1] > 0                 # sites inlined
            assert row[3] >= row[4]           # indirect % off >= on


class TestCLI:
    def test_cli_single_experiment(self, capsys):
        from repro.experiments.cli import main
        status = main(["table1", "--scale", "s0", "--benchmarks", "db"])
        out = capsys.readouterr().out
        assert status == 0
        assert "table1" in out

    def test_cli_list(self, capsys):
        from repro.experiments.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table3" in out

    def test_cli_unknown(self, capsys):
        from repro.experiments.cli import main
        assert main(["figxx", "--scale", "s0"]) == 2

    def test_cli_json_dump(self, capsys, tmp_path):
        import json
        from repro.experiments.cli import main
        path = str(tmp_path / "out.json")
        assert main(["table1", "--scale", "s0", "--benchmarks", "db",
                     "--json", path]) == 0
        data = json.load(open(path))
        assert data[0]["id"] == "table1"
        assert data[0]["rows"]
