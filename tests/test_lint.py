"""The lint pipeline: adversarial corpus, clean workloads, golden
findings, CLI."""

import json
import os

import pytest

from repro.lint import lint_workload
from repro.lint.__main__ import main as lint_main
from repro.lint.corpus import CASES, check_corpus

_ROWS = {row["name"]: row for row in check_corpus()}


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_corpus_case_caught(case):
    row = _ROWS[case.name]
    assert row["ok"], (
        f"{case.name}: expected {case.expected_code} "
        f"(rejects={case.rejects}), observed {row['observed']} "
        f"(rejected={row['rejected']})"
    )


def test_corpus_rejects_at_least_ten_programs():
    assert sum(1 for c in CASES if c.rejects) >= 10


def test_corpus_codes_are_distinct_families():
    codes = {c.expected_code for c in CASES}
    assert any(c.startswith("RT") for c in codes)
    assert any(c.startswith("RM") for c in codes)
    assert any(c.startswith("RS") for c in codes)


@pytest.mark.parametrize("workload", ("compress", "db", "jack"))
def test_workloads_have_no_error_findings(workload):
    findings = lint_workload(workload, scale="s0")
    errors = [f for f in findings if f.severity == "error"]
    assert errors == []


def test_golden_file_matches_current_findings():
    path = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                        "repro", "lint", "golden_findings.json")
    with open(path) as fh:
        golden = json.load(fh)
    current = set()
    for name in golden["workloads"]:
        current.update(f.key for f in lint_workload(name,
                                                    scale=golden["scale"]))
    assert current == set(golden["findings"])


def test_cli_strict_selftest_passes():
    assert lint_main(["--strict", "--selftest", "--quiet",
                      "--workloads", "compress,jack"]) == 0


def test_cli_json_output(tmp_path):
    out = tmp_path / "findings.json"
    assert lint_main(["--quiet", "--workloads", "javac",
                      "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert any(f["code"] == "RL002" for f in data)
