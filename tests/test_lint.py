"""The lint pipeline: adversarial corpus, clean workloads, golden
findings, CLI."""

import json
import os

import pytest

from repro.lint import lint_asm_dir, lint_workload, prefixed
from repro.lint.__main__ import _collect, main as lint_main
from repro.lint.corpus import (CASES, RACE_CASES, check_corpus,
                               check_race_corpus)

_ROWS = {row["name"]: row for row in check_corpus()}
_RACE_ROWS = {row["name"]: row for row in check_race_corpus()}


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_corpus_case_caught(case):
    row = _ROWS[case.name]
    assert row["ok"], (
        f"{case.name}: expected {case.expected_code} "
        f"(rejects={case.rejects}), observed {row['observed']} "
        f"(rejected={row['rejected']})"
    )


def test_corpus_rejects_at_least_ten_programs():
    assert sum(1 for c in CASES if c.rejects) >= 10


def test_corpus_codes_are_distinct_families():
    codes = {c.expected_code for c in CASES}
    assert any(c.startswith("RT") for c in codes)
    assert any(c.startswith("RM") for c in codes)
    assert any(c.startswith("RS") for c in codes)


@pytest.mark.parametrize("workload", ("compress", "db", "jack"))
def test_workloads_have_no_error_findings(workload):
    findings = lint_workload(workload, scale="s0")
    errors = [f for f in findings if f.severity == "error"]
    assert errors == []


@pytest.mark.parametrize("case", RACE_CASES, ids=lambda c: c.name)
def test_race_corpus_case_caught(case):
    row = _RACE_ROWS[case.name]
    assert row["ok"], (
        f"{case.name}: expected {case.expected_code}, "
        f"observed {row['observed']}"
    )


def test_race_corpus_has_planted_and_clean_cases():
    codes = {c.expected_code for c in RACE_CASES}
    assert {"RC001", "RC002", "RC003", "race-free"} <= codes


def test_collect_dedups_repeated_workloads():
    # library methods are linted once per workload; the (code, method,
    # pc) key set must collapse the duplicates across workloads
    once = _collect(["compress"], "s0", lambda m: None)
    twice = _collect(["compress", "compress"], "s0", lambda m: None)
    assert [f.key for f in twice] == [f.key for f in once]


def test_golden_file_matches_current_findings():
    root = os.path.join(os.path.dirname(__file__), os.pardir)
    path = os.path.join(root, "src", "repro", "lint",
                        "golden_findings.json")
    with open(path) as fh:
        golden = json.load(fh)
    current = set()
    for name in golden["workloads"]:
        findings = lint_workload(name, scale=golden["scale"])
        if name.startswith("fuzz_"):
            findings = prefixed(findings, name)
        current.update(f.key for f in findings)
    for rel in golden.get("asm_dirs", ()):
        current.update(f.key for f in lint_asm_dir(os.path.join(root, rel)))
    assert current == set(golden["findings"])


def test_cli_strict_selftest_passes():
    assert lint_main(["--strict", "--selftest", "--quiet",
                      "--workloads", "compress,jack"]) == 0


def test_cli_json_output(tmp_path):
    out = tmp_path / "findings.json"
    assert lint_main(["--quiet", "--workloads", "javac",
                      "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert any(f["code"] == "RL002" for f in data)


def test_cli_sarif_output(tmp_path):
    out = tmp_path / "findings.sarif"
    assert lint_main(["--quiet", "--workloads", "mtrt",
                      "--format", "sarif", "--output", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "RC005" in rules
    assert any(r["ruleId"] == "RC005" and r["level"] == "note"
               for r in run["results"])
