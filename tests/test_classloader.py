"""Class loading: laziness, layout, resolution, address assignment."""

import pytest

from repro.isa import ProgramBuilder
from repro.native.layout import BYTECODE_BASE, STATICS_BASE, VM_DATA_BASE
from repro.native.trace import CountingSink
from repro.vm import InterpretOnly, JavaVM
from repro.vm.classloader import ClassLoadError


def _program_with_hierarchy():
    pb = ProgramBuilder("t", main_class="Main")
    base = pb.cls("Base")
    base.field("a", "int")
    base.method("<init>").return_()
    sub = pb.cls("Sub", super_name="Base")
    sub.field("b", "float")
    sub.field("c", "ref")
    sub.method("<init>").return_()
    unused = pb.cls("NeverUsed")
    unused.method("<init>").return_()
    main = pb.cls("Main")
    main.static_field("s", "int")
    m = main.method("main", static=True)
    m.new("Sub").dup().invokespecial("Sub", "<init>", 0).pop()
    m.return_()
    return pb.build()


def _vm(program=None):
    vm = JavaVM(program or _program_with_hierarchy(),
                strategy=InterpretOnly())
    return vm


class TestLaziness:
    def test_unreferenced_class_not_loaded(self):
        vm = _vm()
        vm.run()
        assert not vm.program.get_class("NeverUsed").loaded
        assert vm.program.get_class("Sub").loaded

    def test_superclass_loaded_with_subclass(self):
        vm = _vm()
        vm.run()
        assert vm.program.get_class("Base").loaded

    def test_load_emits_classload_trace(self):
        from repro.native.nisa import FLAG_CLASSLOAD
        vm = JavaVM(_program_with_hierarchy(), strategy=InterpretOnly(),
                    record=True)
        result = vm.run()
        tr = result.trace
        marked = tr.select((tr.flags & FLAG_CLASSLOAD) != 0)
        assert marked.n > 0
        # Loading writes bytecode images into the bytecode region.
        bc_writes = marked.select(
            marked.is_write & (marked.ea >= BYTECODE_BASE)
        )
        assert bc_writes.n > 0

    def test_unknown_class_raises(self):
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        m.new("NoSuchClass").pop()
        m.return_()
        vm = _vm(pb.build())
        with pytest.raises(ClassLoadError):
            vm.run()


class TestLayout:
    def test_field_offsets_inherit(self):
        vm = _vm()
        vm.boot()
        sub = vm.loader.ensure_loaded("Sub")
        assert sub.field_offsets["a"] == 0          # inherited first
        assert sub.field_offsets["b"] == 4
        assert sub.field_offsets["c"] == 8
        assert sub.instance_bytes == 12

    def test_statics_in_statics_region(self):
        vm = _vm()
        vm.boot()
        main = vm.loader.ensure_loaded("Main")
        assert STATICS_BASE <= main.static_addr["s"] < STATICS_BASE + 0x100000
        assert main.statics["s"] == 0

    def test_bytecode_addresses_assigned(self):
        vm = _vm()
        vm.boot()
        sub = vm.loader.ensure_loaded("Sub")
        init = sub.methods["<init>"]
        assert init.bc_addr >= BYTECODE_BASE
        assert init.bc_length > 0
        assert init.bc_offsets[0] == 0

    def test_metadata_addresses_distinct(self):
        vm = _vm()
        vm.boot()
        a = vm.loader.ensure_loaded("Base")
        b = vm.loader.ensure_loaded("Sub")
        assert a.meta_addr != b.meta_addr
        assert a.meta_addr >= VM_DATA_BASE

    def test_method_ids_unique(self):
        vm = _vm()
        vm.run()
        ids = [m.method_id for m in vm.loader.methods_by_id]
        assert len(ids) == len(set(ids))

    def test_footprint_counters(self):
        vm = _vm()
        vm.run()
        assert vm.loader.metadata_bytes > 0
        assert vm.loader.bytecode_bytes > 0
        assert vm.loader.classes_loaded >= 4  # library + app classes


class TestResolution:
    def test_field_resolution_quickens(self):
        vm = _vm()
        vm.boot()
        main = vm.program.get_class("Main")
        sub = vm.loader.ensure_loaded("Sub")
        # resolve a field ref twice: second time uses the cache
        idx = sub.pool.field_ref("Sub", "b")
        first = vm.loader.resolve_field(sub, idx)
        count = vm.loader.resolution_count
        second = vm.loader.resolve_field(sub, idx)
        assert first == second
        assert vm.loader.resolution_count == count

    def test_static_field_found_in_superclass(self):
        pb = ProgramBuilder("t", main_class="Main")
        base = pb.cls("Base")
        base.static_field("shared", "int")
        pb.cls("Kid", super_name="Base")
        m = pb.cls("Main").method("main", static=True)
        m.iconst(5).putstatic("Kid", "shared")
        m.getstatic("Kid", "shared").istore(1)
        m.getstatic("java/lang/System", "out").iload(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        vm = _vm(pb.build())
        assert vm.run().stdout == ["5"]

    def test_missing_field_raises(self):
        vm = _vm()
        vm.boot()
        sub = vm.loader.ensure_loaded("Sub")
        idx = sub.pool.field_ref("Sub", "nope")
        with pytest.raises(ClassLoadError, match="not found"):
            vm.loader.resolve_field(sub, idx)

    def test_resolution_charged_as_overhead(self):
        vm = _vm()
        vm.run()
        assert vm.loader.overhead_cycles > 0
        assert vm.loader.overhead_cycles < vm.sink.cycles
