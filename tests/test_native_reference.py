"""Statistical C/C++ reference trace generators."""

import pytest

from repro.analysis import mix_from_trace, summarize
from repro.arch.caches import simulate_split_l1
from repro.workloads.native_reference import (
    C_PROFILE,
    CPP_PROFILE,
    PROFILES,
    generate_reference_trace,
)


class TestGeneration:
    def test_length(self):
        tr = generate_reference_trace(C_PROFILE, n=10_000)
        assert tr.n == 10_000

    def test_deterministic_for_seed(self):
        a = generate_reference_trace(C_PROFILE, n=5000, seed=3)
        b = generate_reference_trace(C_PROFILE, n=5000, seed=3)
        assert (a.pc == b.pc).all() and (a.ea == b.ea).all()

    def test_seeds_differ(self):
        a = generate_reference_trace(C_PROFILE, n=5000, seed=3)
        b = generate_reference_trace(C_PROFILE, n=5000, seed=4)
        assert not (a.ea == b.ea).all()

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_mix_matches_profile(self, name):
        profile = PROFILES[name]
        tr = generate_reference_trace(profile, n=100_000)
        mix = mix_from_trace(tr)
        assert mix["load"] == pytest.approx(profile.load_frac, abs=0.02)
        assert mix["store"] == pytest.approx(profile.store_frac, abs=0.02)
        assert mix["branch"] == pytest.approx(profile.branch_frac, abs=0.02)
        s = summarize(mix)
        assert 0.25 <= s["memory"] <= 0.42   # the paper's 25-40% band
        assert 0.12 <= s["transfer"] <= 0.22  # ~15-20%

    def test_memory_ops_have_addresses(self):
        tr = generate_reference_trace(C_PROFILE, n=20_000)
        mem = tr.select(tr.is_memory)
        assert (mem.ea > 0).all()

    def test_cpp_has_more_indirect_calls(self):
        from repro.analysis import indirect_fraction
        c = generate_reference_trace(C_PROFILE, n=100_000)
        cpp = generate_reference_trace(CPP_PROFILE, n=100_000)
        assert (indirect_fraction(cpp.category_counts())
                > indirect_fraction(c.category_counts()))


class TestCacheBehaviour:
    def test_miss_rates_in_published_bands(self):
        """The point of the generators: C/C++-like L1 behaviour at 64K."""
        for name, profile in PROFILES.items():
            tr = generate_reference_trace(profile, n=300_000)
            res = simulate_split_l1(tr)
            assert 0.001 <= res.icache.miss_rate <= 0.06, name
            assert 0.005 <= res.dcache.miss_rate <= 0.08, name

    def test_cpp_icache_worse_than_c(self):
        c = generate_reference_trace(C_PROFILE, n=300_000)
        cpp = generate_reference_trace(CPP_PROFILE, n=300_000)
        rc = simulate_split_l1(c)
        rcpp = simulate_split_l1(cpp)
        assert rcpp.icache.miss_rate >= rc.icache.miss_rate
