; hand-constructed tricky case: monitor held across divergent branches
; the lock is entered once, both if-arms run while it is held, and the
; single exit sits after the merge point -- engines that re-derive
; monitor state per basic block historically miscount here
.class Corpus
.field acc int static

.method <init>
    return
.end

.method main static
    new Corpus
    dup
    invokespecial Corpus <init> 0 void
    astore 0
    aload 0
    monitorenter
    getstatic Corpus acc
    ifle else1
    iconst 3
    putstatic Corpus acc
    goto endif1
else1:
    getstatic Corpus acc
    iconst 5
    isub
    putstatic Corpus acc
endif1:
    aload 0
    monitorexit
    aload 0
    monitorenter
    getstatic Corpus acc
    iconst 2
    imul
    putstatic Corpus acc
    aload 0
    monitorexit
    getstatic java/lang/System out
    getstatic Corpus acc
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
