; hand-constructed tricky case: dead store bracketing a native call
; slot 0 is stored, a native-backed println runs (an optimization
; barrier: natives may observe memory), then the slot is clobbered
; without an intervening read -- jit_opt's dead-store elimination must
; drop only the cost of the store, never the semantics around the call
.class Corpus
.field acc int static

.method main static
    iconst 13
    istore 0
    getstatic java/lang/System out
    iconst 1
    invokevirtual java/io/PrintStream printlnInt 1 void
    iconst 99
    istore 0
    iconst 21
    istore 1
    iload 1
    putstatic Corpus acc
    iconst 44
    istore 1
    getstatic java/lang/System out
    iload 0
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 1
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    getstatic Corpus acc
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
