; hand-constructed tricky case: tableswitch dispatch feeding a deep
; operand stack -- each case leaves a different partial sum on a stack
; that is already four values deep, stressing the JIT's spill handling
; and the verifier's per-target depth bookkeeping
.class Corpus
.field acc int static

.method main static
    iconst 0
    istore 0
loop:
    iload 0
    iconst 4
    if_icmpge done
    iconst 100
    iconst 10
    iconst 1
    iload 0
    tableswitch 0 case0 case1 case2 default dflt
case0:
    iadd
    iadd
    goto join
case1:
    isub
    iadd
    goto join
case2:
    imul
    iadd
    goto join
dflt:
    iadd
    isub
join:
    getstatic Corpus acc
    iadd
    putstatic Corpus acc
    getstatic java/lang/System out
    getstatic Corpus acc
    invokevirtual java/io/PrintStream printlnInt 1 void
    iinc 0 1
    goto loop
done:
    return
.end
