; hand-constructed tricky case: elidable-looking lock whose receiver
; escapes mid-critical-section -- the object is allocated locally (so a
; naive escape analysis elides its monitor), but it is published to a
; static field while the lock is held and locked again afterwards; the
; elision shadow accounting must keep acquire+elided counts exact and
; report zero violations
.class Corpus
.field shared ref static
.field acc int static

.method <init>
    return
.end

.method main static
    new Corpus
    dup
    invokespecial Corpus <init> 0 void
    astore 0
    aload 0
    monitorenter
    aload 0
    putstatic Corpus shared
    getstatic Corpus acc
    iconst 11
    iadd
    putstatic Corpus acc
    aload 0
    monitorexit
    getstatic Corpus shared
    monitorenter
    getstatic Corpus acc
    iconst 3
    imul
    putstatic Corpus acc
    getstatic Corpus shared
    monitorexit
    getstatic java/lang/System out
    getstatic Corpus acc
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end
