"""Threads: spawn/join, scheduling, contention, daemons, deadlock."""

import pytest

from repro.isa import ProgramBuilder
from repro.vm import DeadlockError, InterpretOnly, JavaVM

from helpers import run_program


def _two_counter_threads(with_sync: bool):
    """Two worker threads each add 1..n into a shared accumulator."""
    pb = ProgramBuilder("t", main_class="Main")

    acc = pb.cls("Acc")
    acc.field("total", "int")
    acc.method("<init>").return_()
    add = acc.method("add", argc=1, synchronized=with_sync)
    add.aload(0)
    add.aload(0).getfield("Acc", "total")
    add.iload(1).iadd()
    add.putfield("Acc", "total")
    add.return_()
    get = acc.method("get", returns=True, synchronized=with_sync)
    get.aload(0).getfield("Acc", "total").ireturn()

    worker = pb.cls("Worker", super_name="java/lang/Thread")
    worker.field("acc", "ref")
    init = worker.method("<init>", argc=1)
    init.aload(0).aload(1).putfield("Worker", "acc")
    init.return_()
    run = worker.method("run")
    loop = run.new_label()
    done = run.new_label()
    run.iconst(0).istore(1)
    run.bind(loop)
    run.iload(1).iconst(50).if_icmpge(done)
    run.aload(0).getfield("Worker", "acc")
    run.iload(1)
    run.invokevirtual("Acc", "add", 1, False)
    run.iinc(1, 1)
    run.goto(loop)
    run.bind(done)
    run.return_()

    m = pb.cls("Main").method("main", static=True)
    m.new("Acc").dup().invokespecial("Acc", "<init>", 0).astore(0)
    for slot in (1, 2):
        m.new("Worker").dup().aload(0)
        m.invokespecial("Worker", "<init>", 1)
        m.astore(slot)
    m.aload(1).invokevirtual("java/lang/Thread", "start", 0, False)
    m.aload(2).invokevirtual("java/lang/Thread", "start", 0, False)
    m.aload(1).invokevirtual("java/lang/Thread", "join", 0, False)
    m.aload(2).invokevirtual("java/lang/Thread", "join", 0, False)
    m.aload(0).invokevirtual("Acc", "get", 0, True).istore(3)
    m.getstatic("java/lang/System", "out").iload(3)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


class TestThreads:
    def test_two_threads_complete_and_join(self):
        result = run_program(_two_counter_threads(True), quantum=20)
        assert result.stdout == [str(2 * sum(range(50)))]

    def test_both_modes_agree(self):
        a = run_program(_two_counter_threads(True), mode="interp", quantum=20)
        b = run_program(_two_counter_threads(True), mode="jit", quantum=20)
        assert a.stdout == b.stdout

    def test_contention_occurs_with_small_quantum(self):
        result = run_program(_two_counter_threads(True), quantum=7)
        assert result.sync["case_counts"]["d"] > 0

    def test_threads_interleave(self):
        # With a small quantum, neither thread runs to completion alone:
        # the scheduler switches between them (both see fresh state).
        result = run_program(_two_counter_threads(True), quantum=5)
        assert result.stdout == [str(2 * sum(range(50)))]

    def test_join_on_finished_thread_is_noop(self):
        pb = ProgramBuilder("t", main_class="Main")
        w = pb.cls("W", super_name="java/lang/Thread")
        w.method("<init>").return_()
        r = w.method("run")
        r.return_()
        m = pb.cls("Main").method("main", static=True)
        m.new("W").dup().invokespecial("W", "<init>", 0).astore(1)
        m.aload(1).invokevirtual("java/lang/Thread", "start", 0, False)
        # join twice: second join must see FINISHED and not block
        m.aload(1).invokevirtual("java/lang/Thread", "join", 0, False)
        m.aload(1).invokevirtual("java/lang/Thread", "join", 0, False)
        m.getstatic("java/lang/System", "out").iconst(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        assert run_program(pb).stdout == ["1"]

    def test_is_alive(self):
        pb = ProgramBuilder("t", main_class="Main")
        w = pb.cls("W", super_name="java/lang/Thread")
        w.method("<init>").return_()
        w.method("run").return_()
        m = pb.cls("Main").method("main", static=True)
        m.new("W").dup().invokespecial("W", "<init>", 0).astore(1)
        m.aload(1).invokevirtual("java/lang/Thread", "start", 0, False)
        m.aload(1).invokevirtual("java/lang/Thread", "join", 0, False)
        m.aload(1).invokevirtual("java/lang/Thread", "isAlive", 0, True)
        m.istore(2)
        m.getstatic("java/lang/System", "out").iload(2)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        assert run_program(pb).stdout == ["0"]

    def test_self_deadlock_detected(self):
        # Main blocks on a monitor held by a finished-but-never-releasing
        # scenario is impossible with balanced bytecode, so use two
        # threads blocking on each other's monitors.
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        # main locks A twice via a worker that holds it forever is hard
        # to express; instead: main waits on a monitor the worker holds
        # while the worker joins main's never-finishing... Simpler:
        # thread joins itself -> waits forever -> deadlock.
        w = pb.cls("W", super_name="java/lang/Thread")
        w.method("<init>").return_()
        r = w.method("run")
        r.aload(0).invokevirtual("java/lang/Thread", "join", 0, False)
        r.return_()
        m.new("W").dup().invokespecial("W", "<init>", 0).astore(1)
        m.aload(1).invokevirtual("java/lang/Thread", "start", 0, False)
        m.aload(1).invokevirtual("java/lang/Thread", "join", 0, False)
        m.return_()
        with pytest.raises(DeadlockError):
            run_program(pb)


class TestDaemons:
    def test_daemon_threads_run_at_boot(self):
        pb = ProgramBuilder("t", main_class="Main")
        pb.cls("Main").method("main", static=True).return_()
        vm = JavaVM(pb.build(), strategy=InterpretOnly())
        result = vm.run()
        names = {t.name for t in vm.threads}
        assert "finalizer" in names and "refcleaner" in names
        assert all(not t.is_alive for t in vm.threads)
        # Daemons performed synchronized queue passes.
        assert result.sync["acquire_ops"] >= 10

    def test_daemons_can_be_disabled(self):
        pb = ProgramBuilder("t", main_class="Main")
        pb.cls("Main").method("main", static=True).return_()
        vm = JavaVM(pb.build(), strategy=InterpretOnly(),
                    spawn_daemons=False)
        vm.run()
        assert len(vm.threads) == 1


class TestExecutionLimits:
    def test_runaway_loop_capped(self):
        from repro.vm import ExecutionLimitExceeded
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        top = m.new_label()
        m.bind(top)
        m.goto(top)
        m.return_()
        vm = JavaVM(pb.build(), strategy=InterpretOnly(), max_bytecodes=5000)
        with pytest.raises(ExecutionLimitExceeded):
            vm.run()

    def test_stack_overflow_detected(self):
        from repro.vm.threads import StackOverflow
        pb = ProgramBuilder("t", main_class="Main")
        cb = pb.cls("Main")
        f = cb.method("f", static=True)
        f.invokestatic("Main", "f", 0, False)
        f.return_()
        m = cb.method("main", static=True)
        m.invokestatic("Main", "f", 0, False)
        m.return_()
        vm = JavaVM(pb.build(), strategy=InterpretOnly())
        with pytest.raises(StackOverflow):
            vm.run()
