"""Method invocation: dispatch, recursion, arguments, returns."""

import pytest

from repro.isa import ProgramBuilder
from repro.vm import CompileOnFirstUse, InterpretOnly, JavaVM, VMError

from helpers import run_program


def _both(pb_factory, expected):
    for mode in ("interp", "jit"):
        result = run_program(pb_factory(), mode=mode)
        assert result.stdout == [str(expected)], mode


class TestStaticInvocation:
    def test_args_and_result(self):
        def make():
            pb = ProgramBuilder("t", main_class="Main")
            cb = pb.cls("Main")
            f = cb.method("sub3", argc=2, returns=True, static=True)
            f.iload(0).iload(1).isub().ireturn()
            m = cb.method("main", static=True)
            m.iconst(10).iconst(4)
            m.invokestatic("Main", "sub3", 2, True)
            m.istore(1)
            m.getstatic("java/lang/System", "out").iload(1)
            m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
            m.return_()
            return pb
        _both(make, 6)

    def test_recursion_factorial(self):
        def make():
            pb = ProgramBuilder("t", main_class="Main")
            cb = pb.cls("Main")
            f = cb.method("fact", argc=1, returns=True, static=True)
            base = f.new_label()
            f.iload(0).iconst(2).if_icmplt(base)
            f.iload(0)
            f.iload(0).iconst(1).isub()
            f.invokestatic("Main", "fact", 1, True)
            f.imul().ireturn()
            f.bind(base)
            f.iconst(1).ireturn()
            m = cb.method("main", static=True)
            m.iconst(10).invokestatic("Main", "fact", 1, True).istore(1)
            m.getstatic("java/lang/System", "out").iload(1)
            m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
            m.return_()
            return pb
        _both(make, 3628800)

    def test_mutual_recursion(self):
        def make():
            pb = ProgramBuilder("t", main_class="Main")
            cb = pb.cls("Main")
            even = cb.method("isEven", argc=1, returns=True, static=True)
            z = even.new_label()
            even.iload(0).ifeq(z)
            even.iload(0).iconst(1).isub()
            even.invokestatic("Main", "isOdd", 1, True).ireturn()
            even.bind(z)
            even.iconst(1).ireturn()
            odd = cb.method("isOdd", argc=1, returns=True, static=True)
            z = odd.new_label()
            odd.iload(0).ifeq(z)
            odd.iload(0).iconst(1).isub()
            odd.invokestatic("Main", "isEven", 1, True).ireturn()
            odd.bind(z)
            odd.iconst(0).ireturn()
            m = cb.method("main", static=True)
            m.iconst(9).invokestatic("Main", "isEven", 1, True).istore(1)
            m.getstatic("java/lang/System", "out").iload(1)
            m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
            m.return_()
            return pb
        _both(make, 0)


def _animal_program(receiver_cls):
    pb = ProgramBuilder("t", main_class="Main")
    animal = pb.cls("Animal")
    animal.method("<init>").return_()
    sound = animal.method("sound", returns=True)
    sound.iconst(1).ireturn()
    dog = pb.cls("Dog", super_name="Animal")
    dog.method("<init>").return_()
    bark = dog.method("sound", returns=True)
    bark.iconst(2).ireturn()
    cat = pb.cls("Cat", super_name="Animal")
    cat.method("<init>").return_()
    m = pb.cls("Main").method("main", static=True)
    m.new(receiver_cls).dup()
    m.invokespecial(receiver_cls, "<init>", 0)
    m.invokevirtual("Animal", "sound", 0, True)
    m.istore(1)
    m.getstatic("java/lang/System", "out").iload(1)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


class TestVirtualDispatch:
    def test_override_selected_by_runtime_class(self):
        _both(lambda: _animal_program("Dog"), 2)

    def test_inherited_method_used_when_not_overridden(self):
        _both(lambda: _animal_program("Cat"), 1)

    def test_base_class_receiver(self):
        _both(lambda: _animal_program("Animal"), 1)

    def test_null_receiver_raises(self):
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        m.aconst_null()
        m.invokevirtual("java/lang/Object", "hashCode", 0, True)
        m.pop()
        m.return_()
        with pytest.raises(VMError, match="null receiver"):
            run_program(pb)

    def test_missing_method_raises(self):
        from repro.vm.classloader import ClassLoadError
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        m.new("java/lang/Object").dup()
        m.invokespecial("java/lang/Object", "<init>", 0)
        m.invokevirtual("java/lang/Object", "frobnicate", 0, True)
        m.pop()
        m.return_()
        with pytest.raises(ClassLoadError, match="not found"):
            run_program(pb)


class TestNativeMethods:
    def test_native_receives_receiver_and_args(self):
        seen = []

        def impl(vm, thread, args):
            seen.append(args)
            return 99

        pb = ProgramBuilder("t", main_class="Main")
        cb = pb.cls("Main")
        cb.native_method("probe", 1, True, impl)
        m = cb.method("main", static=True)
        m.new("Main").dup()
        m.invokespecial("Main", "<init>", 0)
        m.iconst(5)
        m.invokevirtual("Main", "probe", 1, True)
        m.istore(1)
        m.getstatic("java/lang/System", "out").iload(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        init = cb.method("<init>")
        init.return_()
        m.return_()
        result = run_program(pb)
        assert result.stdout == ["99"]
        assert len(seen) == 1
        receiver, arg = seen[0]
        assert arg == 5
        assert receiver.jclass.name == "Main"


class TestProfiling:
    def test_invocation_counts(self):
        pb = ProgramBuilder("t", main_class="Main")
        cb = pb.cls("Main")
        f = cb.method("f", returns=True, static=True)
        f.iconst(1).ireturn()
        m = cb.method("main", static=True)
        for _ in range(5):
            m.invokestatic("Main", "f", 0, True)
            m.pop()
        m.return_()
        vm = JavaVM(pb.build(), strategy=InterpretOnly())
        result = vm.run()
        assert result.profiles["Main.f"]["invocations"] == 5
        assert result.profiles["Main.f"]["interp_cycles"] > 0
        assert result.profiles["Main.f"]["translate_cycles"] == 0

    def test_jit_profile_buckets(self):
        pb = ProgramBuilder("t", main_class="Main")
        cb = pb.cls("Main")
        f = cb.method("f", returns=True, static=True)
        f.iconst(1).ireturn()
        m = cb.method("main", static=True)
        m.invokestatic("Main", "f", 0, True)
        m.pop()
        m.return_()
        # Disable inlining so the callee actually executes as compiled code.
        vm = JavaVM(pb.build(), strategy=CompileOnFirstUse(), inline=False)
        result = vm.run()
        prof = result.profiles["Main.f"]
        assert prof["translate_cycles"] > 0
        assert prof["compiled_cycles"] > 0
        assert prof["interp_cycles"] == 0
