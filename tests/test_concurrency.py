"""The interprocedural concurrency analysis: MHP, locksets, races, and
the static/dynamic cross-check property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.concurrency import ConcurrencyAnalysis, analyze_program
from repro.analysis.concurrency.callgraph import CallGraph
from repro.analysis.concurrency.lockset import analyze_method
from repro.analysis.concurrency.mhp import MHP
from repro.analysis.dataflow.escape import EscapeSummaries
from repro.fuzz.crosscheck import check_spec, run_crosscheck
from repro.fuzz.gen import gen_mt_program, gen_program
from repro.fuzz.oracle import run_oracle
from repro.isa.builder import ProgramBuilder
from repro.vm.library import ensure_library
from repro.vm.machine import JavaVM


def _thread_program(copies=2, in_loop=False):
    """main spawns ``copies`` W threads; W.run bumps a static counter."""
    pb = ProgramBuilder("mhp-test", "M/Main")
    g = pb.cls("M/Globals")
    g.static_field("n", "int")
    g.method("<init>", 0, returns=False).return_()
    w = pb.cls("M/W", super_name="java/lang/Thread")
    w.method("<init>", 0, returns=False).return_()
    w.method("run", 0, returns=False, max_stack=4) \
        .getstatic("M/Globals", "n").iconst(1).iadd() \
        .putstatic("M/Globals", "n").return_()
    mb = pb.cls("M/Main").method("main", 0, returns=False, static=True,
                                 max_stack=4)
    mb.iconst(5).putstatic("M/Globals", "n")       # pre-spawn write
    if in_loop:
        top, end = mb.new_label(), mb.new_label()
        mb.iconst(copies).istore(0)
        mb.bind(top).iload(0).ifle(end)
        mb.new("M/W").dup().invokespecial("M/W", "<init>", 0, False) \
            .invokevirtual("java/lang/Thread", "start", 0, False)
        mb.iinc(0, -1).goto(top)
        mb.bind(end)
    else:
        for slot in range(copies):
            mb.new("M/W").dup() \
                .invokespecial("M/W", "<init>", 0, False).astore(slot) \
                .aload(slot) \
                .invokevirtual("java/lang/Thread", "start", 0, False)
    mb.getstatic("M/Globals", "n").putstatic("M/Globals", "n")  # post-spawn
    mb.return_()
    program = pb.build(verify=True)
    ensure_library(program)
    return program


def _mhp_for(program):
    escape = EscapeSummaries(program)
    return MHP(program, CallGraph(program, escape))


class TestMHP:
    def test_discovers_main_and_thread_entries(self):
        mhp = _mhp_for(_thread_program())
        assert "main" in mhp.entries
        assert "thread:M/W" in mhp.entries

    def test_single_spawn_is_not_multi(self):
        mhp = _mhp_for(_thread_program(copies=1))
        assert not mhp.entries["thread:M/W"].multi

    def test_two_spawn_sites_are_multi(self):
        mhp = _mhp_for(_thread_program(copies=2))
        assert mhp.entries["thread:M/W"].multi

    def test_spawn_in_loop_is_multi(self):
        mhp = _mhp_for(_thread_program(copies=1, in_loop=True))
        assert mhp.entries["thread:M/W"].multi

    def test_pre_spawn_main_never_parallel_with_thread(self):
        mhp = _mhp_for(_thread_program())
        assert not mhp.may_parallel(("main", "pre"),
                                    ("thread:M/W", "run"))
        assert mhp.may_parallel(("main", "post"), ("thread:M/W", "run"))

    def test_phase_splits_mains_writes(self):
        program = _thread_program()
        mhp = _mhp_for(program)
        main = program.get_class("M/Main").methods["main"]
        # instruction 0 (iconst before any start) is pre-only; the last
        # putstatic (after both starts) carries the post context too
        assert mhp.contexts(main, 0) == (("main", "pre"),)
        last = len(main.code) - 2
        assert ("main", "post") in mhp.contexts(main, last)

    def test_multi_thread_parallel_with_itself(self):
        mhp = _mhp_for(_thread_program(copies=2))
        ctx = ("thread:M/W", "run")
        assert mhp.may_parallel(ctx, ctx)
        single = _mhp_for(_thread_program(copies=1))
        assert not single.may_parallel(ctx, ctx)


class TestLockset:
    def _method(self, build):
        pb = ProgramBuilder("lockset-test", "L/Main")
        c = pb.cls("L/C")
        c.static_field("lock", "ref")
        c.static_field("v", "int")
        c.method("<init>", 0, returns=False).return_()
        build(pb.cls("L/Main").method("main", 0, returns=False,
                                      static=True, max_stack=4))
        program = pb.build(verify=True)
        main = program.get_class("L/Main").methods["main"]
        return main, EscapeSummaries(program)

    def test_held_inside_monitor(self):
        def build(mb):
            mb.getstatic("L/C", "lock").monitorenter()
            mb.getstatic("L/C", "v").putstatic("L/C", "v")
            mb.getstatic("L/C", "lock").monitorexit()
            mb.return_()
        method, summaries = self._method(build)
        info = analyze_method(method, summaries)
        guarded = [a for a in info.accesses if a.name == "v"]
        assert guarded and all(
            any(("g", "L/C", "lock") in lk for lk in a.held)
            for a in guarded)

    def test_join_intersects_locksets(self):
        def build(mb):
            skip, done = mb.new_label(), mb.new_label()
            mb.iconst(1).ifeq(skip)
            mb.getstatic("L/C", "lock").monitorenter()
            mb.getstatic("L/C", "v").putstatic("L/C", "v")
            mb.getstatic("L/C", "lock").monitorexit()
            mb.goto(done)
            mb.bind(skip).iconst(0).putstatic("L/C", "v")
            # after the merge the lock is held on only one path: gone
            mb.bind(done).getstatic("L/C", "v").putstatic("L/C", "v")
            mb.return_()
        method, summaries = self._method(build)
        info = analyze_method(method, summaries)
        merged = [a for a in info.accesses if a.write][-1]
        assert merged.held == frozenset()

    def test_synchronized_method_holds_receiver(self):
        pb = ProgramBuilder("sync-test", "L/Main")
        c = pb.cls("L/C")
        c.field("f", "int")
        c.method("<init>", 0, returns=False).return_()
        c.method("m", 0, returns=False, synchronized=True) \
            .aload(0).iconst(1).putfield("L/C", "f").return_()
        pb.cls("L/Main").method("main", 0, returns=False, static=True,
                                max_stack=2) \
            .new("L/C").dup().invokespecial("L/C", "<init>", 0, False) \
            .invokevirtual("L/C", "m", 0, False).return_()
        program = pb.build(verify=True)
        summaries = EscapeSummaries(program)
        info = analyze_method(program.get_class("L/C").methods["m"],
                              summaries)
        (access,) = [a for a in info.accesses if a.write]
        assert frozenset((("p", 0),)) in access.held


class TestStaticPlansInVM:
    def test_concurrency_plan_blacklists_shared_class(self):
        from repro.lint.corpus import _shared_counter
        program = _shared_counter(synchronized=True)
        vm = JavaVM(program, static_concurrency=True)
        main = program.entry_method
        safe, racy = vm.concurrency_plan(main)
        assert 0 in racy            # the shared T/Result allocation
        assert 0 not in safe

    def test_concurrency_plan_proves_single_locker(self):
        from repro.lint.corpus import _single_locker
        program = _single_locker()
        vm = JavaVM(program, static_concurrency=True)
        main = program.entry_method
        safe, racy = vm.concurrency_plan(main)
        assert 0 in safe
        assert 0 not in racy


class TestCrossCheck:
    def test_small_campaign_is_sound(self):
        result = run_crosscheck(seed=11, count=6)
        assert result.ok, result.summary()
        assert result.checked == 6

    def test_mt_specs_agree_across_all_configs(self):
        for seed in range(4):
            verdict = run_oracle(gen_mt_program(seed))
            assert verdict.agreed, (seed, verdict.divergences)

    def test_mt_spec_extends_single_threaded_spec(self):
        st_spec, mt_spec = gen_program(9), gen_mt_program(9)
        assert st_spec.body == mt_spec.body
        assert mt_spec.workers

    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_statically_elidable_never_foreign_touched(self, seed):
        """Proven-elidable sites never see a foreign lock at runtime,
        and the tiered VM consuming the static plans matches pure
        interpretation with zero elision violations."""
        check = check_spec(gen_mt_program(seed))
        assert check.error is None
        assert check.violations == []
        assert check.equivalence_ok, check.equivalence_detail


class TestWorkloadClassification:
    @pytest.fixture(scope="class")
    def mtrt_analysis(self):
        from repro.workloads.base import get_workload
        program = get_workload("mtrt").build("s0")
        ensure_library(program)
        return analyze_program(program)

    def test_mtrt_guarded_scene_is_race_free(self, mtrt_analysis):
        codes = {f.code for f in mtrt_analysis.all_findings()}
        assert not codes & {"RC001", "RC002", "RC003"}

    def test_mtrt_shared_result_is_blacklisted(self, mtrt_analysis):
        keys = {f.key for f in mtrt_analysis.all_findings()}
        assert "RC005 spec/Mtrt.main@53" in keys

    def test_analysis_is_deterministic(self):
        from repro.lint.corpus import _shared_counter
        runs = [
            [f.key for f in
             ConcurrencyAnalysis(_shared_counter(False)).all_findings()]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
