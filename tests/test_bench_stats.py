"""The statistical bench harness: steady-state detection + bootstrap CIs.

Synthetic sample streams with known shapes — flat, warmup-then-flat,
drifting, late-bimodal — must get the right verdict, and hypothesis
gets to invent adversarial streams against the detector's invariants
and the bootstrap interval's coverage of the point estimate.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.stats import (bootstrap_ci, coefficient_of_variation,
                               detect_steady, percentiles, steady_report,
                               summarize)

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- crafted streams ---------------------------------------------------
def test_flat_stream_is_steady_with_no_warmup():
    v = detect_steady([100.0] * 10, window=4, cv_threshold=0.05)
    assert v.steady
    assert v.warmup == 0
    assert v.cv == 0.0
    assert v.steady_samples == [100.0] * 10


def test_warmup_prefix_is_detected_and_discarded():
    stream = [500.0, 300.0, 180.0] + [100.0, 101.0, 99.0, 100.0, 100.5]
    v = detect_steady(stream, window=4, cv_threshold=0.05)
    assert v.steady
    assert v.warmup == 3
    assert min(v.steady_samples) > 98.0
    assert max(v.steady_samples) < 102.0


def test_drifting_stream_is_not_steady():
    # Monotone 5%-per-step growth never settles under a tight threshold.
    stream = [100.0 * (1.05 ** i) for i in range(20)]
    v = detect_steady(stream, window=4, cv_threshold=0.02)
    assert not v.steady
    assert v.warmup == len(stream)
    assert v.steady_samples == []


def test_alternating_bimodal_stream_is_not_steady():
    # A local window sitting inside one mode would pass; judging the
    # full suffix catches the persistent flipping.
    stream = [100.0, 300.0] * 8
    v = detect_steady(stream, window=4, cv_threshold=0.05)
    assert not v.steady


def test_mode_flip_with_flat_tail_counts_the_first_mode_as_warmup():
    stream = [100.0] * 8 + [300.0] * 8
    v = detect_steady(stream, window=4, cv_threshold=0.05)
    assert v.steady
    assert v.warmup == 8
    assert v.steady_samples == [300.0] * 8


def test_bimodal_warmup_with_steady_tail_keeps_only_the_tail():
    stream = [400.0, 90.0, 410.0, 95.0] + [200.0] * 6
    v = detect_steady(stream, window=4, cv_threshold=0.05)
    assert v.steady
    assert v.warmup == 4
    assert v.steady_samples == [200.0] * 6


def test_short_streams_are_never_declared_steady():
    for n in range(0, 4):
        v = detect_steady([100.0] * n, window=4)
        assert not v.steady, n
        assert v.warmup == n


def test_verdict_to_dict_has_steady_stats_only_when_steady():
    steady = detect_steady([1.0] * 6).to_dict()
    assert steady["steady"] and "steady_stats" in steady
    unsteady = detect_steady([1.0, 100.0] * 6, cv_threshold=0.01).to_dict()
    assert not unsteady["steady"] and "steady_stats" not in unsteady


def test_cv_of_constant_and_empty_streams():
    assert coefficient_of_variation([]) == 0.0
    assert coefficient_of_variation([5.0]) == 0.0
    assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
    assert coefficient_of_variation([0.0, 0.0]) == 0.0
    assert math.isinf(coefficient_of_variation([-1.0, 1.0]))


# -- bootstrap ---------------------------------------------------------
def test_bootstrap_is_deterministic_in_the_seed():
    samples = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0]
    a = bootstrap_ci(samples, seed=7)
    b = bootstrap_ci(samples, seed=7)
    assert a == b


def test_bootstrap_interval_of_constant_samples_is_degenerate():
    ci = bootstrap_ci([2.5] * 10)
    assert ci["lo"] == ci["point"] == ci["hi"] == 2.5
    assert ci["rel_margin"] == 0.0


def test_bootstrap_rejects_empty_samples():
    with pytest.raises(ValueError):
        bootstrap_ci([])


def test_steady_report_attaches_ci_only_when_steady():
    good = steady_report([10.0, 10.1, 9.9, 10.0, 10.05])
    assert good["steady"] and "median_ci" in good
    bad = steady_report([1.0, 50.0, 2.0, 80.0, 3.0], cv_threshold=0.01)
    assert not bad["steady"] and "median_ci" not in bad


# -- properties --------------------------------------------------------
samples_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40,
)


@RELAXED
@given(samples=samples_strategy,
       window=st.integers(min_value=2, max_value=8),
       threshold=st.floats(min_value=0.01, max_value=1.0))
def test_detection_invariants(samples, window, threshold):
    v = detect_steady(samples, window=window, cv_threshold=threshold)
    assert 0 <= v.warmup <= len(samples)
    if v.steady:
        suffix = samples[v.warmup:]
        assert len(suffix) >= window
        # The accepted suffix really satisfies the published criterion.
        assert coefficient_of_variation(suffix) <= threshold + 1e-12
        # Minimality: one fewer discarded sample would not qualify.
        if v.warmup > 0:
            assert coefficient_of_variation(
                samples[v.warmup - 1:]) > threshold
    else:
        assert v.warmup == len(samples)
        assert v.steady_samples == []


@RELAXED
@given(samples=samples_strategy, scale=st.floats(min_value=0.01,
                                                 max_value=100.0))
def test_detection_is_scale_invariant(samples, scale):
    # CV is dimensionless: multiplying every sample by a positive
    # constant must not change the verdict or the warmup split.
    a = detect_steady(samples)
    b = detect_steady([s * scale for s in samples])
    assert a.steady == b.steady
    assert a.warmup == b.warmup


@RELAXED
@given(samples=st.lists(st.floats(min_value=0.001, max_value=1e6,
                                  allow_nan=False, allow_infinity=False),
                        min_size=2, max_size=40),
       seed=st.integers(min_value=0, max_value=2**31))
def test_bootstrap_interval_covers_the_point_estimate(samples, seed):
    ci = bootstrap_ci(samples, seed=seed, resamples=200)
    assert ci["lo"] <= ci["point"] <= ci["hi"]
    assert ci["lo"] >= min(samples) - 1e-9
    assert ci["hi"] <= max(samples) + 1e-9
    assert ci["point"] == float(np.median(samples))


def test_bootstrap_interval_narrows_with_sample_size():
    # More steady samples of the same population -> tighter interval.
    rng = np.random.default_rng(0)
    small = rng.normal(100.0, 5.0, size=6)
    large = rng.normal(100.0, 5.0, size=60)
    assert (bootstrap_ci(large, seed=1)["rel_margin"]
            < bootstrap_ci(small, seed=1)["rel_margin"])


# -- summaries / percentiles ------------------------------------------
def test_summarize_matches_numpy():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["n"] == 4
    assert s["mean"] == 2.5
    assert s["median"] == 2.5
    assert s["min"] == 1.0 and s["max"] == 4.0
    assert summarize([]) == {"n": 0}


def test_percentiles_keys_and_tail():
    values = list(range(1, 1001))
    p = percentiles(values)
    assert set(p) == {"p50", "p90", "p95", "p99", "p99_9", "max"}
    assert p["p50"] == 500 or p["p50"] == 501
    assert p["max"] == 1000
    assert p["p99"] <= p["p99_9"] <= p["max"]
    empty = percentiles([])
    assert empty["p50"] is None
