"""Differential harness over the full execution-configuration matrix.

Perf claims are only trustworthy on top of a correctness net: for every
workload, every pair drawn from interp × jit × jit_opt × lock_elision
× tiered must be *semantically indistinguishable* — identical program
output,
identical heap effects, identical (normalized) synchronization effects.
The runs are deterministic, so any divergence is a real bug in one of
the execution engines, not noise.

Random-program coverage of the same matrix lives in ``repro.fuzz``
(see ``tests/test_fuzz_corpus.py`` for its regression corpus).
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.runner import run_vm
from repro.workloads.base import all_workloads

WORKLOADS = sorted(all_workloads())

#: s0 covers every workload; s1 re-checks everything at the paper's scale.
SCALES = ("s0", "s1")

#: The full configuration matrix: name -> run_vm keyword arguments.
#: ``tiered`` uses hair-trigger thresholds so promotion and OSR fire
#: even inside the small s0 runs.
CONFIGS = {
    "interp": {"mode": "interp"},
    "jit": {"mode": "jit"},
    "jit_opt": {"mode": "jit", "jit_opt": True},
    "lock_elision": {"mode": "jit", "lock_elision": True},
    "tiered": {"mode": ("tiered", 2, 3, 4)},
}

#: Configs whose sync comparison needs the elision-normalized view
#: (tier 2 of the tiered ladder elides locks too).
ELIDING = frozenset({"lock_elision", "tiered"})

CONFIG_PAIRS = list(itertools.combinations(CONFIGS, 2))

#: Per-(workload, config) cycle counts recorded by the matrix test.
CYCLE_RECORD: dict[tuple[str, str], int] = {}


def _observables(result, elision: bool = False) -> dict:
    """The mode-independent facts of one run.

    ``elision`` selects the normalized sync view: a lock-elision run
    legitimately skips monitor operations, but every skip is shadowed
    (``elided_*``), so acquire/release totals fold the elided ops back
    in, and the per-case breakdown — which elision genuinely changes —
    is only compared between non-eliding configurations.
    """
    sync = result.sync
    obs = {
        "stdout": result.stdout,
        "bytecodes": result.bytecodes_executed,
        "classes_loaded": result.classes_loaded,
        "heap": result.heap,
        "sync_acquires": sync["acquire_ops"] + sync.get("elided_acquires", 0),
        "sync_releases": sync["release_ops"] + sync.get("elided_releases", 0),
    }
    if not elision:
        obs["sync_cases"] = sync["case_counts"]
        obs["sync_objects"] = sync["distinct_objects"]
    return obs


def _run(workload: str, scale: str, config: str):
    result = run_vm(workload, scale=scale, **CONFIGS[config])
    CYCLE_RECORD[(f"{workload}@{scale}", config)] = result.cycles
    return result


@pytest.mark.parametrize("left,right", CONFIG_PAIRS,
                         ids=[f"{a}-vs-{b}" for a, b in CONFIG_PAIRS])
@pytest.mark.parametrize("workload", WORKLOADS)
class TestConfigMatrix:
    """Every configuration pair, every workload, at s0."""

    def test_pair_semantically_equivalent(self, workload, left, right):
        elision = bool(ELIDING & {left, right})
        lo = _observables(_run(workload, "s0", left), elision)
        ro = _observables(_run(workload, "s0", right), elision)
        for key in lo:
            assert lo[key] == ro[key], (
                f"{workload}@s0: {left}/{right} diverge on {key}: "
                f"{lo[key]!r} != {ro[key]!r}"
            )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_elision_reports_no_violations(workload):
    result = _run(workload, "s0", "lock_elision")
    assert result.sync.get("elision_violations", 0) == 0


def test_cycle_counts_recorded_for_all_configs():
    """The matrix run doubles as the per-config cycle census: every
    (workload, config) cell must hold a positive recorded cycle count,
    so regressions in any engine's cost accounting surface here."""
    for workload in WORKLOADS:
        for config in CONFIGS:
            cycles = CYCLE_RECORD.get((f"{workload}@s0", config))
            if cycles is None:       # populate (e.g. under -k selection)
                cycles = _run(workload, "s0", config).cycles
            assert cycles > 0, f"{workload}/{config} recorded no cycles"


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("workload", WORKLOADS)
class TestInterpVsJit:
    def test_observables_identical(self, workload, scale):
        interp = run_vm(workload, scale=scale, mode="interp")
        jit = run_vm(workload, scale=scale, mode="jit")
        oi, oj = _observables(interp), _observables(jit)
        for key in oi:
            assert oi[key] == oj[key], (
                f"{workload}@{scale}: interp/jit diverge on {key}: "
                f"{oi[key]!r} != {oj[key]!r}"
            )
        # The modes really were different executions, not two aliases.
        assert interp.methods_compiled == 0
        assert jit.methods_compiled > 0


@pytest.mark.parametrize("workload", WORKLOADS)
class TestOtherEnginesAgree:
    """The mixed-mode engines sit between the two poles and must agree
    with both on every observable."""

    def test_counter_threshold_matches(self, workload):
        base = _observables(run_vm(workload, scale="s0", mode="interp"))
        counter = _observables(
            run_vm(workload, scale="s0", mode=("counter", 4))
        )
        assert counter == base

    def test_folding_interpreter_matches(self, workload):
        base = _observables(run_vm(workload, scale="s0", mode="interp"))
        folded = _observables(
            run_vm(workload, scale="s0", mode="interp", folding=True)
        )
        assert folded == base

    def test_tiered_matches_and_promotes(self, workload):
        base = _observables(run_vm(workload, scale="s0", mode="interp"),
                            elision=True)
        result = run_vm(workload, scale="s0", mode=("tiered", 2, 3, 4))
        assert _observables(result, elision=True) == base
        # Hair-trigger thresholds: the ladder must actually climb.
        assert result.tiering["promotions_t1"] > 0


def test_stdout_nonempty_for_checksum_workloads():
    """The net has teeth only if workloads actually print checksums."""
    silent = [w for w in WORKLOADS
              if not run_vm(w, scale="s0", mode="interp").stdout]
    assert not silent, f"workloads with no observable output: {silent}"
