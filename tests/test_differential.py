"""Differential interp-vs-JIT harness.

Perf claims are only trustworthy on top of a correctness net: for every
workload the interpreter and the JIT must be *semantically
indistinguishable* — identical program output, identical heap effects,
identical synchronization effects.  The runs are deterministic, so any
divergence is a real bug in one of the execution engines, not noise.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import run_vm
from repro.workloads.base import all_workloads

WORKLOADS = sorted(all_workloads())

#: s0 covers every workload; s1 re-checks everything at the paper's scale.
SCALES = ("s0", "s1")


def _observables(result) -> dict:
    """The mode-independent facts of one run."""
    return {
        "stdout": result.stdout,
        "bytecodes": result.bytecodes_executed,
        "classes_loaded": result.classes_loaded,
        "heap": result.heap,
        "sync_cases": result.sync["case_counts"],
        "sync_acquires": result.sync["acquire_ops"],
        "sync_releases": result.sync["release_ops"],
        "sync_objects": result.sync["distinct_objects"],
    }


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("workload", WORKLOADS)
class TestInterpVsJit:
    def test_observables_identical(self, workload, scale):
        interp = run_vm(workload, scale=scale, mode="interp")
        jit = run_vm(workload, scale=scale, mode="jit")
        oi, oj = _observables(interp), _observables(jit)
        for key in oi:
            assert oi[key] == oj[key], (
                f"{workload}@{scale}: interp/jit diverge on {key}: "
                f"{oi[key]!r} != {oj[key]!r}"
            )
        # The modes really were different executions, not two aliases.
        assert interp.methods_compiled == 0
        assert jit.methods_compiled > 0


@pytest.mark.parametrize("workload", WORKLOADS)
class TestOtherEnginesAgree:
    """The mixed-mode engines sit between the two poles and must agree
    with both on every observable."""

    def test_counter_threshold_matches(self, workload):
        base = _observables(run_vm(workload, scale="s0", mode="interp"))
        counter = _observables(
            run_vm(workload, scale="s0", mode=("counter", 4))
        )
        assert counter == base

    def test_folding_interpreter_matches(self, workload):
        base = _observables(run_vm(workload, scale="s0", mode="interp"))
        folded = _observables(
            run_vm(workload, scale="s0", mode="interp", folding=True)
        )
        assert folded == base


def test_stdout_nonempty_for_checksum_workloads():
    """The net has teeth only if workloads actually print checksums."""
    silent = [w for w in WORKLOADS
              if not run_vm(w, scale="s0", mode="interp").stdout]
    assert not silent, f"workloads with no observable output: {silent}"
