"""Properties of the fuzz generator itself.

The generator's whole value rests on three invariants: every emitted
program is verifier-clean (structural *and* typed), every program
round-trips through the textual assembler, and every program terminates
within the static fuel bound.  Hypothesis drives the seed space; the
properties must hold for *any* seed, not just the campaign defaults.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fuzz.gen import FUEL, gen_program
from repro.isa.asm import assemble, disassemble_program
from repro.isa.verifier import verify_program
from repro.vm import InterpretOnly, JavaVM

_seeds = st.integers(min_value=0, max_value=2**32 - 1)


@settings(max_examples=40, deadline=None)
@given(_seeds)
def test_generated_programs_verify(seed):
    spec = gen_program(seed)
    # render() already runs the typed verifier as the validity filter;
    # re-run explicitly so the property names the contract.
    program = spec.render(verify=False)
    verify_program(program, typed=True)


@settings(max_examples=25, deadline=None)
@given(_seeds)
def test_assembly_round_trip_is_fixpoint(seed):
    spec = gen_program(seed)
    text = disassemble_program(spec.render())
    rebuilt = assemble(text)
    assert disassemble_program(rebuilt) == text


@settings(max_examples=15, deadline=None)
@given(_seeds)
def test_terminates_within_fuel(seed):
    spec = gen_program(seed)
    result = JavaVM(spec.render(),
                    strategy=InterpretOnly()).run(max_bytecodes=FUEL)
    assert 0 < result.bytecodes_executed <= FUEL
    assert result.stdout, "every generated program must print state"


@settings(max_examples=20, deadline=None)
@given(_seeds)
def test_generation_is_deterministic(seed):
    a, b = gen_program(seed), gen_program(seed)
    assert disassemble_program(a.render()) == \
        disassemble_program(b.render())


@settings(max_examples=20, deadline=None)
@given(_seeds)
def test_round_trip_preserves_semantics(seed):
    """The reassembled program behaves identically to the original."""
    spec = gen_program(seed)
    original = JavaVM(spec.render(),
                      strategy=InterpretOnly()).run(max_bytecodes=FUEL)
    rebuilt = assemble(disassemble_program(spec.render()))
    replay = JavaVM(rebuilt,
                    strategy=InterpretOnly()).run(max_bytecodes=FUEL)
    assert replay.stdout == original.stdout
    assert replay.bytecodes_executed == original.bytecodes_executed
