"""Regression corpus replay.

Every ``tests/fuzz_corpus/*.asm`` is a minimized fuzz reproducer or a
hand-constructed tricky case.  Each is replayed under the full
execution-configuration matrix on every test run: once a divergence is
fixed (or a tricky shape is known), it must stay fixed forever.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz.oracle import run_oracle
from repro.isa.asm import assemble

CORPUS = Path(__file__).parent / "fuzz_corpus"
CASES = sorted(CORPUS.glob("*.asm"))


class AsmCase:
    """Adapter: an .asm file as an oracle-runnable spec."""

    def __init__(self, text: str) -> None:
        self.text = text

    def render(self, verify: bool = True):
        return assemble(self.text)


def test_corpus_is_seeded():
    assert len(CASES) >= 3, "fuzz corpus must hold at least 3 reproducers"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_replays_clean(path):
    case = AsmCase(path.read_text())
    verdict = run_oracle(case)
    errors = {c: o.error for c, o in verdict.outcomes.items() if o.error}
    assert not errors, f"{path.name}: config errors {errors}"
    assert verdict.agreed, (
        f"{path.name}: configurations diverge: "
        + "; ".join(str(d) for d in verdict.divergences)
    )
    # The case must actually exercise the engines to pin anything.
    interp = verdict.outcomes["interp"].result
    assert interp.stdout, f"{path.name} produced no observable output"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_is_commented(path):
    """Each reproducer must say what it pins (header comment)."""
    first = path.read_text().lstrip().splitlines()[0]
    assert first.startswith(";"), f"{path.name} lacks a header comment"
