"""Synchronization at the VM level: synchronized methods, explicit
monitors, recursion, static-method class locks."""

import pytest

from repro.isa import ProgramBuilder
from repro.vm import CompileOnFirstUse, InterpretOnly, JavaVM

from helpers import run_program


class TestSynchronizedMethods:
    def _program(self):
        pb = ProgramBuilder("t", main_class="Main")
        box = pb.cls("Box")
        box.field("v", "int")
        box.method("<init>").return_()
        # synchronized outer calls synchronized inner on the same object
        # -> guaranteed recursive (case b) acquisition
        outer = box.method("bump2", synchronized=True)
        outer.aload(0).invokevirtual("Box", "bump", 0, False)
        outer.aload(0).invokevirtual("Box", "bump", 0, False)
        outer.return_()
        inner = box.method("bump", synchronized=True)
        inner.aload(0)
        inner.aload(0).getfield("Box", "v").iconst(1).iadd()
        inner.putfield("Box", "v")
        inner.return_()
        m = pb.cls("Main").method("main", static=True)
        m.new("Box").dup().invokespecial("Box", "<init>", 0).astore(1)
        m.aload(1).invokevirtual("Box", "bump2", 0, False)
        m.getstatic("java/lang/System", "out")
        m.aload(1).getfield("Box", "v")
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        return pb

    def test_semantics(self):
        assert run_program(self._program()).stdout == ["2"]
        assert run_program(self._program(), mode="jit").stdout == ["2"]

    def test_recursive_case_b_recorded(self):
        result = run_program(self._program())
        assert result.sync["case_counts"]["b"] >= 2

    def test_lock_released_after_return(self):
        pb = self._program()
        program = pb.build()
        vm = JavaVM(program, strategy=InterpretOnly())
        vm.run()
        # every monitor released: all lock states have count 0
        for obj in vm.heap.objects.values():
            if getattr(obj, "lock", None) is not None:
                assert obj.lock.count == 0

    def test_acquires_balance_releases(self):
        result = run_program(self._program())
        assert result.sync["acquire_ops"] == result.sync["release_ops"]


class TestStaticSynchronized:
    def test_class_lock_used(self):
        pb = ProgramBuilder("t", main_class="Main")
        cb = pb.cls("Main")
        f = cb.method("f", returns=True, static=True, synchronized=True)
        f.iconst(7).ireturn()
        m = cb.method("main", static=True)
        m.invokestatic("Main", "f", 0, True).istore(1)
        m.getstatic("java/lang/System", "out").iload(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        program = pb.build()
        vm = JavaVM(program, strategy=InterpretOnly())
        result = vm.run()
        assert result.stdout == ["7"]
        cls = program.get_class("Main")
        assert cls.lock is not None       # the class object was locked
        assert cls.lock.count == 0


class TestExplicitMonitors:
    def _program(self):
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        m.new("java/lang/Object").dup()
        m.invokespecial("java/lang/Object", "<init>", 0)
        m.astore(1)
        m.aload(1).monitorenter()
        m.aload(1).monitorenter()        # recursive
        m.aload(1).monitorexit()
        m.aload(1).monitorexit()
        m.getstatic("java/lang/System", "out").iconst(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        return pb

    def test_nested_enter_exit(self):
        for mode in ("interp", "jit"):
            result = run_program(self._program(), mode=mode)
            assert result.stdout == ["1"]
            assert result.sync["case_counts"]["b"] >= 1

    def test_monitorenter_on_null_raises(self):
        from repro.vm import VMError
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        # Statically balanced (the verifier now rejects unbalanced
        # monitors); the runtime null check fires at the monitorenter.
        m.aconst_null().monitorenter()
        m.aconst_null().monitorexit()
        m.return_()
        with pytest.raises(VMError, match="null"):
            run_program(pb)


class TestDeterminism:
    def test_recorded_traces_bit_identical(self):
        results = []
        for _ in range(2):
            results.append(run_program(self._any_program(), record=True))
        a, b = results
        assert a.trace.n == b.trace.n
        assert (a.trace.pc == b.trace.pc).all()
        assert (a.trace.ea == b.trace.ea).all()
        assert (a.trace.flags == b.trace.flags).all()
        assert (a.trace.target == b.trace.target).all()

    @staticmethod
    def _any_program():
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        loop = m.new_label()
        done = m.new_label()
        m.iconst(0).istore(1)
        m.bind(loop)
        m.iload(1).iconst(25).if_icmpge(done)
        m.new("java/lang/Object").dup()
        m.invokespecial("java/lang/Object", "<init>", 0)
        m.pop()
        m.iinc(1, 1)
        m.goto(loop)
        m.bind(done)
        m.getstatic("java/lang/System", "out").iload(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        return pb
