"""Extension features: folding interpreter, indirect predictors,
locality statistics, cache write policies, scale study."""

import numpy as np
import pytest

from repro.analysis import run_vm
from repro.analysis.locality import (
    BytecodeLocality,
    MethodLocality,
    method_sizes_of,
)
from repro.arch.branch import (
    HybridIndirectPredictor,
    TargetCache,
    run_indirect_predictor,
)
from repro.arch.caches import CacheConfig, CacheSim
from repro.isa.opcodes import N_OPCODES, Op
from repro.native.nisa import NCat


class TestFoldingInterpreter:
    def test_semantics_preserved(self):
        for wl in ("compress", "db", "mtrt"):
            base = run_vm(wl, scale="s0", mode="interp", profile=False)
            fold = run_vm(wl, scale="s0", mode="interp", profile=False,
                          folding=True)
            assert base.stdout == fold.stdout, wl
            assert base.bytecodes_executed == fold.bytecodes_executed

    def test_fewer_instructions_and_cycles(self):
        base = run_vm("compress", scale="s0", mode="interp", profile=False)
        fold = run_vm("compress", scale="s0", mode="interp", profile=False,
                      folding=True)
        assert fold.instructions < base.instructions
        assert fold.cycles < base.cycles
        assert fold.folded_bytecodes > 1000

    def test_dispatch_jumps_reduced(self):
        base = run_vm("jess", scale="s0", mode="interp", profile=False)
        fold = run_vm("jess", scale="s0", mode="interp", profile=False,
                      folding=True)
        assert (fold.category_counts[NCat.IJUMP]
                < 0.8 * base.category_counts[NCat.IJUMP])

    def test_folded_trace_well_formed(self):
        fold = run_vm("db", scale="s0", mode="interp", record=True,
                      profile=False, folding=True)
        tr = fold.trace
        assert tr.n == fold.instructions
        # folded groups: a dispatch block is followed by >1 handler body
        assert tr.base_cycles() == fold.cycles

    def test_folding_noop_for_jit_mode(self):
        base = run_vm("db", scale="s0", mode="jit", profile=False)
        fold = run_vm("db", scale="s0", mode="jit", profile=False,
                      folding=True)
        # compiled chunks are not interp templates: nothing folds except
        # around interpreted library paths
        assert fold.stdout == base.stdout

    def test_template_slicing(self):
        from repro.vm.interp_templates import shared_templates, _DISPATCH_LEN
        tpl = shared_templates().tpl[Op.IADD]
        body = tpl.slice_rows(_DISPATCH_LEN, tpl.n)
        assert body.n == tpl.n - _DISPATCH_LEN
        # dispatch's bc-fetch patch is gone; body patches rebased
        assert len(body.patch_ea) == len(tpl.patch_ea) - 1
        assert body.pc[0] == tpl.pc[_DISPATCH_LEN]
        nojump = tpl.slice_rows(0, tpl.n - 1)
        assert nojump.cat[-1] != int(NCat.JUMP)


class TestIndirectPredictors:
    def _dispatch_pattern(self, n=600, period=6):
        pcs = [0x100] * n
        cats = [int(NCat.IJUMP)] * n
        takens = [True] * n
        targets = [0x5000 + 64 * (i % period) for i in range(n)]
        return pcs, cats, takens, targets

    def test_target_cache_learns_repeating_sequences(self):
        res = run_indirect_predictor(TargetCache(),
                                     *self._dispatch_pattern())
        assert res["accuracy"] > 0.9

    def test_plain_btb_fails_same_pattern(self):
        class BTBOnly:
            def __init__(self):
                self.t = {}

            def predict(self, pc):
                return self.t.get(pc)

            def update(self, pc, target):
                self.t[pc] = target

        res = run_indirect_predictor(BTBOnly(), *self._dispatch_pattern())
        assert res["accuracy"] < 0.1

    def test_hybrid_keeps_monomorphic_sites(self):
        # One stable site: hybrid must not be worse than BTB there.
        pcs = [0x200] * 100
        cats = [int(NCat.ICALL)] * 100
        takens = [True] * 100
        targets = [0x9000] * 100
        res = run_indirect_predictor(HybridIndirectPredictor(),
                                     pcs, cats, takens, targets)
        assert res["correct"] >= 98

    def test_real_interpreter_trace_gain(self):
        trace = run_vm("compress", scale="s0", mode="interp", record=True,
                       profile=False).trace
        from repro.arch.branch import extract_transfers
        events = extract_transfers(trace)
        tc = run_indirect_predictor(TargetCache(), *events)
        assert tc["accuracy"] > 0.5
        assert tc["events"] > 1000


class TestWritePolicy:
    def test_write_around_does_not_install(self):
        sim = CacheSim(CacheConfig(1024, 32, 1, write_allocate=False))
        st = sim.run(np.array([0, 4]), writes=np.array([True, False]))
        assert st.total_misses == 2

    def test_write_allocate_installs(self):
        sim = CacheSim(CacheConfig(1024, 32, 1, write_allocate=True))
        st = sim.run(np.array([0, 4]), writes=np.array([True, False]))
        assert st.total_misses == 1

    def test_write_around_protects_read_working_set(self):
        # Reads fit the cache exactly; streaming writes evict them under
        # write-allocate but not under write-around.
        reads = np.concatenate([np.arange(0, 1024, 32)] * 2)
        stream_writes = np.arange(4096, 4096 + 8 * 1024, 32)
        addrs = np.concatenate([reads[:32], stream_writes, reads[:32]])
        writes = np.zeros(len(addrs), dtype=bool)
        writes[32:32 + len(stream_writes)] = True
        wa = CacheSim(CacheConfig(1024, 32, 2, write_allocate=True)).run(
            addrs, writes=writes)
        wna = CacheSim(CacheConfig(1024, 32, 2, write_allocate=False)).run(
            addrs, writes=writes)
        assert wna.total_misses < wa.total_misses

    def test_policy_in_name(self):
        assert "wna" in CacheConfig(1024, 32, 1, write_allocate=False).name


class TestBytecodeLocality:
    def test_coverage_math(self):
        counts = np.zeros(N_OPCODES, dtype=np.int64)
        counts[int(Op.IADD)] = 90
        counts[int(Op.ISUB)] = 10
        bl = BytecodeLocality(counts)
        assert bl.distinct == 2
        assert bl.coverage_of_top(1) == pytest.approx(0.9)
        assert bl.opcodes_for_coverage(0.90) == 1
        assert bl.opcodes_for_coverage(0.95) == 2

    def test_empty_counts(self):
        bl = BytecodeLocality(np.zeros(N_OPCODES, dtype=np.int64))
        assert bl.total == 0
        assert bl.coverage_of_top(15) == 0.0

    def test_vm_histogram_populated(self):
        result = run_vm("compress", scale="s0", mode="interp")
        bl = BytecodeLocality(result.opcode_counts)
        assert bl.total == result.bytecodes_executed
        assert bl.coverage_of_top(15) > 0.5   # the paper's concentration

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            BytecodeLocality(np.zeros(3))


class TestMethodLocality:
    def test_reuse_histogram(self):
        profiles = {
            "A.once": {"invocations": 1},
            "B.twice": {"invocations": 2},
            "C.hot": {"invocations": 5000},
        }
        sizes = {"A.once": 10, "B.twice": 30, "C.hot": 12}
        ml = MethodLocality(profiles, sizes)
        hist = ml.reuse_histogram()
        assert hist["1"] == 1
        assert hist["2"] == 1
        assert hist[">100"] == 1

    def test_small_method_fraction_dynamic(self):
        profiles = {
            "A.small": {"invocations": 90},
            "B.big": {"invocations": 10},
        }
        sizes = {"A.small": 8, "B.big": 200}
        ml = MethodLocality(profiles, sizes)
        assert ml.fraction_invocations_small(16) == pytest.approx(0.9)

    def test_method_sizes_of_program(self):
        from repro.workloads import get_workload
        program = get_workload("db").build("s0")
        sizes = method_sizes_of(program)
        assert "spec/Record.getKey" in sizes
        assert sizes["spec/Record.getKey"] <= 16   # a tiny accessor


class TestScaleStudyAndLocalityExperiments:
    def test_locality_experiment(self):
        from repro.experiments import get_experiment
        res = get_experiment("locality")(scale="s0",
                                         benchmarks=("compress",))
        row = res.rows[0]
        assert row[2] > 50      # top-15 coverage %
        assert row[3] <= row[1]  # 90% coverage needs <= distinct opcodes

    def test_indirect_experiment(self):
        from repro.experiments import get_experiment
        res = get_experiment("ablation_indirect")(
            scale="s0", benchmarks=("compress",))
        by = {(r[0], r[1]): r for r in res.rows}
        interp = by[("compress", "interp")]
        assert interp[4] > interp[3] + 20   # target-cache >> BTB

    def test_folding_experiment(self):
        from repro.experiments import get_experiment
        res = get_experiment("ablation_folding")(
            scale="s0", benchmarks=("compress",))
        row = res.rows[0]
        assert row[1] > 5        # cycle saving %
        assert row[4] < row[3]   # mispredict improves
        assert row[6] > row[5]   # ipc@8 improves


class TestVictimCache:
    def test_victim_recovers_pair_conflicts(self):
        import numpy as np
        from repro.arch.caches import CacheConfig, CacheSim
        addrs = np.array([0, 1024, 0, 1024] * 20)
        dm = CacheSim(CacheConfig(1024, 32, 1)).run(addrs)
        dmv = CacheSim(CacheConfig(1024, 32, 1, victim_entries=4)).run(addrs)
        assert dm.miss_rate > 0.9
        # the victim buffer turns the ping-pong into (near-)hits
        assert dmv.effective_miss_rate < 0.1
        assert int(dmv.victim_hits.sum()) > 70

    def test_victim_capacity_bounded(self):
        import numpy as np
        from repro.arch.caches import CacheConfig, CacheSim
        # 8 conflicting blocks with a 2-entry victim buffer: little help
        addrs = np.array([1024 * k for k in range(8)] * 10)
        small = CacheSim(CacheConfig(1024, 32, 1, victim_entries=2)).run(addrs)
        assert small.effective_miss_rate > 0.7

    def test_no_victim_by_default(self):
        import numpy as np
        from repro.arch.caches import CacheConfig, CacheSim
        st = CacheSim(CacheConfig(1024, 32, 1)).run(np.array([0, 1024, 0]))
        assert int(st.victim_hits.sum()) == 0
        assert st.effective_miss_rate == st.miss_rate

    def test_victim_on_real_trace_helps_dm_icache(self):
        from repro.analysis import run_vm
        from repro.arch.caches import CacheConfig, CacheSim
        trace = run_vm("javac", scale="s0", mode="jit", record=True,
                       profile=False).trace
        plain = CacheSim(CacheConfig(8 << 10, 32, 1)).run(trace.pc)
        helped = CacheSim(CacheConfig(8 << 10, 32, 1,
                                      victim_entries=8)).run(trace.pc)
        assert helped.effective_miss_rate <= plain.miss_rate
