"""Dataflow framework units: CFG, solver, typestate, liveness,
constant propagation, escape analysis."""

import pytest

from repro.analysis.dataflow import build_cfg, check_fixpoint, solve
from repro.analysis.dataflow.constprop import (
    ConstProblem,
    constant_branches,
    solve_constants,
)
from repro.analysis.dataflow.escape import (
    GLOBAL,
    NO_ESCAPE,
    EscapeSummaries,
)
from repro.analysis.dataflow.liveness import (
    LivenessProblem,
    dead_stores,
    def_use_chains,
    pop_only_pushes,
)
from repro.analysis.dataflow.typestate import (
    INT,
    TypedVerifyError,
    assert_types,
    typecheck_method,
)
from repro.isa import ClassBuilder, Op, ProgramBuilder, verify_method
from repro.isa.instruction import Instr
from repro.isa.method import Method


def _method(code, argc=0, max_locals=None):
    m = Method("m", argc=argc, is_static=True, max_locals=max_locals,
               code=code)
    cls = ClassBuilder("C").build()
    m.jclass = cls
    m.pool = cls.pool
    verify_method(m)
    return m


class TestCFG:
    def test_straight_line_single_block(self):
        m = _method([Instr(Op.ICONST, 1), Instr(Op.POP), Instr(Op.RETURN)])
        cfg = build_cfg(m)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].start == 0 and cfg.blocks[0].end == 3

    def test_branch_splits_blocks(self):
        m = _method([
            Instr(Op.ICONST, 1),          # 0
            Instr(Op.IFEQ, 4),            # 1
            Instr(Op.ICONST, 2),          # 2
            Instr(Op.POP),                # 3
            Instr(Op.RETURN),             # 4
        ])
        cfg = build_cfg(m)
        starts = sorted(b.start for b in cfg.blocks)
        assert starts == [0, 2, 4]
        entry = cfg.blocks[cfg.block_index[0]]
        succ_starts = sorted(cfg.blocks[s].start for s, _k in entry.succs)
        assert succ_starts == [2, 4]
        kinds = {k for _s, k in entry.succs}
        assert kinds == {"branch", "fall"}

    def test_loop_back_edge(self):
        m = _method([
            Instr(Op.ICONST, 0),          # 0
            Instr(Op.ICONST, 1),          # 1 <- loop head
            Instr(Op.POP),                # 2
            Instr(Op.GOTO, 1),            # 3
        ])
        cfg = build_cfg(m)
        head = cfg.block_index[1]
        assert any(s == head and k == "goto"
                   for b in cfg.blocks for s, k in b.succs)

    def test_rpo_starts_at_entry(self):
        m = _method([
            Instr(Op.ICONST, 1), Instr(Op.IFEQ, 4),
            Instr(Op.ICONST, 2), Instr(Op.POP), Instr(Op.RETURN),
        ])
        order = build_cfg(m).reachable_rpo()
        assert order[0] == 0
        assert len(order) == 3


class TestTypestate:
    def test_simple_int_flow(self):
        m = _method([Instr(Op.ICONST, 1), Instr(Op.ICONST, 2),
                     Instr(Op.IADD), Instr(Op.POP), Instr(Op.RETURN)])
        result = typecheck_method(m)
        assert not result.findings

    def test_stack_maps_attached(self):
        m = _method([
            Instr(Op.ICONST, 1), Instr(Op.IFEQ, 4),
            Instr(Op.ICONST, 2), Instr(Op.POP), Instr(Op.RETURN),
        ])
        typecheck_method(m)
        assert m.stack_maps
        starts = [entry[0] for entry in m.stack_maps]
        assert 0 in starts

    def test_ill_typed_rejected_by_assert_types(self):
        m = _method([Instr(Op.FCONST, 1), Instr(Op.ISTORE, 0),
                     Instr(Op.RETURN)], max_locals=1)
        with pytest.raises(TypedVerifyError) as exc:
            assert_types(m)
        assert exc.value.code.startswith("RT")

    def test_int_local_typed_int(self):
        m = _method([Instr(Op.ICONST, 7), Instr(Op.ISTORE, 0),
                     Instr(Op.ILOAD, 0), Instr(Op.POP),
                     Instr(Op.RETURN)], max_locals=1)
        result = typecheck_method(m)
        assert not result.findings
        # the local is int at the reload
        _, locals_at = result.solution.in_states[2]
        assert locals_at[0] == INT


class TestLiveness:
    def test_dead_store_found(self):
        m = _method([Instr(Op.ICONST, 1), Instr(Op.ISTORE, 0),
                     Instr(Op.RETURN)], max_locals=1)
        assert dead_stores(m) == [1]

    def test_live_store_not_flagged(self):
        m = _method([Instr(Op.ICONST, 1), Instr(Op.ISTORE, 0),
                     Instr(Op.ILOAD, 0), Instr(Op.POP),
                     Instr(Op.RETURN)], max_locals=1)
        assert dead_stores(m) == []

    def test_store_live_through_loop(self):
        m = _method([
            Instr(Op.ICONST, 9), Instr(Op.ISTORE, 0),     # 0, 1
            Instr(Op.ILOAD, 0), Instr(Op.IFEQ, 6),        # 2, 3
            Instr(Op.IINC, 0, -1), Instr(Op.GOTO, 2),     # 4, 5
            Instr(Op.RETURN),                             # 6
        ], max_locals=1)
        assert dead_stores(m) == []

    def test_def_use_chain_links_store_to_load(self):
        m = _method([Instr(Op.ICONST, 1), Instr(Op.ISTORE, 0),
                     Instr(Op.ILOAD, 0), Instr(Op.POP),
                     Instr(Op.RETURN)], max_locals=1)
        chains = def_use_chains(m)
        assert 2 in chains.get(1, set())

    def test_pop_only_push_detected(self):
        m = _method([Instr(Op.ICONST, 5), Instr(Op.POP),
                     Instr(Op.RETURN)])
        assert 0 in pop_only_pushes(m)

    def test_consumed_push_not_pop_only(self):
        m = _method([Instr(Op.ICONST, 5), Instr(Op.ICONST, 2),
                     Instr(Op.IADD), Instr(Op.POP), Instr(Op.RETURN)])
        assert 0 not in pop_only_pushes(m)


class TestConstProp:
    def test_constant_branch_found(self):
        m = _method([
            Instr(Op.ICONST, 0),          # 0: constant 0
            Instr(Op.IFEQ, 4),            # 1: always taken
            Instr(Op.NOP),                # 2
            Instr(Op.NOP),                # 3
            Instr(Op.RETURN),             # 4
        ])
        findings = constant_branches(m)
        assert [f.code for f in findings] == ["RL003"]
        assert findings[0].index == 1

    def test_dynamic_branch_quiet(self, ):
        m = _method([
            Instr(Op.ILOAD, 0),           # parameter: not a constant
            Instr(Op.IFEQ, 3),
            Instr(Op.NOP),
            Instr(Op.RETURN),
        ], argc=1)
        assert constant_branches(m) == []

    def test_arithmetic_folds_like_vm(self):
        # (7 * 5 - 3) & 0xF == 0 -> branch constant
        m = _method([
            Instr(Op.ICONST, 7), Instr(Op.ICONST, 5), Instr(Op.IMUL),
            Instr(Op.ICONST, 3), Instr(Op.ISUB),
            Instr(Op.ICONST, 32), Instr(Op.IAND),
            Instr(Op.IFEQ, 9),
            Instr(Op.NOP),
            Instr(Op.RETURN),
        ])
        assert [f.code for f in constant_branches(m)] == ["RL003"]

    def test_copy_propagation_through_local(self):
        m = _method([
            Instr(Op.ICONST, 1), Instr(Op.ISTORE, 0),
            Instr(Op.ILOAD, 0), Instr(Op.IFEQ, 5),
            Instr(Op.NOP), Instr(Op.RETURN),
        ], max_locals=1)
        assert [f.code for f in constant_branches(m)] == ["RL003"]

    def test_merge_kills_constant(self):
        m = _method([
            Instr(Op.ILOAD, 0),           # 0
            Instr(Op.IFEQ, 4),            # 1
            Instr(Op.ICONST, 1),          # 2: one path: 1
            Instr(Op.GOTO, 5),            # 3
            Instr(Op.ICONST, 2),          # 4: other: 2
            Instr(Op.IFEQ, 7),            # 5: merged -> not constant
            Instr(Op.NOP),                # 6
            Instr(Op.RETURN),             # 7
        ], argc=1)
        assert constant_branches(m) == []


class TestEscape:
    def test_local_alloc_is_elidable(self):
        pb = ProgramBuilder("t", main_class="E")
        c = pb.cls("E")
        m = c.method("main", static=True)
        m.new("E").dup().monitorenter().monitorexit().return_()
        program = pb.build(verify=False)
        summaries = EscapeSummaries(program)
        main = program.get_class("E").methods["main"]
        assert summaries.elidable_allocs(main) == frozenset({0})

    def test_putstatic_escapes(self):
        pb = ProgramBuilder("t", main_class="E")
        c = pb.cls("E")
        c.static_field("g", "ref")
        m = c.method("main", static=True)
        m.new("E").putstatic("E", "g").return_()
        program = pb.build(verify=False)
        summaries = EscapeSummaries(program)
        main = program.get_class("E").methods["main"]
        assert summaries.elidable_allocs(main) == frozenset()

    def test_returned_alloc_not_elidable(self):
        pb = ProgramBuilder("t", main_class="E")
        c = pb.cls("E")
        f = c.method("make", static=True, returns=True)
        f.new("E").areturn()
        m = c.method("main", static=True)
        m.invokestatic("E", "make", 0, True).pop().return_()
        program = pb.build(verify=False)
        summaries = EscapeSummaries(program)
        make = program.get_class("E").methods["make"]
        assert summaries.elidable_allocs(make) == frozenset()

    def test_callee_summary_keeps_arg_local(self):
        # use(o) only reads a field: passing a fresh alloc to it is safe
        pb = ProgramBuilder("t", main_class="E")
        c = pb.cls("E")
        c.field("v", "int")
        use = c.method("use", argc=1, static=True)
        use.aload(0).getfield("E", "v").pop().return_()
        m = c.method("main", static=True)
        m.new("E").dup()
        m.invokestatic("E", "use", 1, False)
        m.monitorenter()
        m.new("E").monitorexit()
        m.return_()
        program = pb.build(verify=False)
        summaries = EscapeSummaries(program)
        assert summaries.summary(
            program.get_class("E").methods["use"])[0] == NO_ESCAPE

    def test_unresolvable_invoke_escapes_args(self):
        pb = ProgramBuilder("t", main_class="E")
        c = pb.cls("E")
        m = c.method("main", static=True)
        m.new("E").dup()
        m.invokevirtual("Unknown", "mystery", 0, False)
        m.monitorenter()
        m.new("E").monitorexit()
        m.return_()
        program = pb.build(verify=False)
        summaries = EscapeSummaries(program)
        main = program.get_class("E").methods["main"]
        assert 0 not in summaries.elidable_allocs(main)

    def test_native_escape_annotation_honoured(self):
        pb = ProgramBuilder("t", main_class="E")
        c = pb.cls("E")
        c.native_method("safe", 0, False, lambda vm, t, a: None,
                        escape=("none",))
        m = c.method("main", static=True)
        m.new("E").dup()
        m.invokevirtual("E", "safe", 0, False)
        m.monitorenter()
        m.new("E").monitorexit()
        m.return_()
        program = pb.build(verify=False)
        summaries = EscapeSummaries(program)
        main = program.get_class("E").methods["main"]
        assert 0 in summaries.elidable_allocs(main)
        safe = program.get_class("E").methods["safe"]
        assert summaries.summary(safe) == (NO_ESCAPE,)

    def test_unannotated_native_is_global(self):
        pb = ProgramBuilder("t", main_class="E")
        c = pb.cls("E")
        c.native_method("wild", 0, False, lambda vm, t, a: None)
        program = pb.build(verify=False)
        summaries = EscapeSummaries(program)
        wild = program.get_class("E").methods["wild"]
        assert summaries.summary(wild) == (GLOBAL,)


class TestSolverGenerics:
    def test_forward_and_backward_fixpoints_check(self):
        m = _method([
            Instr(Op.ICONST, 3), Instr(Op.ISTORE, 0),
            Instr(Op.ILOAD, 0), Instr(Op.IFEQ, 5),
            Instr(Op.IINC, 0, -1),
            Instr(Op.RETURN),
        ], max_locals=1)
        live = solve(m, LivenessProblem())
        assert check_fixpoint(m, LivenessProblem(), live)
        consts = solve_constants(m)
        assert check_fixpoint(m, ConstProblem(), consts)
