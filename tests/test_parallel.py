"""Parallel scheduler: job descriptors, pooled execution, CLI parity."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import cache
from repro.analysis.parallel import (
    Job,
    dedupe,
    execute_job,
    oracle_job,
    run_job,
    run_jobs,
    trace_job,
    trace_jobs,
)
from repro.experiments.base import all_experiments, collect_jobs, jobs_for


class TestJobDescriptors:
    def test_constructors_and_equality(self):
        assert trace_job("db") == Job("trace", "db", "s1", "jit")
        assert run_job("db", "s0", "interp", profile=False) == Job(
            "run", "db", "s0", "interp", (("profile", False),)
        )
        assert oracle_job("db").kind == "oracle"

    def test_option_order_is_canonical(self):
        a = run_job("db", "s0", "jit", inline=True, profile=False)
        b = run_job("db", "s0", "jit", profile=False, inline=True)
        assert a == b
        assert len(dedupe([a, b])) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Job("frobnicate", "db")

    def test_describe_mentions_the_measurement(self):
        text = run_job("db", "s0", "jit", profile=False).describe()
        assert "db/s0/jit" in text and "profile=False" in text

    def test_dedupe_preserves_order(self):
        jobs = [trace_job("a"), trace_job("b"), trace_job("a")]
        assert dedupe(jobs) == [trace_job("a"), trace_job("b")]

    def test_jobs_are_spawn_safe(self):
        import pickle
        job = run_job("db", "s0", ("counter", 4), profile=False)
        assert pickle.loads(pickle.dumps(job)) == job


class TestDeclaredJobs:
    def test_every_experiment_declares_jobs(self):
        missing = [eid for eid in all_experiments()
                   if not jobs_for(eid, scale="s0", benchmarks=("db",))]
        assert not missing, f"experiments with no job list: {missing}"

    def test_collect_jobs_dedupes_across_experiments(self):
        ids = ("fig3", "fig4", "table3")  # all need the same traces
        union = collect_jobs(ids, scale="s0", benchmarks=("db",))
        assert union == [trace_job("db", "s0", "interp"),
                         trace_job("db", "s0", "jit")]

    def test_declared_jobs_cover_the_run(self, tmp_path, monkeypatch):
        """Pre-warming fig3's declared jobs makes its run 100% cache
        hits — the declaration is complete."""
        cache_dir = str(tmp_path)
        for job in jobs_for("fig3", scale="s0", benchmarks=("db",)):
            outcome = execute_job(job, cache_dir=cache_dir)
            assert outcome["error"] is None
        cache.reset_stats()
        from repro.experiments import get_experiment
        monkeypatch.setenv("REPRO_TRACE_CACHE", cache_dir)
        get_experiment("fig3")(scale="s0", benchmarks=("db",))
        assert cache.STATS.misses == 0
        assert cache.STATS.hits > 0


class TestRunJobsInline:
    def test_cold_then_warm(self, tmp_path):
        jobs = trace_jobs(("hello",), "s0")
        cold = run_jobs(jobs, max_workers=1, cache_dir=str(tmp_path))
        assert len(cold.outcomes) == 2 and not cold.errors
        assert cold.stats.trace_misses == 2
        warm = run_jobs(jobs, max_workers=1, cache_dir=str(tmp_path))
        assert warm.stats.trace_hits == 2
        assert warm.stats.hit_rate == 1.0

    def test_progress_callback_streams(self, tmp_path):
        seen = []
        run_jobs(trace_jobs(("hello",), "s0"), max_workers=1,
                 cache_dir=str(tmp_path),
                 progress=lambda i, total, o: seen.append((i, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_job_error_reported_not_raised(self, tmp_path):
        summary = run_jobs([trace_job("no-such-workload", "s0")],
                           max_workers=1, cache_dir=str(tmp_path))
        assert len(summary.errors) == 1
        assert "no-such-workload" in summary.errors[0]["error"]

    def test_summary_format(self, tmp_path):
        summary = run_jobs([trace_job("hello", "s0", "interp")],
                           max_workers=1, cache_dir=str(tmp_path))
        text = summary.format_summary()
        assert "1 jobs" in text and "hit rate" in text


class TestRunJobsPooled:
    """Real spawn workers sharing the on-disk cache."""

    def test_pool_populates_shared_cache(self, tmp_path):
        jobs = trace_jobs(("hello",), "s0") + [
            run_job("hello", "s0", "jit", profile=False)
        ]
        summary = run_jobs(jobs, max_workers=2, cache_dir=str(tmp_path))
        assert not summary.errors
        assert summary.stats.trace_misses == 2
        assert summary.stats.run_misses == 1
        archives = []
        for sub in ("traces", "runs"):
            directory = tmp_path / sub
            archives += [f for f in os.listdir(directory)
                         if not f.endswith((".lock", ".sha256"))]
        assert len(archives) == 3
        # The parent sees the workers' archives as hits.
        warm = run_jobs(jobs, max_workers=1, cache_dir=str(tmp_path))
        assert warm.stats.hits == 3 and warm.stats.misses == 0


class TestCliParity:
    def test_parallel_output_identical_to_serial(self, tmp_path, capsys,
                                                 monkeypatch):
        # main() writes --cache-dir into the environment; make sure the
        # mutation is undone when the test ends.
        monkeypatch.setenv("REPRO_TRACE_CACHE", "")
        from repro.experiments.cli import main
        serial_json = str(tmp_path / "serial.json")
        par_json = str(tmp_path / "par.json")
        base = ["fig3", "--scale", "s0", "--benchmarks", "db"]
        assert main(base + ["--cache-dir", str(tmp_path / "c1"),
                            "--json", serial_json]) == 0
        assert main(base + ["--cache-dir", str(tmp_path / "c2"),
                            "--jobs", "2", "--json", par_json]) == 0
        out = capsys.readouterr().out
        assert "pre-warming cache" in out
        assert json.load(open(serial_json)) == json.load(open(par_json))

    def test_warm_rerun_reports_high_hit_rate(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "")
        from repro.experiments.cli import main
        args = ["fig3", "fig5", "--scale", "s0", "--benchmarks", "db",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        summary = [line for line in out.splitlines()
                   if line.startswith("run summary:")][-1]
        assert "100.0% hit rate" in summary
