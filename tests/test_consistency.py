"""Cross-layer consistency invariants tying the semantic VM to its
emitted traces — the load-bearing assumptions of the methodology."""

import numpy as np
import pytest

from repro.analysis import run_vm
from repro.native.layout import BYTECODE_BASE, BYTECODE_SIZE
from repro.native.nisa import NCat
from repro.vm.interp_templates import JUMPTABLE_BASE


@pytest.fixture(scope="module")
def interp_run():
    return run_vm("jess", scale="s0", mode="interp", record=True)


class TestInterpreterEmissionInvariants:
    def test_one_dispatch_per_interpreted_bytecode(self, interp_run):
        """Every interpreted bytecode fetches exactly one jump-table
        entry, so table loads == bytecodes executed (modulo runtime
        work, which never touches the table)."""
        tr = interp_run.trace
        table_loads = (
            (tr.ea >= JUMPTABLE_BASE) & (tr.ea < JUMPTABLE_BASE + 4 * 256)
            & tr.is_memory & ~tr.is_write
        )
        assert int(table_loads.sum()) == interp_run.bytecodes_executed

    def test_one_bytecode_fetch_per_dispatch(self, interp_run):
        """The dispatch block's bytecode fetch reads the bytecode area."""
        tr = interp_run.trace
        bc_reads = (
            (tr.ea >= BYTECODE_BASE) & (tr.ea < BYTECODE_BASE + BYTECODE_SIZE)
            & tr.is_memory & ~tr.is_write
        )
        # >= because translation/classloading also read bytecode bytes
        assert int(bc_reads.sum()) >= interp_run.bytecodes_executed

    def test_dispatch_ijump_count_matches(self, interp_run):
        tr = interp_run.trace
        from repro.vm.interp_templates import shared_templates
        dispatch_pc = shared_templates().dispatch_pc + 7 * 4  # the IJUMP row
        ijumps_at_dispatch = int(
            ((tr.cat == int(NCat.IJUMP)) & (tr.pc == dispatch_pc)).sum()
        )
        assert ijumps_at_dispatch == interp_run.bytecodes_executed

    def test_bytecode_fetch_addresses_in_loaded_methods(self, interp_run):
        tr = interp_run.trace
        bc = tr.ea[(tr.ea >= BYTECODE_BASE)
                   & (tr.ea < BYTECODE_BASE + BYTECODE_SIZE)]
        assert bc.size > 0
        assert int(bc.max()) < BYTECODE_BASE + 0x10000  # inside loaded code


class TestCycleConservation:
    def test_sink_cycles_equal_trace_cost(self, interp_run):
        assert interp_run.trace.base_cycles() == interp_run.cycles

    def test_category_counts_equal_trace_histogram(self, interp_run):
        assert (interp_run.category_counts
                == interp_run.trace.category_counts()).all()

    def test_profiled_plus_overhead_below_total(self):
        result = run_vm("jess", scale="s0", mode="jit")
        attributed = sum(
            p["interp_cycles"] + p["compiled_cycles"] + p["translate_cycles"]
            for p in result.profiles.values()
        )
        assert 0 < attributed <= result.cycles

    def test_translate_flag_cycles_match_profiler(self):
        result = run_vm("jess", scale="s0", mode="jit")
        profiled_translate = sum(
            p["translate_cycles"] for p in result.profiles.values()
        )
        # sink-side (flag-based) and profiler-side (per-method) agree
        assert profiled_translate == result.translate_cycles


class TestSchedulerInvariance:
    def test_quantum_does_not_change_single_thread_results(self):
        results = [
            run_vm("db", scale="s0", mode="jit", profile=False)
            for _ in range(1)
        ]
        from repro.vm import CompileOnFirstUse, JavaVM
        from repro.workloads import get_workload
        small_q = JavaVM(get_workload("db").build("s0"),
                         strategy=CompileOnFirstUse(), quantum=7,
                         profile=False).run()
        assert small_q.stdout == results[0].stdout
        assert small_q.cycles == results[0].cycles

    def test_quantum_changes_mtrt_interleaving_not_output(self):
        from repro.vm import CompileOnFirstUse, JavaVM
        from repro.workloads import get_workload
        outs = set()
        sync_d = []
        for quantum in (11, 60, 400):
            vm = JavaVM(get_workload("mtrt").build("s0"),
                        strategy=CompileOnFirstUse(), quantum=quantum,
                        profile=False)
            r = vm.run()
            outs.add(tuple(r.stdout))
            sync_d.append(r.sync["case_counts"]["d"])
        assert len(outs) == 1              # output schedule-independent
        assert sync_d[0] >= sync_d[-1]     # more switching, more contention
