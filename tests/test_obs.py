"""Observability layer: tracer, manifests, summarize/diff, and the
crash-loss / temp-file bugfixes that rode along with it."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro import obs
from repro.analysis import cache
from repro.analysis.parallel import run_jobs, trace_job, trace_jobs
from repro.analysis.runner import get_trace, run_vm
from repro.obs import summarize
from repro.obs.tracer import TRACER, measure_disabled_overhead


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts and ends with a disabled, empty tracer."""
    TRACER.disable()
    TRACER.reset()
    yield
    TRACER.disable()
    TRACER.reset()


# -- tracer core -------------------------------------------------------

class TestTracer:
    def test_disabled_is_a_shared_noop(self):
        a = obs.span("one", k=1)
        b = obs.span("two")
        assert a is b  # no allocation on the off path
        with a:
            pass
        TRACER.add("counter")
        TRACER.emit("agg", 0.5)
        assert TRACER.events == []
        assert TRACER.counters == {}

    def test_span_nesting_records_parent_and_depth(self):
        TRACER.enable()
        with TRACER.span("outer") as outer:
            with TRACER.span("inner", k=2):
                pass
        inner_ev, outer_ev = TRACER.events
        assert inner_ev["name"] == "inner"
        assert inner_ev["parent"] == outer.id
        assert inner_ev["depth"] == 1
        assert inner_ev["attrs"] == {"k": 2}
        assert outer_ev["parent"] is None and outer_ev["depth"] == 0
        assert inner_ev["dur"] <= outer_ev["dur"]

    def test_span_records_error_on_exception(self):
        TRACER.enable()
        with pytest.raises(ValueError):
            with TRACER.span("failing"):
                raise ValueError("boom")
        (event,) = TRACER.events
        assert event["attrs"]["error"] == "ValueError"

    def test_emit_and_counters(self):
        TRACER.enable()
        TRACER.emit("agg.phase", 0.25, bytecodes=7)
        TRACER.add("hits", 2)
        TRACER.add("hits")
        (event,) = TRACER.events
        assert event["dur"] == 0.25 and event["attrs"]["bytecodes"] == 7
        assert TRACER.counters == {"hits": 3}

    def test_traced_decorator(self):
        calls = []

        @obs.traced("decorated.fn")
        def fn(x):
            calls.append(x)
            return x + 1

        assert fn(1) == 2          # disabled: pass-through
        assert TRACER.events == []
        TRACER.enable()
        assert fn(2) == 3
        assert TRACER.events[0]["name"] == "decorated.fn"
        assert calls == [1, 2]

    def test_drain_and_absorb_merge_buffers(self):
        TRACER.enable()
        with TRACER.span("worker.span"):
            pass
        TRACER.add("jobs", 1)
        payload = TRACER.drain()
        assert TRACER.events == [] and TRACER.counters == {}
        TRACER.add("jobs", 2)
        TRACER.absorb(payload)
        assert [e["name"] for e in TRACER.events] == ["worker.span"]
        assert TRACER.counters == {"jobs": 3}

    def test_measure_disabled_overhead_requires_off(self):
        TRACER.enable()
        with pytest.raises(RuntimeError):
            measure_disabled_overhead(10)
        TRACER.disable()
        probe = measure_disabled_overhead(1000)
        assert probe["check_ns"] > 0 and probe["span_ns"] > 0


# -- event stream IO and aggregation -----------------------------------

class TestEventStream:
    def _sample_run(self, tmp_path, name):
        TRACER.reset()
        TRACER.enable()
        with TRACER.span("phase.a"):
            with TRACER.span("phase.b"):
                pass
        TRACER.add("widgets", 4)
        path = str(tmp_path / name)
        n = obs.write_events(path)
        TRACER.disable()
        assert n == 3  # two spans + one counter line
        return path

    def test_write_load_roundtrip(self, tmp_path):
        path = self._sample_run(tmp_path, "run.jsonl")
        run = summarize.load(path)
        assert {e["name"] for e in run["spans"]} == {"phase.a", "phase.b"}
        assert run["counters"] == {"widgets": 4}
        for line in open(path):
            json.loads(line)  # every line is valid JSON

    def test_profile_table(self, tmp_path):
        run = summarize.load(self._sample_run(tmp_path, "run.jsonl"))
        text = summarize.profile_table(run)
        assert "phase.a" in text and "phase.b" in text
        assert "widgets" in text

    def test_diff_flags_regressions(self):
        a = {"spans": [{"name": "s", "ts": 0.0, "dur": 1.0}],
             "counters": {"c": 1}}
        b = {"spans": [{"name": "s", "ts": 0.0, "dur": 2.0},
                       {"name": "t", "ts": 0.0, "dur": 0.5}],
             "counters": {"c": 3}}
        table, regressions = summarize.diff_runs(a, b, threshold=0.2)
        assert len(regressions) == 1 and "s:" in regressions[0]
        assert "SLOWER" in table and "NEW" in table
        assert "counters that changed" in table
        _, none = summarize.diff_runs(a, a)
        assert none == []

    def test_summarize_cli(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        path = self._sample_run(tmp_path, "run.jsonl")
        assert main(["summarize", path]) == 0
        assert "phase.a" in capsys.readouterr().out
        assert main(["diff", path, path]) == 0
        assert main(["overhead", "--iters", "1000"]) == 0


# -- manifests ---------------------------------------------------------

class TestManifest:
    def test_fields(self):
        import platform

        import numpy as np

        manifest = obs.build_manifest(
            "test-tool", argv=["x", "--y"],
            experiments=[{"id": "fig1", "seconds": 1.0, "error": None}],
        )
        assert manifest["tool"] == "test-tool"
        assert manifest["argv"] == ["x", "--y"]
        assert manifest["python"] == platform.python_version()
        assert manifest["numpy"] == np.__version__
        assert set(manifest["config"]) == {
            "REPRO_SIM_KERNEL", "REPRO_TRACE_CACHE", "REPRO_OBS",
            "REPRO_FAULTS", "REPRO_CODE_ARCHIVE", "REPRO_BENCH_ROUNDS"}
        for field in ("trace_hits", "run_misses", "corrupt", "hits",
                      "misses"):
            assert field in manifest["cache"]
        rev = manifest["git_rev"]
        assert rev is None or (len(rev) == 40
                               and all(c in "0123456789abcdef" for c in rev))
        assert manifest["experiments"][0]["id"] == "fig1"

    def test_span_totals_included_when_tracing(self):
        TRACER.enable()
        with TRACER.span("m.phase"):
            pass
        manifest = obs.build_manifest("t")
        assert manifest["spans"]["m.phase"]["count"] == 1

    def test_manifest_path_for(self):
        assert obs.manifest_path_for("out.json") == "out.manifest.json"
        assert obs.manifest_path_for("report") == "report.manifest.json"


# -- VM instrumentation ------------------------------------------------

class TestVMSpans:
    def test_jit_run_emits_phase_spans(self):
        TRACER.enable()
        run_vm("hello", scale="s0", mode="jit", cache_dir="")
        names = [e["name"] for e in TRACER.events]
        assert "vm.run" in names
        assert "vm.jit.translate" in names
        assert "vm.interp.dispatch" in names
        assert "vm.jit.execute" in names
        vm_run = next(e for e in TRACER.events if e["name"] == "vm.run")
        assert vm_run["attrs"]["cycles"] > 0
        assert vm_run["attrs"]["translate_cycles"] > 0
        for tr in (e for e in TRACER.events
                   if e["name"] == "vm.jit.translate"):
            assert tr["parent"] == vm_run["id"]
            assert tr["attrs"]["translate_cycles"] > 0

    def test_interp_run_charges_dispatch(self):
        TRACER.enable()
        run_vm("hello", scale="s0", mode="interp", cache_dir="")
        dispatch = next(e for e in TRACER.events
                        if e["name"] == "vm.interp.dispatch")
        assert dispatch["attrs"]["bytecodes"] > 0
        assert dispatch["dur"] > 0
        assert not any(e["name"] == "vm.jit.translate"
                       for e in TRACER.events)

    def test_disabled_run_emits_nothing(self):
        result = run_vm("hello", scale="s0", mode="jit", cache_dir="")
        assert result.cycles > 0
        assert TRACER.events == []


# -- cache instrumentation ---------------------------------------------

class TestCacheSpans:
    def test_lookup_outcomes_and_store(self, tmp_path):
        TRACER.enable()
        cache_dir = str(tmp_path)
        get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        lookups = [e["attrs"]["outcome"] for e in TRACER.events
                   if e["name"] == "cache.lookup"
                   and e["attrs"]["kind"] == "trace"]
        assert lookups == ["miss", "hit"]
        assert any(e["name"] == "cache.store" for e in TRACER.events)
        assert TRACER.counters["cache.trace_miss"] == 1
        assert TRACER.counters["cache.trace_hit"] == 1

    def test_corrupt_archive_discarded_and_recomputed(self, tmp_path):
        cache_dir = str(tmp_path)
        get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        traces = os.path.join(cache_dir, "traces")
        (archive,) = [f for f in os.listdir(traces)
                      if f.endswith(".npy")]
        path = os.path.join(traces, archive)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        TRACER.enable()
        cache.reset_stats()
        assert cache.load_trace(path) is None
        # _discard removed the corrupt archive outright.
        assert not os.path.exists(path)
        assert cache.STATS.corrupt == 1
        (lookup,) = [e for e in TRACER.events if e["name"] == "cache.lookup"]
        assert lookup["attrs"]["outcome"] == "corrupt"
        # A recompute through the runner replaces it.
        recovered = get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        assert recovered.n > 0 and os.path.exists(path)


# -- atomic-write concurrency (satellite bugfix) -----------------------

class TestAtomicWriteConcurrency:
    def test_temp_names_are_unique_within_a_process(self, tmp_path):
        captured = []
        original = os.replace

        def spy(src, dst):
            captured.append(os.path.basename(src))
            return original(src, dst)

        target = str(tmp_path / "entry.bin")
        try:
            os.replace = spy
            cache._atomic_write(target, b"a")
            cache._atomic_write(target, b"b")
        finally:
            os.replace = original
        assert len(set(captured)) == 2

    def test_concurrent_writers_same_key(self, tmp_path):
        """Two+ threads storing the same key must not race on the temp
        file: every write survives intact and nothing is left behind."""
        target = str(tmp_path / "entry.bin")
        payloads = {t: (b"%d:" % t) * 4096 for t in range(8)}
        barrier = threading.Barrier(len(payloads))
        errors = []

        def writer(tid):
            barrier.wait()
            try:
                for _ in range(25):
                    cache._atomic_write(target, payloads[tid])
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in payloads]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        with open(target, "rb") as fh:
            assert fh.read() in payloads.values()  # never interleaved
        leftovers = [f for f in os.listdir(tmp_path)
                     if f.startswith(".tmp-")]
        assert leftovers == []


# -- parallel scheduler ------------------------------------------------

class TestParallelObservability:
    def test_inline_jobs_record_spans_directly(self, tmp_path):
        TRACER.enable()
        summary = run_jobs(trace_jobs(("hello",), "s0"), max_workers=1,
                           cache_dir=str(tmp_path))
        assert not summary.errors
        jobs = [e for e in TRACER.events if e["name"] == "job"]
        assert len(jobs) == 2
        assert {e["attrs"]["mode"] for e in jobs} == {"interp", "jit"}

    def test_pooled_workers_ship_events_to_parent(self, tmp_path):
        TRACER.enable()
        summary = run_jobs(trace_jobs(("hello",), "s0"), max_workers=2,
                           cache_dir=str(tmp_path))
        assert not summary.errors
        jobs = [e for e in TRACER.events if e["name"] == "job"]
        assert len(jobs) == 2
        # Spans really came from the worker processes...
        assert all(e["pid"] != os.getpid() for e in jobs)
        # ...and the workers' VM/cache spans merged in too.
        assert any(e["name"] == "vm.run" for e in TRACER.events)
        assert any(e["name"] == "cache.store" for e in TRACER.events)

    def test_pooled_worker_errors_propagate(self, tmp_path):
        summary = run_jobs(
            [trace_job("no-such-workload", "s0", "interp"),
             trace_job("no-such-workload", "s0", "jit")],
            max_workers=2, cache_dir=str(tmp_path),
        )
        assert len(summary.errors) == 2
        for outcome in summary.errors:
            assert "no-such-workload" in outcome["error"]


# -- CLI crash-loss bugfix + manifest ----------------------------------

class TestCliFailurePaths:
    @pytest.fixture()
    def fake_experiments(self, monkeypatch):
        from repro.experiments import base
        from repro.experiments.base import ExperimentResult

        def okexp(scale="s1", benchmarks=None):
            return ExperimentResult("okexp", "ok", ["col"], [["v"]])

        def boomexp(scale="s1", benchmarks=None):
            raise RuntimeError("kaboom mid-run")

        base.all_experiments()  # force registry population first
        monkeypatch.setitem(base._REGISTRY, "okexp", okexp)
        monkeypatch.setitem(base._REGISTRY, "boomexp", boomexp)

    def test_raising_experiment_keeps_results_and_exits_nonzero(
            self, tmp_path, capsys, fake_experiments, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "")
        from repro.experiments.cli import main
        json_path = str(tmp_path / "out.json")
        trace_path = str(tmp_path / "out.trace.jsonl")
        rc = main(["okexp", "boomexp", "--json", json_path,
                   "--trace", trace_path])
        assert rc == 1
        err = capsys.readouterr().err
        assert "kaboom mid-run" in err

        # JSON survived the crash, with the completed experiment.
        results = json.load(open(json_path))
        assert [r["id"] for r in results] == ["okexp"]

        # The manifest records both outcomes next to the JSON output.
        manifest = json.load(open(str(tmp_path / "out.manifest.json")))
        by_id = {e["id"]: e for e in manifest["experiments"]}
        assert by_id["okexp"]["error"] is None
        assert "kaboom" in by_id["boomexp"]["error"]
        assert manifest["tool"] == "repro.experiments"

        # The event stream has both experiment spans, the failed one
        # tagged with its error.
        run = summarize.load(trace_path)
        spans = {e["attrs"]["id"]: e for e in run["spans"]
                 if e["name"] == "experiment"}
        assert spans["boomexp"]["attrs"]["error"] == "RuntimeError"
        assert "error" not in spans["okexp"]["attrs"]

    def test_unknown_id_still_reports_status_two(self, tmp_path, capsys,
                                                 fake_experiments,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "")
        from repro.experiments.cli import main
        json_path = str(tmp_path / "out.json")
        assert main(["okexp", "fig99", "--json", json_path]) == 2
        manifest = json.load(open(str(tmp_path / "out.manifest.json")))
        by_id = {e["id"]: e for e in manifest["experiments"]}
        assert "fig99" in by_id and by_id["fig99"]["error"]
