"""Runtime library classes: Vector, StringBuffer, Hashtable, Random, String."""

import pytest

from repro.isa import ProgramBuilder
from repro.vm import InterpretOnly, JavaVM

from helpers import expr_main, run_program


def _run_body(body, mode="interp"):
    return run_program(expr_main(body), mode=mode)


class TestVector:
    def test_add_and_element_at(self):
        def body(m):
            m.new("java/util/Vector").dup().iconst(4)
            m.invokespecial("java/util/Vector", "<init>", 1)
            m.astore(1)
            for _ in range(3):
                m.aload(1)
                m.new("java/lang/Object").dup()
                m.invokespecial("java/lang/Object", "<init>", 0)
                m.invokevirtual("java/util/Vector", "addElement", 1, False)
            m.aload(1).invokevirtual("java/util/Vector", "size", 0, True)
        for mode in ("interp", "jit"):
            assert _run_body(body, mode).stdout == ["3"]

    def test_growth_beyond_capacity(self):
        def body(m):
            m.new("java/util/Vector").dup().iconst(2)
            m.invokespecial("java/util/Vector", "<init>", 1)
            m.astore(1)
            loop = m.new_label()
            done = m.new_label()
            m.iconst(0).istore(2)
            m.bind(loop)
            m.iload(2).iconst(40).if_icmpge(done)
            m.aload(1)
            m.new("java/lang/Object").dup()
            m.invokespecial("java/lang/Object", "<init>", 0)
            m.invokevirtual("java/util/Vector", "addElement", 1, False)
            m.iinc(2, 1)
            m.goto(loop)
            m.bind(done)
            m.aload(1).invokevirtual("java/util/Vector", "size", 0, True)
        assert _run_body(body).stdout == ["40"]

    def test_element_identity(self):
        def body(m):
            m.new("java/util/Vector").dup().iconst(4)
            m.invokespecial("java/util/Vector", "<init>", 1)
            m.astore(1)
            m.new("java/lang/Object").dup()
            m.invokespecial("java/lang/Object", "<init>", 0)
            m.astore(2)
            m.aload(1).aload(2)
            m.invokevirtual("java/util/Vector", "addElement", 1, False)
            same = m.new_label()
            out = m.new_label()
            m.aload(1).iconst(0)
            m.invokevirtual("java/util/Vector", "elementAt", 1, True)
            m.aload(2).if_acmpeq(same)
            m.iconst(0).goto(out)
            m.bind(same)
            m.iconst(1)
            m.bind(out)
        assert _run_body(body).stdout == ["1"]

    def test_vector_ops_are_synchronized(self):
        def body(m):
            m.new("java/util/Vector").dup().iconst(4)
            m.invokespecial("java/util/Vector", "<init>", 1)
            m.astore(1)
            m.aload(1).invokevirtual("java/util/Vector", "size", 0, True)
        result = _run_body(body)
        assert result.sync["acquire_ops"] > 0


class TestStringBuffer:
    def test_append_chars_and_tostring(self):
        def body(m):
            m.new("java/lang/StringBuffer").dup()
            m.invokespecial("java/lang/StringBuffer", "<init>", 0)
            m.astore(1)
            for ch in "ok!":
                m.aload(1).iconst(ord(ch))
                m.invokevirtual("java/lang/StringBuffer", "append", 1, True)
                m.pop()
            m.aload(1)
            m.invokevirtual("java/lang/StringBuffer", "toString", 0, True)
            m.invokevirtual("java/lang/String", "length", 0, True)
        for mode in ("interp", "jit"):
            assert _run_body(body, mode).stdout == ["3"]

    def test_growth_past_initial_capacity(self):
        def body(m):
            m.new("java/lang/StringBuffer").dup()
            m.invokespecial("java/lang/StringBuffer", "<init>", 0)
            m.astore(1)
            loop = m.new_label()
            done = m.new_label()
            m.iconst(0).istore(2)
            m.bind(loop)
            m.iload(2).iconst(50).if_icmpge(done)
            m.aload(1).iconst(ord("x"))
            m.invokevirtual("java/lang/StringBuffer", "append", 1, True)
            m.pop()
            m.iinc(2, 1)
            m.goto(loop)
            m.bind(done)
            m.aload(1)
            m.invokevirtual("java/lang/StringBuffer", "length", 0, True)
        assert _run_body(body).stdout == ["50"]


class TestHashtable:
    def test_put_get_containskey(self):
        def body(m):
            m.new("java/util/Hashtable").dup()
            m.invokespecial("java/util/Hashtable", "<init>", 0)
            m.astore(1)
            m.aload(1).iconst(7).iconst(70)
            m.invokevirtual("java/util/Hashtable", "put", 2, False)
            m.aload(1).iconst(8).iconst(80)
            m.invokevirtual("java/util/Hashtable", "put", 2, False)
            m.aload(1).iconst(7)
            m.invokevirtual("java/util/Hashtable", "get", 1, True)
            m.aload(1).iconst(9)
            m.invokevirtual("java/util/Hashtable", "containsKey", 1, True)
            m.iadd()
        for mode in ("interp", "jit"):
            assert _run_body(body, mode).stdout == ["70"]

    def test_string_keys(self):
        def body(m):
            m.new("java/util/Hashtable").dup()
            m.invokespecial("java/util/Hashtable", "<init>", 0)
            m.astore(1)
            m.aload(1).ldc_str("key").iconst(5)
            m.invokevirtual("java/util/Hashtable", "put", 2, False)
            m.aload(1).ldc_str("key")
            m.invokevirtual("java/util/Hashtable", "get", 1, True)
        assert _run_body(body).stdout == ["5"]

    def test_put_overwrites(self):
        def body(m):
            m.new("java/util/Hashtable").dup()
            m.invokespecial("java/util/Hashtable", "<init>", 0)
            m.astore(1)
            m.aload(1).iconst(1).iconst(10)
            m.invokevirtual("java/util/Hashtable", "put", 2, False)
            m.aload(1).iconst(1).iconst(20)
            m.invokevirtual("java/util/Hashtable", "put", 2, False)
            m.aload(1).iconst(1)
            m.invokevirtual("java/util/Hashtable", "get", 1, True)
            m.aload(1).invokevirtual("java/util/Hashtable", "size", 0, True)
            m.iadd()
        assert _run_body(body).stdout == ["21"]


class TestString:
    def test_length_charat(self):
        def body(m):
            m.ldc_str("abc").astore(1)
            m.aload(1).invokevirtual("java/lang/String", "length", 0, True)
            m.aload(1).iconst(1)
            m.invokevirtual("java/lang/String", "charAt", 1, True)
            m.iadd()
        assert _run_body(body).stdout == [str(3 + ord("b"))]

    def test_equals_and_interning(self):
        def body(m):
            eq = m.new_label()
            out = m.new_label()
            m.ldc_str("same").ldc_str("same").if_acmpeq(eq)
            m.iconst(0).goto(out)
            m.bind(eq)
            m.iconst(1)
            m.bind(out)
        # ldc interns: identical literals are the same object
        assert _run_body(body).stdout == ["1"]

    def test_hashcode_java_semantics(self):
        def body(m):
            m.ldc_str("Ab").invokevirtual("java/lang/String", "hashCode",
                                          0, True)
        # Java: "Ab".hashCode() == 31*'A' + 'b' == 2113
        assert _run_body(body).stdout == ["2113"]

    def test_indexof(self):
        def body(m):
            m.ldc_str("hello").iconst(ord("l"))
            m.invokevirtual("java/lang/String", "indexOf", 1, True)
        assert _run_body(body).stdout == ["2"]


class TestRandom:
    def test_deterministic_sequence(self):
        def body(m):
            m.new("java/util/Random").dup().iconst(42)
            m.invokespecial("java/util/Random", "<init>", 1)
            m.astore(1)
            m.iconst(0).istore(2)
            for _ in range(4):
                m.iload(2).iconst(10).imul()
                m.aload(1).iconst(10)
                m.invokevirtual("java/util/Random", "nextInt", 1, True)
                m.iadd().istore(2)
            m.iload(2)
        a = _run_body(body).stdout
        b = _run_body(body, mode="jit").stdout
        assert a == b
        assert 0 <= int(a[0]) <= 9999

    def test_bounded(self):
        def body(m):
            m.new("java/util/Random").dup().iconst(7)
            m.invokespecial("java/util/Random", "<init>", 1)
            m.astore(1)
            loop = m.new_label()
            done = m.new_label()
            bad = m.new_label()
            m.iconst(0).istore(2)       # i
            m.iconst(1).istore(3)       # all_ok
            m.bind(loop)
            m.iload(2).iconst(50).if_icmpge(done)
            m.aload(1).iconst(5)
            m.invokevirtual("java/util/Random", "nextInt", 1, True)
            m.istore(4)
            m.iload(4).iflt(bad)
            m.iload(4).iconst(5).if_icmpge(bad)
            m.iinc(2, 1)
            m.goto(loop)
            m.bind(bad)
            m.iconst(0).istore(3)
            m.bind(done)
            m.iload(3)
        assert _run_body(body).stdout == ["1"]


class TestSystemAndIO:
    def test_println_string(self):
        def body(m):
            m.getstatic("java/lang/System", "out")
            m.ldc_str("output line")
            m.invokevirtual("java/io/PrintStream", "println", 1, False)
            m.iconst(0)
        result = _run_body(body)
        assert result.stdout == ["output line", "0"]

    def test_arraycopy(self):
        from repro.isa import ArrayType
        def body(m):
            m.iconst(5).newarray(ArrayType.INT).astore(1)
            m.iconst(5).newarray(ArrayType.INT).astore(2)
            m.aload(1).iconst(0).iconst(77).iastore()
            m.aload(1).iconst(1).iconst(88).iastore()
            m.aload(1).iconst(0).aload(2).iconst(2).iconst(2)
            m.invokestatic("java/lang/System", "arraycopy", 5, False)
            m.aload(2).iconst(2).iaload()
            m.aload(2).iconst(3).iaload().iadd()
        assert _run_body(body).stdout == ["165"]

    def test_math_natives(self):
        def body(m):
            m.fconst(16.0).invokestatic("java/lang/Math", "sqrt", 1, True)
            m.f2i()
            m.iconst(-5).invokestatic("java/lang/Math", "abs", 1, True)
            m.iadd()
            m.iconst(3).iconst(9)
            m.invokestatic("java/lang/Math", "max", 2, True)
            m.iadd()
            m.iconst(3).iconst(9)
            m.invokestatic("java/lang/Math", "min", 2, True)
            m.iadd()
        assert _run_body(body).stdout == ["21"]

    def test_object_hashcode_stable(self):
        def body(m):
            same = m.new_label()
            out = m.new_label()
            m.new("java/lang/Object").dup()
            m.invokespecial("java/lang/Object", "<init>", 0)
            m.astore(1)
            m.aload(1).invokevirtual("java/lang/Object", "hashCode", 0, True)
            m.aload(1).invokevirtual("java/lang/Object", "hashCode", 0, True)
            m.if_icmpeq(same)
            m.iconst(0).goto(out)
            m.bind(same)
            m.iconst(1)
            m.bind(out)
        assert _run_body(body).stdout == ["1"]
