"""Golden regression tests pinning the paper's qualitative claims.

Perf refactors must not silently break the *reproduction*: these pin
the headline architectural shapes — the interpreter's indirect-branch
problem and the JIT translate-phase write-miss dominance — with
comfortable margins below the measured values, so legitimate model
tweaks pass while a broken engine fails loudly.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import get_trace
from repro.arch.branch import PREDICTORS, extract_transfers, run_predictor
from repro.arch.caches import simulate_split_l1

BENCHMARKS = ("db", "compress", "jess")


@pytest.fixture(scope="module")
def traces():
    return {
        (name, mode): get_trace(name, "s0", mode)
        for name in BENCHMARKS
        for mode in ("interp", "jit")
    }


def _indirect_mpki(trace) -> float:
    """Indirect-target mispredictions per kilo-instruction (gshare+BTB)."""
    result = run_predictor(PREDICTORS["gshare"](),
                           *extract_transfers(trace))
    return 1000.0 * result.indirect_mispredicts / trace.n


class TestInterpreterIndirectBranchProblem:
    """Section 4/Table 2: the dispatch switch makes interpreter-mode
    indirect branches far more frequent *and* far less predictable."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_interp_indirect_mpki_exceeds_jit(self, traces, name):
        interp = _indirect_mpki(traces[(name, "interp")])
        jit = _indirect_mpki(traces[(name, "jit")])
        # Measured gap is >=3x on every benchmark; pin half that margin.
        assert interp > 1.5 * jit, (
            f"{name}: interpreter indirect MPKI {interp:.1f} no longer "
            f"dominates JIT's {jit:.1f}"
        )

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_interp_indirect_mpki_absolute_floor(self, traces, name):
        # The switch dispatch gives every benchmark >20 indirect
        # mispredicts per 1k instructions at s0 (measured 40-45).
        assert _indirect_mpki(traces[(name, "interp")]) > 20.0

    # db is translate-dominated at s0, which masks the per-transfer rate
    # gap there (the per-instruction MPKI tests above still cover it).
    @pytest.mark.parametrize("name", ("compress", "jess"))
    def test_interp_gshare_misprediction_worse(self, traces, name):
        rates = {
            mode: run_predictor(
                PREDICTORS["gshare"](),
                *extract_transfers(traces[(name, mode)])
            ).misprediction_rate
            for mode in ("interp", "jit")
        }
        assert rates["interp"] > rates["jit"]


class TestTranslatePhaseWriteMisses:
    """Figures 3/5: JIT-mode data misses are dominated by writes, and
    the translate portion's misses are mostly code-installation
    writes."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_translate_misses_mostly_writes(self, traces, name):
        res = simulate_split_l1(traces[(name, "jit")],
                                attribute_translate=True)
        dc = res.dcache
        writes_in_translate = dc.write_misses[1] / max(1, dc.misses[1])
        # Measured 74-84%; "dominates" pinned at a clear majority.
        assert writes_in_translate > 0.6, (
            f"{name}: only {100 * writes_in_translate:.0f}% of "
            "translate-phase D-misses are writes"
        )

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_jit_write_miss_share_exceeds_interp(self, traces, name):
        # Figure 3's configuration: direct-mapped D-cache, 32B lines.
        shares = {
            mode: simulate_split_l1(traces[(name, mode)],
                                    dcache={"assoc": 1})
            .dcache.write_miss_fraction
            for mode in ("interp", "jit")
        }
        assert shares["jit"] > 0.35
        assert shares["jit"] > shares["interp"] + 0.1


class TestModeLocalityOrdering:
    """Figure 4's companion shape: the interpreter's tiny I-footprint
    beats the JIT's generated code on instruction locality."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_interp_icache_beats_jit(self, traces, name):
        rates = {
            mode: simulate_split_l1(traces[(name, mode)]).icache.miss_rate
            for mode in ("interp", "jit")
        }
        assert rates["interp"] < rates["jit"]
