"""Bytecode verifier: structural checks and stack-depth inference."""

import pytest

from repro.isa import ClassBuilder, Op, VerifyError, verify_method
from repro.isa.instruction import Instr
from repro.isa.method import Method


def _method(code, argc=0, max_locals=None, name="m"):
    m = Method(name, argc=argc, is_static=True, max_locals=max_locals,
               code=code)
    cls = ClassBuilder("C").build()
    m.jclass = cls
    m.pool = cls.pool
    return m


class TestDepthInference:
    def test_linear_depths(self):
        m = _method([
            Instr(Op.ICONST, 1), Instr(Op.ICONST, 2), Instr(Op.IADD),
            Instr(Op.POP), Instr(Op.RETURN),
        ])
        assert verify_method(m) == [0, 1, 2, 1, 0]
        assert m.max_stack == 2

    def test_branch_merge_consistent(self):
        # if (x) {} else {}; both paths reach the join with depth 0
        m = _method([
            Instr(Op.ICONST, 1),         # 0
            Instr(Op.IFEQ, 3),           # 1 -> 3
            Instr(Op.NOP),               # 2
            Instr(Op.RETURN),            # 3
        ])
        assert verify_method(m) == [0, 1, 0, 0]

    def test_unreachable_marked(self):
        m = _method([
            Instr(Op.RETURN),
            Instr(Op.NOP),       # unreachable
            Instr(Op.RETURN),    # unreachable
        ])
        assert verify_method(m) == [0, -1, -1]

    def test_loop_converges(self):
        m = _method([
            Instr(Op.ICONST, 0),          # 0
            Instr(Op.ICONST, 1),          # 1: loop body pushes/pops evenly
            Instr(Op.POP),                # 2
            Instr(Op.GOTO, 1),            # 3
        ])
        # No exit, but the fixpoint converges and all depths agree.
        depths = verify_method(m)
        assert depths == [0, 1, 2, 1]

    def test_native_method_skipped(self):
        m = Method("n", native_impl=lambda *a: None)
        assert verify_method(m) == []


class TestRejections:
    def test_underflow(self):
        m = _method([Instr(Op.IADD), Instr(Op.RETURN)])
        with pytest.raises(VerifyError, match="underflow"):
            verify_method(m)

    def test_overflow_explicit_limit(self):
        m = _method([Instr(Op.ICONST, 1)] * 70 + [Instr(Op.RETURN)])
        with pytest.raises(VerifyError, match="exceeds max_stack 64") as exc:
            verify_method(m, max_stack=64)
        assert exc.value.code == "RS002"

    def test_overflow_declared_limit(self):
        m = _method([Instr(Op.ICONST, 1)] * 4 + [Instr(Op.RETURN)])
        m.declared_max_stack = 3
        with pytest.raises(VerifyError, match="exceeds max_stack 3"):
            verify_method(m)

    def test_computed_limit_admits_deep_stacks(self):
        # No declared limit: the bound comes from the method itself, so
        # the historical 64-slot default no longer rejects deep pushes.
        code = [Instr(Op.ICONST, 1)] * 70
        code += [Instr(Op.POP)] * 70
        code += [Instr(Op.RETURN)]
        m = _method(code)
        verify_method(m)
        assert m.max_stack == 70

    def test_fall_off_end(self):
        m = _method([Instr(Op.NOP)])
        with pytest.raises(VerifyError, match="falls off"):
            verify_method(m)

    def test_inconsistent_merge_depth(self):
        # Path A reaches index 3 with depth 1, path B with depth 0.
        m = _method([
            Instr(Op.ICONST, 1),          # 0: depth 0 -> 1
            Instr(Op.IFEQ, 3),            # 1: pops -> 0; branch to 3 @0
            Instr(Op.ICONST, 5),          # 2: -> 1, falls into 3 @1
            Instr(Op.RETURN),             # 3
        ])
        with pytest.raises(VerifyError, match="inconsistent"):
            verify_method(m)

    def test_branch_target_out_of_range(self):
        m = _method([Instr(Op.ICONST, 0), Instr(Op.IFEQ, 99),
                     Instr(Op.RETURN)])
        with pytest.raises(VerifyError, match="out of range"):
            verify_method(m)

    def test_local_out_of_range(self):
        m = _method([Instr(Op.ILOAD, 3), Instr(Op.POP), Instr(Op.RETURN)],
                    max_locals=2)
        with pytest.raises(VerifyError, match="local 3"):
            verify_method(m)

    def test_bad_pool_index(self):
        m = _method([Instr(Op.GETSTATIC, 42), Instr(Op.POP),
                     Instr(Op.RETURN)])
        with pytest.raises(VerifyError, match="pool index"):
            verify_method(m)

    def test_wrong_pool_entry_type(self):
        cb = ClassBuilder("C")
        mb = cb.method("m", static=True)
        idx = mb._pool.string("hello")
        mb.emit(Op.GETSTATIC, idx)
        mb.pop()
        mb.return_()
        cls = cb.build()
        with pytest.raises(VerifyError, match="expects"):
            verify_method(cls.methods["m"])

    def test_empty_code(self):
        m = _method([])
        with pytest.raises(VerifyError, match="empty"):
            verify_method(m)

    def test_ireturn_with_empty_stack(self):
        m = _method([Instr(Op.IRETURN)])
        with pytest.raises(VerifyError, match="underflow"):
            verify_method(m)


class TestMonitorBalance:
    def test_balanced_monitors_accepted(self):
        m = _method([
            Instr(Op.ACONST_NULL), Instr(Op.DUP),
            Instr(Op.MONITORENTER), Instr(Op.MONITOREXIT),
            Instr(Op.RETURN),
        ])
        verify_method(m)

    def test_return_while_holding_monitor(self):
        m = _method([Instr(Op.ACONST_NULL), Instr(Op.MONITORENTER),
                     Instr(Op.RETURN)])
        with pytest.raises(VerifyError, match="holding") as exc:
            verify_method(m)
        assert exc.value.code == "RM001"

    def test_exit_without_enter(self):
        m = _method([Instr(Op.ACONST_NULL), Instr(Op.MONITOREXIT),
                     Instr(Op.RETURN)])
        with pytest.raises(VerifyError, match="without a matching") as exc:
            verify_method(m)
        assert exc.value.code == "RM002"

    def test_unbalanced_on_one_path(self):
        # Taken path skips the monitorexit, so the return at 6 is
        # reached both holding and not holding the monitor.
        m = _method([
            Instr(Op.ACONST_NULL),       # 0
            Instr(Op.MONITORENTER),      # 1
            Instr(Op.ICONST, 1),         # 2
            Instr(Op.IFEQ, 6),           # 3 -> 6 with monitor held
            Instr(Op.ACONST_NULL),       # 4
            Instr(Op.MONITOREXIT),       # 5
            Instr(Op.RETURN),            # 6
        ])
        with pytest.raises(VerifyError) as exc:
            verify_method(m)
        assert exc.value.code in ("RM001", "RM003")

    def test_inconsistent_monitor_depth_at_merge(self):
        m = _method([
            Instr(Op.ICONST, 1),         # 0
            Instr(Op.IFEQ, 4),           # 1 -> 4 with no monitor
            Instr(Op.ACONST_NULL),       # 2
            Instr(Op.MONITORENTER),      # 3, falls into 4 holding one
            Instr(Op.NOP),               # 4: merge point
            Instr(Op.ACONST_NULL),       # 5
            Instr(Op.MONITOREXIT),       # 6
            Instr(Op.RETURN),            # 7
        ])
        with pytest.raises(VerifyError) as exc:
            verify_method(m)
        assert exc.value.code in ("RM002", "RM003")


class TestInvokeArity:
    def test_invoke_pops_args_and_receiver(self):
        cb = ClassBuilder("C")
        mb = cb.method("m", static=True)
        mb.aconst_null()
        mb.iconst(1).iconst(2)
        mb.invokevirtual("C", "target", 2, True)
        mb.pop()
        mb.return_()
        cls = cb.build()
        depths = verify_method(cls.methods["m"])
        assert depths[-2] == 1  # result on stack before pop

    def test_invokestatic_no_receiver(self):
        cb = ClassBuilder("C")
        mb = cb.method("m", static=True)
        mb.iconst(1)
        mb.invokestatic("C", "f", 1, False)
        mb.return_()
        cls = cb.build()
        depths = verify_method(cls.methods["m"])
        assert depths[-1] == 0
