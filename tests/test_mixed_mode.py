"""Mixed-mode execution: interpreted and compiled frames interleaving
(the transitions the oracle / counter strategies exercise)."""

import pytest

from repro.isa import ProgramBuilder
from repro.vm import JavaVM, OracleStrategy


def _call_chain_program():
    """main -> a -> b -> c, each layer loops a little."""
    pb = ProgramBuilder("t", main_class="Main")
    cb = pb.cls("Main")
    for name, callee in (("a", "b"), ("b", "c")):
        f = cb.method(name, argc=1, returns=True, static=True)
        f.iload(0).iconst(1).iadd()
        f.invokestatic("Main", callee, 1, True)
        f.ireturn()
    c = cb.method("c", argc=1, returns=True, static=True)
    loop = c.new_label()
    done = c.new_label()
    c.iconst(0).istore(1)
    c.bind(loop)
    c.iload(1).iconst(5).if_icmpge(done)
    c.iload(0).iconst(1).iadd().istore(0)
    c.iinc(1, 1)
    c.goto(loop)
    c.bind(done)
    c.iload(0).ireturn()
    m = cb.method("main", static=True)
    m.iconst(100).invokestatic("Main", "a", 1, True).istore(1)
    m.getstatic("java/lang/System", "out").iload(1)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb.build()


EXPECTED = "107"


@pytest.mark.parametrize("compiled_set", [
    set(),
    {"Main.a"},
    {"Main.b"},
    {"Main.c"},
    {"Main.a", "Main.c"},
    {"Main.main"},
    {"Main.main", "Main.a", "Main.b", "Main.c"},
])
def test_every_interleaving_agrees(compiled_set):
    """Interp->compiled and compiled->interp call transitions must be
    semantically invisible, whatever the mix."""
    vm = JavaVM(_call_chain_program(), strategy=OracleStrategy(compiled_set))
    result = vm.run()
    assert result.stdout == [EXPECTED], compiled_set
    compiled = {name for name, p in result.profiles.items()
                if p["translate_cycles"] > 0}
    assert compiled == compiled_set


def test_mixed_trace_switches_fetch_regions():
    """A compiled caller with an interpreted callee alternates between
    code-cache and interpreter-text fetches."""
    from repro.native.layout import (
        CODE_CACHE_BASE, CODE_CACHE_SIZE, INTERP_TEXT_BASE, INTERP_TEXT_SIZE,
    )
    vm = JavaVM(_call_chain_program(),
                strategy=OracleStrategy({"Main.main", "Main.a"}),
                record=True)
    trace = vm.run().trace
    in_cc = ((trace.pc >= CODE_CACHE_BASE)
             & (trace.pc < CODE_CACHE_BASE + CODE_CACHE_SIZE))
    in_interp = ((trace.pc >= INTERP_TEXT_BASE)
                 & (trace.pc < INTERP_TEXT_BASE + INTERP_TEXT_SIZE))
    assert in_cc.any() and in_interp.any()


def test_counter_strategy_mixes_over_time():
    """With threshold 3, the c() method is interpreted twice then
    compiled — both kinds of cycles appear in its profile."""
    pb = ProgramBuilder("t", main_class="Main")
    cb = pb.cls("Main")
    f = cb.method("f", returns=True, static=True)
    f.iconst(1).ireturn()
    m = cb.method("main", static=True)
    m.iconst(0).istore(1)
    for _ in range(6):
        m.iload(1).invokestatic("Main", "f", 0, True).iadd().istore(1)
    m.getstatic("java/lang/System", "out").iload(1)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    from repro.vm import CounterThreshold
    vm = JavaVM(pb.build(), strategy=CounterThreshold(3), inline=False)
    result = vm.run()
    assert result.stdout == ["6"]
    prof = result.profiles["Main.f"]
    assert prof["interp_cycles"] > 0
    assert prof["compiled_cycles"] > 0
    assert prof["invocations"] == 6
