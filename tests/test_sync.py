"""Synchronization: case classification, lock managers, speedups."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.native.trace import CountingSink
from repro.sync import (
    CASE_CONTENDED,
    CASE_DEEP_RECURSIVE,
    CASE_RECURSIVE,
    CASE_UNLOCKED,
    LOCK_MANAGERS,
    LockState,
    MonitorCacheLockManager,
    OneBitLockManager,
    RECURSION_LIMIT,
    ThinLockManager,
    classify,
)
from repro.vm.heap import Heap
from repro.isa import ClassBuilder


_HEAP = Heap()


def _obj():
    cb = ClassBuilder("X")
    cls = cb.build()
    cls.field_offsets = {}
    cls.field_types = {}
    cls.instance_bytes = 0
    return _HEAP.new_object(cls)


class _FakeLockable:
    """A lockable with a chosen lock-word address (bucket control)."""

    def __init__(self, lockword_addr):
        self.lockword_addr = lockword_addr
        self.lock = None


class TestClassification:
    def test_unlocked(self):
        assert classify(None, 1) == CASE_UNLOCKED
        s = LockState()
        assert classify(s, 1) == CASE_UNLOCKED

    def test_recursive(self):
        s = LockState()
        s.owner, s.count = 1, 1
        assert classify(s, 1) == CASE_RECURSIVE

    def test_deep_recursive(self):
        s = LockState()
        s.owner, s.count = 1, RECURSION_LIMIT
        assert classify(s, 1) == CASE_DEEP_RECURSIVE

    def test_contended(self):
        s = LockState()
        s.owner, s.count = 1, 1
        assert classify(s, 2) == CASE_CONTENDED


@pytest.mark.parametrize("manager_name", sorted(LOCK_MANAGERS))
class TestManagerProtocol:
    def test_acquire_release_cycle(self, manager_name):
        mgr = LOCK_MANAGERS[manager_name]()
        sink = CountingSink()
        obj = _obj()
        ok, case = mgr.acquire(1, obj, sink)
        assert ok and case == CASE_UNLOCKED
        assert obj.lock.owner == 1 and obj.lock.count == 1
        mgr.release(1, obj, sink)
        assert obj.lock.count == 0 and obj.lock.owner is None

    def test_recursion_counts(self, manager_name):
        mgr = LOCK_MANAGERS[manager_name]()
        sink = CountingSink()
        obj = _obj()
        for depth in range(1, 4):
            ok, _ = mgr.acquire(1, obj, sink)
            assert ok
            assert obj.lock.count == depth
        for depth in range(3):
            mgr.release(1, obj, sink)
        assert obj.lock.count == 0

    def test_contention_denied(self, manager_name):
        mgr = LOCK_MANAGERS[manager_name]()
        sink = CountingSink()
        obj = _obj()
        assert mgr.acquire(1, obj, sink)[0]
        ok, case = mgr.acquire(2, obj, sink)
        assert not ok and case == CASE_CONTENDED
        assert obj.lock.owner == 1

    def test_release_unowned_raises(self, manager_name):
        mgr = LOCK_MANAGERS[manager_name]()
        sink = CountingSink()
        obj = _obj()
        with pytest.raises(RuntimeError):
            mgr.release(1, obj, sink)

    def test_release_by_non_owner_raises(self, manager_name):
        mgr = LOCK_MANAGERS[manager_name]()
        sink = CountingSink()
        obj = _obj()
        mgr.acquire(1, obj, sink)
        with pytest.raises(RuntimeError):
            mgr.release(2, obj, sink)

    def test_stats_accumulate(self, manager_name):
        mgr = LOCK_MANAGERS[manager_name]()
        sink = CountingSink()
        a, b = _obj(), _obj()
        mgr.acquire(1, a, sink)
        mgr.acquire(1, b, sink)
        mgr.release(1, a, sink)
        snap = mgr.stats.snapshot()
        assert snap["acquire_ops"] == 2
        assert snap["release_ops"] == 1
        assert snap["distinct_objects"] == 2
        assert snap["cycles"] > 0
        assert snap["cycles"] == sink.cycles

    def test_trace_flagged_as_sync(self, manager_name):
        from repro.native.trace import RecordingSink
        mgr = LOCK_MANAGERS[manager_name]()
        sink = RecordingSink()
        obj = _obj()
        mgr.acquire(1, obj, sink)
        mgr.release(1, obj, sink)
        tr = sink.trace()
        from repro.native.nisa import FLAG_SYNC
        assert tr.n > 0
        assert all(tr.flags & FLAG_SYNC)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["a1", "r1", "a2", "r2"]), max_size=30))
    def test_state_machine_invariants(self, manager_name, ops):
        """Owner/count stay consistent under arbitrary acquire/release."""
        mgr = LOCK_MANAGERS[manager_name]()
        sink = CountingSink()
        obj = _obj()
        held = {1: 0, 2: 0}
        for op in ops:
            tid = int(op[1])
            if op[0] == "a":
                ok, case = mgr.acquire(tid, obj, sink)
                other = 2 if tid == 1 else 1
                if held[other] > 0:
                    assert not ok and case == CASE_CONTENDED
                else:
                    assert ok
                    held[tid] += 1
            else:
                if held[tid] > 0:
                    mgr.release(tid, obj, sink)
                    held[tid] -= 1
                else:
                    with pytest.raises(RuntimeError):
                        mgr.release(tid, obj, sink)
            state = obj.lock
            if state is not None and state.count:
                assert state.count == held[state.owner]


class TestCostOrdering:
    def test_thin_cheaper_than_monitor_cache_case_a(self):
        obj1, obj2 = _obj(), _obj()
        s1, s2 = CountingSink(), CountingSink()
        mc, tl = MonitorCacheLockManager(), ThinLockManager()
        for _ in range(50):
            mc.acquire(1, obj1, s1)
            mc.release(1, obj1, s1)
            tl.acquire(1, obj2, s2)
            tl.release(1, obj2, s2)
        ratio = mc.stats.cycles / tl.stats.cycles
        assert 1.8 <= ratio <= 4.0, f"uncontended speedup {ratio:.2f}"

    def test_one_bit_falls_back_on_recursion(self):
        obj = _obj()
        sink = CountingSink()
        ob = OneBitLockManager()
        ob.acquire(1, obj, sink)
        before = ob.stats.cycles
        ob.acquire(1, obj, sink)   # case b -> fat path
        recursive_cost = ob.stats.cycles - before
        obj2 = _obj()
        before = ob.stats.cycles
        ob.acquire(1, obj2, sink)  # case a -> fast path
        fast_cost = ob.stats.cycles - before
        assert recursive_cost > fast_cost

    def test_monitor_cache_chain_walk_costs_grow(self):
        """Objects hashing to one bucket pay longer chain walks."""
        mc = MonitorCacheLockManager()
        sink = CountingSink()
        # Force same bucket by aligning lockword addresses.
        from repro.sync.monitor_cache import N_BUCKETS
        objs = [_FakeLockable(0x1000 + i * 8 * N_BUCKETS) for i in range(6)]
        costs = []
        for o in objs:
            before = mc.stats.cycles
            mc.acquire(1, o, sink)
            costs.append(mc.stats.cycles - before)
        assert costs[-1] > costs[0]

    def test_thin_lock_inflation_is_sticky(self):
        tl = ThinLockManager()
        sink = CountingSink()
        obj = _obj()
        for _ in range(RECURSION_LIMIT):
            tl.acquire(1, obj, sink)
        ok, case = tl.acquire(1, obj, sink)
        assert ok and case == CASE_DEEP_RECURSIVE
        assert obj.lock.inflated
