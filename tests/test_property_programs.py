"""Property-based differential testing: random bytecode programs must
behave identically under the interpreter, the JIT, and the folding
interpreter — the contract the paper's whole methodology stands on."""

from hypothesis import given, settings, strategies as st

from repro.isa import ProgramBuilder
from repro.vm import CompileOnFirstUse, InterpretOnly, JavaVM

# Operations on a (depth, locals) abstract state.  Each entry:
# (name, min_depth, depth_delta).
_OPS = [
    ("iconst", 0, +1),
    ("iadd", 2, -1),
    ("isub", 2, -1),
    ("imul", 2, -1),
    ("iand", 2, -1),
    ("ior", 2, -1),
    ("ixor", 2, -1),
    ("ishl", 2, -1),
    ("ishr", 2, -1),
    ("ineg", 1, 0),
    ("i2b", 1, 0),
    ("i2s", 1, 0),
    ("dup", 1, +1),
    ("swap", 2, 0),
    ("store_load", 1, 0),   # istore k; iload k
    ("pop", 1, -1),
]

_op_indices = st.lists(
    st.tuples(st.integers(0, len(_OPS) - 1), st.integers(-64, 64)),
    min_size=1, max_size=60,
)


def _build(ops):
    """Random-but-valid straight-line program; returns the builder."""
    pb = ProgramBuilder("prop", main_class="P")
    m = pb.cls("P").method("main", static=True)
    depth = 0
    next_local = 1
    for op_index, imm in ops:
        name, min_depth, delta = _OPS[op_index]
        if depth < min_depth or (name == "iconst" and depth >= 24):
            name, min_depth, delta = "iconst", 0, +1
        if name == "iconst":
            m.iconst(imm)
        elif name == "store_load":
            slot = 1 + (next_local % 10)
            next_local += 1
            m.istore(slot).iload(slot)
        elif name in ("ishl", "ishr"):
            # keep shift counts well-defined (masked anyway, but bound
            # the *values* so multiplications stay cheap)
            getattr(m, name)()
        else:
            getattr(m, name)()
        depth += delta
        if name == "iconst":
            depth = depth  # already counted
    # reduce whatever is left to one value
    if depth == 0:
        m.iconst(0)
        depth = 1
    while depth > 1:
        m.iadd()
        depth -= 1
    m.istore(59)
    m.getstatic("java/lang/System", "out").iload(59)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


def _run(pb, strategy, **kwargs):
    vm = JavaVM(pb.build(), strategy=strategy, spawn_daemons=False,
                **kwargs)
    return vm.run()


@settings(max_examples=60, deadline=None)
@given(_op_indices)
def test_interpreter_and_jit_agree(ops):
    interp = _run(_build(ops), InterpretOnly())
    jit = _run(_build(ops), CompileOnFirstUse())
    assert interp.stdout == jit.stdout
    assert interp.bytecodes_executed == jit.bytecodes_executed


@settings(max_examples=25, deadline=None)
@given(_op_indices)
def test_folding_interpreter_agrees(ops):
    base = _run(_build(ops), InterpretOnly())
    folded = _run(_build(ops), InterpretOnly(), folding=True)
    assert base.stdout == folded.stdout
    assert folded.instructions <= base.instructions


@settings(max_examples=25, deadline=None)
@given(_op_indices)
def test_result_is_a_java_int(ops):
    result = _run(_build(ops), InterpretOnly())
    value = int(result.stdout[-1])
    assert -(2**31) <= value < 2**31


@settings(max_examples=20, deadline=None)
@given(_op_indices)
def test_trace_replay_simulators_accept_any_program(ops):
    """Whatever the program, its trace must be simulable end to end."""
    from repro.arch.branch import compare_predictors
    from repro.arch.caches import simulate_split_l1
    result = _run(_build(ops), CompileOnFirstUse(), record=True)
    res = simulate_split_l1(result.trace)
    assert res.icache.total_refs == result.trace.n
    preds = compare_predictors(result.trace, names=("gshare",))
    assert preds["gshare"].transfers > 0


@settings(max_examples=40, deadline=None)
@given(_op_indices)
def test_dataflow_fixpoints_are_idempotent(ops):
    """Re-applying every transfer at the solved fixpoint changes nothing."""
    from repro.analysis.dataflow import check_fixpoint
    from repro.analysis.dataflow.constprop import ConstProblem
    from repro.analysis.dataflow.liveness import LivenessProblem
    from repro.analysis.dataflow.typestate import TypeProblem
    from repro.analysis.dataflow.solver import solve

    program = _build(ops).build()
    method = program.get_class("P").methods["main"]
    for problem in (TypeProblem(program), LivenessProblem(),
                    ConstProblem()):
        assert check_fixpoint(method, problem, solve(method, problem))


@settings(max_examples=40, deadline=None)
@given(_op_indices)
def test_typed_verifier_accepts_generated_programs(ops):
    """Anything the generator emits is well-typed: the typed verifier
    must agree with the interpreter's acceptance."""
    from repro.analysis.dataflow.typestate import typecheck_method

    pb = _build(ops)
    program = pb.build(typed=True)       # typed verification at link time
    method = program.get_class("P").methods["main"]
    result = typecheck_method(method, program)
    assert not result.errors
    # the same program still runs
    vm = JavaVM(program, strategy=InterpretOnly(), spawn_daemons=False)
    assert vm.run().stdout


@settings(max_examples=30, deadline=None)
@given(_op_indices)
def test_jit_optimizations_preserve_semantics(ops):
    """Liveness DSE + escape-analysis lock elision never change output."""
    base = _run(_build(ops), CompileOnFirstUse())
    opt = _run(_build(ops), CompileOnFirstUse(), jit_opt=True,
               lock_elision=True)
    assert base.stdout == opt.stdout
    assert base.bytecodes_executed == opt.bytecodes_executed
    assert opt.sync["elision_violations"] == 0
