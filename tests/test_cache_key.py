"""Property-based tests for the content-addressed cache.

The cache key must be a pure function of (source digest, job config):
identical inputs always produce identical keys, and *any* change to a
trace-affecting module source or to any config field must change the
key.  Corrupt or truncated archives are detected and recomputed, never
crashed on — and the cache directory is resolved from the environment
at call time, so tests can redirect it per-test.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import cache
from repro.analysis.runner import get_trace, run_vm

# -- key properties ----------------------------------------------------

_field_values = st.one_of(
    st.text(max_size=12),
    st.integers(-1000, 1000),
    st.booleans(),
    st.none(),
    st.lists(st.text(max_size=6), max_size=4),
)
_configs = st.dictionaries(
    # "root" is cache_key's source-tree parameter, not a config field.
    st.text(st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=10).filter(lambda k: k != "root"),
    _field_values,
    min_size=1,
    max_size=6,
)


class TestKeyProperties:
    @settings(max_examples=50, deadline=None)
    @given(_configs)
    def test_same_config_same_key(self, config):
        assert (cache.cache_key("trace", **config)
                == cache.cache_key("trace", **config))

    @settings(max_examples=50, deadline=None)
    @given(_configs, st.data())
    def test_any_field_change_changes_key(self, config, data):
        field = data.draw(st.sampled_from(sorted(config)))
        new_value = data.draw(_field_values.filter(
            lambda v, old=config[field]: v != old))
        changed = dict(config, **{field: new_value})
        assert (cache.cache_key("run", **config)
                != cache.cache_key("run", **changed))

    @settings(max_examples=20, deadline=None)
    @given(_configs)
    def test_kind_is_part_of_the_key(self, config):
        assert (cache.cache_key("trace", **config)
                != cache.cache_key("run", **config))

    def test_added_and_removed_fields_change_key(self):
        base = cache.cache_key("run", workload="db", scale="s1")
        assert base != cache.cache_key("run", workload="db", scale="s1",
                                       inline=True)
        assert base != cache.cache_key("run", workload="db")


# -- source digest -----------------------------------------------------

def _fake_source_tree(root, content=b"x = 1\n"):
    vm = os.path.join(str(root), "vm")
    os.makedirs(vm, exist_ok=True)
    with open(os.path.join(vm, "machine.py"), "wb") as fh:
        fh.write(content)
    return str(root)


class TestSourceDigest:
    def test_stable_for_identical_tree(self, tmp_path):
        root = _fake_source_tree(tmp_path)
        first = cache.source_digest(root)
        cache.reset_source_digest()
        assert cache.source_digest(root) == first

    def test_source_edit_changes_digest_and_key(self, tmp_path):
        root = _fake_source_tree(tmp_path)
        before = cache.source_digest(root)
        key_before = cache.cache_key("trace", root=root, workload="db")
        _fake_source_tree(tmp_path, content=b"x = 2\n")
        cache.reset_source_digest()
        after = cache.source_digest(root)
        assert after != before
        assert cache.cache_key("trace", root=root, workload="db") != key_before

    def test_new_module_changes_digest(self, tmp_path):
        root = _fake_source_tree(tmp_path)
        before = cache.source_digest(root)
        with open(os.path.join(root, "vm", "jit.py"), "wb") as fh:
            fh.write(b"y = 3\n")
        cache.reset_source_digest()
        assert cache.source_digest(root) != before

    def test_non_trace_affecting_files_ignored(self, tmp_path):
        root = _fake_source_tree(tmp_path)
        before = cache.source_digest(root)
        os.makedirs(os.path.join(root, "experiments"), exist_ok=True)
        with open(os.path.join(root, "experiments", "fig1.py"), "wb") as fh:
            fh.write(b"z = 4\n")
        cache.reset_source_digest()
        assert cache.source_digest(root) == before

    def test_real_package_digest_covers_the_vm(self):
        files = cache.trace_affecting_files()
        names = {os.path.basename(f) for f in files}
        assert {"machine.py", "interpreter.py", "trace.py",
                "runner.py"} <= names
        assert all(f.endswith(".py") for f in files)


# -- corruption recovery ----------------------------------------------

class TestCorruptArchives:
    def _trace_path(self, cache_dir):
        key = cache.cache_key("trace", workload="hello", scale="s0",
                              mode="interp")
        return cache.trace_path(cache_dir, "hello", "s0", "interp", key)

    def test_corrupt_trace_recomputed(self, tmp_path):
        cache_dir = str(tmp_path)
        fresh = get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        path = self._trace_path(cache_dir)
        assert os.path.exists(path)
        with open(path, "wb") as fh:
            fh.write(b"this is not an npz archive")
        cache.reset_stats()
        recovered = get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        assert recovered.n == fresh.n
        assert (recovered.pc == fresh.pc).all()
        assert cache.STATS.corrupt == 1
        # The recomputed archive replaced the corrupt one and loads again.
        cache.reset_stats()
        get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        assert cache.STATS.trace_hits == 1
        assert cache.STATS.corrupt == 0

    def test_truncated_trace_recomputed(self, tmp_path):
        cache_dir = str(tmp_path)
        fresh = get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        path = self._trace_path(cache_dir)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        cache.reset_stats()
        recovered = get_trace("hello", "s0", "interp", cache_dir=cache_dir)
        assert recovered.n == fresh.n
        assert cache.STATS.corrupt == 1

    def test_corrupt_run_result_recomputed(self, tmp_path):
        cache_dir = str(tmp_path)
        fresh = run_vm("hello", scale="s0", mode="interp",
                       cache_dir=cache_dir)
        runs = os.path.join(cache_dir, "runs")
        pkls = [f for f in os.listdir(runs) if f.endswith(".pkl")]
        assert len(pkls) == 1
        path = os.path.join(runs, pkls[0])
        with open(path, "wb") as fh:
            fh.write(pickle.dumps({"not": "a VMResult"})[:-4])
        cache.reset_stats()
        recovered = run_vm("hello", scale="s0", mode="interp",
                           cache_dir=cache_dir)
        assert recovered.stdout == fresh.stdout
        assert recovered.cycles == fresh.cycles
        assert cache.STATS.corrupt == 1


# -- cached results are indistinguishable ------------------------------

class TestRoundTrip:
    def test_cached_run_equals_fresh_run(self, tmp_path):
        cold = run_vm("db", scale="s0", mode="jit", cache_dir=str(tmp_path))
        warm = run_vm("db", scale="s0", mode="jit", cache_dir=str(tmp_path))
        assert warm.stdout == cold.stdout
        assert warm.cycles == cold.cycles
        assert warm.translate_cycles == cold.translate_cycles
        assert (warm.category_counts == cold.category_counts).all()
        assert warm.footprint == cold.footprint

    def test_uncacheable_modes_bypass_cache(self, tmp_path):
        from repro.vm.strategy import InterpretOnly
        run_vm("hello", scale="s0", mode=InterpretOnly(),
               cache_dir=str(tmp_path))
        assert not os.path.exists(os.path.join(str(tmp_path), "runs"))

    def test_recording_runs_bypass_result_cache(self, tmp_path):
        result = run_vm("hello", scale="s0", mode="interp", record=True,
                        cache_dir=str(tmp_path))
        assert result.trace is not None
        assert not os.path.exists(os.path.join(str(tmp_path), "runs"))


# -- call-time environment resolution (the DEFAULT_CACHE_DIR fix) ------

class TestCallTimeCacheDir:
    def test_env_redirect_after_import(self, tmp_path, monkeypatch):
        """REPRO_TRACE_CACHE is honoured per call, not frozen at import."""
        target = tmp_path / "redirected"
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(target))
        assert cache.default_cache_dir() == str(target)
        get_trace("hello", "s0", "interp")
        assert (target / "traces").is_dir()
        assert any(f.endswith(".npy")
                   for f in os.listdir(target / "traces"))

    def test_empty_env_disables_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "")
        assert cache.default_cache_dir() is None
        monkeypatch.chdir(tmp_path)
        get_trace("hello", "s0", "interp")
        assert not os.path.exists(tmp_path / ".trace_cache")

    def test_explicit_empty_arg_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "env"))
        get_trace("hello", "s0", "interp", cache_dir="")
        assert not os.path.exists(tmp_path / "env")

    def test_resolve_dir_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "/env/dir")
        assert cache.resolve_dir(None) == "/env/dir"
        assert cache.resolve_dir("/explicit") == "/explicit"
        assert cache.resolve_dir("") is None
        monkeypatch.delenv("REPRO_TRACE_CACHE")
        assert cache.resolve_dir(None) == ".trace_cache"
