"""Java value semantics: 32-bit wrapping, division, shifts, fcmp."""

import pytest
from hypothesis import given, strategies as st

from repro.vm import values

i32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestI32:
    def test_identity_in_range(self):
        assert values.i32(123) == 123
        assert values.i32(-123) == -123

    def test_wraps_positive_overflow(self):
        assert values.i32(2**31) == -(2**31)

    def test_wraps_negative_overflow(self):
        assert values.i32(-(2**31) - 1) == 2**31 - 1

    def test_extremes(self):
        assert values.i32(2**31 - 1) == 2**31 - 1
        assert values.i32(-(2**31)) == -(2**31)

    def test_multiplication_wraps(self):
        assert values.i32(1103515245 * 1103515245) == values.i32(
            (1103515245 * 1103515245) % 2**32
        )

    @given(st.integers())
    def test_always_in_range(self, x):
        v = values.i32(x)
        assert -(2**31) <= v < 2**31

    @given(i32s)
    def test_idempotent(self, x):
        assert values.i32(values.i32(x)) == values.i32(x)

    @given(i32s, i32s)
    def test_addition_matches_modular(self, a, b):
        assert values.i32(a + b) == values.i32((a + b) % 2**32)


class TestDivision:
    def test_truncates_toward_zero(self):
        assert values.idiv(7, 2) == 3
        assert values.idiv(-7, 2) == -3
        assert values.idiv(7, -2) == -3
        assert values.idiv(-7, -2) == 3

    def test_rem_sign_follows_dividend(self):
        assert values.irem(7, 2) == 1
        assert values.irem(-7, 2) == -1
        assert values.irem(7, -2) == 1
        assert values.irem(-7, -2) == -1

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            values.idiv(1, 0)
        with pytest.raises(ZeroDivisionError):
            values.irem(1, 0)

    def test_int_min_by_minus_one_wraps(self):
        assert values.idiv(-(2**31), -1) == -(2**31)

    @given(i32s, i32s.filter(lambda v: v != 0))
    def test_div_rem_identity(self, a, b):
        q = values.idiv(a, b)
        r = values.irem(a, b)
        assert values.i32(q * b + r) == a


class TestShifts:
    def test_shl_masks_count(self):
        assert values.ishl(1, 33) == 2  # 33 & 31 == 1

    def test_shr_is_arithmetic(self):
        assert values.ishr(-8, 1) == -4

    def test_ushr_is_logical(self):
        assert values.iushr(-1, 28) == 15

    def test_ushr_zero_count(self):
        assert values.iushr(-5, 0) == -5

    @given(i32s, st.integers(min_value=0, max_value=31))
    def test_shl_in_range(self, a, s):
        v = values.ishl(a, s)
        assert -(2**31) <= v < 2**31


class TestNarrowing:
    def test_i8(self):
        assert values.i8(0x80) == -128
        assert values.i8(0x7F) == 127
        assert values.i8(256) == 0

    def test_i16(self):
        assert values.i16(0x8000) == -32768
        assert values.i16(0x7FFF) == 32767

    def test_u16(self):
        assert values.u16(-1) == 0xFFFF
        assert values.u16(0x10041) == 0x41


class TestFcmp:
    def test_ordering(self):
        assert values.fcmp(1.0, 2.0, -1) == -1
        assert values.fcmp(2.0, 1.0, -1) == 1
        assert values.fcmp(1.0, 1.0, -1) == 0

    def test_nan_uses_nan_result(self):
        nan = float("nan")
        assert values.fcmp(nan, 1.0, -1) == -1
        assert values.fcmp(1.0, nan, 1) == 1

    @given(st.floats(allow_nan=False), st.floats(allow_nan=False))
    def test_antisymmetric(self, a, b):
        assert values.fcmp(a, b, -1) == -values.fcmp(b, a, -1)
