"""Cache simulator: exact behaviour on hand-computed reference streams."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.caches import CacheConfig, CacheSim, simulate


def _sim(size=1024, block=32, assoc=1):
    return CacheSim(CacheConfig(size, block, assoc))


class TestConfig:
    def test_n_sets(self):
        assert CacheConfig(1024, 32, 1).n_sets == 32
        assert CacheConfig(1024, 32, 4).n_sets == 8

    def test_rejects_non_powers_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 32, 1)
        with pytest.raises(ValueError):
            CacheConfig(1024, 24, 1)
        with pytest.raises(ValueError):
            CacheConfig(1024, 32, 3)

    def test_rejects_cache_smaller_than_set(self):
        with pytest.raises(ValueError):
            CacheConfig(32, 32, 4)


class TestDirectMapped:
    def test_cold_miss_then_hit(self):
        stats = _sim().run(np.array([0, 0, 4, 31, 32]))
        # block 0 covers addrs 0..31: 1 miss + 3 hits; addr 32: new block
        assert stats.total_refs == 5
        assert stats.total_misses == 2
        assert stats.compulsory[0] == 2

    def test_conflict_misses(self):
        # 1024B direct-mapped: addresses 0 and 1024 collide in set 0.
        addrs = np.array([0, 1024, 0, 1024])
        stats = _sim().run(addrs)
        assert stats.total_misses == 4
        assert stats.compulsory[0] == 2   # the other two are conflicts

    def test_distinct_sets_do_not_conflict(self):
        addrs = np.array([0, 32, 0, 32] * 10)
        stats = _sim().run(addrs)
        assert stats.total_misses == 2

    def test_miss_rate(self):
        stats = _sim().run(np.array([0, 0, 0, 1024]))
        assert stats.miss_rate == pytest.approx(0.5)


class TestAssociativity:
    def test_two_way_absorbs_pair_conflict(self):
        addrs = np.array([0, 1024, 0, 1024] * 5)
        assert _sim(assoc=1).run(addrs).total_misses == 20
        assert _sim(assoc=2).run(addrs).total_misses == 2

    def test_lru_victim_selection(self):
        # 2-way set: A, B fill the set; touching A again makes B the LRU;
        # C evicts B; B then misses, A still hits.
        A, B, C = 0, 1024, 2048
        sim = _sim(assoc=2)
        stats = sim.run(np.array([A, B, A, C, A, B]))
        # misses: A, B, C, B(evicted) = 4
        assert stats.total_misses == 4

    def test_full_assoc_capacity(self):
        # 4 blocks capacity, cyclic 5-block walk: always misses (LRU worst).
        sim = CacheSim(CacheConfig(128, 32, 4))
        addrs = np.array([32 * (i % 5) for i in range(25)])
        assert sim.run(addrs).total_misses == 25

    def test_lru_inclusion(self):
        """A larger fully-associative LRU never misses more (stack property)."""
        rng = np.random.default_rng(7)
        addrs = rng.integers(0, 4096, size=2000) * 4
        small = CacheSim(CacheConfig(512, 32, 16))   # fully assoc, 16 blocks
        big = CacheSim(CacheConfig(1024, 32, 32))    # fully assoc, 32 blocks
        assert big.run(addrs).total_misses <= small.run(addrs).total_misses


class TestWriteTracking:
    def test_write_misses_classified(self):
        addrs = np.array([0, 64, 0, 64])
        writes = np.array([True, False, True, False])
        stats = _sim(size=32).run(addrs, writes=writes)  # 1 set, everything conflicts
        assert stats.write_refs[0] == 2
        assert stats.write_misses[0] == 2
        assert stats.write_miss_fraction == pytest.approx(0.5)

    def test_write_allocate(self):
        # A write miss installs the block: the following read hits.
        stats = _sim().run(np.array([0, 4]), writes=np.array([True, False]))
        assert stats.total_misses == 1


class TestGroupsAndWindows:
    def test_group_attribution(self):
        addrs = np.array([0, 1024, 0, 1024])
        groups = np.array([0, 1, 0, 1])
        stats = _sim().run(addrs, groups=groups, n_groups=2)
        assert stats.refs.tolist() == [2, 2]
        assert stats.misses.tolist() == [2, 2]

    def test_shared_state_across_groups(self):
        # Group 1 warms the block; group 0 then hits.
        addrs = np.array([0, 0])
        groups = np.array([1, 0])
        stats = _sim().run(addrs, groups=groups, n_groups=2)
        assert stats.misses.tolist() == [0, 1]

    def test_window_series(self):
        addrs = np.array([0, 0, 1024, 1024, 0, 0])
        stats = _sim().run(addrs, window=2)
        assert stats.window_refs.tolist() == [2, 2, 2]
        assert stats.window_misses.tolist() == [1, 1, 1]

    def test_state_persists_across_runs(self):
        sim = _sim()
        sim.run(np.array([0]))
        stats = sim.run(np.array([0]))
        assert stats.total_misses == 0
        sim.reset()
        stats = sim.run(np.array([0]))
        assert stats.total_misses == 1


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=300))
    def test_counts_consistent(self, raw):
        addrs = np.array(raw)
        stats = simulate(addrs, size=1024, block=32, assoc=2)
        assert stats.total_refs == len(raw)
        assert 0 <= stats.total_misses <= stats.total_refs
        assert stats.compulsory[0] == len({a >> 5 for a in raw} &
                                          {a >> 5 for a in raw})
        assert stats.compulsory[0] == len({a >> 5 for a in raw})
        assert stats.compulsory[0] <= stats.total_misses

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1,
                    max_size=200))
    def test_repeat_stream_second_pass_fits(self, raw):
        """If the footprint fits, a second pass over the stream is all hits."""
        footprint_blocks = len({a >> 5 for a in raw})
        if footprint_blocks > 32:
            return
        sim = CacheSim(CacheConfig(1024, 32, 32))  # fully associative
        sim.run(np.array(raw))
        second = sim.run(np.array(raw))
        assert second.total_misses == 0
