"""Bytecode semantics, opcode by opcode, under both execution modes.

Every case runs the same program interpreted and JIT-compiled and
asserts identical results — the core contract that lets the paper's
methodology compare the two modes on one workload.
"""

import pytest

from repro.isa import ArrayType

from helpers import eval_both_modes


class TestArithmetic:
    @pytest.mark.parametrize("a,b,op,expected", [
        (7, 3, "iadd", 10),
        (7, 3, "isub", 4),
        (7, 3, "imul", 21),
        (7, 3, "idiv", 2),
        (-7, 3, "idiv", -2),
        (7, 3, "irem", 1),
        (-7, 3, "irem", -1),
        (6, 3, "iand", 2),
        (6, 3, "ior", 7),
        (6, 3, "ixor", 5),
        (3, 2, "ishl", 12),
        (-8, 1, "ishr", -4),
        (2**31 - 1, 1, "iadd", -(2**31)),
    ])
    def test_int_binops(self, a, b, op, expected):
        def body(m):
            m.iconst(a).iconst(b)
            getattr(m, op)()
        assert eval_both_modes(body) == expected

    def test_iushr(self):
        def body(m):
            m.iconst(-1).iconst(28).iushr()
        assert eval_both_modes(body) == 15

    def test_ineg(self):
        def body(m):
            m.iconst(42).ineg()
        assert eval_both_modes(body) == -42

    def test_imul_wraps(self):
        def body(m):
            m.iconst(0x10000).iconst(0x10000).imul()
        assert eval_both_modes(body) == 0

    def test_float_pipeline(self):
        def body(m):
            m.fconst(1.5).fconst(2.5).fadd()      # 4.0
            m.fconst(2.0).fmul()                  # 8.0
            m.fconst(4.0).fdiv()                  # 2.0
            m.fneg()                              # -2.0
            m.f2i()
        assert eval_both_modes(body) == -2

    def test_i2f_f2i_roundtrip(self):
        def body(m):
            m.iconst(123).i2f().f2i()
        assert eval_both_modes(body) == 123

    def test_narrowing_chain(self):
        def body(m):
            m.iconst(0x1FF).i2b()
        assert eval_both_modes(body) == -1

    def test_i2c(self):
        def body(m):
            m.iconst(-1).i2c()
        assert eval_both_modes(body) == 0xFFFF

    def test_i2s(self):
        def body(m):
            m.iconst(0x18000).i2s()
        assert eval_both_modes(body) == -32768

    @pytest.mark.parametrize("a,b,expected", [
        (1.0, 2.0, -1), (2.0, 1.0, 1), (1.0, 1.0, 0),
    ])
    def test_fcmpl(self, a, b, expected):
        def body(m):
            m.fconst(a).fconst(b).fcmpl()
        assert eval_both_modes(body) == expected


class TestLocalsAndStack:
    def test_store_load_roundtrip(self):
        def body(m):
            m.iconst(11).istore(1).iload(1)
        assert eval_both_modes(body) == 11

    def test_iinc(self):
        def body(m):
            m.iconst(5).istore(1)
            m.iinc(1, 7)
            m.iinc(1, -2)
            m.iload(1)
        assert eval_both_modes(body) == 10

    def test_dup(self):
        def body(m):
            m.iconst(4).dup().iadd()
        assert eval_both_modes(body) == 8

    def test_swap(self):
        def body(m):
            m.iconst(10).iconst(3).swap().isub()
        assert eval_both_modes(body) == -7

    def test_dup_x1(self):
        # [a b] -> [b a b]: (1 2) -> 2 1 2 -> 2 - (1 - 2)... compute concretely
        def body(m):
            m.iconst(1).iconst(2).dup_x1()
            m.isub().isub()   # 2 - (1 - 2) = 3... stack: [2,1,2] -> [2,-1] -> [3]
        assert eval_both_modes(body) == 3

    def test_pop(self):
        def body(m):
            m.iconst(9).iconst(5).pop()
        assert eval_both_modes(body) == 9

    def test_float_locals(self):
        def body(m):
            m.fconst(2.5).fstore(1).fload(1).fload(1).fadd().f2i()
        assert eval_both_modes(body) == 5


class TestControlFlow:
    @pytest.mark.parametrize("value,op,taken", [
        (0, "ifeq", True), (1, "ifeq", False),
        (0, "ifne", False), (1, "ifne", True),
        (-1, "iflt", True), (0, "iflt", False),
        (0, "ifge", True), (-1, "ifge", False),
        (1, "ifgt", True), (0, "ifgt", False),
        (0, "ifle", True), (1, "ifle", False),
    ])
    def test_if1(self, value, op, taken):
        def body(m):
            yes = m.new_label()
            out = m.new_label()
            m.iconst(value)
            getattr(m, op)(yes)
            m.iconst(0).goto(out)
            m.bind(yes)
            m.iconst(1)
            m.bind(out)
        assert eval_both_modes(body) == (1 if taken else 0)

    @pytest.mark.parametrize("a,b,op,taken", [
        (1, 1, "if_icmpeq", True), (1, 2, "if_icmpeq", False),
        (1, 2, "if_icmpne", True),
        (1, 2, "if_icmplt", True), (2, 2, "if_icmplt", False),
        (2, 2, "if_icmpge", True),
        (3, 2, "if_icmpgt", True),
        (2, 3, "if_icmple", True),
    ])
    def test_if2(self, a, b, op, taken):
        def body(m):
            yes = m.new_label()
            out = m.new_label()
            m.iconst(a).iconst(b)
            getattr(m, op)(yes)
            m.iconst(0).goto(out)
            m.bind(yes)
            m.iconst(1)
            m.bind(out)
        assert eval_both_modes(body) == (1 if taken else 0)

    def test_null_branches(self):
        def body(m):
            yes = m.new_label()
            out = m.new_label()
            m.aconst_null().ifnull(yes)
            m.iconst(0).goto(out)
            m.bind(yes)
            m.iconst(1)
            m.bind(out)
        assert eval_both_modes(body) == 1

    def test_acmp(self):
        def body(m):
            same = m.new_label()
            out = m.new_label()
            m.new("java/lang/Object").dup()
            m.invokespecial("java/lang/Object", "<init>", 0)
            m.astore(1)
            m.aload(1).aload(1).if_acmpeq(same)
            m.iconst(0).goto(out)
            m.bind(same)
            m.iconst(1)
            m.bind(out)
        assert eval_both_modes(body) == 1

    def test_counting_loop(self):
        def body(m):
            loop = m.new_label()
            done = m.new_label()
            m.iconst(0).istore(1)
            m.iconst(0).istore(2)
            m.bind(loop)
            m.iload(1).iconst(10).if_icmpge(done)
            m.iload(2).iload(1).iadd().istore(2)
            m.iinc(1, 1)
            m.goto(loop)
            m.bind(done)
            m.iload(2)
        assert eval_both_modes(body) == 45

    @pytest.mark.parametrize("key,expected", [(0, 10), (1, 11), (2, 12),
                                              (5, 99), (-3, 99)])
    def test_tableswitch(self, key, expected):
        def body(m):
            cases = [m.new_label() for _ in range(3)]
            default = m.new_label()
            out = m.new_label()
            m.iconst(key)
            m.tableswitch(0, cases, default)
            for i, label in enumerate(cases):
                m.bind(label)
                m.iconst(10 + i).goto(out)
            m.bind(default)
            m.iconst(99)
            m.bind(out)
        assert eval_both_modes(body) == expected

    @pytest.mark.parametrize("key,expected", [(7, 1), (42, 2), (0, -1)])
    def test_lookupswitch(self, key, expected):
        def body(m):
            c7, c42, default, out = (m.new_label() for _ in range(4))
            m.iconst(key)
            m.lookupswitch({7: c7, 42: c42}, default)
            m.bind(c7)
            m.iconst(1).goto(out)
            m.bind(c42)
            m.iconst(2).goto(out)
            m.bind(default)
            m.iconst(-1)
            m.bind(out)
        assert eval_both_modes(body) == expected


class TestArrays:
    @pytest.mark.parametrize("atype,store,load,value", [
        (ArrayType.INT, "iastore", "iaload", 12345),
        (ArrayType.BYTE, "bastore", "baload", -12),
        (ArrayType.CHAR, "castore", "caload", 65),
        (ArrayType.SHORT, "iastore", "iaload", 77),
    ])
    def test_primitive_roundtrip(self, atype, store, load, value):
        def body(m):
            m.iconst(4).newarray(atype).astore(1)
            m.aload(1).iconst(2).iconst(value)
            getattr(m, store)()
            m.aload(1).iconst(2)
            getattr(m, load)()
        assert eval_both_modes(body) == value

    def test_byte_store_truncates(self):
        def body(m):
            m.iconst(4).newarray(ArrayType.BYTE).astore(1)
            m.aload(1).iconst(0).iconst(0x1FF).bastore()
            m.aload(1).iconst(0).baload()
        assert eval_both_modes(body) == -1

    def test_float_array(self):
        def body(m):
            m.iconst(2).newarray(ArrayType.FLOAT).astore(1)
            m.aload(1).iconst(0).fconst(1.5).fastore()
            m.aload(1).iconst(0).faload().fconst(2.0).fmul().f2i()
        assert eval_both_modes(body) == 3

    def test_ref_array(self):
        def body(m):
            m.iconst(3).anewarray("java/lang/Object").astore(1)
            m.new("java/lang/Object").dup()
            m.invokespecial("java/lang/Object", "<init>", 0)
            m.astore(2)
            m.aload(1).iconst(1).aload(2).aastore()
            same = m.new_label()
            out = m.new_label()
            m.aload(1).iconst(1).aaload()
            m.aload(2).if_acmpeq(same)
            m.iconst(0).goto(out)
            m.bind(same)
            m.iconst(1)
            m.bind(out)
        assert eval_both_modes(body) == 1

    def test_arraylength(self):
        def body(m):
            m.iconst(17).newarray(ArrayType.INT).arraylength()
        assert eval_both_modes(body) == 17

    def test_out_of_bounds_raises(self):
        from repro.vm import VMError  # noqa: F401
        from helpers import expr_main, run_program
        def body(m):
            m.iconst(2).newarray(ArrayType.INT).astore(1)
            m.aload(1).iconst(5).iaload()
        with pytest.raises(IndexError):
            run_program(expr_main(body))


class TestFieldsAndObjects:
    def _with_point(self, pb):
        cb = pb.cls("Point")
        cb.field("x", "int").field("y", "float")
        init = cb.method("<init>")
        init.return_()

    def test_instance_fields(self):
        from helpers import expr_main, run_program
        pb = expr_main(lambda m: (
            m.new("Point").dup(),
            m.invokespecial("Point", "<init>", 0),
            m.astore(1),
            m.aload(1).iconst(33).putfield("Point", "x"),
            m.aload(1).getfield("Point", "x"),
        ) and None)
        self._with_point(pb)
        res_i = run_program(pb, mode="interp")
        pb2 = expr_main(lambda m: (
            m.new("Point").dup(),
            m.invokespecial("Point", "<init>", 0),
            m.astore(1),
            m.aload(1).iconst(33).putfield("Point", "x"),
            m.aload(1).getfield("Point", "x"),
        ) and None)
        self._with_point(pb2)
        res_j = run_program(pb2, mode="jit")
        assert res_i.stdout == res_j.stdout == ["33"]

    def test_static_fields(self):
        def body(m):
            m.iconst(7).putstatic("Test", "counter")
            m.getstatic("Test", "counter")
            m.iconst(1).iadd().putstatic("Test", "counter")
            m.getstatic("Test", "counter")

        from helpers import expr_main, run_program
        for mode in ("interp", "jit"):
            pb = expr_main(body)
            pb._class_builders[0].static_field("counter", "int")
            assert run_program(pb, mode=mode).stdout == ["8"]

    def test_instanceof_and_checkcast(self):
        from helpers import expr_main, run_program
        def make():
            def body(m):
                m.new("Sub").dup()
                m.invokespecial("Sub", "<init>", 0)
                m.astore(1)
                m.aload(1).instanceof("Base").istore(2)
                m.aload(1).checkcast("Base").pop()
                m.aconst_null().instanceof("Base")
                m.iload(2).iadd()
            pb = expr_main(body)
            base = pb.cls("Base")
            base.method("<init>").return_()
            sub = pb.cls("Sub", super_name="Base")
            sub.method("<init>").return_()
            return pb
        for mode in ("interp", "jit"):
            assert run_program(make(), mode=mode).stdout == ["1"]

    def test_bad_cast_raises(self):
        from repro.vm import VMError
        from helpers import expr_main, run_program
        def body(m):
            m.new("java/lang/Object").dup()
            m.invokespecial("java/lang/Object", "<init>", 0)
            m.checkcast("java/lang/Thread").pop()
            m.iconst(0)
        with pytest.raises(VMError, match="ClassCastException"):
            run_program(expr_main(body))
