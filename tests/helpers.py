"""Shared test utilities: tiny-program builders and run helpers."""

from __future__ import annotations

from repro.isa import ArrayType, ProgramBuilder
from repro.vm import CompileOnFirstUse, InterpretOnly, JavaVM


def expr_main(body) -> "ProgramBuilder":
    """A program whose static main() is filled in by ``body(m)``.

    ``body`` receives the MethodBuilder; it must leave one int on the
    stack, which is printed (so tests can assert on stdout) — or handle
    output itself and return ``False``.
    """
    pb = ProgramBuilder("test", main_class="Test")
    cb = pb.cls("Test")
    m = cb.method("main", static=True)
    wants_print = body(m)
    if wants_print is not False:
        m.istore(60)
        m.getstatic("java/lang/System", "out").iload(60)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


def run_program(pb_or_program, mode="interp", **vm_kwargs):
    """Build+run; returns the VMResult."""
    program = (pb_or_program.build()
               if isinstance(pb_or_program, ProgramBuilder)
               else pb_or_program)
    strategy = InterpretOnly() if mode == "interp" else CompileOnFirstUse()
    vm = JavaVM(program, strategy=strategy, **vm_kwargs)
    return vm.run()


def eval_int(body, mode="interp", **vm_kwargs) -> int:
    """Evaluate a main() body that leaves an int on the stack."""
    result = run_program(expr_main(body), mode=mode, **vm_kwargs)
    assert result.stdout, "program printed nothing"
    return int(result.stdout[-1])


def eval_both_modes(body, **vm_kwargs) -> int:
    """Evaluate under interpreter and JIT; assert they agree."""
    interp = eval_int(body, mode="interp", **vm_kwargs)
    jit = eval_int(body, mode="jit", **vm_kwargs)
    assert interp == jit, f"mode divergence: interp={interp} jit={jit}"
    return interp
