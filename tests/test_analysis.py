"""Analysis: instruction mix, hybrid oracle model, runners, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    OracleAnalysis,
    format_bars,
    format_stacked_bars,
    format_table,
    indirect_fraction,
    make_strategy,
    mix_from_counts,
    oracle_run,
    run_vm,
    summarize,
)
from repro.analysis.hybrid import MethodDecision
from repro.native.nisa import MIX_BUCKETS, N_CATEGORIES, NCat
from repro.vm.strategy import (
    CompileOnFirstUse,
    CounterThreshold,
    InterpretOnly,
    OracleStrategy,
)


class TestMix:
    def test_fractions_sum_to_one(self):
        counts = np.arange(N_CATEGORIES, dtype=np.int64)
        mix = mix_from_counts(counts)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert set(mix) == set(MIX_BUCKETS)

    def test_empty_counts(self):
        mix = mix_from_counts(np.zeros(N_CATEGORIES, dtype=np.int64))
        assert all(v == 0.0 for v in mix.values())

    def test_summary_groups(self):
        counts = np.zeros(N_CATEGORIES, dtype=np.int64)
        counts[NCat.LOAD] = 3
        counts[NCat.STORE] = 1
        counts[NCat.BRANCH] = 4
        counts[NCat.IALU] = 2
        s = summarize(mix_from_counts(counts))
        assert s["memory"] == pytest.approx(0.4)
        assert s["transfer"] == pytest.approx(0.4)
        assert s["compute"] == pytest.approx(0.2)

    def test_indirect_fraction(self):
        counts = np.zeros(N_CATEGORIES, dtype=np.int64)
        counts[NCat.IJUMP] = 1
        counts[NCat.ICALL] = 1
        counts[NCat.RET] = 2
        counts[NCat.IALU] = 6
        assert indirect_fraction(counts) == pytest.approx(0.4)


class TestMethodDecision:
    def test_crossover_formula(self):
        d = MethodDecision("m", n=10, interp_total=1000, translate=300,
                           exec_total=500)
        # I=100/inv, E=50/inv, N = 300/(100-50) = 6; n=10 > 6 -> compile
        assert d.crossover == pytest.approx(6.0)
        assert d.compile
        assert d.oracle_cost == 800

    def test_interpret_when_translate_never_amortizes(self):
        d = MethodDecision("m", n=1, interp_total=100, translate=500,
                           exec_total=20)
        assert not d.compile
        assert d.oracle_cost == 100

    def test_infinite_crossover_when_exec_not_cheaper(self):
        import math
        d = MethodDecision("m", n=5, interp_total=100, translate=50,
                           exec_total=200)
        assert math.isinf(d.crossover)
        assert not d.compile

    def test_oracle_cost_is_min(self):
        d = MethodDecision("m", n=3, interp_total=90, translate=40,
                           exec_total=30)
        assert d.oracle_cost == min(40 + 30, 90)


class TestOracleModel:
    @pytest.fixture(scope="class")
    def analysis(self):
        analysis, mixed = oracle_run("db", "s0")
        return analysis, mixed

    def test_projection_matches_enactment(self, analysis):
        a, mixed = analysis
        # The analytical opt projection must agree with a real mixed run
        # within a few percent (they differ only in scheduler noise).
        assert a.oracle_total == pytest.approx(mixed.cycles, rel=0.05)

    def test_oracle_never_worse_than_both_poles(self, analysis):
        a, _ = analysis
        assert a.oracle_total <= a.jit_total + 1
        assert a.oracle_total <= a.interp_total + 1

    def test_strategy_round_trip(self, analysis):
        a, _ = analysis
        strategy = a.strategy()
        assert isinstance(strategy, OracleStrategy)
        assert strategy.compile_set == frozenset(a.methods_to_compile)

    def test_summary_keys(self, analysis):
        a, _ = analysis
        s = a.summary()
        assert s["methods"] == len(a.decisions)
        assert 0 <= s["oracle_saving"] < 1
        assert s["interp_to_jit_ratio"] > 0


class TestRunner:
    def test_make_strategy_names(self):
        assert isinstance(make_strategy("interp"), InterpretOnly)
        assert isinstance(make_strategy("jit"), CompileOnFirstUse)
        assert isinstance(make_strategy(("counter", 3)), CounterThreshold)
        assert isinstance(make_strategy("oracle", {"A.m"}), OracleStrategy)
        with pytest.raises(ValueError):
            make_strategy("warp-speed")

    def test_strategy_passthrough(self):
        s = CounterThreshold(5)
        assert make_strategy(s) is s

    def test_run_vm_modes(self):
        interp = run_vm("hello", scale="s0", mode="interp")
        jit = run_vm("hello", scale="s0", mode="jit")
        assert interp.methods_compiled == 0
        assert jit.methods_compiled > 0

    def test_run_vm_lock_manager_selection(self):
        r = run_vm("hello", scale="s0", mode="jit",
                   lock_manager="thin-lock")
        assert r.sync["acquire_ops"] > 0

    def test_trace_cache_round_trip(self, tmp_path):
        from repro.analysis.runner import get_trace
        cache = str(tmp_path / "cache")
        t1 = get_trace("hello", "s0", "interp", cache_dir=cache)
        t2 = get_trace("hello", "s0", "interp", cache_dir=cache)
        assert t1.n == t2.n
        assert (t1.pc == t2.pc).all()
        import os
        assert len(os.listdir(cache)) == 1


class TestCounterThresholdBehaviour:
    def test_threshold_interpolates(self):
        jit = run_vm("db", scale="s0", mode="jit")
        counter = run_vm("db", scale="s0", mode=("counter", 4))
        interp = run_vm("db", scale="s0", mode="interp")
        assert interp.stdout == counter.stdout == jit.stdout
        assert 0 < counter.methods_compiled < jit.methods_compiled or \
            counter.methods_compiled <= jit.methods_compiled
        assert counter.translate_cycles < jit.translate_cycles

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CounterThreshold(0)


class TestReporting:
    def test_table_contains_all_cells(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
        assert "T" in out and "bb" in out and "30" in out and "2.500" in out

    def test_bars_scale_to_peak(self):
        out = format_bars([("x", 10.0), ("y", 5.0)], width=10)
        x_line, y_line = out.splitlines()
        assert x_line.count("#") == 10
        assert y_line.count("#") == 5

    def test_stacked_bars_have_legend(self):
        out = format_stacked_bars(
            [("a", [("t", 0.3), ("e", 0.7)])], width=20
        )
        assert "legend" in out
        assert "t" in out and "e" in out

    def test_empty_bars(self):
        assert format_bars([], title="nothing") == "nothing"

    def test_large_numbers_formatted(self):
        out = format_table(["n"], [[1234567]])
        assert "1,234,567" in out
