"""Whole-system integration: every workload agrees under every
configuration (strategy x lock manager x inlining), and the VM's cycle
accounting is internally consistent."""

import pytest

from repro.analysis import run_vm
from repro.workloads import all_workloads

WORKLOADS = sorted(all_workloads())
CONFIGS = [
    ("interp", "monitor-cache", True),
    ("jit", "monitor-cache", True),
    ("jit", "thin-lock", True),
    ("jit", "one-bit-lock", True),
    ("jit", "monitor-cache", False),
    (("counter", 3), "thin-lock", True),
]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_output_invariant_under_configuration(workload):
    """The architectural configuration must never change program output."""
    outputs = set()
    for mode, lock, inline in CONFIGS:
        result = run_vm(workload, scale="s0", mode=mode, lock_manager=lock,
                        inline=inline, profile=False)
        outputs.add(tuple(result.stdout))
    assert len(outputs) == 1, f"{workload}: divergent outputs {outputs}"


@pytest.mark.parametrize("workload", ("db", "compress", "mtrt"))
def test_cycle_accounting_consistent(workload):
    r = run_vm(workload, scale="s0", mode="jit")
    assert 0 <= r.translate_cycles < r.cycles
    assert 0 <= r.sync_cycles < r.cycles
    method_cycles = sum(
        p["interp_cycles"] + p["compiled_cycles"] + p["translate_cycles"]
        for p in r.profiles.values()
    )
    # Per-method attribution plus runtime services (loader, allocator,
    # sync, native bodies) must not exceed the total.
    assert method_cycles <= r.cycles


@pytest.mark.parametrize("workload", ("db", "jack"))
def test_bytecode_count_mode_invariant(workload):
    a = run_vm(workload, scale="s0", mode="interp", profile=False)
    b = run_vm(workload, scale="s0", mode="jit", profile=False)
    assert a.bytecodes_executed == b.bytecodes_executed


def test_trace_instruction_totals_match_counting():
    for mode in ("interp", "jit"):
        counted = run_vm("jess", scale="s0", mode=mode, profile=False)
        recorded = run_vm("jess", scale="s0", mode=mode, record=True,
                          profile=False)
        assert counted.instructions == recorded.trace.n
        assert counted.cycles == recorded.trace.base_cycles()


def test_interp_jit_native_instruction_ratio():
    """The JIT's whole point: far fewer native instructions per bytecode."""
    interp = run_vm("compress", scale="s0", mode="interp", profile=False)
    jit = run_vm("compress", scale="s0", mode="jit", profile=False)
    per_bc_interp = interp.instructions / interp.bytecodes_executed
    per_bc_jit = jit.instructions / jit.bytecodes_executed
    assert 18 <= per_bc_interp <= 32      # the paper's ~25
    assert per_bc_jit < 0.6 * per_bc_interp
