"""Fault-injection layer: plan grammar, seeded targeting, the injection
hooks, and the end-to-end determinism guarantee (a faulted CLI run
produces byte-identical JSON to a clean one)."""

import filecmp
import json
import os
import subprocess
import sys

import pytest

from repro import faults
from repro.analysis import cache
from repro.faults.plan import _corrupt_bytes, _dead_pid, _seeded_index


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.deactivate()
    faults.LEDGER.reset()
    yield
    faults.deactivate()
    faults.LEDGER.reset()


# -- plan grammar ------------------------------------------------------

class TestPlanParsing:
    def test_single_spec(self):
        plan = faults.FaultPlan.parse("worker-kill")
        assert len(plan.specs) == 1
        spec = plan.specs[0]
        assert spec.kind == "worker-kill"
        assert spec.at is None and spec.times == 1

    def test_full_grammar(self):
        plan = faults.FaultPlan.parse(
            "worker-kill@2;corrupt-archive:times=2,mode=garble;seed=7")
        assert plan.seed == 7
        kill, corrupt = plan.specs
        assert kill.at == 2
        assert corrupt.times == 2
        assert corrupt.param("mode") == "garble"

    def test_describe_round_trips(self):
        text = "worker-hang@1:seconds=3;slow-io:ms=5;seed=9"
        plan = faults.FaultPlan.parse(text)
        again = faults.FaultPlan.parse(plan.describe())
        assert again == plan

    def test_whitespace_and_empty_tokens_tolerated(self):
        plan = faults.FaultPlan.parse(" stale-lock ; ; seed=3 ")
        assert plan.specs[0].kind == "stale-lock"
        assert plan.seed == 3

    @pytest.mark.parametrize("bad", [
        "", ";;", "seed=7",                 # no fault declared
        "warble",                           # unknown kind
        "worker-kill@0",                    # 1-based target
        "worker-kill:times=0",              # zero budget
        "worker-kill@x",                    # non-integer target
        "slow-io:ms",                       # option without '='
        "worker-kill;seed=x",               # bad seed
    ])
    def test_rejects(self, bad):
        with pytest.raises(faults.PlanError):
            faults.FaultPlan.parse(bad)

    def test_plan_error_is_value_error(self):
        assert issubclass(faults.PlanError, ValueError)


class TestActivation:
    def test_activate_from_text(self):
        active = faults.activate("noop")
        assert faults.active() is active
        assert faults.ACTIVE is active

    def test_deactivate(self):
        faults.activate("noop")
        faults.deactivate()
        assert faults.active() is None

    def test_activate_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "noop;seed=4")
        active = faults.activate_from_env()
        assert active.plan.seed == 4
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.activate_from_env() is None

    def test_reactivation_refreshes_budget(self):
        active = faults.activate("corrupt-archive")
        assert active.corrupt_store("x.pkl", b"payload") != b"payload"
        assert active.corrupt_store("x.pkl", b"payload") == b"payload"
        active = faults.activate(active)  # same plan, fresh budget
        assert active.corrupt_store("x.pkl", b"payload") != b"payload"


# -- seeded worker targeting -------------------------------------------

class TestWorkerTargets:
    def test_pinned_target(self):
        active = faults.activate("worker-kill@2")
        assert active.worker_targets(5) == {1: 0}

    def test_pinned_target_wraps(self):
        active = faults.activate("worker-kill@7")
        assert active.worker_targets(3) == {0: 0}

    def test_seeded_selection_is_deterministic(self):
        picks = {faults.ActivePlan(
            faults.FaultPlan.parse("worker-kill;seed=7")
        ).worker_targets(10)[_seeded_index(7, "worker-kill", 10) - 1]
            for _ in range(5)}
        assert picks == {0}

    def test_different_seeds_can_differ(self):
        hits = {
            next(iter(faults.ActivePlan(
                faults.FaultPlan.parse(f"worker-kill;seed={s}")
            ).worker_targets(50)))
            for s in range(20)
        }
        assert len(hits) > 1

    def test_budget_consumed_once(self):
        active = faults.activate("worker-raise")
        (target_idx, spec_idx), = active.worker_targets(4).items()
        assert active.take_worker_fault(spec_idx) == ("worker-raise", {})
        assert active.take_worker_fault(spec_idx) is None
        assert faults.LEDGER.count("injected", "worker-raise") == 1

    def test_non_worker_kinds_not_routed(self):
        active = faults.activate("corrupt-archive;slow-io")
        assert active.worker_targets(4) == {}


# -- in-process hooks --------------------------------------------------

class TestHooks:
    def test_corrupt_truncate_and_garble(self):
        data = bytes(range(256)) * 4
        truncated = _corrupt_bytes(data, "truncate")
        assert len(truncated) < len(data)
        assert data.startswith(truncated)
        garbled = _corrupt_bytes(data, "garble")
        assert len(garbled) == len(data) and garbled != data

    def test_slow_io_budgeted(self):
        active = faults.activate("slow-io:ms=1,times=2")
        active.on_io("load")
        active.on_io("load")
        active.on_io("load")
        assert faults.LEDGER.count("injected", "slow-io") == 2

    def test_stale_lock_planted_with_dead_owner(self, tmp_path):
        active = faults.activate("stale-lock")
        lock_path = str(tmp_path / "entry.pkl.lock")
        active.on_lock_acquire(lock_path)
        assert os.path.exists(lock_path)
        pid = int(open(lock_path).read())
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
        # budget spent: a second acquisition is left alone
        os.unlink(lock_path)
        active.on_lock_acquire(lock_path)
        assert not os.path.exists(lock_path)

    def test_noop_counts_checks_only(self):
        active = faults.activate("noop")
        active.on_io("load")
        active.corrupt_store("x", b"data")
        assert active.checks == 2
        assert faults.LEDGER.total("injected") == 0

    def test_dead_pid_is_dead(self):
        pid = _dead_pid()
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


class TestLedger:
    def test_diff_and_absorb(self):
        ledger = faults.FaultLedger()
        before = ledger.snapshot()
        ledger.note("injected", "slow-io")
        ledger.note("recovered", "retry")
        ledger.note("recovered", "retry")
        delta = faults.FaultLedger.diff(ledger.snapshot(), before)
        assert delta == {"injected": {"slow-io": 1},
                         "recovered": {"retry": 2}}
        other = faults.FaultLedger()
        other.absorb(delta)
        assert other.count("recovered", "retry") == 2

    def test_empty_delta_dropped(self):
        snap = faults.LEDGER.snapshot()
        assert faults.FaultLedger.diff(snap, snap) == {}

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            faults.LEDGER.note("bogus", "x")

    def test_disabled_overhead_measurable(self):
        result = faults.measure_disabled_overhead(iters=10_000)
        assert result["check_ns"] > 0

    def test_overhead_refuses_active_layer(self):
        faults.activate("noop")
        with pytest.raises(RuntimeError):
            faults.measure_disabled_overhead(iters=10)


# -- cache integration -------------------------------------------------

class TestCacheInjection:
    def test_corrupt_store_quarantined_on_load(self, tmp_path):
        path = str(tmp_path / "x.pkl")
        faults.activate("corrupt-archive")
        cache._store_bytes(path, b"A" * 300)
        faults.deactivate()
        with pytest.raises(cache.CorruptEntry):
            cache._read_verified(path)

    def test_clean_store_verifies(self, tmp_path):
        path = str(tmp_path / "x.pkl")
        cache._store_bytes(path, b"A" * 300)
        assert cache._read_verified(path) == b"A" * 300

    def test_stale_lock_broken_during_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "5")
        path = str(tmp_path / "x.pkl")
        faults.activate("stale-lock")
        before = cache.STATS.snapshot()
        cache._store_bytes(path, b"payload")
        delta = cache.CacheStats.diff(cache.STATS.snapshot(), before)
        assert delta.get("locks_broken", 0) >= 1
        assert faults.LEDGER.count("injected", "stale-lock") == 1
        assert faults.LEDGER.count("recovered", "lock_break") == 1
        assert cache._read_verified(path) == b"payload"


# -- end-to-end determinism (the chaos-CI contract) --------------------

def _run_cli(out_path, cache_dir, plan=None, timeout=240):
    env = {**os.environ, "PYTHONPATH": "src"}
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_OBS", None)
    cmd = [sys.executable, "-m", "repro.experiments", "fig3",
           "--scale", "s0", "--benchmarks", "db",
           "--jobs", "2", "--cache-dir", str(cache_dir),
           "--json", str(out_path)]
    if plan:
        cmd += ["--faults", plan]
    return subprocess.run(cmd, env=env, capture_output=True, text=True,
                          cwd=os.path.dirname(os.path.dirname(__file__)),
                          timeout=timeout)


@pytest.mark.slow
class TestFaultedRunDeterminism:
    def test_worker_kill_run_matches_clean_run(self, tmp_path):
        clean = tmp_path / "clean.json"
        proc = _run_cli(clean, tmp_path / "c0")
        assert proc.returncode == 0, proc.stderr
        chaos = tmp_path / "chaos.json"
        proc = _run_cli(chaos, tmp_path / "c1", plan="worker-kill@1;seed=7")
        assert proc.returncode == 0, proc.stderr
        assert filecmp.cmp(str(clean), str(chaos), shallow=False)
        manifest = json.loads(
            (tmp_path / "chaos.manifest.json").read_text())
        report = manifest["faults"]
        assert report["plan"] == "worker-kill@1;seed=7"
        assert sum(report["injected"].values()) >= 1
        assert sum(report["recovered"].values()) >= 1
        clean_manifest = json.loads(
            (tmp_path / "clean.manifest.json").read_text())
        assert clean_manifest["faults"]["plan"] is None
        assert sum(clean_manifest["faults"]["injected"].values()) == 0
