"""The tiered execution engine: promotion, OSR, deoptimization.

Semantic ground rule: tier transitions are emission-side policy over
the single bytecode stepper, so no tiered configuration may disturb any
program observable.  The tests here drive each transition explicitly —
counter and priced promotion, on-stack replacement of a running frame,
both deoptimization triggers with their exact-repair obligations — and
close with a hypothesis property over the threshold space.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runner import run_vm
from repro.experiments.tiered import (
    AGGRESSIVE,
    SCENARIOS,
    class_load_program,
    lock_escape_program,
    run_scenario,
)
from repro.isa import ProgramBuilder
from repro.vm import (
    CompileOnFirstUse,
    InterpretOnly,
    JavaVM,
    TieredStrategy,
)
from repro.vm.tiering import estimated_translate_cycles

AGG = dict(AGGRESSIVE)


def _hot_loop_program(iters: int = 500) -> ProgramBuilder:
    """main() runs one long loop: only OSR can ever compile it."""
    pb = ProgramBuilder("hotloop", main_class="Main")
    m = pb.cls("Main").method("main", static=True)
    loop = m.new_label()
    done = m.new_label()
    m.iconst(0).istore(0)
    m.iconst(0).istore(1)
    m.bind(loop)
    m.iload(1).iconst(iters).if_icmpge(done)
    m.iload(0).iload(1).iadd().istore(0)
    m.iinc(1, 1)
    m.goto(loop)
    m.bind(done)
    m.getstatic("java/lang/System", "out").iload(0)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


def _run(pb, strategy):
    vm = JavaVM(pb.build(), strategy=strategy, spawn_daemons=False)
    return vm.run()


class TestPromotion:
    def test_cold_methods_stay_interpreted(self):
        res = _run(_hot_loop_program(3),
                   TieredStrategy())           # 3 backedges < osr gate
        assert res.methods_compiled == 0
        assert res.tiering["promotions_t1"] == 0

    def test_priced_promotion_waits_for_spent_cycles(self):
        """With an enormous compile_ratio nothing ever repays translate."""
        res = _run(_hot_loop_program(500),
                   TieredStrategy(compile_ratio=1e9))
        assert res.tiering["promotions_t1"] == 0

    def test_snapshot_records_strategy_and_transitions(self):
        res = _run(_hot_loop_program(500), TieredStrategy(**AGG))
        assert res.strategy_config["name"] == "tiered"
        assert res.tiering["strategy"]["t2_screen"] is False
        assert any(
            ["promote", 1] in m["transitions"]
            for m in res.tiering["methods"].values()
        )

    def test_non_tiered_runs_have_no_tiering(self):
        res = _run(_hot_loop_program(50), CompileOnFirstUse())
        assert res.tiering is None
        assert res.strategy_config["name"] == "jit"

    def test_translate_cost_model_tracks_method_size(self):
        pb = _hot_loop_program(5)
        program = pb.build()
        main = program.get_class("Main").methods["main"]
        est = estimated_translate_cycles(main)
        assert est > len(main.code) * 100


class TestOSR:
    def test_single_invocation_loop_is_osr_compiled(self):
        """main runs once, so only the backedge rung can promote it —
        and the running frame must hop into the compiled code."""
        res = _run(_hot_loop_program(500), TieredStrategy(**AGG))
        assert res.stdout == [str(sum(range(500)))]
        assert res.tiering["promotions_t1"] >= 1
        assert res.tiering["osr_entries"] >= 1
        assert res.tiering["methods"]["Main.main"]["tier"] >= 1

    def test_osr_preserves_observables_vs_interp(self):
        base = _run(_hot_loop_program(500), InterpretOnly())
        osr = _run(_hot_loop_program(500), TieredStrategy(**AGG))
        assert osr.stdout == base.stdout
        assert osr.bytecodes_executed == base.bytecodes_executed
        assert osr.heap == base.heap

    def test_osr_entry_charged_to_compiled_execution(self):
        """After OSR the remaining iterations run as compiled code."""
        res = _run(_hot_loop_program(500), TieredStrategy(**AGG))
        profile = res.profiles["Main.main"]
        assert profile["osr_entries"] >= 1
        assert profile["compiled_cycles"] > 0


class TestLockEscapeDeopt:
    def test_speculation_fails_and_deopts(self):
        res = run_scenario("lock_escape")
        assert res.stdout == SCENARIOS["lock_escape"][1]
        assert res.tiering["deopts"] == 1
        assert res.tiering["deopt_reasons"] == {"lock_escape": 1}
        assert res.tiering["speculation_failures"] == 1

    def test_exact_repair_keeps_sync_consistent(self):
        """Elided + real acquire totals must match the interpreter run,
        and the repair must never be misfiled as an elision violation."""
        base = _run(lock_escape_program(), InterpretOnly())
        res = run_scenario("lock_escape")
        assert (res.sync["acquire_ops"] + res.sync["elided_acquires"]
                == base.sync["acquire_ops"])
        assert (res.sync["release_ops"] + res.sync["elided_releases"]
                == base.sync["release_ops"])
        assert res.sync["elision_violations"] == 0

    def test_blacklisted_site_is_not_respeculated(self):
        """The loop keeps allocating after the deopt; a second failure
        would mean the blacklist did not hold."""
        res = run_scenario("lock_escape")
        assert res.tiering["speculation_failures"] == 1
        assert res.tiering["speculative_marks"] >= 1

    def test_deopted_method_reprofiles_and_repromotes(self):
        res = run_scenario("lock_escape")
        tr = res.tiering["methods"]["S.run"]["transitions"]
        deopt_at = next(i for i, t in enumerate(tr) if t[0] == "deopt")
        after = [t for t in tr[deopt_at + 1:] if t[0] == "promote"]
        assert after and after[0][1] == 1    # ladder restarts at tier 1


class TestClassLoadDeopt:
    def test_cha_assumption_broken_by_loading(self):
        res = run_scenario("class_load")
        assert res.stdout == SCENARIOS["class_load"][1]   # 100*1 + 2
        assert res.tiering["deopts"] == 1
        assert res.tiering["deopt_reasons"] == {"class_load": 1}

    def test_result_matches_interp_and_jit(self):
        for strategy in (InterpretOnly(), CompileOnFirstUse()):
            res = _run(class_load_program(), strategy)
            assert res.stdout == SCENARIOS["class_load"][1]

    def test_deopt_invalidates_then_ladder_restarts(self):
        """Eager invalidation: the class-load deopt is recorded for
        Main.call, and any re-promotion restarts from tier 1 — the
        post-deopt tier-2 code is compiled against the enlarged loaded
        world, so it carries no broken assumption."""
        res = run_scenario("class_load")
        tr = res.tiering["methods"]["Main.call"]["transitions"]
        deopt_at = next(i for i, t in enumerate(tr)
                        if t[0] == "deopt" and t[2] == "class_load")
        after = [t for t in tr[deopt_at + 1:] if t[0] == "promote"]
        if after:
            assert after[0][1] == 1


WORKLOAD_SAMPLE = ("db", "jack", "mtrt")


@pytest.mark.parametrize("workload", WORKLOAD_SAMPLE)
def test_workload_observables_identical_across_engines(workload):
    """interp / jit / tiered on real workloads: stdout, heap and
    normalized sync effects must be indistinguishable."""
    interp = run_vm(workload, scale="s0", mode="interp")
    jit = run_vm(workload, scale="s0", mode="jit")
    tiered = run_vm(workload, scale="s0", mode=("tiered", 2, 3, 4))
    for res in (jit, tiered):
        assert res.stdout == interp.stdout
        assert res.bytecodes_executed == interp.bytecodes_executed
        assert res.heap == interp.heap
        acquires = res.sync["acquire_ops"] + res.sync["elided_acquires"]
        assert acquires == interp.sync["acquire_ops"]


def _check_transition_wellformedness(snapshot):
    """Tier is monotonically non-decreasing between deopts; every deopt
    resets to tier 0; promotions climb one rung at a time from there."""
    for name, entry in snapshot["methods"].items():
        tier = 0
        for t in entry["transitions"]:
            kind = t[0]
            if kind == "promote":
                assert t[1] > tier, (name, entry["transitions"])
                tier = t[1]
            elif kind == "deopt":
                assert tier >= 2, (name, "deopt below tier 2")
                tier = 0
            elif kind == "osr":
                assert tier >= 1, (name, "OSR without compiled code")
        assert entry["tier"] == tier


@settings(max_examples=15, deadline=None)
@given(
    t1=st.integers(1, 6),
    t2_extra=st.integers(1, 60),
    osr=st.integers(1, 50),
    ratio=st.sampled_from([0.01, 0.125, 1.0]),
    scenario=st.sampled_from(sorted(SCENARIOS)),
)
def test_property_ladder_wellformed(t1, t2_extra, osr, ratio, scenario):
    """Any threshold assignment: observables match the interpreter and
    the transition log forms legal promote/OSR/deopt cycles."""
    strategy = TieredStrategy(
        t1_invocations=t1, t2_invocations=t1 + t2_extra,
        osr_backedges=osr, t2_backedges=8 * osr,
        compile_ratio=ratio, t2_screen=False)
    builder, expected = SCENARIOS[scenario]
    res = run_scenario(scenario, strategy=strategy)
    assert res.stdout == expected
    _check_transition_wellformedness(res.tiering)
