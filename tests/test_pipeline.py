"""Superscalar pipeline model on crafted traces."""

import numpy as np
import pytest

from repro.arch.pipeline import PipelineConfig, ipc_by_width, simulate_pipeline
from repro.native.nisa import FLAG_TAKEN, FLAG_WRITE, NCat
from repro.native.trace import Trace


def _trace(rows):
    """rows: (pc, cat, ea, flags, target, dst, src1, src2)."""
    cols = list(zip(*rows)) if rows else [[]] * 8
    return Trace.from_columns(
        pc=cols[0], cat=cols[1], ea=cols[2], flags=cols[3],
        target=cols[4], dst=cols[5], src1=cols[6], src2=cols[7],
    )


def _ialu_stream(n, independent=True):
    rows = []
    for i in range(n):
        dst = 5 + (i % 3) if independent else 5
        src = 8 if independent else 5
        # pcs revisit a small hot region so the I-cache stays warm.
        rows.append((0x1000 + 4 * (i % 64), int(NCat.IALU), 0, 0, 0,
                     dst, src, -1))
    return _trace(rows)


class TestWidthScaling:
    def test_independent_code_scales_with_width(self):
        tr = _ialu_stream(4000)
        r1 = simulate_pipeline(tr, PipelineConfig(width=1)).ipc
        r4 = simulate_pipeline(tr, PipelineConfig(width=4)).ipc
        assert r4 > 2.5 * r1

    def test_serial_chain_does_not_scale(self):
        tr = _ialu_stream(4000, independent=False)
        r1 = simulate_pipeline(tr, PipelineConfig(width=1)).ipc
        r8 = simulate_pipeline(tr, PipelineConfig(width=8)).ipc
        assert r8 < 1.3 * r1

    def test_ipc_never_exceeds_width(self):
        tr = _ialu_stream(2000)
        for w in (1, 2, 4):
            assert simulate_pipeline(tr, PipelineConfig(width=w)).ipc <= w + 0.01

    def test_ipc_by_width_helper(self):
        tr = _ialu_stream(1000)
        res = ipc_by_width(tr, widths=(1, 2))
        assert set(res) == {1, 2}
        assert res[2].ipc >= res[1].ipc


class TestBranchEffects:
    def test_mispredicts_cost_cycles(self):
        # Alternating branch at one pc with rotating targets: hard.
        rows = []
        for i in range(2000):
            taken = i % 2 == 0
            rows.append((
                0x1000, int(NCat.BRANCH), 0,
                FLAG_TAKEN if taken else 0,
                0x5000 + 64 * (i % 5) if taken else 0,
                -1, 5, -1,
            ))
        hard = simulate_pipeline(_trace(rows), PipelineConfig(width=4))
        easy = simulate_pipeline(_ialu_stream(2000), PipelineConfig(width=4))
        assert hard.mispredicts > 100
        assert hard.ipc < easy.ipc

    def test_penalty_parameter_matters(self):
        rows = []
        for i in range(1000):
            rows.append((
                0x1000, int(NCat.IJUMP), 0, FLAG_TAKEN,
                0x5000 + 64 * (i % 7), -1, 5, -1,
            ))
        tr = _trace(rows)
        cheap = simulate_pipeline(tr, PipelineConfig(width=4,
                                                     mispredict_penalty=1))
        costly = simulate_pipeline(tr, PipelineConfig(width=4,
                                                      mispredict_penalty=12))
        assert costly.cycles > cheap.cycles


class TestMemoryEffects:
    def test_cache_misses_slow_execution(self):
        # Loads streaming over a huge footprint vs one hot line.
        def loads(stride):
            rows = []
            for i in range(3000):
                rows.append((0x1000 + 4 * (i % 8), int(NCat.LOAD),
                             0x100000 + stride * i, 0, 0, 5, 8, -1))
            return _trace(rows)
        hot = simulate_pipeline(loads(0), PipelineConfig(width=4))
        streaming = simulate_pipeline(loads(256), PipelineConfig(width=4))
        assert streaming.dmisses > hot.dmisses
        assert streaming.cycles > hot.cycles

    def test_icache_misses_counted(self):
        # Walk a large code footprint: every 8th fetch misses (32B lines).
        rows = [(0x1000 + 4 * i, int(NCat.IALU), 0, 0, 0, 5, 8, -1)
                for i in range(100_000)]
        res = simulate_pipeline(_trace(rows), PipelineConfig(width=4))
        assert res.imisses > 5000

    def test_load_use_dependence_stalls(self):
        # load -> dependent alu pairs vs independent pairs.
        dep_rows, indep_rows = [], []
        for i in range(2000):
            pc = 0x1000 + 8 * (i % 4)
            dep_rows.append((pc, int(NCat.LOAD), 0x100000, 0, 0, 5, 8, -1))
            dep_rows.append((pc + 4, int(NCat.IALU), 0, 0, 0, 6, 5, -1))
            indep_rows.append((pc, int(NCat.LOAD), 0x100000, 0, 0, 5, 8, -1))
            indep_rows.append((pc + 4, int(NCat.IALU), 0, 0, 0, 6, 9, -1))
        dep = simulate_pipeline(_trace(dep_rows), PipelineConfig(width=4))
        indep = simulate_pipeline(_trace(indep_rows), PipelineConfig(width=4))
        assert dep.cycles > indep.cycles


class TestEdgeCases:
    def test_empty_trace(self):
        res = simulate_pipeline(Trace.empty())
        assert res.instructions == 0
        assert res.ipc == 0.0

    def test_single_instruction(self):
        res = simulate_pipeline(_ialu_stream(1))
        assert res.instructions == 1
        assert res.cycles >= 1
