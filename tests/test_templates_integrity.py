"""Structural invariants of the interpreter / runtime / translator
templates — the contracts the whole trace methodology rests on."""

import numpy as np
import pytest

from repro.isa import N_OPCODES, Op
from repro.native.layout import (
    INTERP_TEXT_BASE,
    INTERP_TEXT_SIZE,
    JITC_TEXT_BASE,
    JITC_TEXT_SIZE,
    VM_TEXT_BASE,
    VM_TEXT_SIZE,
)
from repro.native.nisa import FLAG_TRANSLATE, NCat
from repro.vm.interp_templates import (
    MAX_INVOKE_ARGS,
    shared_templates,
)
from repro.vm.jit.translate_stubs import (
    GENERATOR_CLASSES,
    generator_class,
    shared_translate_stubs,
)
from repro.vm.stubs import shared_stubs


@pytest.fixture(scope="module")
def tpls():
    return shared_templates()


class TestInterpreterTemplates:
    _NO_HANDLER = {Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC}

    def test_every_opcode_has_a_handler(self, tpls):
        for op in Op:
            if op in self._NO_HANDLER:
                continue
            assert op in tpls.tpl, op

    def test_invoke_variants_per_argc(self, tpls):
        for kind in ("invokevirtual", "invokespecial", "invokestatic"):
            for argc in range(MAX_INVOKE_ARGS + 1):
                assert (kind, argc) in tpls.tpl

    def test_dispatch_block_shares_pcs(self, tpls):
        """Every handler's first instructions are the one dispatch loop."""
        first_pcs = {int(t.pc[0]) for t in tpls.tpl.values()}
        assert first_pcs == {tpls.dispatch_pc}

    def test_dispatch_ijump_targets_vary(self, tpls):
        """Same pc, different targets: the BTB-defeating pattern."""
        ijump_pcs = set()
        targets = set()
        for t in tpls.tpl.values():
            rows = np.where(t.cat == int(NCat.IJUMP))[0]
            assert len(rows) >= 1
            ijump_pcs.add(int(t.pc[rows[0]]))
            targets.add(int(t.target[rows[0]]))
        assert len(ijump_pcs) == 1
        assert len(targets) == len(tpls.tpl)

    def test_handler_bodies_have_distinct_pcs(self, tpls):
        bodies = {}
        for key, t in tpls.tpl.items():
            body_start = int(t.pc[8])  # first instruction after dispatch
            assert body_start not in bodies, (key, bodies[body_start])
            bodies[body_start] = key

    def test_all_pcs_inside_interpreter_text(self, tpls):
        for t in tpls.tpl.values():
            assert (t.pc >= INTERP_TEXT_BASE).all()
            assert (t.pc < INTERP_TEXT_BASE + INTERP_TEXT_SIZE).all()

    def test_handlers_return_to_dispatch(self, tpls):
        for key, t in tpls.tpl.items():
            last = t.n - 1
            cat = int(t.cat[last])
            assert cat in (int(NCat.JUMP),), (key, NCat(cat).name)
            assert int(t.target[last]) == tpls.dispatch_pc

    def test_handler_sizes_near_papers_25(self, tpls):
        """[27]'s ~25 native instructions per bytecode, on average."""
        simple = [t.n for key, t in tpls.tpl.items()
                  if isinstance(key, Op)]
        mean = sum(simple) / len(simple)
        assert 18 <= mean <= 32, mean

    def test_every_handler_fetches_bytecode_as_data(self, tpls):
        """The interpreter's signature: bytecode is data (first patch)."""
        for key, t in tpls.tpl.items():
            assert len(t.patch_ea) >= 1
            assert t.patch_ea[0] == 0
            assert t.cat[0] == int(NCat.LOAD)

    def test_shared_singleton(self):
        assert shared_templates() is shared_templates()


class TestRuntimeStubs:
    def test_pcs_inside_vm_text(self):
        stubs = shared_stubs()
        for t in (stubs.alloc_entry, stubs.alloc_zero, stubs.copy_chunk,
                  stubs.resolve, stubs.classload_parse,
                  stubs.classload_bccopy):
            assert (t.pc >= VM_TEXT_BASE).all()
            assert (t.pc < VM_TEXT_BASE + VM_TEXT_SIZE).all()

    def test_alloc_emission_zeroes_whole_object(self):
        from repro.native.trace import RecordingSink
        stubs = shared_stubs()
        sink = RecordingSink()
        stubs.emit_alloc(sink, 0x8000_0000, 72)
        tr = sink.trace()
        writes = tr.select(tr.is_write)
        # header (2 words) + body (64 bytes = 16 words in 2 chunks)
        assert writes.n >= 10
        assert int(writes.ea.max()) >= 0x8000_0000 + 64

    def test_copy_emission_touches_both_buffers(self):
        from repro.native.trace import RecordingSink
        stubs = shared_stubs()
        sink = RecordingSink()
        stubs.emit_copy(sink, 0x1000, 0x2000, 20, 4)
        tr = sink.trace()
        reads = tr.select(tr.is_memory & ~tr.is_write)
        writes = tr.select(tr.is_write)
        assert ((0x1000 <= reads.ea) & (reads.ea < 0x1100)).any()
        assert ((0x2000 <= writes.ea) & (writes.ea < 0x2100)).any()

    def test_native_body_buckets(self):
        stubs = shared_stubs()
        assert stubs.native_body(12).n < stubs.native_body(150).n


class TestTranslateStubs:
    def test_every_opcode_maps_to_a_generator(self):
        for op in Op:
            assert generator_class(op) in GENERATOR_CLASSES

    def test_translate_templates_flagged(self):
        stubs = shared_translate_stubs()
        for t in [stubs.driver, stubs.emit_instr, stubs.method_overhead,
                  *stubs.generators.values()]:
            assert (t.flags & FLAG_TRANSLATE).all()

    def test_translator_pcs_inside_jitc_text(self):
        stubs = shared_translate_stubs()
        for t in [stubs.driver, stubs.emit_instr, *stubs.generators.values()]:
            assert (t.pc >= JITC_TEXT_BASE).all()
            assert (t.pc < JITC_TEXT_BASE + JITC_TEXT_SIZE).all()

    def test_generator_reuse_gives_small_footprint(self):
        """The paper's 'high code reuse within translate': the whole
        translator text is a few KB, reused for every method."""
        stubs = shared_translate_stubs()
        assert stubs.text_bytes < 8192
