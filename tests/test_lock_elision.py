"""Escape-analysis lock elision and liveness-driven JIT DSE.

Both optimizations must be invisible to program semantics; their only
observable effects are fewer lock-manager operations / smaller compiled
code, reported through the stats counters.
"""

import pytest

from repro.analysis.runner import run_vm
from repro.isa import ProgramBuilder
from repro.vm import CompileOnFirstUse, InterpretOnly, JavaVM


def _fresh(pb, **kwargs):
    vm = JavaVM(pb.build(), spawn_daemons=False, **kwargs)
    return vm.run()


def _local_lock_program(n=5):
    """main repeatedly allocates an object and locks it; the allocation
    never escapes, so every acquisition is elidable."""
    pb = ProgramBuilder("t", main_class="Main")
    m = pb.cls("Main").method("main", static=True)
    loop = m.new_label()
    done = m.new_label()
    m.iconst(0).istore(1)
    m.bind(loop)
    m.iload(1).iconst(n).if_icmpge(done)
    m.new("java/lang/Object").dup()
    m.invokespecial("java/lang/Object", "<init>", 0)
    m.astore(2)
    m.aload(2).monitorenter()
    m.aload(2).monitorexit()
    m.iinc(1, 1)
    m.goto(loop)
    m.bind(done)
    m.getstatic("java/lang/System", "out").iload(1)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


def _escaping_lock_program():
    """The locked object is stored to a static field: never elidable."""
    pb = ProgramBuilder("t", main_class="Main")
    cb = pb.cls("Main")
    cb.static_field("g", "ref")
    m = cb.method("main", static=True)
    m.new("java/lang/Object").dup()
    m.invokespecial("java/lang/Object", "<init>", 0)
    m.putstatic("Main", "g")
    m.getstatic("Main", "g").monitorenter()
    m.getstatic("Main", "g").monitorexit()
    m.getstatic("java/lang/System", "out").iconst(1)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()
    return pb


class TestLockElision:
    def test_thread_local_locks_elided(self):
        base = _fresh(_local_lock_program(), strategy=InterpretOnly())
        opt = _fresh(_local_lock_program(), strategy=InterpretOnly(),
                     lock_elision=True)
        assert base.stdout == opt.stdout == ["5"]
        assert opt.sync["elided_acquires"] == 5
        assert opt.sync["elided_releases"] == 5
        assert opt.sync["elided_case_counts"]["a"] == 5
        assert opt.sync["elision_violations"] == 0
        assert opt.sync["acquire_ops"] == base.sync["acquire_ops"] - 5

    def test_escaping_object_not_elided(self):
        opt = _fresh(_escaping_lock_program(), strategy=InterpretOnly(),
                     lock_elision=True)
        assert opt.stdout == ["1"]
        assert opt.sync["elided_acquires"] == 0

    def test_recursive_elision_classified_case_b(self):
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        m.new("java/lang/Object").dup()
        m.invokespecial("java/lang/Object", "<init>", 0)
        m.astore(1)
        m.aload(1).monitorenter()
        m.aload(1).monitorenter()
        m.aload(1).monitorexit()
        m.aload(1).monitorexit()
        m.getstatic("java/lang/System", "out").iconst(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        opt = _fresh(pb, strategy=InterpretOnly(), lock_elision=True)
        assert opt.stdout == ["1"]
        cases = opt.sync["elided_case_counts"]
        assert (cases["a"], cases["b"], cases["c"]) == (1, 1, 0)

    def test_disabled_by_default(self):
        res = _fresh(_local_lock_program(), strategy=InterpretOnly())
        assert res.sync["elided_acquires"] == 0

    @pytest.mark.parametrize("workload", ("jack", "jess", "javac"))
    def test_workload_semantics_preserved(self, workload):
        base = run_vm(workload, scale="s0", mode="jit", cache_dir="")
        opt = run_vm(workload, scale="s0", mode="jit", cache_dir="",
                     jit_opt=True, lock_elision=True)
        assert base.stdout == opt.stdout
        assert base.bytecodes_executed == opt.bytecodes_executed
        assert opt.sync["elision_violations"] == 0

    def test_jack_elides_most_acquisitions(self):
        base = run_vm("jack", scale="s0", mode="jit", cache_dir="")
        opt = run_vm("jack", scale="s0", mode="jit", cache_dir="",
                     jit_opt=True, lock_elision=True)
        elided = opt.sync["elided_acquires"]
        assert elided > 0
        assert opt.sync["acquire_ops"] == base.sync["acquire_ops"] - elided
        assert opt.sync_cycles < base.sync_cycles


class TestJitDeadStoreElimination:
    def _dead_store_program(self):
        pb = ProgramBuilder("t", main_class="Main")
        m = pb.cls("Main").method("main", static=True)
        m.iconst(41).istore(1)      # dead: overwritten before any read
        m.iconst(42).istore(1)
        m.getstatic("java/lang/System", "out").iload(1)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
        m.return_()
        return pb

    def test_dead_store_dropped_from_compiled_code(self):
        base = _fresh(self._dead_store_program(),
                      strategy=CompileOnFirstUse())
        opt = _fresh(self._dead_store_program(),
                     strategy=CompileOnFirstUse(), jit_opt=True)
        assert base.stdout == opt.stdout == ["42"]
        assert opt.dead_stores_eliminated >= 1
        assert opt.instructions <= base.instructions

    def test_javac_workload_has_dead_store(self):
        opt = run_vm("javac", scale="s0", mode="jit", cache_dir="",
                     jit_opt=True)
        assert opt.dead_stores_eliminated >= 1

    def test_counters_zero_when_disabled(self):
        base = _fresh(self._dead_store_program(),
                      strategy=CompileOnFirstUse())
        assert base.dead_stores_eliminated == 0
        assert base.spill_stores_eliminated == 0
