"""``repro.faults`` — deterministic, seeded fault injection.

The paper's methodology rests on long trace/replay suites completing
reliably; this package makes the failure modes of that infrastructure
*testable*.  A fault plan (see :mod:`repro.faults.plan` for the
grammar) can kill or hang a pool worker at a chosen job, truncate or
garble a cache archive mid-store, abandon a file lock owned by a dead
process, and slow IO down — all deterministically, so CI can assert
that a faulted run produces byte-identical output to a clean one.

Activation::

    REPRO_FAULTS="worker-kill@1;seed=7" python -m repro.experiments ...
    python -m repro.experiments fig1 --jobs 2 --faults "corrupt-archive"

or programmatically via :func:`activate` / :func:`deactivate`.  Hook
sites in the cache and scheduler guard with ``if faults.ACTIVE is not
None`` so the disabled layer costs one attribute check (bench guard:
``benchmarks/test_bench_faults_overhead.py``).  Every injected,
observed, and recovered fault lands in :data:`LEDGER` (and the obs
tracer when enabled) and is reported in the run manifest.
"""

from __future__ import annotations

import os
import sys
import time

from .ledger import CATEGORIES, LEDGER, FaultLedger  # noqa: F401
from .plan import (  # noqa: F401 - public re-exports
    KINDS,
    WORKER_KINDS,
    ActivePlan,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    PlanError,
    apply_worker_fault,
)

ENV_VAR = "REPRO_FAULTS"

#: The active plan's runtime state, or ``None``.  Hook sites guard with
#: ``if faults.ACTIVE is not None`` — keep reads going through the
#: module attribute so activation is visible everywhere at once.
ACTIVE: ActivePlan | None = None


def activate(plan) -> ActivePlan:
    """Activate a plan (text, :class:`FaultPlan`, or :class:`ActivePlan`)
    with a fresh injection budget; returns the runtime state."""
    global ACTIVE
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    if isinstance(plan, ActivePlan):
        plan = plan.plan
    plan = ActivePlan(plan)
    ACTIVE = plan
    return plan


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


def active() -> ActivePlan | None:
    return ACTIVE


def activate_from_env() -> ActivePlan | None:
    """Activate the ``$REPRO_FAULTS`` plan, if any (spawned workers
    inherit the environment, so env-activated plans reach them too)."""
    text = os.environ.get(ENV_VAR)
    return activate(text) if text else None


# -- ledger conveniences ------------------------------------------------

def note_injected(kind: str, **attrs) -> None:
    LEDGER.note("injected", kind, **attrs)


def note_observed(kind: str, **attrs) -> None:
    LEDGER.note("observed", kind, **attrs)


def note_recovery(kind: str, **attrs) -> None:
    LEDGER.note("recovered", kind, **attrs)


def measure_disabled_overhead(iters: int = 200_000) -> dict:
    """Per-call cost of the disabled hook guard, in nanoseconds.

    Measures the exact call-site idiom (``if faults.ACTIVE is not
    None``: a module attribute read plus an identity check) so the
    bench guard can price a run's hook crossings.
    """
    if ACTIVE is not None:
        raise RuntimeError("fault layer must be inactive to measure "
                           "the disabled path")
    module = sys.modules[__name__]
    started = time.perf_counter()
    for _ in range(iters):
        if module.ACTIVE is not None:
            pass  # pragma: no cover - inactive by precondition
    elapsed = time.perf_counter() - started
    return {"iters": iters, "check_ns": 1e9 * elapsed / iters}


activate_from_env()
