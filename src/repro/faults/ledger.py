"""Fault bookkeeping shared by the injection layer and the hardened
runtime paths.

The ledger always counts — an abandoned lock broken in production is a
recovery whether or not a fault plan planted it — so the per-run
manifest can report every injected, observed, and recovered fault.
Workers snapshot/diff their ledger into the job outcome (mirroring
:class:`~repro.analysis.cache.CacheStats`) and the scheduler absorbs
the delta at join, so cross-process injections are visible to the
parent's manifest.

Categories:

- ``injected`` — faults the active plan deliberately caused
  (``worker-kill``, ``corrupt-archive``, ``stale-lock``, ``slow-io``…).
- ``observed`` — failures the runtime noticed, injected or not
  (``worker_crash``, ``job_timeout``, ``job_error``).
- ``recovered`` — successful recovery actions (``retry``,
  ``pool_replace``, ``serial``, ``lock_break``, ``quarantine``).
"""

from __future__ import annotations

import threading

from ..obs import TRACER

CATEGORIES = ("injected", "observed", "recovered")


class FaultLedger:
    """Thread-safe per-process fault counters, mirrored to the tracer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self._counts: dict[str, dict[str, int]] = {
                c: {} for c in CATEGORIES
            }

    def note(self, category: str, kind: str, **attrs) -> None:
        """Count one fault event; also emitted as an obs counter/event
        when tracing is on."""
        if category not in CATEGORIES:
            raise ValueError(f"unknown fault category {category!r}")
        with self._lock:
            bucket = self._counts[category]
            bucket[kind] = bucket.get(kind, 0) + 1
        if TRACER.enabled:
            TRACER.add(f"faults.{category}.{kind}")
            TRACER.emit(f"fault.{category}", 0.0, kind=kind, **attrs)

    # -- queries -------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {c: dict(self._counts[c]) for c in CATEGORIES}

    def count(self, category: str, kind: str) -> int:
        with self._lock:
            return self._counts[category].get(kind, 0)

    def total(self, category: str) -> int:
        with self._lock:
            return sum(self._counts[category].values())

    # -- cross-process merge ------------------------------------------
    @staticmethod
    def diff(after: dict, before: dict) -> dict:
        """Nested positive delta between two snapshots (empty categories
        dropped, so a no-fault outcome ships nothing)."""
        out: dict = {}
        for category in CATEGORIES:
            deltas = {}
            prior = before.get(category, {})
            for kind, value in after.get(category, {}).items():
                d = value - prior.get(kind, 0)
                if d:
                    deltas[kind] = d
            if deltas:
                out[category] = deltas
        return out

    def absorb(self, delta: dict) -> None:
        """Merge a worker's shipped delta into this process's ledger."""
        if not delta:
            return
        with self._lock:
            for category, kinds in delta.items():
                if category not in self._counts:
                    continue
                bucket = self._counts[category]
                for kind, value in kinds.items():
                    bucket[kind] = bucket.get(kind, 0) + value


#: Process-wide ledger; workers ship deltas back to the parent.
LEDGER = FaultLedger()
