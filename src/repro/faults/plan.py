"""Deterministic, seeded fault plans and their runtime state.

A *plan* is a semicolon-separated list of fault specs::

    worker-kill@2;corrupt-archive:times=2;seed=7

Each spec is ``kind[@at][:key=val,...]``:

- ``worker-kill`` / ``worker-hang`` / ``worker-raise`` — routed by the
  scheduler to the job at 1-based index ``at`` in the deduplicated job
  list (seeded pick when ``at`` is omitted) and applied in the worker
  on the job's first attempt: ``worker-kill`` calls ``os._exit``
  (``code=``, default 86), ``worker-hang`` sleeps (``seconds=``,
  default 30) before proceeding, ``worker-raise`` raises
  :class:`FaultInjected` outside the job's error handling — the same
  unhandled-executor path a real worker bug takes.
- ``corrupt-archive`` — mutates the bytes of the Nth cache store in a
  process (``mode=truncate|garble``, default truncate) *after* the
  content digest is computed, so verification on load must catch it.
- ``stale-lock`` — plants a lock file owned by a genuinely dead pid
  just before a lock acquisition, exercising the liveness-probe
  breaking path.
- ``slow-io`` — sleeps ``ms=`` (default 25) on cache load/store.
- ``noop`` — injects nothing; used by the bench guard to count hook
  crossings.

``times=N`` bounds how often a spec fires (default once) — worker
faults are budgeted by the parent scheduler, in-process faults per
process.  ``seed=N`` makes the un-pinned worker-fault target selection
deterministic.  Every injection is recorded in the
:data:`~repro.faults.ledger.LEDGER` (and as obs counters when tracing).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass

from .ledger import LEDGER

KINDS = (
    "worker-kill",
    "worker-hang",
    "worker-raise",
    "corrupt-archive",
    "stale-lock",
    "slow-io",
    "noop",
)

#: Kinds the scheduler routes to a worker via a per-job directive.
WORKER_KINDS = ("worker-kill", "worker-hang", "worker-raise")


class PlanError(ValueError):
    """A fault-plan string that does not parse."""


class FaultInjected(RuntimeError):
    """The exception a ``worker-raise`` fault throws inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault in a plan: what to inject, where, and how often."""

    kind: str
    at: int | None = None
    times: int = 1
    params: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise PlanError(f"unknown fault kind {self.kind!r}; "
                            f"known: {', '.join(KINDS)}")
        if self.at is not None and self.at < 1:
            raise PlanError(f"fault target must be >= 1, got {self.at}")
        if self.times < 1:
            raise PlanError(f"times must be >= 1, got {self.times}")

    def param(self, key: str, default=None):
        return dict(self.params).get(key, default)

    def describe(self) -> str:
        text = self.kind
        if self.at is not None:
            text += f"@{self.at}"
        extras = list(self.params)
        if self.times != 1:
            extras.append(("times", str(self.times)))
        if extras:
            text += ":" + ",".join(f"{k}={v}" for k, v in sorted(extras))
        return text


def _parse_spec(text: str) -> FaultSpec:
    head, _, tail = text.partition(":")
    kind, _, at_text = head.partition("@")
    kind = kind.strip()
    at = None
    times = 1
    params = {}
    try:
        if at_text.strip():
            at = int(at_text)
        if tail:
            for item in tail.split(","):
                key, sep, value = item.partition("=")
                if not sep:
                    raise PlanError(f"malformed fault option {item!r} "
                                    f"in {text!r}")
                key, value = key.strip(), value.strip()
                if key == "times":
                    times = int(value)
                elif key == "at":
                    at = int(value)
                else:
                    params[key] = value
    except ValueError as exc:
        raise PlanError(f"bad fault spec {text!r}: {exc}") from None
    return FaultSpec(kind, at, times, tuple(sorted(params.items())))


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable fault plan (specs + selection seed)."""

    specs: tuple
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = []
        seed = 0
        for token in str(text).split(";"):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[5:])
                except ValueError:
                    raise PlanError(f"bad seed in {token!r}") from None
                continue
            specs.append(_parse_spec(token))
        if not specs:
            raise PlanError(f"fault plan {text!r} declares no faults")
        return cls(tuple(specs), seed)

    def describe(self) -> str:
        parts = [spec.describe() for spec in self.specs]
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)


def _seeded_index(seed: int, kind: str, n: int) -> int:
    """Deterministic 1-based index for an un-pinned worker fault."""
    digest = hashlib.sha256(f"{seed}:{kind}".encode()).hexdigest()
    return int(digest, 16) % n + 1


class ActivePlan:
    """Per-process runtime state for one activated plan.

    Holds the remaining injection budget of each spec plus ``checks``,
    the number of hook crossings — what the disabled-layer bench guard
    prices at the ``if faults.ACTIVE is not None`` cost.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.checks = 0
        self._lock = threading.Lock()
        self._remaining = {i: spec.times
                           for i, spec in enumerate(plan.specs)}

    def _take(self, spec_index: int) -> bool:
        with self._lock:
            if self._remaining.get(spec_index, 0) <= 0:
                return False
            self._remaining[spec_index] -= 1
            return True

    # -- parent-side worker-fault routing ------------------------------
    def worker_targets(self, n_jobs: int) -> dict[int, int]:
        """Map of 0-based job index -> spec index for worker faults."""
        targets: dict[int, int] = {}
        if n_jobs <= 0:
            return targets
        for i, spec in enumerate(self.plan.specs):
            if spec.kind not in WORKER_KINDS:
                continue
            at = spec.at or _seeded_index(self.plan.seed, spec.kind, n_jobs)
            targets[(at - 1) % n_jobs] = i
        return targets

    def take_worker_fault(self, spec_index: int) -> tuple | None:
        """Consume one firing of a worker-fault spec; the returned
        ``(kind, params)`` directive travels to the worker with the job."""
        spec = self.plan.specs[spec_index]
        if not self._take(spec_index):
            return None
        LEDGER.note("injected", spec.kind, via="scheduler")
        return (spec.kind, dict(spec.params))

    # -- in-process hooks (cache layer) --------------------------------
    def on_io(self, op: str) -> None:
        """Cache load/store hook: slow-IO injection point."""
        self.checks += 1
        for i, spec in enumerate(self.plan.specs):
            if spec.kind != "slow-io" or not self._take(i):
                continue
            delay = float(spec.param("ms", 25)) / 1000.0
            LEDGER.note("injected", "slow-io", op=op, seconds=delay)
            time.sleep(delay)

    def on_lock_acquire(self, lock_path: str) -> None:
        """Lock hook: plants a stale lock owned by a dead pid."""
        self.checks += 1
        for i, spec in enumerate(self.plan.specs):
            if spec.kind != "stale-lock" or os.path.exists(lock_path):
                continue
            if not self._take(i):
                continue
            _plant_stale_lock(lock_path)
            LEDGER.note("injected", "stale-lock",
                        entry=os.path.basename(lock_path))

    def corrupt_store(self, path: str, data: bytes) -> bytes:
        """Store hook: returns (possibly corrupted) archive bytes."""
        self.checks += 1
        for i, spec in enumerate(self.plan.specs):
            if spec.kind != "corrupt-archive" or not self._take(i):
                continue
            mode = spec.param("mode", "truncate")
            LEDGER.note("injected", "corrupt-archive", mode=mode,
                        entry=os.path.basename(path))
            return _corrupt_bytes(data, mode)
        return data


def _corrupt_bytes(data: bytes, mode: str) -> bytes:
    if mode == "garble":
        blob = bytearray(data)
        start = len(blob) // 3
        for i in range(start, min(start + 64, len(blob))):
            blob[i] ^= 0xA5
        return bytes(blob)
    # truncate: what a crash mid-write would have left behind
    return data[: max(1, len(data) // 3)]


def _dead_pid() -> int:
    """A pid that is guaranteed dead: a child we spawn and reap."""
    proc = subprocess.Popen([sys.executable, "-c", ""],
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    proc.wait()
    return proc.pid


def _plant_stale_lock(lock_path: str) -> None:
    os.makedirs(os.path.dirname(lock_path) or ".", exist_ok=True)
    try:
        fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:  # pragma: no cover - raced a real owner
        return
    with os.fdopen(fd, "w") as fh:
        fh.write(str(_dead_pid()))


def apply_worker_fault(fault: tuple) -> None:
    """Enact a worker-fault directive inside the worker process."""
    kind, params = fault
    if kind == "worker-kill":
        # A hard crash: no cleanup, no exception, no outcome shipped.
        os._exit(int(params.get("code", 86)))
    if kind == "worker-hang":
        time.sleep(float(params.get("seconds", 30.0)))
        return
    if kind == "worker-raise":
        raise FaultInjected("injected worker fault: worker-raise")
