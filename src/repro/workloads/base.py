"""Workload registry and scaling.

Each workload is a from-scratch bytecode program whose *architectural
character* matches the corresponding SpecJVM98 benchmark as the paper
describes it (method-reuse profile, loop/call structure, data footprint,
synchronization behaviour).  Workloads print a checksum so tests can
verify end-to-end semantics under every execution mode.

Scales: ``s0`` is a smoke-test size, ``s1`` matches the paper's choice
of small inputs (the study's argument: with large inputs *any*
compilation cost amortizes, hiding the effects under study), ``s10`` is
a larger variant used to confirm trends.
"""

from __future__ import annotations

from typing import Callable

from ..isa.method import Program

SCALES = ("s0", "s1", "s10")


class Workload:
    """A named, scalable benchmark program."""

    def __init__(self, name: str, build: Callable[[str], Program],
                 description: str, multithreaded: bool = False) -> None:
        self.name = name
        self._build = build
        self.description = description
        self.multithreaded = multithreaded

    def build(self, scale: str = "s1") -> Program:
        """A fresh :class:`Program` (runtime state is per-VM)."""
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; use one of {SCALES}")
        return self._build(scale)

    def __repr__(self) -> str:
        return f"Workload({self.name})"


_REGISTRY: dict[str, Workload] = {}


def register(name: str, description: str, multithreaded: bool = False):
    """Decorator registering a build function as a workload."""

    def deco(fn):
        _REGISTRY[name] = Workload(name, fn, description, multithreaded)
        return fn

    return deco


def get_workload(name: str) -> Workload:
    _ensure_imported()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> dict[str, Workload]:
    _ensure_imported()
    return dict(_REGISTRY)


#: The paper's benchmark set (Figure 1 uses the starred five + hello).
SPEC_BENCHMARKS = ("compress", "jess", "db", "javac", "mpegaudio",
                   "mtrt", "jack")
FIG1_BENCHMARKS = ("hello", "db", "javac", "jess", "compress", "jack")


def _ensure_imported() -> None:
    """Import the workload modules so their @register decorators run."""
    from . import promoted, specjvm  # noqa: F401  (registration side effect)
