"""Workloads: SpecJVM98-like programs and native reference generators."""

from .base import (
    FIG1_BENCHMARKS,
    SCALES,
    SPEC_BENCHMARKS,
    Workload,
    all_workloads,
    get_workload,
)
from .native_reference import (
    C_PROFILE,
    CPP_PROFILE,
    PROFILES,
    ReferenceProfile,
    generate_reference_trace,
)

__all__ = [
    "C_PROFILE",
    "CPP_PROFILE",
    "FIG1_BENCHMARKS",
    "PROFILES",
    "ReferenceProfile",
    "SCALES",
    "SPEC_BENCHMARKS",
    "Workload",
    "all_workloads",
    "generate_reference_trace",
    "get_workload",
]
