; promoted fuzz survivor (performance anomaly)
; translate_dominated: translate share 0.778 of jit cycles (63946/82177)
; generator seed: 84
.class Main
.field acc int static
.field shared ref static
.method h0 argc=1 static returns
    iload 0
    iconst 93
    iand
    iload 0
    iconst 21
    iushr
    iconst 1
    ior
    irem
    ireturn
.end
.method h1 argc=1 static returns
    iload 0
    iload 0
    iload 0
    iadd
    iadd
    ireturn
.end
.method h2 argc=2 static returns
    iconst 19
    ireturn
.end
.method main static
    iconst 83
    istore 0
    iconst 2147483647
    istore 1
    iconst 95
    istore 2
    iconst -12
    istore 3
    iconst 54
    istore 4
    fconst -70.992
    fstore 5
    fconst -17.328
    fstore 6
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 7
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 8
    iconst 4
    newarray int
    astore 9
    iconst 0
    istore 10
    iconst 0
    istore 11
    aload 9
    aload 8
    aload 9
    iconst 61
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    invokevirtual FuzzData bump 1 ret
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    istore 1
    iconst 37
    iconst 65
    iload 0
    ishr
    iand
    getstatic Main acc
    if_icmpgt L59
    getstatic Main acc
    istore 3
    goto L114
L59:
    iconst 67
    iconst -99
    iconst 1
    ior
    idiv
    aload 7
    getfield FuzzData f1
    ishl
    ifge L84
    aload 8
    aload 8
    iload 3
    invokevirtual FuzzData bump 1 ret
    iload 2
    iload 4
    ior
    iconst 1
    ior
    idiv
    putfield FuzzData f1
    fconst -97.868
    fstore 6
    fconst -41.968
    fstore 5
    goto L114
L84:
    aload 9
    iconst -55
    iconst -56
    ior
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iconst 71
    i2s
    iconst 18
    iadd
    iastore
    aload 7
    iload 2
    i2c
    aload 9
    iload 4
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    iadd
    invokevirtual FuzzData bump 1 ret
    istore 0
L114:
    iload 2
    iconst -22
    ior
    iconst -70
    ixor
    ifeq L143
    aload 8
    astore 12
    aload 12
    monitorenter
    aload 8
    iconst 94
    i2c
    i2s
    putfield FuzzData f1
    iconst 29
    istore 0
    aload 7
    iload 2
    putfield FuzzData f1
    aload 12
    monitorexit
    getstatic java/lang/System out
    aload 8
    iconst -24
    i2b
    invokevirtual FuzzData bump 1 ret
    invokevirtual java/io/PrintStream printlnInt 1 void
    goto L184
L143:
    aload 7
    astore 12
    aload 12
    monitorenter
    aload 8
    aload 9
    iconst -98
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    iconst 85
    iload 1
    ior
    ixor
    putfield FuzzData f1
    aload 12
    monitorexit
    aload 9
    aload 9
    iload 0
    iload 1
    imul
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    istore 2
L184:
    aload 8
    astore 12
    aload 12
    monitorenter
    getstatic Main acc
    iconst 27
    iconst -11
    iadd
    i2b
    if_icmplt L224
    iconst 88
    invokestatic Main h1 1 ret
    aload 9
    aload 9
    iload 3
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    ishl
    istore 3
    fload 5
    fconst -34.058
    fload 6
    fsub
    fdiv
    fstore 5
    aload 7
    putstatic Main shared
    goto L238
L224:
    getstatic java/lang/System out
    aload 9
    getstatic Main acc
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    invokevirtual java/io/PrintStream printlnInt 1 void
    aload 7
    getfield FuzzData f1
    istore 2
L238:
    aload 12
    monitorexit
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 8
    aload 7
    getstatic Main acc
    i2b
    putfield FuzzData f0
    aload 8
    iload 4
    putfield FuzzData f0
    aload 7
    iload 0
    invokevirtual FuzzData bump 1 ret
    istore 1
    aload 7
    getfield FuzzData f0
    ifge L268
    iconst 34
    iconst 66
    ishr
    iconst -3
    iushr
    aload 7
    getfield FuzzData f0
    imul
    putstatic Main acc
    goto L268
L268:
    aload 8
    astore 12
    aload 12
    monitorenter
    fconst 50.875
    fconst -70.217
    fcmpg
    aload 7
    getfield FuzzData f1
    iconst 1
    ior
    idiv
    putstatic Main acc
    aload 12
    monitorexit
    aload 9
    aload 9
    iload 1
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    fconst 34.456
    fload 5
    fcmpg
    ixor
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iconst -39
    iload 3
    iand
    iload 0
    iconst 2147483647
    iconst 1
    ior
    irem
    ior
    iastore
    aload 7
    astore 12
    aload 12
    monitorenter
    iconst 3
    istore 11
L319:
    iload 11
    ifle L335
    aload 9
    iload 1
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iconst -47
    iastore
    iconst -67
    istore 3
    iinc 11 -1
    goto L319
L335:
    iconst 255
    istore 1
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 8
    aload 12
    monitorexit
    aload 9
    iconst 47
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    iload 1
    ishr
    iconst 1
    iload 2
    iadd
    fconst -27.149
    fload 6
    fcmpl
    iadd
    iand
    putstatic Main acc
    iconst -15
    getstatic Main acc
    imul
    iconst 3
    irem
    iconst 3
    iadd
    iconst 3
    irem
    tableswitch 0 L373 L379 L430 default L456
L373:
    aload 8
    iconst 21
    invokevirtual FuzzData bump 1 ret
    i2b
    istore 1
    goto L499
L379:
    aload 7
    astore 12
    aload 12
    monitorenter
    aload 9
    aload 9
    iload 0
    iconst 63
    ishl
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iconst -8
    iload 2
    iconst 1
    ior
    irem
    iconst 33
    iadd
    iastore
    aload 9
    iload 2
    iload 1
    iconst 1
    ior
    irem
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    fload 6
    fconst 10.016
    fsub
    fconst -6.593
    fcmpl
    iastore
    aload 12
    monitorexit
    goto L499
L430:
    getstatic java/lang/System out
    iload 1
    invokevirtual java/io/PrintStream printlnInt 1 void
    aload 8
    astore 12
    aload 12
    monitorenter
    iconst -73
    i2f
    fconst 64.737
    fsub
    fstore 5
    fconst 66.666
    fconst -17.968
    fcmpl
    iload 0
    iconst 32
    iconst 1
    ior
    irem
    iand
    i2c
    istore 3
    aload 12
    monitorexit
    goto L499
L456:
    aload 7
    astore 12
    aload 12
    monitorenter
    aload 9
    getstatic Main acc
    aload 9
    iload 2
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    ishl
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iconst 55
    iastore
    aload 9
    aload 7
    getfield FuzzData f1
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iconst -59
    iconst -71
    iconst 1
    ior
    irem
    iload 1
    isub
    iastore
    aload 12
    monitorexit
L499:
    getstatic java/lang/System out
    iload 0
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 1
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 2
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 3
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 4
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    fload 5
    fconst 0.5
    fcmpl
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    fload 6
    fconst 0.5
    fcmpl
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    getstatic Main acc
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 7
    getfield FuzzData f0
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 9
    iconst 0
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 9
    iconst 3
    iconst 4
    irem
    iconst 4
    iadd
    iconst 4
    irem
    iaload
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end

.class FuzzData
.field f0 int
.field f1 int
.field g0 float
.method <init>
    aload 0
    iconst 7
    putfield FuzzData f0
    return
.end
.method bump argc=1 returns
    aload 0
    aload 0
    getfield FuzzData f0
    iload 1
    iadd
    putfield FuzzData f0
    aload 0
    getfield FuzzData f0
    ireturn
.end

