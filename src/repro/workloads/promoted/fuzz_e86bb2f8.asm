; promoted fuzz survivor (performance anomaly)
; translate_dominated: translate share 0.772 of jit cycles (48834/63248)
; generator seed: 176
.class Main
.field acc int static
.field shared ref static
.method main static
    iconst -49
    istore 0
    iconst -22
    istore 1
    iconst -2147483648
    istore 2
    fconst -85.267
    fstore 3
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 4
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 5
    iconst 5
    newarray int
    astore 6
    iconst 0
    istore 7
    iconst 0
    istore 8
    iconst -9
    iconst 63
    iload 1
    ior
    isub
    fconst 83.087
    fconst -97.227
    fneg
    fcmpl
    if_icmple L36
    fload 3
    fstore 3
    goto L49
L36:
    iconst 255
    iconst -7
    ishl
    putstatic Main acc
    aload 5
    iconst -1
    iconst 18
    iconst 1
    ior
    irem
    iconst 255
    imul
    putfield FuzzData f1
L49:
    fconst 67.327
    fstore 3
    aload 6
    iconst -2147483648
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iload 2
    iconst -49
    iadd
    iload 1
    ishl
    iastore
    aload 5
    iload 1
    invokevirtual FuzzData bump 1 ret
    istore 0
    fconst -46.168
    fstore 3
    aload 5
    iload 0
    iconst 53
    ixor
    iload 1
    iconst 8
    imul
    iconst 1
    ior
    irem
    invokevirtual FuzzData bump 1 ret
    istore 0
    iload 1
    iconst 3
    irem
    iconst 3
    iadd
    iconst 3
    irem
    tableswitch 0 L91 L133 L169 default L174
L91:
    fload 3
    fneg
    fconst 47.901
    fadd
    fstore 3
    fconst -6.93
    fconst 10.118
    fload 3
    fmul
    fcmpg
    iconst 31
    if_icmpne L124
    iconst 93
    aload 6
    iload 0
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    iand
    iconst -10
    iload 0
    ishl
    aload 5
    iconst -51
    invokevirtual FuzzData bump 1 ret
    isub
    imul
    istore 2
    goto L132
L124:
    aload 4
    fload 3
    fconst 15.997
    fcmpg
    invokevirtual FuzzData bump 1 ret
    istore 0
    aload 4
    putstatic Main shared
L132:
    goto L218
L133:
    iconst 48
    iload 0
    iconst 1
    ior
    idiv
    iconst -89
    ior
    iload 0
    if_icmpgt L163
    aload 6
    aload 6
    iconst 46
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    iload 2
    imul
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iconst -10
    iastore
    goto L168
L163:
    iconst -43
    istore 2
    aload 5
    iload 1
    putfield FuzzData f1
L168:
    goto L218
L169:
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 5
    goto L218
L174:
    fload 3
    fconst 99.059
    fcmpg
    aload 6
    iconst -13
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    if_icmpgt L218
    aload 5
    iconst -27
    iload 2
    iconst 1
    ior
    irem
    i2b
    putfield FuzzData f0
    aload 5
    aload 6
    iload 1
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    iconst 49
    iconst -84
    iand
    ishl
    putfield FuzzData f1
    fload 3
    fconst -52.194
    fload 3
    fdiv
    fcmpl
    i2b
    putstatic Main acc
    goto L218
L218:
    iconst 86
    istore 1
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 5
    aload 6
    aload 6
    iload 2
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    aload 6
    iload 2
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    iload 1
    ishr
    iastore
    getstatic java/lang/System out
    iconst -57
    iconst -7
    iadd
    aload 6
    iconst 93
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    isub
    invokevirtual java/io/PrintStream printlnInt 1 void
    iload 1
    i2b
    iload 0
    iadd
    iconst 2
    irem
    iconst 2
    iadd
    iconst 2
    irem
    tableswitch 0 L278 L354 default L365
L278:
    iload 2
    i2c
    iload 0
    iadd
    istore 2
    aload 6
    iconst 18
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    aload 6
    iload 0
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    i2b
    if_icmpge L335
    aload 6
    iload 2
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    iload 1
    i2c
    aload 4
    getfield FuzzData f0
    ishl
    iconst 1
    ior
    idiv
    istore 0
    aload 6
    iconst -17
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    aload 4
    getfield FuzzData f1
    iastore
    aload 4
    putstatic Main shared
    goto L353
L335:
    aload 6
    fconst -25.034
    fload 3
    fcmpg
    aload 4
    getfield FuzzData f1
    ixor
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    istore 1
    getstatic java/lang/System out
    iload 2
    invokevirtual java/io/PrintStream printlnInt 1 void
L353:
    goto L367
L354:
    aload 5
    putstatic Main shared
    getstatic Main acc
    iload 0
    iconst 77
    iand
    iload 1
    ishr
    iand
    putstatic Main acc
    goto L367
L365:
    iconst 63
    putstatic Main acc
L367:
    getstatic java/lang/System out
    iload 0
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 1
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 2
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    fload 3
    fconst 0.5
    fcmpl
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    getstatic Main acc
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 4
    getfield FuzzData f0
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 6
    iconst 0
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 6
    iconst 4
    iconst 5
    irem
    iconst 5
    iadd
    iconst 5
    irem
    iaload
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end

.class FuzzData
.field f0 int
.field f1 int
.field g0 float
.method <init>
    aload 0
    iconst 7
    putfield FuzzData f0
    return
.end
.method bump argc=1 returns
    aload 0
    aload 0
    getfield FuzzData f0
    iload 1
    iadd
    putfield FuzzData f0
    aload 0
    getfield FuzzData f0
    ireturn
.end

