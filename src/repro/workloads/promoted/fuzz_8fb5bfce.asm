; promoted fuzz survivor (performance anomaly)
; translate_dominated: translate share 0.773 of jit cycles (59182/76514)
; generator seed: 139
.class Main
.field acc int static
.field shared ref static
.method main static
    iconst 16
    istore 0
    iconst 87
    istore 1
    iconst 2
    istore 2
    fconst -99.941
    fstore 3
    fconst -51.462
    fstore 4
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 5
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 6
    iconst 8
    newarray int
    astore 7
    iconst 0
    istore 8
    iconst 0
    istore 9
    aload 6
    astore 10
    aload 10
    monitorenter
    aload 6
    aload 5
    getfield FuzzData f1
    iconst -1
    i2b
    ior
    putfield FuzzData f0
    aload 5
    astore 11
    aload 11
    monitorenter
    aload 6
    iconst -88
    invokevirtual FuzzData bump 1 ret
    iload 2
    iushr
    istore 0
    iconst 70
    ineg
    iload 1
    iload 1
    iand
    ishl
    aload 7
    iload 1
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iaload
    ineg
    ishl
    istore 2
    aload 11
    monitorexit
    aload 10
    monitorexit
    aload 5
    astore 10
    aload 10
    monitorenter
    iload 1
    ifeq L89
    aload 7
    getstatic Main acc
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iconst -65
    iload 2
    iload 2
    ior
    isub
    iastore
    goto L89
L89:
    iconst -28
    istore 0
    aload 10
    monitorexit
    aload 7
    iconst -47
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iaload
    aload 7
    fload 4
    fconst -1.704
    fcmpl
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iaload
    if_icmplt L165
    iload 0
    fload 3
    fconst -14.814
    fcmpl
    imul
    i2s
    istore 0
    iload 0
    iconst 42
    if_icmple L147
    aload 7
    iconst 41
    iload 0
    iconst -43
    iconst 1
    ior
    idiv
    iconst 1
    ior
    idiv
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iload 0
    fconst 99.296
    fconst -79.876
    fcmpl
    iand
    iastore
    goto L155
L147:
    aload 5
    fload 3
    fconst -26.233
    fcmpg
    iconst 255
    ishr
    invokevirtual FuzzData bump 1 ret
    istore 1
L155:
    aload 6
    iconst -52
    i2b
    iconst -13
    iconst 32
    isub
    imul
    invokevirtual FuzzData bump 1 ret
    istore 1
    goto L190
L165:
    iconst 86
    istore 2
    iload 0
    ifle L186
    iconst 100
    putstatic Main acc
    aload 6
    putstatic Main shared
    fconst 30.542
    fconst 52.484
    fconst 19.594
    fmul
    fcmpl
    iconst 86
    iload 1
    iload 1
    imul
    ixor
    ishl
    istore 0
    goto L190
L186:
    fconst -31.64
    fstore 3
    fconst 94.971
    fstore 3
L190:
    aload 5
    getfield FuzzData f0
    getstatic Main acc
    ior
    istore 2
    getstatic java/lang/System out
    iconst 2147483647
    invokevirtual java/io/PrintStream printlnInt 1 void
    aload 5
    getfield FuzzData f1
    i2b
    aload 5
    getfield FuzzData f1
    iload 1
    ishl
    if_icmplt L228
    iload 0
    iload 0
    iconst 1
    ior
    idiv
    istore 1
    aload 6
    iconst -4
    i2c
    putfield FuzzData f1
    aload 7
    iload 1
    i2s
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iload 0
    iastore
    goto L252
L228:
    iconst 1
    istore 9
L230:
    iload 9
    ifle L243
    getstatic Main acc
    istore 2
    aload 6
    fload 4
    aload 5
    getfield FuzzData g0
    fcmpg
    invokevirtual FuzzData bump 1 ret
    istore 0
    iinc 9 -1
    goto L230
L243:
    aload 6
    iload 1
    i2b
    fconst -3.525
    fload 4
    fcmpl
    iand
    invokevirtual FuzzData bump 1 ret
    istore 2
L252:
    aload 5
    getfield FuzzData f1
    iload 0
    iconst -98
    iushr
    ishl
    iload 2
    if_icmple L287
    iconst -98
    istore 2
    aload 5
    astore 10
    aload 10
    monitorenter
    aload 5
    getfield FuzzData f1
    istore 2
    iconst -97
    iload 0
    iconst -18
    iconst 1
    ior
    irem
    iload 1
    iload 2
    ishl
    iadd
    iushr
    istore 1
    aload 10
    monitorexit
    aload 5
    iconst -96
    putfield FuzzData f0
    goto L304
L287:
    aload 7
    iconst -60
    iconst -98
    iushr
    i2b
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    aload 6
    iload 1
    invokevirtual FuzzData bump 1 ret
    iload 1
    ior
    iastore
L304:
    iconst 2147483647
    iconst -14
    if_icmplt L356
    iload 1
    getstatic Main acc
    isub
    iconst 10
    if_icmpne L333
    aload 7
    iload 0
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iaload
    iconst 1
    imul
    iload 2
    isub
    istore 1
    new FuzzData
    dup
    invokespecial FuzzData <init> 0 void
    astore 6
    iload 2
    istore 1
    goto L350
L333:
    aload 7
    iconst -43
    iload 0
    iadd
    ineg
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iload 0
    i2c
    aload 5
    getfield FuzzData f1
    ishr
    iastore
L350:
    fconst -27.563
    fload 4
    fneg
    fcmpl
    putstatic Main acc
    goto L403
L356:
    iconst 2
    istore 9
L358:
    iload 9
    ifle L379
    aload 6
    aload 7
    iconst 43
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iaload
    fconst 72.656
    fload 4
    fcmpg
    iushr
    putfield FuzzData f1
    iload 2
    istore 1
    iinc 9 -1
    goto L358
L379:
    iconst 5
    istore 9
L381:
    iload 9
    ifle L403
    aload 7
    fload 4
    fload 4
    fcmpl
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iaload
    getstatic Main acc
    isub
    istore 1
    fconst -39.956
    fconst 58.804
    fcmpl
    istore 2
    iinc 9 -1
    goto L381
L403:
    fconst -9.076
    fneg
    iconst -78
    i2f
    fcmpl
    istore 1
    getstatic java/lang/System out
    iload 0
    fconst -23.467
    fconst 29.707
    fcmpg
    ixor
    invokevirtual java/io/PrintStream printlnInt 1 void
    aload 6
    iload 0
    invokevirtual FuzzData bump 1 ret
    iload 2
    if_icmpge L426
    aload 5
    iconst 25
    invokevirtual FuzzData bump 1 ret
    istore 1
    goto L426
L426:
    iconst 74
    i2c
    istore 1
    iconst 53
    istore 1
    aload 6
    astore 10
    aload 10
    monitorenter
    aload 6
    iconst 53
    invokevirtual FuzzData bump 1 ret
    istore 1
    iconst 3
    istore 9
L441:
    iload 9
    ifle L456
    aload 7
    iconst 50
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    aload 5
    getfield FuzzData f1
    iastore
    iinc 9 -1
    goto L441
L456:
    iconst 73
    istore 2
    aload 10
    monitorexit
    getstatic java/lang/System out
    iload 0
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 1
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    iload 2
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    fload 3
    fconst 0.5
    fcmpl
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    fload 4
    fconst 0.5
    fcmpl
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    getstatic Main acc
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 5
    getfield FuzzData f0
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 7
    iconst 0
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iaload
    invokevirtual java/io/PrintStream printlnInt 1 void
    getstatic java/lang/System out
    aload 7
    iconst 7
    iconst 8
    irem
    iconst 8
    iadd
    iconst 8
    irem
    iaload
    invokevirtual java/io/PrintStream printlnInt 1 void
    return
.end

.class FuzzData
.field f0 int
.field f1 int
.field g0 float
.method <init>
    aload 0
    iconst 7
    putfield FuzzData f0
    return
.end
.method bump argc=1 returns
    aload 0
    aload 0
    getfield FuzzData f0
    iload 1
    iadd
    putfield FuzzData f0
    aload 0
    getfield FuzzData f0
    ireturn
.end

