"""Reference native traces for C / C++ / SPECint comparison points.

Figures 2 and 4 of the paper compare the Java modes against traditional
C and C++ programs, citing published SPEC characterizations [20].  Those
comparison points were never measured by the paper's own infrastructure,
so we substitute *statistical trace generators* calibrated to the
published numbers: instruction mix (~50-55 % ALU, ~30 % memory, ~17 %
control), basic-block sizes, code footprints and data working sets that
yield the literature's L1 miss-rate ranges (see DESIGN.md).

The generated traces flow through exactly the same cache/branch/mix
analyses as the Java traces.
"""

from __future__ import annotations

import numpy as np

from ..native.nisa import FLAG_TAKEN, FLAG_WRITE, NCat
from ..native.trace import Trace


class ReferenceProfile:
    """Statistical parameters of a traditional-program trace."""

    def __init__(
        self,
        name: str,
        code_bytes: int,
        hot_fraction: float,
        data_bytes: int,
        stack_bytes: int,
        load_frac: float,
        store_frac: float,
        branch_frac: float,
        call_frac: float,
        indirect_frac: float,
        float_frac: float,
        branch_taken_bias: float,
        stack_ref_frac: float,
        stream_frac: float,
    ) -> None:
        self.name = name
        self.code_bytes = code_bytes
        self.hot_fraction = hot_fraction
        self.data_bytes = data_bytes
        self.stack_bytes = stack_bytes
        self.load_frac = load_frac
        self.store_frac = store_frac
        self.branch_frac = branch_frac
        self.call_frac = call_frac
        self.indirect_frac = indirect_frac
        self.float_frac = float_frac
        self.branch_taken_bias = branch_taken_bias
        self.stack_ref_frac = stack_ref_frac
        self.stream_frac = stream_frac


#: SPECint-like C program (gcc/go flavour).
C_PROFILE = ReferenceProfile(
    name="C",
    code_bytes=192 << 10,
    hot_fraction=0.15,
    data_bytes=2 << 20,
    stack_bytes=8 << 10,
    load_frac=0.21,
    store_frac=0.09,
    branch_frac=0.13,
    call_frac=0.025,
    indirect_frac=0.004,
    float_frac=0.01,
    branch_taken_bias=0.62,
    stack_ref_frac=0.35,
    stream_frac=0.25,
)

#: C++ program: bigger code, more (virtual) calls and indirect jumps.
CPP_PROFILE = ReferenceProfile(
    name="C++",
    code_bytes=320 << 10,
    hot_fraction=0.10,
    data_bytes=3 << 20,
    stack_bytes=16 << 10,
    load_frac=0.24,
    store_frac=0.10,
    branch_frac=0.12,
    call_frac=0.04,
    indirect_frac=0.012,
    float_frac=0.01,
    branch_taken_bias=0.60,
    stack_ref_frac=0.40,
    stream_frac=0.20,
)

PROFILES = {"C": C_PROFILE, "C++": CPP_PROFILE}

_CODE_BASE = 0x2000_0000
_DATA_BASE = 0x3000_0000
_STACK_BASE = 0x3800_0000


def generate_reference_trace(profile: ReferenceProfile, n: int = 400_000,
                             seed: int = 1234) -> Trace:
    """Synthesize a native trace with the profile's statistics.

    The pc stream walks basic blocks chosen from a hot set (Zipf-ish:
    most time in ``hot_fraction`` of the code) with sequential flow
    inside blocks.  Data references split between a hot stack region,
    a resident working set and streaming accesses.
    """
    rng = np.random.default_rng(seed)
    n_blocks = max(16, profile.code_bytes // 24)   # ~6-instr blocks
    hot_blocks = max(4, int(n_blocks * profile.hot_fraction))

    pc = np.zeros(n, dtype=np.int64)
    cat = np.zeros(n, dtype=np.int16)
    ea = np.zeros(n, dtype=np.int64)
    flags = np.zeros(n, dtype=np.int16)
    target = np.zeros(n, dtype=np.int64)
    dst = np.full(n, -1, dtype=np.int16)
    src1 = np.full(n, -1, dtype=np.int16)
    src2 = np.full(n, -1, dtype=np.int16)

    # Pre-draw randomness in bulk.
    block_pick = rng.random(n)
    kind_pick = rng.random(n)
    data_pick = rng.random(n)
    taken_pick = rng.random(n)
    hot_block_ids = rng.integers(0, hot_blocks, size=n)
    cold_block_ids = rng.integers(0, n_blocks, size=n)
    # Working-set accesses are strongly skewed (as in real programs):
    # most hit a hot subset that fits in L1, the tail roams the heap.
    hot_ws_words = max(1, (24 << 10) // 4)
    ws_cold = rng.integers(0, max(profile.data_bytes // 4, 1), size=n)
    ws_hot = rng.integers(0, hot_ws_words, size=n)
    ws_is_hot = rng.random(n) < 0.95
    ws_offsets = np.where(ws_is_hot, ws_hot, ws_cold)
    stack_offsets = rng.integers(0, max(profile.stack_bytes // 4, 1), size=n)

    load_hi = profile.load_frac
    store_hi = load_hi + profile.store_frac
    branch_hi = store_hi + profile.branch_frac
    call_hi = branch_hi + profile.call_frac
    ind_hi = call_hi + profile.indirect_frac
    float_hi = ind_hi + profile.float_frac

    block = 0
    offset = 0
    stream_ptr = _DATA_BASE + profile.data_bytes
    regs = (5, 6, 7, 12, 13, 14)

    for i in range(n):
        # New basic block every ~6 instructions.
        if offset >= 6:
            offset = 0
            if block_pick[i] < 0.85:
                block = int(hot_block_ids[i])
            else:
                block = int(cold_block_ids[i])
        p = _CODE_BASE + block * 24 + offset * 4
        pc[i] = p
        offset += 1

        k = kind_pick[i]
        r = regs[i % 6]
        if k < load_hi:
            cat[i] = NCat.LOAD
            dst[i] = r
            src1[i] = regs[(i + 1) % 6]
            if data_pick[i] < profile.stack_ref_frac:
                ea[i] = _STACK_BASE + 4 * int(stack_offsets[i])
            elif data_pick[i] < profile.stack_ref_frac + profile.stream_frac:
                stream_ptr += 4
                ea[i] = stream_ptr
            else:
                ea[i] = _DATA_BASE + 4 * int(ws_offsets[i])
        elif k < store_hi:
            cat[i] = NCat.STORE
            src1[i] = r
            flags[i] = FLAG_WRITE
            if data_pick[i] < profile.stack_ref_frac:
                ea[i] = _STACK_BASE + 4 * int(stack_offsets[i])
            else:
                ea[i] = _DATA_BASE + 4 * int(ws_offsets[i])
        elif k < branch_hi:
            cat[i] = NCat.BRANCH
            src1[i] = r
            taken = taken_pick[i] < profile.branch_taken_bias
            if taken:
                flags[i] = FLAG_TAKEN
                target[i] = _CODE_BASE + int(hot_block_ids[i]) * 24
            offset = 6 if taken else offset
        elif k < call_hi:
            cat[i] = NCat.CALL
            flags[i] = FLAG_TAKEN
            target[i] = _CODE_BASE + int(cold_block_ids[i]) * 24
            offset = 6
        elif k < ind_hi:
            cat[i] = NCat.ICALL
            src1[i] = r
            flags[i] = FLAG_TAKEN
            target[i] = _CODE_BASE + int(cold_block_ids[i]) * 24
            offset = 6
        elif k < float_hi:
            cat[i] = NCat.FALU
            dst[i] = r
            src1[i] = regs[(i + 2) % 6]
        else:
            cat[i] = NCat.IALU
            dst[i] = r
            src1[i] = regs[(i + 1) % 6]
            src2[i] = regs[(i + 2) % 6]

    return Trace.from_columns(pc=pc, cat=cat, ea=ea, flags=flags,
                              target=target, dst=dst, src1=src1, src2=src2)
