"""Fuzz-promoted workloads.

Performance-anomaly survivors found by ``python -m repro.fuzz
--promote`` are checked in as assembly under ``promoted/`` and
registered here as first-class workloads named ``fuzz_<digest>``: from
then on they run under the full differential, integration, and
characterization suites like any hand-written benchmark.

Scale surgery: a fuzz program is a single ``main``.  To honour the
workload contract (``s1`` must do strictly more work than ``s0``), the
promoted build renames the fuzzed ``main`` to ``fuzzbody`` and
synthesizes a driver ``main`` that invokes it ``reps(scale)`` times.
"""

from __future__ import annotations

from pathlib import Path

from ..isa.asm import assemble
from ..isa.instruction import Instr
from ..isa.method import Method, Program
from ..isa.opcodes import Op
from ..isa.verifier import verify_program
from .base import register

#: Driver iterations per scale.
_REPS = {"s0": 1, "s1": 3, "s10": 10}

_BODY = "fuzzbody"

_DIR = Path(__file__).resolve().parent / "promoted"


def _build_promoted(text: str, scale: str) -> Program:
    program = assemble(text)
    jclass = program.get_class(program.main_class)
    body = jclass.methods.pop("main")
    body.name = _BODY
    jclass.methods[_BODY] = body

    ref = jclass.pool.method_ref(program.main_class, _BODY, 0, False)
    driver = Method(
        name="main", argc=0, has_result=False, is_static=True,
        max_locals=1,
        code=[
            Instr(Op.ICONST, _REPS[scale]),
            Instr(Op.ISTORE, 0),
            Instr(Op.ILOAD, 0),                   # 2: loop head
            Instr(Op.IFLE, 7),
            Instr(Op.INVOKESTATIC, ref),
            Instr(Op.IINC, 0, -1),
            Instr(Op.GOTO, 2),
            Instr(Op.RETURN),                     # 7: done
        ],
    )
    jclass.add_method(driver)
    verify_program(program)
    return program


def _register_all() -> None:
    if not _DIR.is_dir():
        return
    for path in sorted(_DIR.glob("*.asm")):
        text = path.read_text()
        first = text.lstrip().splitlines()[0] if text.strip() else ""
        description = (first.lstrip("; ").strip()
                       or "fuzz-promoted workload")

        def _build(scale: str, _text: str = text) -> Program:
            return _build_promoted(_text, scale)

        register(path.stem, description)(_build)


_register_all()
