"""``javac`` — a small compiler compiling synthetic source.

Character (per the paper): compiler-like code with many methods and
moderate reuse; translation is a significant fraction of the JIT run;
instruction-cache behaviour is the worst of the suite (the executed code
does "the same type of operations as the translate routine").
"""

from __future__ import annotations

import random

from ...isa.builder import ProgramBuilder
from ...isa.method import Program
from ...isa.opcodes import ArrayType
from ..base import register

#: (statements, passes) per scale.
_PARAMS = {"s0": (6, 1), "s1": (28, 1), "s10": (120, 6)}

# Token type codes.
_T_EOF, _T_IDENT, _T_NUM, _T_PUNCT = 0, 1, 2, 3


def _gen_source(n_stmts: int, seed: int = 11) -> str:
    """Deterministic arithmetic-assignment source text."""
    rng = random.Random(seed)
    names = [f"v{k}" for k in range(8)]
    parts = []
    for _ in range(n_stmts):
        lhs = rng.choice(names)
        a = rng.choice(names + [str(rng.randrange(1, 99))])
        b = rng.choice(names + [str(rng.randrange(1, 99))])
        c = rng.choice(names + [str(rng.randrange(1, 99))])
        op1 = rng.choice("+-*")
        op2 = rng.choice("+-*")
        if rng.random() < 0.5:
            parts.append(f"{lhs} = {a} {op1} ( {b} {op2} {c} ) ;")
        else:
            parts.append(f"{lhs} = {a} {op1} {b} {op2} {c} ;")
    return " ".join(parts) + " "


@register("javac", "toy compiler: many methods, translate-heavy, poor I-cache")
def build(scale: str = "s1") -> Program:
    n_stmts, passes = _PARAMS[scale]
    source = _gen_source(n_stmts)
    pb = ProgramBuilder("javac", main_class="spec/Javac")

    # ------------------------------------------------------------------
    # Scanner
    # ------------------------------------------------------------------
    sc = pb.cls("spec/Scanner")
    sc.field("src", "ref")
    sc.field("pos", "int")
    sc.field("tokType", "int")
    sc.field("tokVal", "int")

    init = sc.method("<init>", argc=1)
    init.aload(0).aload(1).putfield("spec/Scanner", "src")
    init.aload(0).iconst(0).putfield("spec/Scanner", "pos")
    init.return_()

    is_letter = sc.method("isLetter", argc=1, returns=True, static=True)
    yes = is_letter.new_label("yes")
    no = is_letter.new_label("no")
    is_letter.iload(0).iconst(ord("a")).if_icmplt(no)
    is_letter.iload(0).iconst(ord("z")).if_icmpgt(no)
    is_letter.bind(yes)
    is_letter.iconst(1).ireturn()
    is_letter.bind(no)
    is_letter.iconst(0).ireturn()

    is_digit = sc.method("isDigit", argc=1, returns=True, static=True)
    no = is_digit.new_label("no")
    is_digit.iload(0).iconst(ord("0")).if_icmplt(no)
    is_digit.iload(0).iconst(ord("9")).if_icmpgt(no)
    is_digit.iconst(1).ireturn()
    is_digit.bind(no)
    is_digit.iconst(0).ireturn()

    # int peek(): current char or -1
    peek = sc.method("peek", returns=True)
    eof = peek.new_label("eof")
    peek.aload(0).getfield("spec/Scanner", "pos")
    peek.aload(0).getfield("spec/Scanner", "src").arraylength()
    peek.if_icmpge(eof)
    peek.aload(0).getfield("spec/Scanner", "src")
    peek.aload(0).getfield("spec/Scanner", "pos")
    peek.caload().ireturn()
    peek.bind(eof)
    peek.iconst(-1).ireturn()

    adv = sc.method("advance")
    adv.aload(0).dup().getfield("spec/Scanner", "pos")
    adv.iconst(1).iadd().putfield("spec/Scanner", "pos")
    adv.return_()

    # void nextToken(): sets tokType/tokVal
    nt = sc.method("nextToken")
    skip = nt.new_label("skip")
    after_skip = nt.new_label("after_skip")
    ident = nt.new_label("ident")
    ident_loop = nt.new_label("ident_loop")
    ident_done = nt.new_label("ident_done")
    number = nt.new_label("number")
    num_loop = nt.new_label("num_loop")
    num_done = nt.new_label("num_done")
    punct = nt.new_label("punct")
    eof = nt.new_label("eof")
    # skip spaces
    nt.bind(skip)
    nt.aload(0).invokevirtual("spec/Scanner", "peek", 0, True).istore(1)
    nt.iload(1).iconst(ord(" ")).if_icmpne(after_skip)
    nt.aload(0).invokevirtual("spec/Scanner", "advance", 0, False)
    nt.goto(skip)
    nt.bind(after_skip)
    nt.iload(1).iflt(eof)
    nt.iload(1).invokestatic("spec/Scanner", "isLetter", 1, True).ifne(ident)
    nt.iload(1).invokestatic("spec/Scanner", "isDigit", 1, True).ifne(number)
    nt.goto(punct)
    # identifier: hash the chars
    nt.bind(ident)
    nt.iconst(0).istore(2)
    nt.bind(ident_loop)
    nt.aload(0).invokevirtual("spec/Scanner", "peek", 0, True).istore(1)
    nt.iload(1).invokestatic("spec/Scanner", "isLetter", 1, True).ifeq(ident_done)
    nt.iload(2).iconst(31).imul().iload(1).iadd()
    nt.iconst(0xFFFF).iand().istore(2)
    nt.aload(0).invokevirtual("spec/Scanner", "advance", 0, False)
    nt.goto(ident_loop)
    nt.bind(ident_done)
    # digits may follow in names like v3
    dig_loop = nt.new_label("dig_loop")
    dig_done = nt.new_label("dig_done")
    nt.bind(dig_loop)
    nt.aload(0).invokevirtual("spec/Scanner", "peek", 0, True).istore(1)
    nt.iload(1).invokestatic("spec/Scanner", "isDigit", 1, True).ifeq(dig_done)
    nt.iload(2).iconst(31).imul().iload(1).iadd()
    nt.iconst(0xFFFF).iand().istore(2)
    nt.aload(0).invokevirtual("spec/Scanner", "advance", 0, False)
    nt.goto(dig_loop)
    nt.bind(dig_done)
    nt.aload(0).iconst(_T_IDENT).putfield("spec/Scanner", "tokType")
    nt.aload(0).iload(2).putfield("spec/Scanner", "tokVal")
    nt.return_()
    # number
    nt.bind(number)
    nt.iconst(0).istore(2)
    nt.bind(num_loop)
    nt.aload(0).invokevirtual("spec/Scanner", "peek", 0, True).istore(1)
    nt.iload(1).invokestatic("spec/Scanner", "isDigit", 1, True).ifeq(num_done)
    nt.iload(2).iconst(10).imul().iload(1).iadd()
    nt.iconst(ord("0")).isub().istore(2)
    nt.aload(0).invokevirtual("spec/Scanner", "advance", 0, False)
    nt.goto(num_loop)
    nt.bind(num_done)
    nt.aload(0).iconst(_T_NUM).putfield("spec/Scanner", "tokType")
    nt.aload(0).iload(2).putfield("spec/Scanner", "tokVal")
    nt.return_()
    # punctuation
    nt.bind(punct)
    nt.aload(0).invokevirtual("spec/Scanner", "advance", 0, False)
    nt.aload(0).iconst(_T_PUNCT).putfield("spec/Scanner", "tokType")
    nt.aload(0).iload(1).putfield("spec/Scanner", "tokVal")
    nt.return_()
    nt.bind(eof)
    nt.aload(0).iconst(_T_EOF).putfield("spec/Scanner", "tokType")
    nt.aload(0).iconst(-1).putfield("spec/Scanner", "tokVal")
    nt.return_()

    get_type = sc.method("getType", returns=True)
    get_type.aload(0).getfield("spec/Scanner", "tokType").ireturn()
    get_val = sc.method("getVal", returns=True)
    get_val.aload(0).getfield("spec/Scanner", "tokVal").ireturn()

    # ------------------------------------------------------------------
    # CodeGen: instruction buffer + symbol table
    # ------------------------------------------------------------------
    cg = pb.cls("spec/CodeGen")
    cg.field("code", "ref")
    cg.field("count", "int")
    cg.field("symbols", "ref")

    init = cg.method("<init>")
    init.aload(0).iconst(8192).newarray(ArrayType.INT)
    init.putfield("spec/CodeGen", "code")
    init.aload(0).iconst(0).putfield("spec/CodeGen", "count")
    init.aload(0)
    init.new("java/util/Hashtable").dup()
    init.invokespecial("java/util/Hashtable", "<init>", 0)
    init.putfield("spec/CodeGen", "symbols")
    init.return_()

    emit = cg.method("emit", argc=2)
    emit.aload(0).getfield("spec/CodeGen", "code")
    emit.aload(0).getfield("spec/CodeGen", "count").iconst(8191).iand()
    emit.iload(1).iconst(8).ishl().iload(2).ixor().iastore()
    emit.aload(0).dup().getfield("spec/CodeGen", "count")
    emit.iconst(1).iadd().putfield("spec/CodeGen", "count")
    emit.return_()

    # int slotFor(int ident): symbol table lookup / insert
    slot = cg.method("slotFor", argc=1, returns=True)
    hit = slot.new_label("hit")
    slot.aload(0).getfield("spec/CodeGen", "symbols")
    slot.iload(1).invokevirtual("java/util/Hashtable", "containsKey", 1, True)
    slot.ifne(hit)
    slot.aload(0).getfield("spec/CodeGen", "symbols")
    slot.iload(1)
    slot.aload(0).getfield("spec/CodeGen", "symbols")
    slot.invokevirtual("java/util/Hashtable", "size", 0, True)
    slot.invokevirtual("java/util/Hashtable", "put", 2, False)
    slot.bind(hit)
    slot.aload(0).getfield("spec/CodeGen", "symbols")
    slot.iload(1).invokevirtual("java/util/Hashtable", "get", 1, True)
    slot.ireturn()

    get_count = cg.method("getCount", returns=True)
    get_count.aload(0).getfield("spec/CodeGen", "count").ireturn()

    checksum = cg.method("checksum", returns=True)
    loop = checksum.new_label("loop")
    done = checksum.new_label("done")
    checksum.iconst(0).istore(1)
    checksum.iconst(0).istore(2)
    checksum.bind(loop)
    checksum.iload(2)
    checksum.aload(0).getfield("spec/CodeGen", "count").iconst(8191).iand()
    checksum.if_icmpge(done)
    checksum.iload(1).iconst(7).imul()
    checksum.aload(0).getfield("spec/CodeGen", "code").iload(2).iaload()
    checksum.ixor().iconst(0xFFFFF).iand().istore(1)
    checksum.iinc(2, 1)
    checksum.goto(loop)
    checksum.bind(done)
    checksum.iload(1).ireturn()

    # ------------------------------------------------------------------
    # Parser: recursive descent (expr -> term -> factor)
    # ------------------------------------------------------------------
    ps = pb.cls("spec/Parser")
    ps.field("scanner", "ref")
    ps.field("gen", "ref")

    init = ps.method("<init>", argc=2)
    init.aload(0).aload(1).putfield("spec/Parser", "scanner")
    init.aload(0).aload(2).putfield("spec/Parser", "gen")
    init.return_()

    # void parseFactor(): NUM | IDENT | '(' expr ')'
    pf = ps.method("parseFactor")
    is_num = pf.new_label("is_num")
    is_ident = pf.new_label("is_ident")
    done = pf.new_label("done")
    pf.aload(0).getfield("spec/Parser", "scanner")
    pf.invokevirtual("spec/Scanner", "getType", 0, True).istore(1)
    pf.iload(1).iconst(_T_NUM).if_icmpeq(is_num)
    pf.iload(1).iconst(_T_IDENT).if_icmpeq(is_ident)
    # '(' expr ')'
    pf.aload(0).getfield("spec/Parser", "scanner")
    pf.invokevirtual("spec/Scanner", "nextToken", 0, False)
    pf.aload(0).invokevirtual("spec/Parser", "parseExpr", 0, False)
    pf.aload(0).getfield("spec/Parser", "scanner")
    pf.invokevirtual("spec/Scanner", "nextToken", 0, False)     # eat ')'
    pf.goto(done)
    pf.bind(is_num)
    pf.aload(0).getfield("spec/Parser", "gen").iconst(1)
    pf.aload(0).getfield("spec/Parser", "scanner")
    pf.invokevirtual("spec/Scanner", "getVal", 0, True)
    pf.invokevirtual("spec/CodeGen", "emit", 2, False)
    pf.aload(0).getfield("spec/Parser", "scanner")
    pf.invokevirtual("spec/Scanner", "nextToken", 0, False)
    pf.goto(done)
    pf.bind(is_ident)
    pf.aload(0).getfield("spec/Parser", "gen").iconst(2)
    pf.aload(0).getfield("spec/Parser", "gen")
    pf.aload(0).getfield("spec/Parser", "scanner")
    pf.invokevirtual("spec/Scanner", "getVal", 0, True)
    pf.invokevirtual("spec/CodeGen", "slotFor", 1, True)
    pf.invokevirtual("spec/CodeGen", "emit", 2, False)
    pf.aload(0).getfield("spec/Parser", "scanner")
    pf.invokevirtual("spec/Scanner", "nextToken", 0, False)
    pf.bind(done)
    pf.return_()

    # void parseTerm(): factor {(*|/) factor}
    pt = ps.method("parseTerm")
    loop = pt.new_label("loop")
    done = pt.new_label("done")
    pt.aload(0).invokevirtual("spec/Parser", "parseFactor", 0, False)
    pt.bind(loop)
    pt.aload(0).getfield("spec/Parser", "scanner")
    pt.invokevirtual("spec/Scanner", "getType", 0, True)
    pt.iconst(_T_PUNCT).if_icmpne(done)
    pt.aload(0).getfield("spec/Parser", "scanner")
    pt.invokevirtual("spec/Scanner", "getVal", 0, True).istore(1)
    pt.iload(1).iconst(ord("*")).if_icmpne(done)
    pt.aload(0).getfield("spec/Parser", "scanner")
    pt.invokevirtual("spec/Scanner", "nextToken", 0, False)
    pt.aload(0).invokevirtual("spec/Parser", "parseFactor", 0, False)
    pt.aload(0).getfield("spec/Parser", "gen").iconst(3).iload(1)
    pt.invokevirtual("spec/CodeGen", "emit", 2, False)
    pt.goto(loop)
    pt.bind(done)
    pt.return_()

    # void parseExpr(): term {(+|-) term}
    pe = ps.method("parseExpr")
    loop = pe.new_label("loop")
    done = pe.new_label("done")
    plus = pe.new_label("plus")
    emit_op = pe.new_label("emit_op")
    pe.aload(0).invokevirtual("spec/Parser", "parseTerm", 0, False)
    pe.bind(loop)
    pe.aload(0).getfield("spec/Parser", "scanner")
    pe.invokevirtual("spec/Scanner", "getType", 0, True)
    pe.iconst(_T_PUNCT).if_icmpne(done)
    pe.aload(0).getfield("spec/Parser", "scanner")
    pe.invokevirtual("spec/Scanner", "getVal", 0, True).istore(1)
    pe.iload(1).iconst(ord("+")).if_icmpeq(plus)
    pe.iload(1).iconst(ord("-")).if_icmpeq(plus)
    pe.goto(done)
    pe.bind(plus)
    pe.aload(0).getfield("spec/Parser", "scanner")
    pe.invokevirtual("spec/Scanner", "nextToken", 0, False)
    pe.aload(0).invokevirtual("spec/Parser", "parseTerm", 0, False)
    pe.bind(emit_op)
    pe.aload(0).getfield("spec/Parser", "gen").iconst(4).iload(1)
    pe.invokevirtual("spec/CodeGen", "emit", 2, False)
    pe.goto(loop)
    pe.bind(done)
    pe.return_()

    # void parseStmt(): IDENT '=' expr ';'
    pst = ps.method("parseStmt")
    pst.aload(0).getfield("spec/Parser", "gen")
    pst.aload(0).getfield("spec/Parser", "gen")
    pst.aload(0).getfield("spec/Parser", "scanner")
    pst.invokevirtual("spec/Scanner", "getVal", 0, True)
    pst.invokevirtual("spec/CodeGen", "slotFor", 1, True).istore(1)
    pst.aload(0).getfield("spec/Parser", "scanner")
    pst.invokevirtual("spec/Scanner", "nextToken", 0, False)   # '='
    pst.aload(0).getfield("spec/Parser", "scanner")
    pst.invokevirtual("spec/Scanner", "nextToken", 0, False)   # first expr token
    pst.aload(0).invokevirtual("spec/Parser", "parseExpr", 0, False)
    # gen already on stack; emit store
    pst.iconst(5).iload(1).invokevirtual("spec/CodeGen", "emit", 2, False)
    pst.aload(0).getfield("spec/Parser", "scanner")
    pst.invokevirtual("spec/Scanner", "nextToken", 0, False)   # eat ';'
    pst.return_()

    # int parseAll(): statements until EOF; returns checksum
    pa = ps.method("parseAll", returns=True)
    loop = pa.new_label("loop")
    done = pa.new_label("done")
    pa.aload(0).getfield("spec/Parser", "scanner")
    pa.invokevirtual("spec/Scanner", "nextToken", 0, False)
    pa.bind(loop)
    pa.aload(0).getfield("spec/Parser", "scanner")
    pa.invokevirtual("spec/Scanner", "getType", 0, True)
    pa.iconst(_T_EOF).if_icmpeq(done)
    pa.aload(0).invokevirtual("spec/Parser", "parseStmt", 0, False)
    pa.goto(loop)
    pa.bind(done)
    pa.aload(0).getfield("spec/Parser", "gen")
    pa.invokevirtual("spec/CodeGen", "checksum", 0, True)
    pa.ireturn()

    # ------------------------------------------------------------------
    # Main: intern source, explode to a char array, compile `passes` times
    # ------------------------------------------------------------------
    main_cls = pb.cls("spec/Javac")
    # One-shot initialization methods (symbol kinds, operator tables,
    # diagnostics): compilers carry a lot of code that runs once.
    # Straight-line bodies: a run-once method with no loops is exactly
    # the case the oracle chooses to interpret (translation cannot
    # amortize within one invocation).
    n_init = 16
    for k in range(n_init):
        ini = main_cls.method(f"initTable{k}", argc=1, returns=True,
                              static=True)
        ini.iload(0).iconst(k + 5).imul().iconst(0xFFF).iand().istore(1)
        for j in range(5 + k % 4):
            ini.iload(1).iconst(j + k + 1).ishl().iload(1).ixor()
            ini.iconst(0xFFFF).iand().istore(1)
        ini.iload(1).ireturn()

    m = main_cls.method("main", static=True)
    # locals: 0=srcString 1=chars 2=i 3=acc 4=scanner 5=gen 6=parser
    m.iconst(0).istore(3)
    for k in range(n_init):
        m.iload(3).invokestatic("spec/Javac", f"initTable{k}", 1, True)
        m.istore(3)
    m.ldc_str(source).astore(0)
    m.aload(0).invokevirtual("java/lang/String", "length", 0, True)
    m.newarray(ArrayType.CHAR).astore(1)
    explode = m.new_label("explode")
    explode_done = m.new_label("explode_done")
    m.iconst(0).istore(2)
    m.bind(explode)
    m.iload(2).aload(1).arraylength().if_icmpge(explode_done)
    m.aload(1).iload(2)
    m.aload(0).iload(2).invokevirtual("java/lang/String", "charAt", 1, True)
    m.castore()
    m.iinc(2, 1)
    m.goto(explode)
    m.bind(explode_done)
    m.iconst(0).istore(3)
    compile_loop = m.new_label("compile")
    compile_done = m.new_label("compile_done")
    m.iconst(0).istore(2)
    m.bind(compile_loop)
    m.iload(2).iconst(passes).if_icmpge(compile_done)
    m.new("spec/Scanner").dup().aload(1)
    m.invokespecial("spec/Scanner", "<init>", 1)
    m.astore(4)
    m.new("spec/CodeGen").dup()
    m.invokespecial("spec/CodeGen", "<init>", 0)
    m.astore(5)
    m.new("spec/Parser").dup().aload(4).aload(5)
    m.invokespecial("spec/Parser", "<init>", 2)
    m.astore(6)
    m.iload(3)
    m.aload(6).invokevirtual("spec/Parser", "parseAll", 0, True)
    m.iadd().iconst(0xFFFFF).iand().istore(3)
    m.iinc(2, 1)
    m.goto(compile_loop)
    m.bind(compile_done)
    m.getstatic("java/lang/System", "out").iload(3)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()

    return pb.build()
