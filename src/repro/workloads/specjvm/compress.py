"""``compress`` — LZW-style compression kernel.

Character (per the paper): a small number of methods executed an
enormous number of times; tight integer loops over a byte buffer;
execution (not translation) dominates the JIT run; excellent
interpreter-mode cache behaviour from the tiny working set.
"""

from __future__ import annotations

from ...isa.builder import ProgramBuilder
from ...isa.method import Program
from ...isa.opcodes import ArrayType
from ..base import register

#: (input bytes, passes) per scale.
_PARAMS = {"s0": (128, 1), "s1": (768, 2), "s10": (4096, 4)}

#: Hash-table size (power of two) and output ring size.
_TAB = 2048
_OUT = 1024


@register("compress", "LZW-style compression: tight loops, heavy method reuse")
def build(scale: str = "s1") -> Program:
    n, passes = _PARAMS[scale]
    pb = ProgramBuilder("compress", main_class="spec/Compress")

    comp = pb.cls("spec/Compressor")
    comp.field("hashes", "ref")
    comp.field("codes", "ref")
    comp.field("out", "ref")
    comp.field("outCount", "int")
    comp.field("nextCode", "int")

    init = comp.method("<init>")
    init.aload(0).iconst(_TAB).newarray(ArrayType.INT)
    init.putfield("spec/Compressor", "hashes")
    init.aload(0).iconst(_TAB).newarray(ArrayType.INT)
    init.putfield("spec/Compressor", "codes")
    init.aload(0).iconst(_OUT).newarray(ArrayType.INT)
    init.putfield("spec/Compressor", "out")
    init.aload(0).iconst(0).putfield("spec/Compressor", "outCount")
    init.return_()

    # void reset(): clear the hash table, reset counters.
    reset = comp.method("reset")
    loop = reset.new_label("loop")
    done = reset.new_label("done")
    reset.iconst(0).istore(1)
    reset.bind(loop)
    reset.iload(1).iconst(_TAB).if_icmpge(done)
    reset.aload(0).getfield("spec/Compressor", "hashes")
    reset.iload(1).iconst(-1).iastore()
    reset.iinc(1, 1)
    reset.goto(loop)
    reset.bind(done)
    reset.aload(0).iconst(256).putfield("spec/Compressor", "nextCode")
    reset.aload(0).iconst(0).putfield("spec/Compressor", "outCount")
    reset.return_()

    # int findEntry(int w, int ch): open-addressing probe; -1 if absent.
    find = comp.method("findEntry", argc=2, returns=True)
    probe = find.new_label("probe")
    found = find.new_label("found")
    absent = find.new_label("absent")
    step = find.new_label("step")
    find.iload(1).iconst(8).ishl().iload(2).ior().istore(3)      # key
    find.iload(3).iconst(_TAB - 1).iand().istore(4)              # h
    find.bind(probe)
    find.aload(0).getfield("spec/Compressor", "hashes")
    find.iload(4).iaload().istore(5)                             # k
    find.iload(5).iconst(-1).if_icmpeq(absent)
    find.iload(5).iload(3).if_icmpeq(found)
    find.bind(step)
    find.iinc(4, 1)
    find.iload(4).iconst(_TAB - 1).iand().istore(4)
    find.goto(probe)
    find.bind(found)
    find.iload(4).ireturn()
    find.bind(absent)
    find.iconst(-1).ireturn()

    # void addEntry(int w, int ch)
    add = comp.method("addEntry", argc=2)
    probe = add.new_label("probe")
    empty = add.new_label("empty")
    add.iload(1).iconst(8).ishl().iload(2).ior().istore(3)
    add.iload(3).iconst(_TAB - 1).iand().istore(4)
    add.bind(probe)
    add.aload(0).getfield("spec/Compressor", "hashes")
    add.iload(4).iaload().iconst(-1).if_icmpeq(empty)
    add.iinc(4, 1)
    add.iload(4).iconst(_TAB - 1).iand().istore(4)
    add.goto(probe)
    add.bind(empty)
    add.aload(0).getfield("spec/Compressor", "hashes")
    add.iload(4).iload(3).iastore()
    add.aload(0).getfield("spec/Compressor", "codes")
    add.iload(4)
    add.aload(0).getfield("spec/Compressor", "nextCode").iastore()
    add.aload(0).dup().getfield("spec/Compressor", "nextCode")
    add.iconst(1).iadd().putfield("spec/Compressor", "nextCode")
    add.return_()

    # void emit(int code): write into the output ring.
    emit = comp.method("emit", argc=1)
    emit.aload(0).getfield("spec/Compressor", "out")
    emit.aload(0).getfield("spec/Compressor", "outCount")
    emit.iconst(_OUT - 1).iand()
    emit.iload(1).iastore()
    emit.aload(0).dup().getfield("spec/Compressor", "outCount")
    emit.iconst(1).iadd().putfield("spec/Compressor", "outCount")
    emit.return_()

    # int getCount() — a tiny accessor (JIT inlining fodder).
    count = comp.method("getCount", returns=True)
    count.aload(0).getfield("spec/Compressor", "outCount").ireturn()

    # int compress(byte[] data)
    cp = comp.method("compress", argc=1, returns=True)
    loop = cp.new_label("loop")
    end = cp.new_label("end")
    miss = cp.new_label("miss")
    nxt = cp.new_label("next")
    cp.aload(0).invokevirtual("spec/Compressor", "reset", 0, False)
    cp.aload(1).iconst(0).baload().istore(2)                 # w = data[0]
    cp.iconst(1).istore(3)                                   # i = 1
    cp.bind(loop)
    cp.iload(3).aload(1).arraylength().if_icmpge(end)
    cp.aload(1).iload(3).baload().istore(4)                  # ch
    cp.aload(0).iload(2).iload(4)
    cp.invokevirtual("spec/Compressor", "findEntry", 2, True)
    cp.istore(5)
    cp.iload(5).iflt(miss)
    cp.aload(0).getfield("spec/Compressor", "codes")
    cp.iload(5).iaload().istore(2)                           # w = codes[idx]
    cp.goto(nxt)
    cp.bind(miss)
    cp.aload(0).iload(2).iload(4)
    cp.invokevirtual("spec/Compressor", "addEntry", 2, False)
    cp.aload(0).iload(2).invokevirtual("spec/Compressor", "emit", 1, False)
    cp.iload(4).istore(2)                                    # w = ch
    cp.bind(nxt)
    cp.iinc(3, 1)
    cp.goto(loop)
    cp.bind(end)
    cp.aload(0).iload(2).invokevirtual("spec/Compressor", "emit", 1, False)
    cp.aload(0).invokevirtual("spec/Compressor", "getCount", 0, True)
    cp.ireturn()

    main_cls = pb.cls("spec/Compress")
    m = main_cls.method("main", static=True)
    # locals: 0=data 1=i/k 2=total 3=compressor 4=rnd
    fill = m.new_label("fill")
    fill_done = m.new_label("fill_done")
    runs = m.new_label("runs")
    runs_done = m.new_label("runs_done")
    m.new("java/util/Random").dup().iconst(42)
    m.invokespecial("java/util/Random", "<init>", 1)
    m.astore(4)
    m.iconst(n).newarray(ArrayType.BYTE).astore(0)
    m.iconst(0).istore(1)
    m.bind(fill)
    m.iload(1).aload(0).arraylength().if_icmpge(fill_done)
    m.aload(0).iload(1)
    m.aload(4).iconst(64).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.iconst(32).iadd().i2b().bastore()
    m.iinc(1, 1)
    m.goto(fill)
    m.bind(fill_done)
    m.new("spec/Compressor").dup()
    m.invokespecial("spec/Compressor", "<init>", 0)
    m.astore(3)
    m.iconst(0).istore(2)
    m.iconst(0).istore(1)
    m.bind(runs)
    m.iload(1).iconst(passes).if_icmpge(runs_done)
    m.iload(2)
    m.aload(3).aload(0).invokevirtual("spec/Compressor", "compress", 1, True)
    m.iadd().istore(2)
    m.iinc(1, 1)
    m.goto(runs)
    m.bind(runs_done)
    m.getstatic("java/lang/System", "out").iload(2)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()

    return pb.build()
