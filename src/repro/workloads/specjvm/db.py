"""``db`` — small in-memory database.

Character (per the paper): many small methods that are "neither time
consuming nor invoked numerous times", so JIT *translation* dominates
the run; a small database reused by repeated operations gives good data
locality outside translate; the memory footprint is small, making the
JIT's code-cache overhead proportionally large (Table 1).
"""

from __future__ import annotations

from ...isa.builder import ProgramBuilder
from ...isa.method import Program
from ...isa.opcodes import ArrayType
from ..base import register

#: (records, operations, one-shot setup methods) per scale.
_PARAMS = {"s0": (24, 6, 10), "s1": (48, 110, 24), "s10": (128, 400, 32)}


@register("db", "in-memory database: many rarely-invoked small methods")
def build(scale: str = "s1") -> Program:
    n_records, n_ops, n_setup = _PARAMS[scale]
    pb = ProgramBuilder("db", main_class="spec/Db")

    # ------------------------------------------------------------------
    # Record: name/value pair with tiny accessors (inline fodder).
    # ------------------------------------------------------------------
    rec = pb.cls("spec/Record")
    rec.field("key", "int")
    rec.field("value", "int")
    rec.field("payload", "ref")
    init = rec.method("<init>", argc=2)
    init.aload(0).iload(1).putfield("spec/Record", "key")
    init.aload(0).iload(2).putfield("spec/Record", "value")
    # Each record carries a data payload (the database's actual content).
    init.aload(0).iconst(56).newarray(ArrayType.INT)
    init.putfield("spec/Record", "payload")
    init.aload(0).getfield("spec/Record", "payload")
    init.iconst(0).iload(1).iastore()
    init.aload(0).getfield("spec/Record", "payload")
    init.iconst(1).iload(2).iastore()
    init.return_()
    get_key = rec.method("getKey", returns=True)
    get_key.aload(0).getfield("spec/Record", "key").ireturn()
    get_val = rec.method("getValue", returns=True)
    get_val.aload(0).getfield("spec/Record", "value").ireturn()
    set_val = rec.method("setValue", argc=1)
    set_val.aload(0).iload(1).putfield("spec/Record", "value")
    set_val.return_()

    # ------------------------------------------------------------------
    # Database over a Vector of records.
    # ------------------------------------------------------------------
    db = pb.cls("spec/Database")
    db.field("records", "ref")

    init = db.method("<init>")
    init.aload(0)
    init.new("java/util/Vector").dup().iconst(16)
    init.invokespecial("java/util/Vector", "<init>", 1)
    init.putfield("spec/Database", "records")
    init.return_()

    # void add(int key, int value)
    add = db.method("add", argc=2)
    add.aload(0).getfield("spec/Database", "records")
    add.new("spec/Record").dup().iload(1).iload(2)
    add.invokespecial("spec/Record", "<init>", 2)
    add.invokevirtual("java/util/Vector", "addElement", 1, False)
    add.return_()

    # int find(int key): linear scan over a locked-once snapshot
    find = db.method("find", argc=1, returns=True)
    loop = find.new_label("loop")
    found = find.new_label("found")
    absent = find.new_label("absent")
    find.aload(0).getfield("spec/Database", "records")
    find.invokevirtual("java/util/Vector", "size", 0, True).istore(4)
    find.aload(0).getfield("spec/Database", "records")
    find.invokevirtual("java/util/Vector", "elems", 0, True).astore(5)
    find.iconst(0).istore(2)
    find.bind(loop)
    find.iload(2).iload(4).if_icmpge(absent)
    find.aload(5).iload(2).aaload()
    find.checkcast("spec/Record").astore(3)
    find.aload(3).invokevirtual("spec/Record", "getKey", 0, True)
    find.iload(1).if_icmpeq(found)
    find.iinc(2, 1)
    find.goto(loop)
    find.bind(found)
    find.aload(3).invokevirtual("spec/Record", "getValue", 0, True)
    find.ireturn()
    find.bind(absent)
    find.iconst(-1).ireturn()

    # void update(int key, int delta)
    upd = db.method("update", argc=2)
    loop = upd.new_label("loop")
    done = upd.new_label("done")
    hit = upd.new_label("hit")
    upd.aload(0).getfield("spec/Database", "records")
    upd.invokevirtual("java/util/Vector", "size", 0, True).istore(5)
    upd.aload(0).getfield("spec/Database", "records")
    upd.invokevirtual("java/util/Vector", "elems", 0, True).astore(6)
    upd.iconst(0).istore(3)
    upd.bind(loop)
    upd.iload(3).iload(5).if_icmpge(done)
    upd.aload(6).iload(3).aaload()
    upd.checkcast("spec/Record").astore(4)
    upd.aload(4).invokevirtual("spec/Record", "getKey", 0, True)
    upd.iload(1).if_icmpeq(hit)
    upd.iinc(3, 1)
    upd.goto(loop)
    upd.bind(hit)
    upd.aload(4)
    upd.aload(4).invokevirtual("spec/Record", "getValue", 0, True)
    upd.iload(2).iadd()
    upd.invokevirtual("spec/Record", "setValue", 1, False)
    upd.bind(done)
    upd.return_()

    # int checksum(): sum of key*31+value
    ck = db.method("checksum", returns=True)
    loop = ck.new_label("loop")
    done = ck.new_label("done")
    ck.aload(0).getfield("spec/Database", "records")
    ck.invokevirtual("java/util/Vector", "size", 0, True).istore(4)
    ck.aload(0).getfield("spec/Database", "records")
    ck.invokevirtual("java/util/Vector", "elems", 0, True).astore(5)
    ck.iconst(0).istore(1)     # acc
    ck.iconst(0).istore(2)     # i
    ck.bind(loop)
    ck.iload(2).iload(4).if_icmpge(done)
    ck.aload(5).iload(2).aaload()
    ck.checkcast("spec/Record").astore(3)
    ck.iload(1).iconst(31).imul()
    ck.aload(3).invokevirtual("spec/Record", "getValue", 0, True)
    ck.iadd().iconst(0xFFFFF).iand().istore(1)
    ck.iinc(2, 1)
    ck.goto(loop)
    ck.bind(done)
    ck.iload(1).ireturn()

    # ------------------------------------------------------------------
    # Main plus a battery of one-shot setup methods (the db/javac
    # translation-dominated profile: code compiled but barely reused).
    # ------------------------------------------------------------------
    main_cls = pb.cls("spec/Db")
    for k in range(n_setup):
        setup = main_cls.method(f"setup{k}", argc=2, returns=True, static=True)
        # A short, distinct computation per method.
        setup.iload(0).iconst(k + 3).imul()
        setup.iload(1).iconst(k + 1).ishl().iadd()
        setup.iconst(0x7FFF).iand()
        loop = setup.new_label("loop")
        done = setup.new_label("done")
        setup.istore(2)
        setup.iconst(k % 7).istore(3)
        setup.bind(loop)
        setup.iload(3).ifle(done)
        setup.iload(2).iconst(3).ishr().iload(2).ixor().istore(2)
        setup.iinc(3, -1)
        setup.goto(loop)
        setup.bind(done)
        setup.iload(2).ireturn()

    m = main_cls.method("main", static=True)
    # locals: 0=db 1=i 2=acc 3=rnd
    m.new("spec/Database").dup()
    m.invokespecial("spec/Database", "<init>", 0)
    m.astore(0)
    m.new("java/util/Random").dup().iconst(7)
    m.invokespecial("java/util/Random", "<init>", 1)
    m.astore(3)
    m.iconst(0).istore(2)
    # One-shot setup phase.
    for k in range(n_setup):
        m.iload(2).iconst(k).invokestatic("spec/Db", f"setup{k}", 2, True)
        m.istore(2)
    # Populate.
    fill = m.new_label("fill")
    fill_done = m.new_label("fill_done")
    m.iconst(0).istore(1)
    m.bind(fill)
    m.iload(1).iconst(n_records).if_icmpge(fill_done)
    m.aload(0).iload(1)
    m.aload(3).iconst(997).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.invokevirtual("spec/Database", "add", 2, False)
    m.iinc(1, 1)
    m.goto(fill)
    m.bind(fill_done)
    # Operation mix: find / update alternating over random keys.
    ops = m.new_label("ops")
    ops_done = m.new_label("ops_done")
    is_find = m.new_label("is_find")
    next_op = m.new_label("next_op")
    m.iconst(0).istore(1)
    m.bind(ops)
    m.iload(1).iconst(n_ops).if_icmpge(ops_done)
    m.iload(1).iconst(3).irem().ifeq(is_find)
    m.aload(0)
    m.aload(3).iconst(n_records).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.iload(1).invokevirtual("spec/Database", "update", 2, False)
    m.goto(next_op)
    m.bind(is_find)
    m.iload(2)
    m.aload(0)
    m.aload(3).iconst(n_records).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.invokevirtual("spec/Database", "find", 1, True)
    m.iadd().iconst(0xFFFFF).iand().istore(2)
    m.bind(next_op)
    m.iinc(1, 1)
    m.goto(ops)
    m.bind(ops_done)
    m.iload(2)
    m.aload(0).invokevirtual("spec/Database", "checksum", 0, True)
    m.iadd().istore(2)
    m.getstatic("java/lang/System", "out").iload(2)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()

    return pb.build()
