"""SpecJVM98-like synthetic benchmark programs (registered on import)."""

from . import compress, db, hello, jack, javac, jess, mpegaudio, mtrt  # noqa: F401
