"""``mpegaudio`` — floating-point subband-filter kernel.

Character (per the paper): numeric decoding loops with extreme method
reuse over a tiny data footprint; excellent data-cache behaviour in
interpreter mode (the whole footprint fits in cache); the JIT's
clustered translate spikes are confined to the initial phase.
"""

from __future__ import annotations

from ...isa.builder import ProgramBuilder
from ...isa.method import Program
from ...isa.opcodes import ArrayType
from ..base import register

#: (samples, frames) per scale.
_PARAMS = {"s0": (128, 1), "s1": (384, 2), "s10": (2048, 4)}

_SUBBANDS = 8
_TAPS = 16


@register("mpegaudio", "float subband filter: numeric loops, tiny footprint")
def build(scale: str = "s1") -> Program:
    n_samples, n_frames = _PARAMS[scale]
    pb = ProgramBuilder("mpegaudio", main_class="spec/Mpeg")

    f = pb.cls("spec/Filter")
    f.field("coeffs", "ref")      # float[SUBBANDS * TAPS]
    f.field("window", "ref")      # float[TAPS]
    f.field("acc", "int")

    init = f.method("<init>")
    loop = init.new_label("loop")
    done = init.new_label("done")
    wloop = init.new_label("wloop")
    wdone = init.new_label("wdone")
    init.aload(0).iconst(_SUBBANDS * _TAPS).newarray(ArrayType.FLOAT)
    init.putfield("spec/Filter", "coeffs")
    init.aload(0).iconst(_TAPS).newarray(ArrayType.FLOAT)
    init.putfield("spec/Filter", "window")
    # coeffs[i] = ((i * 37) % 64 - 32) / 32.0
    init.iconst(0).istore(1)
    init.bind(loop)
    init.iload(1).iconst(_SUBBANDS * _TAPS).if_icmpge(done)
    init.aload(0).getfield("spec/Filter", "coeffs")
    init.iload(1)
    init.iload(1).iconst(37).imul().iconst(64).irem()
    init.iconst(32).isub().i2f()
    init.fconst(32.0).fdiv()
    init.fastore()
    init.iinc(1, 1)
    init.goto(loop)
    init.bind(done)
    # window[i] = (i - TAPS/2) / TAPS
    init.iconst(0).istore(1)
    init.bind(wloop)
    init.iload(1).iconst(_TAPS).if_icmpge(wdone)
    init.aload(0).getfield("spec/Filter", "window")
    init.iload(1)
    init.iload(1).iconst(_TAPS // 2).isub().i2f()
    init.fconst(float(_TAPS)).fdiv()
    init.fastore()
    init.iinc(1, 1)
    init.goto(wloop)
    init.bind(wdone)
    init.aload(0).iconst(0).putfield("spec/Filter", "acc")
    init.return_()

    # float dot(float[] a, int ai, float[] b, int bi, int n) — the hot loop
    dot = f.method("dot", argc=5, returns=True, static=True)
    loop = dot.new_label("loop")
    done = dot.new_label("done")
    dot.fconst(0.0).fstore(5)
    dot.iconst(0).istore(6)
    dot.bind(loop)
    dot.iload(6).iload(4).if_icmpge(done)
    dot.fload(5)
    dot.aload(0).iload(1).iload(6).iadd().faload()
    dot.aload(2).iload(3).iload(6).iadd().faload()
    dot.fmul().fadd().fstore(5)
    dot.iinc(6, 1)
    dot.goto(loop)
    dot.bind(done)
    dot.fload(5).freturn()

    # int quantize(float v): scale and clamp to a 10-bit code
    q = f.method("quantize", argc=1, returns=True, static=True)
    neg = q.new_label("neg")
    done = q.new_label("done")
    q.fload(0).fconst(512.0).fmul().f2i().istore(1)
    q.iload(1).iflt(neg)
    q.iload(1).iconst(1023).iand().ireturn()
    q.bind(neg)
    q.iload(1).ineg().iconst(1023).iand().ireturn()
    q.bind(done)
    q.return_()

    # int filterFrame(float[] samples, int offset)
    ff = f.method("filterFrame", argc=2, returns=True)
    sloop = ff.new_label("sloop")
    sdone = ff.new_label("sdone")
    ff.iconst(0).istore(3)                       # sum
    ff.iconst(0).istore(4)                       # k (subband)
    ff.bind(sloop)
    ff.iload(4).iconst(_SUBBANDS).if_icmpge(sdone)
    # v = dot(samples, offset, coeffs, k*TAPS, TAPS)
    ff.aload(1).iload(2)
    ff.aload(0).getfield("spec/Filter", "coeffs")
    ff.iload(4).iconst(_TAPS).imul()
    ff.iconst(_TAPS)
    ff.invokestatic("spec/Filter", "dot", 5, True)
    ff.fstore(5)
    # w = dot(samples, offset, window, 0, TAPS)
    ff.aload(1).iload(2)
    ff.aload(0).getfield("spec/Filter", "window")
    ff.iconst(0)
    ff.iconst(_TAPS)
    ff.invokestatic("spec/Filter", "dot", 5, True)
    ff.fstore(6)
    ff.iload(3)
    ff.fload(5).fload(6).fadd()
    ff.invokestatic("spec/Filter", "quantize", 1, True)
    ff.iadd().iconst(0xFFFFF).iand().istore(3)
    ff.iinc(4, 1)
    ff.goto(sloop)
    ff.bind(sdone)
    ff.aload(0)
    ff.aload(0).getfield("spec/Filter", "acc")
    ff.iload(3).iadd().iconst(0xFFFFF).iand()
    ff.putfield("spec/Filter", "acc")
    ff.iload(3).ireturn()

    get_acc = f.method("getAcc", returns=True)
    get_acc.aload(0).getfield("spec/Filter", "acc").ireturn()

    # ------------------------------------------------------------------
    main_cls = pb.cls("spec/Mpeg")
    m = main_cls.method("main", static=True)
    # locals: 0=samples 1=i 2=filter 3=acc 4=frame 5=offset
    fill = m.new_label("fill")
    fill_done = m.new_label("fill_done")
    frames = m.new_label("frames")
    frames_done = m.new_label("frames_done")
    inner = m.new_label("inner")
    inner_done = m.new_label("inner_done")
    m.iconst(n_samples).newarray(ArrayType.FLOAT).astore(0)
    m.iconst(0).istore(1)
    m.bind(fill)
    m.iload(1).iconst(n_samples).if_icmpge(fill_done)
    m.aload(0).iload(1)
    m.iload(1).iconst(97).imul().iconst(255).iand()
    m.iconst(128).isub().i2f().fconst(128.0).fdiv()
    m.fastore()
    m.iinc(1, 1)
    m.goto(fill)
    m.bind(fill_done)
    m.new("spec/Filter").dup()
    m.invokespecial("spec/Filter", "<init>", 0)
    m.astore(2)
    m.iconst(0).istore(3)
    m.iconst(0).istore(4)
    m.bind(frames)
    m.iload(4).iconst(n_frames).if_icmpge(frames_done)
    m.iconst(0).istore(5)
    m.bind(inner)
    m.iload(5).iconst(n_samples - _TAPS).if_icmpge(inner_done)
    m.iload(3)
    m.aload(2).aload(0).iload(5)
    m.invokevirtual("spec/Filter", "filterFrame", 2, True)
    m.iadd().iconst(0xFFFFF).iand().istore(3)
    m.iload(5).iconst(_TAPS).iadd().istore(5)
    m.goto(inner)
    m.bind(inner_done)
    m.iinc(4, 1)
    m.goto(frames)
    m.bind(frames_done)
    m.iload(3).iconst(3).imul()
    m.aload(2).invokevirtual("spec/Filter", "getAcc", 0, True)
    m.iadd().iconst(0xFFFFF).iand().istore(3)
    m.getstatic("java/lang/System", "out").iload(3)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()

    return pb.build()
