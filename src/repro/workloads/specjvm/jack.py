"""``jack`` — parser-generator-style repeated scanning.

Character (per the paper): scans the same input many times looking for
matching patterns; execution-dominated under the JIT; the heaviest user
of synchronized library classes (StringBuffer / Hashtable), giving it
the most monitor operations in the suite.
"""

from __future__ import annotations

import random

from ...isa.builder import ProgramBuilder
from ...isa.method import Program
from ...isa.opcodes import ArrayType
from ..base import register

#: (grammar lines, passes) per scale.
_PARAMS = {"s0": (4, 2), "s1": (14, 6), "s10": (40, 16)}


def _gen_grammar(n_lines: int, seed: int = 5) -> str:
    rng = random.Random(seed)
    nts = [f"rule{k}" for k in range(6)]
    ts = ["ident", "number", "lparen", "rparen", "semi", "comma"]
    lines = []
    for _ in range(n_lines):
        lhs = rng.choice(nts)
        rhs = " ".join(rng.choice(nts + ts) for _ in range(rng.randrange(2, 5)))
        lines.append(f"{lhs} := {rhs} ;")
    return " ".join(lines) + " "


@register("jack", "repeated scanning with StringBuffer/Hashtable (sync heavy)")
def build(scale: str = "s1") -> Program:
    n_lines, passes = _PARAMS[scale]
    text = _gen_grammar(n_lines)
    pb = ProgramBuilder("jack", main_class="spec/Jack")

    tk = pb.cls("spec/Tokenizer")
    tk.field("src", "ref")
    tk.field("table", "ref")       # Hashtable of token hash -> count

    init = tk.method("<init>", argc=1)
    init.aload(0).aload(1).putfield("spec/Tokenizer", "src")
    init.aload(0)
    init.new("java/util/Hashtable").dup()
    init.invokespecial("java/util/Hashtable", "<init>", 0)
    init.putfield("spec/Tokenizer", "table")
    init.return_()

    is_alpha = tk.method("isAlpha", argc=1, returns=True, static=True)
    no = is_alpha.new_label("no")
    is_alpha.iload(0).iconst(ord("a")).if_icmplt(no)
    is_alpha.iload(0).iconst(ord("z")).if_icmpgt(no)
    is_alpha.iconst(1).ireturn()
    is_alpha.bind(no)
    is_alpha.iconst(0).ireturn()

    is_num = tk.method("isNum", argc=1, returns=True, static=True)
    no = is_num.new_label("no")
    is_num.iload(0).iconst(ord("0")).if_icmplt(no)
    is_num.iload(0).iconst(ord("9")).if_icmpgt(no)
    is_num.iconst(1).ireturn()
    is_num.bind(no)
    is_num.iconst(0).ireturn()

    # int scanPass(): one full pass over the source
    span = tk.method("scanPass", returns=True)
    # locals: 0=this 1=pos 2=tokens 3=c 4=sb 5=hash 6=word(ref)
    loop = span.new_label("loop")
    done = span.new_label("done")
    word = span.new_label("word")
    word_loop = span.new_label("word_loop")
    word_done = span.new_label("word_done")
    other = span.new_label("other")
    advance = span.new_label("advance")
    span.iconst(0).istore(1)
    span.iconst(0).istore(2)
    span.bind(loop)
    span.iload(1)
    span.aload(0).getfield("spec/Tokenizer", "src").arraylength()
    span.if_icmpge(done)
    span.aload(0).getfield("spec/Tokenizer", "src").iload(1).caload()
    span.istore(3)
    span.iload(3).invokestatic("spec/Tokenizer", "isAlpha", 1, True).ifne(word)
    span.iload(3).invokestatic("spec/Tokenizer", "isNum", 1, True).ifne(word)
    span.goto(other)
    # word: accumulate chars through a StringBuffer (synchronized appends)
    span.bind(word)
    span.new("java/lang/StringBuffer").dup()
    span.invokespecial("java/lang/StringBuffer", "<init>", 0)
    span.astore(4)
    span.bind(word_loop)
    span.iload(1)
    span.aload(0).getfield("spec/Tokenizer", "src").arraylength()
    span.if_icmpge(word_done)
    span.aload(0).getfield("spec/Tokenizer", "src").iload(1).caload()
    span.istore(3)
    span.iload(3).invokestatic("spec/Tokenizer", "isAlpha", 1, True).ifne(advance)
    span.iload(3).invokestatic("spec/Tokenizer", "isNum", 1, True).ifne(advance)
    span.goto(word_done)
    span.bind(advance)
    span.aload(4).iload(3)
    span.invokevirtual("java/lang/StringBuffer", "append", 1, True).pop()
    span.iinc(1, 1)
    span.goto(word_loop)
    span.bind(word_done)
    # hash the token string, bump its table entry
    span.aload(4).invokevirtual("java/lang/StringBuffer", "toString", 0, True)
    span.astore(6)
    span.aload(6).invokevirtual("java/lang/String", "hashCode", 0, True)
    span.iconst(0xFFFF).iand().istore(5)
    span.aload(0).getfield("spec/Tokenizer", "table")
    span.iload(5).iload(2)
    span.invokevirtual("java/util/Hashtable", "put", 2, False)
    span.iinc(2, 1)
    span.goto(loop)
    # non-word characters
    skip = span.new_label("skip")
    span.bind(other)
    span.iload(3).iconst(ord(" ")).if_icmpeq(skip)
    span.iinc(2, 1)               # count punctuation as a token
    span.bind(skip)
    span.iinc(1, 1)
    span.goto(loop)
    span.bind(done)
    span.aload(0).getfield("spec/Tokenizer", "table")
    span.invokevirtual("java/util/Hashtable", "size", 0, True)
    span.iload(2).iconst(5).ishl().iadd().ireturn()

    # ------------------------------------------------------------------
    main_cls = pb.cls("spec/Jack")
    m = main_cls.method("main", static=True)
    # locals: 0=text 1=chars 2=i 3=acc 4=tokenizer
    m.ldc_str(text).astore(0)
    m.aload(0).invokevirtual("java/lang/String", "length", 0, True)
    m.newarray(ArrayType.CHAR).astore(1)
    explode = m.new_label("explode")
    explode_done = m.new_label("explode_done")
    m.iconst(0).istore(2)
    m.bind(explode)
    m.iload(2).aload(1).arraylength().if_icmpge(explode_done)
    m.aload(1).iload(2)
    m.aload(0).iload(2).invokevirtual("java/lang/String", "charAt", 1, True)
    m.castore()
    m.iinc(2, 1)
    m.goto(explode)
    m.bind(explode_done)
    m.new("spec/Tokenizer").dup().aload(1)
    m.invokespecial("spec/Tokenizer", "<init>", 1)
    m.astore(4)
    m.iconst(0).istore(3)
    scans = m.new_label("scans")
    scans_done = m.new_label("scans_done")
    m.iconst(0).istore(2)
    m.bind(scans)
    m.iload(2).iconst(passes).if_icmpge(scans_done)
    m.iload(3)
    m.aload(4).invokevirtual("spec/Tokenizer", "scanPass", 0, True)
    m.iadd().iconst(0xFFFFF).iand().istore(3)
    m.iinc(2, 1)
    m.goto(scans)
    m.bind(scans_done)
    m.getstatic("java/lang/System", "out").iload(3)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()

    return pb.build()
