"""``mtrt`` — two-thread ray tracer.

Character (per the paper): the only multithreaded SpecJVM98 program.
Two worker threads trace rays against a shared scene; results are
accumulated through a synchronized collector, producing contended
(case d) monitor acquisitions on top of the usual library traffic.
"""

from __future__ import annotations

from ...isa.builder import ProgramBuilder
from ...isa.method import Program
from ..base import register

#: (image width, image height, spheres) per scale.
_PARAMS = {"s0": (8, 6, 3), "s1": (20, 14, 5), "s10": (48, 32, 10)}


@register("mtrt", "two-thread ray tracer: shared scene + contended results",
          multithreaded=True)
def build(scale: str = "s1") -> Program:
    width, height, n_spheres = _PARAMS[scale]
    pb = ProgramBuilder("mtrt", main_class="spec/Mtrt")

    # ------------------------------------------------------------------
    # Sphere
    # ------------------------------------------------------------------
    sp = pb.cls("spec/Sphere")
    for fname in ("cx", "cy", "cz", "radius"):
        sp.field(fname, "float")
    init = sp.method("<init>", argc=4)
    for i, fname in enumerate(("cx", "cy", "cz", "radius")):
        init.aload(0).fload(i + 1).putfield("spec/Sphere", fname)
    init.return_()

    # int intersects(float ox, float oy, float oz, float dx, float dy, float dz)
    # Simplified ray/sphere test around the discriminant sign.
    hit = sp.method("intersects", argc=6, returns=True)
    no = hit.new_label("no")
    # b = dx*(cx-ox) + dy*(cy-oy) + dz*(cz-oz)
    hit.fload(4)
    hit.aload(0).getfield("spec/Sphere", "cx").fload(1).fsub()
    hit.fmul()
    hit.fload(5)
    hit.aload(0).getfield("spec/Sphere", "cy").fload(2).fsub()
    hit.fmul().fadd()
    hit.fload(6)
    hit.aload(0).getfield("spec/Sphere", "cz").fload(3).fsub()
    hit.fmul().fadd()
    hit.fstore(7)                                   # b
    # dist2 = (cx-ox)^2 + (cy-oy)^2 + (cz-oz)^2
    hit.aload(0).getfield("spec/Sphere", "cx").fload(1).fsub().fstore(8)
    hit.fload(8).fload(8).fmul().fstore(9)
    hit.aload(0).getfield("spec/Sphere", "cy").fload(2).fsub().fstore(8)
    hit.fload(9).fload(8).fload(8).fmul().fadd().fstore(9)
    hit.aload(0).getfield("spec/Sphere", "cz").fload(3).fsub().fstore(8)
    hit.fload(9).fload(8).fload(8).fmul().fadd().fstore(9)
    # disc = b*b - (dist2 - r*r)
    hit.fload(7).fload(7).fmul()
    hit.fload(9)
    hit.aload(0).getfield("spec/Sphere", "radius")
    hit.aload(0).getfield("spec/Sphere", "radius").fmul()
    hit.fsub()
    hit.fsub().fstore(10)
    hit.fload(10).fconst(0.0).fcmpl().iflt(no)
    # shade = sqrt(disc) scaled — keeps the FPU + native Math traffic real
    hit.fload(10).invokestatic("java/lang/Math", "sqrt", 1, True)
    hit.fconst(8.0).fmul().f2i().iconst(15).iand().iconst(1).iadd()
    hit.ireturn()
    hit.bind(no)
    hit.iconst(0).ireturn()

    # ------------------------------------------------------------------
    # Result collector (synchronized — the contended object)
    # ------------------------------------------------------------------
    res = pb.cls("spec/Result")
    res.field("total", "int")
    init = res.method("<init>")
    init.aload(0).iconst(0).putfield("spec/Result", "total")
    init.return_()
    add = res.method("addSamples", argc=1, synchronized=True)
    add.aload(0)
    add.aload(0).getfield("spec/Result", "total")
    add.iload(1).iadd().iconst(0xFFFFF).iand()
    add.putfield("spec/Result", "total")
    add.return_()
    total = res.method("getTotal", returns=True, synchronized=True)
    total.aload(0).getfield("spec/Result", "total").ireturn()

    # ------------------------------------------------------------------
    # RenderThread extends java/lang/Thread
    # ------------------------------------------------------------------
    rt = pb.cls("spec/RenderThread", super_name="java/lang/Thread")
    rt.field("spheres", "ref")
    rt.field("result", "ref")
    rt.field("y0", "int")
    rt.field("y1", "int")
    init = rt.method("<init>", argc=4)
    init.aload(0).aload(1).putfield("spec/RenderThread", "spheres")
    init.aload(0).aload(2).putfield("spec/RenderThread", "result")
    init.aload(0).iload(3).putfield("spec/RenderThread", "y0")
    init.aload(0).iload(4).putfield("spec/RenderThread", "y1")
    init.return_()

    # int tracePixel(int x, int y): ray vs. every sphere
    tp = rt.method("tracePixel", argc=2, returns=True)
    loop = tp.new_label("loop")
    done = tp.new_label("done")
    # Direction from pixel coordinates.
    tp.iload(1).iconst(width // 2).isub().i2f()
    tp.fconst(float(width)).fdiv().fstore(3)        # dx
    tp.iload(2).iconst(height // 2).isub().i2f()
    tp.fconst(float(height)).fdiv().fstore(4)       # dy
    tp.fconst(1.0).fstore(5)                        # dz
    tp.iconst(0).istore(6)                          # hits
    tp.iconst(0).istore(7)                          # i
    tp.bind(loop)
    tp.iload(7)
    tp.aload(0).getfield("spec/RenderThread", "spheres").arraylength()
    tp.if_icmpge(done)
    tp.iload(6)
    tp.aload(0).getfield("spec/RenderThread", "spheres")
    tp.iload(7).aaload().checkcast("spec/Sphere")
    tp.fconst(0.0).fconst(0.0).fconst(-4.0)         # origin
    tp.fload(3).fload(4).fload(5)
    tp.invokevirtual("spec/Sphere", "intersects", 6, True)
    tp.iadd().istore(6)
    tp.iinc(7, 1)
    tp.goto(loop)
    tp.bind(done)
    tp.iload(6).ireturn()

    # void run(): trace the strip, accumulate per row
    run = rt.method("run")
    yloop = run.new_label("yloop")
    ydone = run.new_label("ydone")
    xloop = run.new_label("xloop")
    xdone = run.new_label("xdone")
    run.aload(0).getfield("spec/RenderThread", "y0").istore(1)   # y
    run.bind(yloop)
    run.iload(1)
    run.aload(0).getfield("spec/RenderThread", "y1")
    run.if_icmpge(ydone)
    run.iconst(0).istore(2)                                      # x
    run.iconst(0).istore(3)                                      # row hits
    run.bind(xloop)
    run.iload(2).iconst(width).if_icmpge(xdone)
    run.iload(3)
    run.aload(0).iload(2).iload(1)
    run.invokevirtual("spec/RenderThread", "tracePixel", 2, True)
    run.iadd().istore(3)
    run.iinc(2, 1)
    run.goto(xloop)
    run.bind(xdone)
    run.aload(0).getfield("spec/RenderThread", "result")
    run.iload(3)
    run.invokevirtual("spec/Result", "addSamples", 1, False)
    run.iinc(1, 1)
    run.goto(yloop)
    run.bind(ydone)
    run.return_()

    # ------------------------------------------------------------------
    # Main: build scene, start two workers, join, report.
    # ------------------------------------------------------------------
    main_cls = pb.cls("spec/Mtrt")
    m = main_cls.method("main", static=True)
    # locals: 0=spheres 1=i 2=result 3=t1 4=t2 5=rnd
    m.new("java/util/Random").dup().iconst(99)
    m.invokespecial("java/util/Random", "<init>", 1)
    m.astore(5)
    m.iconst(n_spheres).anewarray("spec/Sphere").astore(0)
    fill = m.new_label("fill")
    fill_done = m.new_label("fill_done")
    m.iconst(0).istore(1)
    m.bind(fill)
    m.iload(1).iconst(n_spheres).if_icmpge(fill_done)
    m.aload(0).iload(1)
    m.new("spec/Sphere").dup()
    for scale_div in (8.0, 8.0, 4.0):
        m.aload(5).iconst(16).invokevirtual("java/util/Random", "nextInt", 1, True)
        m.iconst(8).isub().i2f().fconst(scale_div).fdiv()
    m.aload(5).iconst(6).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.iconst(2).iadd().i2f().fconst(8.0).fdiv()
    m.invokespecial("spec/Sphere", "<init>", 4)
    m.aastore()
    m.iinc(1, 1)
    m.goto(fill)
    m.bind(fill_done)
    m.new("spec/Result").dup()
    m.invokespecial("spec/Result", "<init>", 0)
    m.astore(2)
    # Two worker threads splitting the rows.
    m.new("spec/RenderThread").dup()
    m.aload(0).aload(2).iconst(0).iconst(height // 2)
    m.invokespecial("spec/RenderThread", "<init>", 4)
    m.astore(3)
    m.new("spec/RenderThread").dup()
    m.aload(0).aload(2).iconst(height // 2).iconst(height)
    m.invokespecial("spec/RenderThread", "<init>", 4)
    m.astore(4)
    m.aload(3).invokevirtual("java/lang/Thread", "start", 0, False)
    m.aload(4).invokevirtual("java/lang/Thread", "start", 0, False)
    m.aload(3).invokevirtual("java/lang/Thread", "join", 0, False)
    m.aload(4).invokevirtual("java/lang/Thread", "join", 0, False)
    m.getstatic("java/lang/System", "out")
    m.aload(2).invokevirtual("spec/Result", "getTotal", 0, True)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()

    return pb.build()
