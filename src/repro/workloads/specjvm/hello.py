"""``hello`` — the minimal program.

The paper includes HelloWorld "to observe the behavior of the JVM
implementation while loading and resolving system classes during system
initialization": class loading and translation dominate; almost nothing
executes.
"""

from __future__ import annotations

from ...isa.builder import ProgramBuilder
from ...isa.method import Program
from ..base import register


@register("hello", "HelloWorld: class loading / translation dominate")
def build(scale: str = "s1") -> Program:
    pb = ProgramBuilder("hello", main_class="spec/Hello")
    main_cls = pb.cls("spec/Hello")
    m = main_cls.method("main", static=True)
    m.getstatic("java/lang/System", "out")
    m.ldc_str("Hello, world")
    m.invokevirtual("java/io/PrintStream", "println", 1, False)
    m.return_()
    return pb.build()
