"""``jess`` — forward-chaining rule engine.

Character (per the paper): repeated pattern matching of rules against a
fact base; library (Vector) usage contributes synchronization traffic;
translation is a visible but not dominant fraction.
"""

from __future__ import annotations

from ...isa.builder import ProgramBuilder
from ...isa.method import Program
from ...isa.opcodes import ArrayType
from ..base import register

#: (initial facts, rules, iterations, max derived) per scale.
_PARAMS = {
    "s0": (12, 4, 2, 8),
    "s1": (48, 8, 4, 96),
    "s10": (128, 12, 8, 512),
}

#: Fields per fact tuple.
_ARITY = 4
#: Wildcard marker in patterns.
_WILD = -1


@register("jess", "rule engine: repeated pattern matching over a fact base")
def build(scale: str = "s1") -> Program:
    n_facts, n_rules, n_iters, max_derived = _PARAMS[scale]
    pb = ProgramBuilder("jess", main_class="spec/Jess")

    eng = pb.cls("spec/Engine")
    eng.field("facts", "ref")          # Vector of int[4]
    eng.field("patterns", "ref")       # int[n_rules * ARITY]
    eng.field("derived", "int")
    eng.field("budget", "int")

    init = eng.method("<init>", argc=1)
    init.aload(0)
    init.new("java/util/Vector").dup().iconst(32)
    init.invokespecial("java/util/Vector", "<init>", 1)
    init.putfield("spec/Engine", "facts")
    init.aload(0).iconst(n_rules * _ARITY).newarray(ArrayType.INT)
    init.putfield("spec/Engine", "patterns")
    init.aload(0).iconst(0).putfield("spec/Engine", "derived")
    init.aload(0).iload(1).putfield("spec/Engine", "budget")
    init.return_()

    # void setPattern(int index, int value)
    sp = eng.method("setPattern", argc=2)
    sp.aload(0).getfield("spec/Engine", "patterns")
    sp.iload(1).iload(2).iastore()
    sp.return_()

    # void assertFact(int a, int b, int c, int d)
    af = eng.method("assertFact", argc=4)
    af.iconst(_ARITY).newarray(ArrayType.INT).astore(5)
    af.aload(5).iconst(0).iload(1).iastore()
    af.aload(5).iconst(1).iload(2).iastore()
    af.aload(5).iconst(2).iload(3).iastore()
    af.aload(5).iconst(3).iload(4).iastore()
    af.aload(0).getfield("spec/Engine", "facts")
    af.aload(5).invokevirtual("java/util/Vector", "addElement", 1, False)
    af.return_()

    # int matchFact(int[] fact, int rule): 1 if every non-wild field matches
    mf = eng.method("matchFact", argc=2, returns=True)
    loop = mf.new_label("loop")
    fail = mf.new_label("fail")
    ok = mf.new_label("ok")
    nxt = mf.new_label("next")
    mf.iconst(0).istore(3)                       # j
    mf.bind(loop)
    mf.iload(3).iconst(_ARITY).if_icmpge(ok)
    mf.aload(0).getfield("spec/Engine", "patterns")
    mf.iload(2).iconst(_ARITY).imul().iload(3).iadd()
    mf.iaload().istore(4)                        # p
    mf.iload(4).iconst(_WILD).if_icmpeq(nxt)
    mf.iload(4)
    mf.aload(1).iload(3).iaload()
    mf.if_icmpne(fail)
    mf.bind(nxt)
    mf.iinc(3, 1)
    mf.goto(loop)
    mf.bind(ok)
    mf.iconst(1).ireturn()
    mf.bind(fail)
    mf.iconst(0).ireturn()

    # int runRule(int rule): scans facts; derives on match; returns matches
    rr = eng.method("runRule", argc=1, returns=True)
    loop = rr.new_label("loop")
    done = rr.new_label("done")
    no_match = rr.new_label("no_match")
    no_derive = rr.new_label("no_derive")
    rr.iconst(0).istore(2)                       # i
    rr.iconst(0).istore(3)                       # matches
    rr.aload(0).getfield("spec/Engine", "facts")
    rr.invokevirtual("java/util/Vector", "size", 0, True).istore(5)
    rr.aload(0).getfield("spec/Engine", "facts")
    rr.invokevirtual("java/util/Vector", "elems", 0, True).astore(6)
    rr.bind(loop)
    rr.iload(2).iload(5).if_icmpge(done)
    rr.aload(6).iload(2).aaload()
    rr.astore(4)
    rr.aload(0)
    rr.aload(4).iload(1)
    rr.invokevirtual("spec/Engine", "matchFact", 2, True)
    rr.ifeq(no_match)
    rr.iinc(3, 1)
    # derive a new fact if the budget allows
    rr.aload(0).getfield("spec/Engine", "derived")
    rr.aload(0).getfield("spec/Engine", "budget")
    rr.if_icmpge(no_derive)
    rr.aload(0)
    rr.aload(4).iconst(0).iaload().iconst(1).iadd()
    rr.aload(4).iconst(1).iaload()
    rr.iload(1)
    rr.aload(4).iconst(3).iaload().iconst(7).imul().iconst(0xFF).iand()
    rr.invokevirtual("spec/Engine", "assertFact", 4, False)
    rr.aload(0).dup().getfield("spec/Engine", "derived")
    rr.iconst(1).iadd().putfield("spec/Engine", "derived")
    rr.bind(no_derive)
    rr.bind(no_match)
    rr.iinc(2, 1)
    rr.goto(loop)
    rr.bind(done)
    rr.iload(3).ireturn()

    # int run(int iterations): fires all rules per iteration
    run = eng.method("run", argc=1, returns=True)
    outer = run.new_label("outer")
    outer_done = run.new_label("outer_done")
    inner = run.new_label("inner")
    inner_done = run.new_label("inner_done")
    run.iconst(0).istore(2)                      # total
    run.iconst(0).istore(3)                      # it
    run.bind(outer)
    run.iload(3).iload(1).if_icmpge(outer_done)
    run.iconst(0).istore(4)                      # rule
    run.bind(inner)
    run.iload(4).iconst(n_rules).if_icmpge(inner_done)
    run.iload(2)
    run.aload(0).iload(4).invokevirtual("spec/Engine", "runRule", 1, True)
    run.iadd().iconst(0xFFFFF).iand().istore(2)
    run.iinc(4, 1)
    run.goto(inner)
    run.bind(inner_done)
    run.iinc(3, 1)
    run.goto(outer)
    run.bind(outer_done)
    run.iload(2).ireturn()

    # ------------------------------------------------------------------
    main_cls = pb.cls("spec/Jess")
    m = main_cls.method("main", static=True)
    # locals: 0=engine 1=i 2=rnd 3=acc
    m.new("spec/Engine").dup().iconst(max_derived)
    m.invokespecial("spec/Engine", "<init>", 1)
    m.astore(0)
    m.new("java/util/Random").dup().iconst(13)
    m.invokespecial("java/util/Random", "<init>", 1)
    m.astore(2)
    # Patterns: field j of rule r is wild 50% of the time.
    pat = m.new_label("pat")
    pat_done = m.new_label("pat_done")
    wild = m.new_label("wild")
    pat_next = m.new_label("pat_next")
    m.iconst(0).istore(1)
    m.bind(pat)
    m.iload(1).iconst(n_rules * _ARITY).if_icmpge(pat_done)
    # The last field of every pattern is a wildcard (facts carry a
    # unique sequence number there); others are wild half the time.
    m.iload(1).iconst(3).iand().iconst(3).if_icmpeq(wild)
    m.aload(2).iconst(2).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.ifeq(wild)
    m.aload(0).iload(1)
    m.aload(2).iconst(5).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.invokevirtual("spec/Engine", "setPattern", 2, False)
    m.goto(pat_next)
    m.bind(wild)
    m.aload(0).iload(1).iconst(_WILD)
    m.invokevirtual("spec/Engine", "setPattern", 2, False)
    m.bind(pat_next)
    m.iinc(1, 1)
    m.goto(pat)
    m.bind(pat_done)
    # Initial fact base.
    facts = m.new_label("facts")
    facts_done = m.new_label("facts_done")
    m.iconst(0).istore(1)
    m.bind(facts)
    m.iload(1).iconst(n_facts).if_icmpge(facts_done)
    m.aload(0)
    m.aload(2).iconst(5).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.aload(2).iconst(5).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.aload(2).iconst(5).invokevirtual("java/util/Random", "nextInt", 1, True)
    m.iload(1)
    m.invokevirtual("spec/Engine", "assertFact", 4, False)
    m.iinc(1, 1)
    m.goto(facts)
    m.bind(facts_done)
    m.aload(0).iconst(n_iters).invokevirtual("spec/Engine", "run", 1, True)
    m.istore(3)
    m.getstatic("java/lang/System", "out").iload(3)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()

    return pb.build()
