"""Declarative traffic-scenario specifications.

A :class:`ScenarioSpec` describes a server-style load in domain terms —
request mix over registered handler kinds, arrival pattern, working-set
size, worker-thread count, total request volume — and is *compiled*
(:mod:`repro.traffic.codegen`) into an ISA program that the VM executes
like any other workload.  Specs are plain data: they round-trip through
JSON, hash stably, and are recorded in manifests, so a BENCH_server.json
names exactly the scenario that produced it.

Arrival patterns
----------------

``closed``
    Closed loop: each worker issues its next request the moment the
    previous one completes.  Offered concurrency equals the thread
    count; latency is pure service time.
``open``
    Open loop: requests arrive on a Poisson process at ``rate``
    requests per kilocycle, independent of completion.  Latency
    includes queueing delay — the regime where tail percentiles
    actually mean something.
``burst``
    Open loop with bursty arrivals: groups of ``burst_size`` requests
    arrive back-to-back, separated by ``burst_gap`` cycles of silence.
``diurnal``
    Open loop whose rate ramps sinusoidally between ``rate_low`` and
    ``rate`` over ``diurnal_periods`` full cycles of the run — the
    slow-ramp shape that exposes fast-start vs fast-steady-state
    tension in the tiering ladder.

The schedule is materialized once, in cycles, with a seeded generator:
two runs of the same spec see byte-identical arrivals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

ARRIVALS = ("closed", "open", "burst", "diurnal")


@dataclass(frozen=True)
class ScenarioSpec:
    """One server-traffic scenario, fully described."""

    name: str
    #: handler kind -> relative weight (kinds from traffic.handlers).
    mix: dict[str, float]
    requests: int = 10_000
    threads: int = 4
    working_set: int = 4096
    arrival: str = "closed"
    #: open/diurnal peak arrival rate, requests per kilocycle.
    rate: float = 2.0
    rate_low: float = 0.5
    burst_size: int = 64
    burst_gap: int = 40_000
    diurnal_periods: int = 2
    #: iterations of the compute handler's inner loop.
    compute_iters: int = 6
    seed: int = 1234

    def __post_init__(self) -> None:
        from .handlers import HANDLERS
        if not self.mix:
            raise ValueError("scenario mix must name at least one handler")
        for kind in self.mix:
            if kind not in HANDLERS:
                raise ValueError(
                    f"unknown handler kind {kind!r}; "
                    f"registered: {sorted(HANDLERS)}")
        if any(w <= 0 for w in self.mix.values()):
            raise ValueError("mix weights must be positive")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival {self.arrival!r}; use one of {ARRIVALS}")
        if self.requests <= 0 or self.threads <= 0 or self.working_set <= 0:
            raise ValueError("requests, threads and working_set must be >= 1")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "mix": dict(self.mix),
            "requests": self.requests,
            "threads": self.threads,
            "working_set": self.working_set,
            "arrival": self.arrival,
            "rate": self.rate,
            "rate_low": self.rate_low,
            "burst_size": self.burst_size,
            "burst_gap": self.burst_gap,
            "diurnal_periods": self.diurnal_periods,
            "compute_iters": self.compute_iters,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def replace(self, **kw) -> "ScenarioSpec":
        d = self.to_dict()
        d.update(kw)
        return ScenarioSpec.from_dict(d)

    # -- compiled pieces ------------------------------------------------
    def handler_kinds(self) -> list[str]:
        """Mix kinds in deterministic order (codegen + schedule agree)."""
        return sorted(self.mix)

    def handler_schedule(self) -> np.ndarray:
        """Per-request handler index (into :meth:`handler_kinds`)."""
        kinds = self.handler_kinds()
        weights = np.array([self.mix[k] for k in kinds], dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        return rng.choice(len(kinds), size=self.requests,
                          p=weights / weights.sum()).astype(np.int64)

    def payload_schedule(self) -> np.ndarray:
        """Per-request working-set index (the request's 'key')."""
        rng = np.random.default_rng(self.seed + 1)
        return rng.integers(0, self.working_set, size=self.requests,
                            dtype=np.int64)

    def arrival_schedule(self) -> np.ndarray | None:
        """Per-request arrival time in cycles; ``None`` for closed loop.

        Monotone non-decreasing int64 cycles.  Deterministic in the
        seed; independent of execution.
        """
        n = self.requests
        if self.arrival == "closed":
            return None
        rng = np.random.default_rng(self.seed + 2)
        if self.arrival == "open":
            gaps = rng.exponential(1000.0 / self.rate, size=n)
            return np.cumsum(gaps).astype(np.int64)
        if self.arrival == "burst":
            burst_idx = np.arange(n) // self.burst_size
            return (burst_idx * self.burst_gap).astype(np.int64)
        # diurnal: inverse-transform a sinusoidal rate profile by
        # integrating the instantaneous rate over uniform progress.
        t = np.arange(n, dtype=np.float64) / max(1, n - 1)
        phase = 2.0 * np.pi * self.diurnal_periods * t
        inst_rate = (self.rate_low
                     + (self.rate - self.rate_low)
                     * 0.5 * (1.0 - np.cos(phase)))
        inst_rate = np.maximum(inst_rate, 1e-6)
        jitter = rng.exponential(1.0, size=n)
        gaps = jitter * (1000.0 / inst_rate)
        return np.cumsum(gaps).astype(np.int64)


#: Ready-made scenarios.  ``api`` is the headline server mix CI runs at
#: a million requests; the others vary one axis at a time.
PRESETS: dict[str, ScenarioSpec] = {}


def _preset(spec: ScenarioSpec) -> ScenarioSpec:
    PRESETS[spec.name] = spec
    return spec


_preset(ScenarioSpec(
    name="api",
    mix={"get": 55, "put": 20, "sync": 10, "compute": 8, "alloc": 6,
         "rare": 1},
    requests=100_000, threads=4, working_set=4096, arrival="closed",
))
_preset(ScenarioSpec(
    name="open-poisson",
    mix={"get": 60, "put": 20, "sync": 10, "alloc": 10},
    requests=50_000, threads=4, working_set=4096,
    arrival="open", rate=2.0,
))
_preset(ScenarioSpec(
    name="burst",
    mix={"get": 50, "put": 20, "sync": 20, "alloc": 10},
    requests=50_000, threads=4, working_set=2048,
    arrival="burst", burst_size=128, burst_gap=60_000,
))
_preset(ScenarioSpec(
    name="diurnal",
    mix={"get": 55, "put": 20, "sync": 10, "compute": 10, "alloc": 5},
    requests=50_000, threads=4, working_set=4096,
    arrival="diurnal", rate=3.0, rate_low=0.4, diurnal_periods=2,
))
_preset(ScenarioSpec(
    name="contended",
    mix={"sync": 60, "get": 30, "alloc": 10},
    requests=30_000, threads=8, working_set=512, arrival="closed",
))


def get_preset(name: str) -> ScenarioSpec:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown scenario preset {name!r}; "
                       f"available: {sorted(PRESETS)}") from None
