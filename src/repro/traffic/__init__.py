"""Server-scale traffic scenarios for the simulated JVM.

A scenario is declared (:class:`~repro.traffic.spec.ScenarioSpec`),
compiled into an ISA server program (:mod:`~repro.traffic.codegen`),
and driven by the engine (:func:`~repro.traffic.engine.run_scenario`),
which measures throughput, exact tail-latency percentiles in cycles,
lock-case mix, tier transitions and code-archive churn under load.
"""

from .engine import RequestTracker, TrafficResult, run_scenario
from .handlers import HANDLERS, register_handler
from .spec import PRESETS, ScenarioSpec, get_preset

__all__ = [
    "HANDLERS",
    "PRESETS",
    "RequestTracker",
    "ScenarioSpec",
    "TrafficResult",
    "get_preset",
    "register_handler",
    "run_scenario",
]
