"""Registered request-handler kinds the scenario mix draws from.

Each handler is an emitter that contributes one static bytecode method
``h_<kind>(payload) -> int`` to the generated ``traffic/Server`` class
(:mod:`repro.traffic.codegen`).  The worker loop dispatches each request
to its scheduled handler with the request's payload (a working-set
index) and folds the return value into a per-worker accumulator, so
every handler's effect is observable in the program's printed checksum.

The kinds cover the architectural axes the paper cares about:

- ``get``/``put``/``scan`` — shared working-set reads and writes (data
  cache churn scaling with ``working_set``),
- ``sync`` — a synchronized method on one shared object (the contended
  case (d) monitor traffic of Section 5),
- ``alloc`` — a short-lived object with a synchronized method (thin /
  elidable case (a) locking plus allocator churn),
- ``compute`` — pure register arithmetic (the ILP-friendly pole),
- ``rare`` — a family of :data:`RARE_VARIANTS` cold endpoints with fat
  straight-line bodies, each hit a handful of times per run: the
  translate-cost tail that first-use JIT pays in full and a tiered
  ladder mostly avoids (Section 3's cost-amortization argument, under
  traffic instead of batch).

Registering a new kind is one decorated function; the spec validator
and the codegen dispatch pick it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Cold-endpoint family size and per-variant body length (LCG steps).
RARE_VARIANTS = 32
RARE_STEPS = 30

#: Stats totals are folded into 20 bits so checksums stay readable.
MASK = 0xFFFFF


@dataclass(frozen=True)
class Handler:
    name: str
    description: str
    emit: Callable


HANDLERS: dict[str, Handler] = {}


def register_handler(name: str, description: str):
    """Decorator registering an emitter for handler kind ``name``."""

    def deco(fn):
        HANDLERS[name] = Handler(name, description, fn)
        return fn

    return deco


def method_name(kind: str) -> str:
    return f"h_{kind}"


@register_handler("get", "read one shared working-set slot")
def _emit_get(cb, spec) -> None:
    mb = cb.method(method_name("get"), argc=1, returns=True, static=True)
    mb.getstatic("traffic/Server", "data")
    mb.iload(0).iaload().ireturn()


@register_handler("put", "write one shared working-set slot")
def _emit_put(cb, spec) -> None:
    mb = cb.method(method_name("put"), argc=1, returns=True, static=True)
    mb.getstatic("traffic/Server", "data").iload(0)
    mb.iload(0).iconst(31).imul().iconst(7).iadd().iconst(MASK).iand()
    mb.iastore()
    mb.iload(0).ireturn()


@register_handler("scan", "sum a 16-slot strided window of the working set")
def _emit_scan(cb, spec) -> None:
    mb = cb.method(method_name("scan"), argc=1, returns=True, static=True)
    loop, done = mb.new_label("loop"), mb.new_label("done")
    # locals: 0=payload 1=i 2=acc 3=arr 4=len
    mb.getstatic("traffic/Server", "data").astore(3)
    mb.aload(3).arraylength().istore(4)
    mb.iconst(0).istore(2)
    mb.iconst(0).istore(1)
    mb.bind(loop)
    mb.iload(1).iconst(16).if_icmpge(done)
    mb.aload(3)
    mb.iload(0).iload(1).iadd().iload(4).irem()
    mb.iaload()
    mb.iload(2).iadd().istore(2)
    mb.iinc(1, 1)
    mb.goto(loop)
    mb.bind(done)
    mb.iload(2).ireturn()


@register_handler("sync", "synchronized update of the one shared Stats object")
def _emit_sync(cb, spec) -> None:
    mb = cb.method(method_name("sync"), argc=1, returns=True, static=True)
    mb.getstatic("traffic/Server", "stats").iload(0)
    mb.invokevirtual("traffic/Stats", "add", 1, False)
    mb.iload(0).ireturn()


@register_handler("alloc", "short-lived Session with a synchronized touch")
def _emit_alloc(cb, spec) -> None:
    mb = cb.method(method_name("alloc"), argc=1, returns=True, static=True)
    mb.new("traffic/Session").dup().iload(0)
    mb.invokespecial("traffic/Session", "<init>", 1)
    mb.astore(1)
    mb.aload(1).iload(0)
    mb.invokevirtual("traffic/Session", "touch", 1, True)
    mb.ireturn()


@register_handler("compute", "pure-arithmetic LCG kernel (compute_iters)")
def _emit_compute(cb, spec) -> None:
    mb = cb.method(method_name("compute"), argc=1, returns=True, static=True)
    loop, done = mb.new_label("loop"), mb.new_label("done")
    # locals: 0=payload 1=i 2=acc
    mb.iload(0).istore(2)
    mb.iconst(0).istore(1)
    mb.bind(loop)
    mb.iload(1).iconst(max(1, spec.compute_iters)).if_icmpge(done)
    mb.iload(2).iconst(1103515245).imul().iconst(12345).iadd()
    mb.iconst(0x7FFFFFF).iand().istore(2)
    mb.iinc(1, 1)
    mb.goto(loop)
    mb.bind(done)
    mb.iload(2).ireturn()


@register_handler("rare", f"{RARE_VARIANTS} cold endpoints with fat bodies")
def _emit_rare(cb, spec) -> None:
    # The dispatcher is tiny and hot; each endpoint body is a long
    # straight-line method that only a few requests ever reach.
    for v in range(RARE_VARIANTS):
        mb = cb.method(f"h_rare_{v}", argc=1, returns=True, static=True)
        mb.iload(0).istore(1)
        mult = 1103515245 + 2 * v          # odd, variant-specific
        for step in range(RARE_STEPS):
            mb.iload(1).iconst(mult).imul()
            mb.iconst(12345 + step).iadd()
            mb.iconst(0x7FFFFFF).iand().istore(1)
        mb.iload(1).ireturn()

    mb = cb.method(method_name("rare"), argc=1, returns=True, static=True)
    cases = [mb.new_label(f"v{v}") for v in range(RARE_VARIANTS)]
    default = mb.new_label("default")
    mb.iload(0).iconst(RARE_VARIANTS - 1).iand()
    mb.tableswitch(0, cases, default)
    for v, label in enumerate(cases):
        mb.bind(label)
        mb.iload(0).invokestatic("traffic/Server", f"h_rare_{v}", 1, True)
        mb.ireturn()
    mb.bind(default)
    mb.iload(0).ireturn()
