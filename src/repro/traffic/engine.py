"""Drive a traffic scenario through the VM and measure it honestly.

The :class:`RequestTracker` is the VM-side half of the scenario engine:
it owns the precomputed request schedule (handler kind, payload,
arrival time), hands requests to worker threads through the generated
program's ``Runtime.poll``/``Runtime.done`` natives, and timestamps
every dispatch and completion in *simulated cycles*.  Open-loop
arrivals are enforced for real: a worker that polls before the next
request's arrival time parks (``NATIVE_BLOCKED``), and when the whole
machine goes idle the tracker advances the cycle clock to the next
arrival — so queueing delay, burst backlogs and diurnal ramps are
visible in the latency distribution instead of being simulated away.

:func:`run_scenario` builds the program, runs it under any execution
config (``interp``/``jit``/``tiered``/tuple modes, optionally against a
shared code archive), and reduces the per-request record to the
measurements the server bench guards: throughput, exact tail-latency
percentiles in cycles, per-window cycles-per-request samples with
steady-state detection (:mod:`repro.bench.stats`), the lock-case mix,
tier-transition counters and code-archive churn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..analysis.runner import make_strategy, mode_token
from ..bench.stats import detect_steady, percentiles
from ..obs import TRACER
from ..sync import LOCK_MANAGERS
from ..vm.machine import JavaVM, VMResult
from ..vm.threads import RUNNABLE, WAITING
from .codegen import KIND_BITS, build_program
from .spec import ScenarioSpec

#: Default number of measurement windows a run is cut into.
DEFAULT_WINDOWS = 50

#: Cold-start segment: the first requests of the run, where translate
#: and tier-up costs concentrate.
COLD_START_REQUESTS = 200


class RequestTracker:
    """Request dispatcher, per-request cycle spans, idle-clock source."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.n = spec.requests
        handler = spec.handler_schedule()
        payload = spec.payload_schedule()
        self.handler_sched = handler
        # Packed (payload << KIND_BITS) | kind, as a plain list: the
        # poll fast path runs once per request and python-list indexing
        # beats numpy scalar reads by ~5x there.
        self._packed = ((payload << KIND_BITS) | handler).tolist()
        arrival = spec.arrival_schedule()
        self._arrival = arrival.tolist() if arrival is not None else None
        self.arrive = np.zeros(self.n, dtype=np.int64)
        self.start = np.zeros(self.n, dtype=np.int64)
        self.end = np.zeros(self.n, dtype=np.int64)
        self.req_thread = np.zeros(self.n, dtype=np.int16)
        self.next = 0
        self.completed = 0
        self.idle_cycles = 0
        self.blocked_polls = 0
        self._current: dict[int, int] = {}
        self._waiters: list = []

    # -- native hooks ---------------------------------------------------
    def poll(self, vm: JavaVM, thread):
        """Dispatch the next request to ``thread`` (or park / drain)."""
        i = self.next
        if i >= self.n:
            return -1
        now = vm.sink.cycles
        if self._arrival is not None and self._arrival[i] > now:
            # Nothing has arrived yet: park until the machine idles
            # forward to the next arrival (or another thread's work
            # moves the clock past it).
            self.blocked_polls += 1
            thread.state = WAITING
            self._waiters.append(thread)
            return vm.NATIVE_BLOCKED
        self.next = i + 1
        self.start[i] = now
        self.arrive[i] = now if self._arrival is None else self._arrival[i]
        self._current[thread.thread_id] = i
        self.req_thread[i] = thread.thread_id
        return self._packed[i]

    def complete(self, vm: JavaVM, thread) -> None:
        i = self._current.pop(thread.thread_id, None)
        if i is None:
            return
        self.end[i] = vm.sink.cycles
        self.completed += 1

    # -- VM idle hook ---------------------------------------------------
    def on_idle(self, vm: JavaVM) -> bool:
        """No thread is runnable: advance the clock to the next arrival.

        Returns True when any parked worker was released (the scheduler
        re-scans instead of declaring deadlock).  Idle cycles are
        charged to the sink — simulated time passes while the server
        waits for load — and tracked separately so utilization is
        reportable.
        """
        if not self._waiters:
            return False
        if self.next < self.n:
            target = self._arrival[self.next]
            now = vm.sink.cycles
            if target > now:
                vm.sink.emit_cycles(target - now)
                self.idle_cycles += target - now
        waiters, self._waiters = self._waiters, []
        for t in waiters:
            t.state = RUNNABLE
        return True


@dataclass
class TrafficResult:
    """One scenario run: the VM result plus the per-request record."""

    spec: ScenarioSpec
    mode: object
    vm_result: VMResult
    tracker: RequestTracker
    wall_seconds: float
    window_requests: int
    steady_window: int
    steady_cv: float

    def __post_init__(self) -> None:
        t = self.tracker
        self.service = t.end - t.start
        self.sojourn = t.end - t.arrive
        self.first_cycle = int(t.start[0]) if t.n else 0
        self.last_cycle = int(t.end.max()) if t.n else 0

    # -- windows --------------------------------------------------------
    def window_samples(self) -> np.ndarray:
        """Cycles-per-request of each completed measurement window.

        Requests are ordered by completion time and cut into windows of
        ``window_requests``; each sample is the cycle span the window
        occupied divided by its size.  Early windows absorb translate /
        tier-up costs, so this is the stream steady-state detection
        judges.
        """
        t = self.tracker
        w = self.window_requests
        end_sorted = np.sort(t.end)
        boundaries = end_sorted[w - 1::w]
        if boundaries.size == 0:
            return np.zeros(0, dtype=np.float64)
        edges = np.concatenate([[self.first_cycle], boundaries])
        return np.diff(edges).astype(np.float64) / w

    def steady_verdict(self):
        return detect_steady(self.window_samples().tolist(),
                             window=self.steady_window,
                             cv_threshold=self.steady_cv)

    # -- the JSON record ------------------------------------------------
    def to_dict(self) -> dict:
        t, r = self.tracker, self.vm_result
        span_cycles = max(1, self.last_cycle - self.first_cycle)
        busy = r.cycles - t.idle_cycles
        cold_n = min(COLD_START_REQUESTS, t.n)
        verdict = self.steady_verdict()
        samples = self.window_samples()
        kinds = self.spec.handler_kinds()
        mix_counts = np.bincount(t.handler_sched,
                                 minlength=len(kinds)).tolist()
        out = {
            "scenario": self.spec.name,
            "mode": mode_token(self.mode) or str(self.mode),
            "requests": t.n,
            "stdout": list(r.stdout),
            "wall_seconds": round(self.wall_seconds, 3),
            "cycles": r.cycles,
            "instructions": r.instructions,
            "bytecodes": r.bytecodes_executed,
            "translate_cycles": r.translate_cycles,
            "install_cycles": r.install_cycles,
            "idle_cycles": t.idle_cycles,
            "busy_cycles": busy,
            "utilization": round(busy / max(1, r.cycles), 4),
            "throughput_rpmc": round(1e6 * t.n / span_cycles, 3),
            "throughput_busy_rpmc": round(1e6 * t.n / max(1, busy), 3),
            "latency_cycles": {
                "service": percentiles(self.service),
                "sojourn": percentiles(self.sojourn),
            },
            "cold_start": {
                "requests": cold_n,
                **percentiles(self.service[:cold_n]),
            },
            "mix_realized": dict(zip(kinds, mix_counts)),
            "windows": {
                "requests_per_window": self.window_requests,
                "cycles_per_request": [round(float(s), 2) for s in samples],
            },
            "steady": verdict.to_dict(),
            "lock_mix": r.sync,
            "methods_compiled": r.methods_compiled,
            "methods_installed": r.methods_installed,
            "classes_loaded": r.classes_loaded,
        }
        if r.tiering is not None:
            out["tiering"] = {k: r.tiering[k] for k in (
                "promotions_t1", "promotions_t2", "osr_entries",
                "deopts", "speculative_marks")}
        if r.archive is not None:
            out["archive"] = r.archive
        return out


def run_scenario(
    spec: ScenarioSpec,
    mode="tiered",
    *,
    code_archive: str = "",
    lock_manager: str = "monitor-cache",
    windows: int = DEFAULT_WINDOWS,
    window_requests: int | None = None,
    steady_window: int = 5,
    steady_cv: float = 0.10,
    static_concurrency: bool = False,
    max_bytecodes: int | None = None,
) -> TrafficResult:
    """Build, run and measure one scenario under one execution config.

    ``code_archive`` names a shared compiled-code archive directory
    (empty string disables, mirroring ``run_vm``).  Results are never
    served from the run cache: the per-request record lives outside
    :class:`VMResult`, and archive warmth must stay observable.
    """
    program = build_program(spec)
    tracker = RequestTracker(spec)
    vm = JavaVM(
        program,
        strategy=make_strategy(mode),
        lock_manager=LOCK_MANAGERS[lock_manager](),
        spawn_daemons=False,
        static_concurrency=static_concurrency,
        code_archive=code_archive,
        max_bytecodes=max_bytecodes or max(80_000_000, 300 * spec.requests),
    )
    vm.request_source = tracker
    started = time.perf_counter()
    if TRACER.enabled:
        with TRACER.span("traffic.scenario", scenario=spec.name,
                         mode=mode_token(mode) or str(mode),
                         requests=spec.requests, threads=spec.threads,
                         arrival=spec.arrival) as sp:
            result = vm.run()
            sp.attrs.update(cycles=result.cycles,
                            translate_cycles=result.translate_cycles,
                            completed=tracker.completed,
                            idle_cycles=tracker.idle_cycles)
    else:
        result = vm.run()
    wall = time.perf_counter() - started

    if tracker.completed != spec.requests:
        raise RuntimeError(
            f"scenario {spec.name}: {tracker.completed} of "
            f"{spec.requests} requests completed")

    w = window_requests or max(1, spec.requests // max(1, windows))
    traffic = TrafficResult(spec, mode, result, tracker, wall, w,
                            steady_window, steady_cv)
    if TRACER.enabled:
        for k, cpr in enumerate(traffic.window_samples().tolist()):
            TRACER.emit("traffic.window", 0.0, index=k,
                        cycles_per_request=round(cpr, 2))
        TRACER.add("vm.traffic.requests", tracker.completed)
        TRACER.add("vm.traffic.idle_cycles", tracker.idle_cycles)
    return traffic
