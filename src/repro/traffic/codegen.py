"""Compile a :class:`~repro.traffic.spec.ScenarioSpec` into an ISA program.

The generated program is a miniature server: ``spec.threads`` worker
threads (real ``java/lang/Thread`` subclasses on the VM's green-thread
scheduler) pull requests from the VM-side dispatcher
(:class:`~repro.traffic.engine.RequestTracker`) through two native
hooks, dispatch each to its scheduled handler method over the shared
working set, and fold every handler's return value into a per-worker
accumulator that is posted to the shared ``Stats`` object at exit —
so the printed total is a checksum of *all* request work, comparable
across execution configs exactly like the batch workloads' outputs.

Request flow, per request, in bytecode::

    p = Runtime.poll()            # native: dispatch (or block/finish)
    if p < 0: break               # stream drained
    h, payload = p & 15, p >> 4   # kind index + working-set key
    acc += Server.h_<kind>(payload)
    Runtime.done()                # native: completion timestamp

``poll``/``done`` are the per-request span boundaries: the tracker
records dispatch and completion in *simulated cycles*, which is what
makes tail-latency percentiles exact rather than sampled.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.method import Program
from ..isa.opcodes import ArrayType
from .handlers import HANDLERS, MASK, method_name
from .spec import ScenarioSpec

#: poll() packs the handler index into the low 4 bits of its return.
KIND_BITS = 4
MAX_KINDS = 1 << KIND_BITS


def _poll(vm, thread, args):
    source = getattr(vm, "request_source", None)
    if source is None:
        return -1                      # no dispatcher: drain immediately
    return source.poll(vm, thread)


def _done(vm, thread, args):
    source = getattr(vm, "request_source", None)
    if source is not None:
        source.complete(vm, thread)


def build_program(spec: ScenarioSpec) -> Program:
    """The server program for ``spec`` (fresh; runtime state per VM)."""
    kinds = spec.handler_kinds()
    if len(kinds) > MAX_KINDS:
        raise ValueError(
            f"at most {MAX_KINDS} handler kinds per scenario "
            f"(got {len(kinds)})")
    pb = ProgramBuilder(f"traffic-{spec.name}", main_class="traffic/Main")

    # -- native request hooks ------------------------------------------
    rt = pb.cls("traffic/Runtime")
    rt.native_method("poll", 0, True, _poll, static=True, cost=10)
    rt.native_method("done", 0, False, _done, static=True, cost=6)

    # -- shared state ---------------------------------------------------
    stats = pb.cls("traffic/Stats")
    stats.field("total", "int")
    init = stats.method("<init>")
    init.aload(0).iconst(0).putfield("traffic/Stats", "total")
    init.return_()
    add = stats.method("add", argc=1, synchronized=True)
    add.aload(0)
    add.aload(0).getfield("traffic/Stats", "total")
    add.iload(1).iadd().iconst(MASK).iand()
    add.putfield("traffic/Stats", "total")
    add.return_()
    get = stats.method("get", returns=True, synchronized=True)
    get.aload(0).getfield("traffic/Stats", "total").ireturn()

    session = pb.cls("traffic/Session")
    session.field("v", "int")
    init = session.method("<init>", argc=1)
    init.aload(0).iload(1).putfield("traffic/Session", "v")
    init.return_()
    touch = session.method("touch", argc=1, returns=True, synchronized=True)
    touch.aload(0)
    touch.aload(0).getfield("traffic/Session", "v")
    touch.iload(1).iadd().iconst(MASK).iand()
    touch.putfield("traffic/Session", "v")
    touch.aload(0).getfield("traffic/Session", "v").ireturn()

    # -- the server: working set + handler methods ---------------------
    server = pb.cls("traffic/Server")
    server.static_field("data", "ref")
    server.static_field("stats", "ref")

    setup = server.method("setup", static=True)
    loop, done = setup.new_label("fill"), setup.new_label("filled")
    setup.iconst(spec.working_set).newarray(ArrayType.INT)
    setup.putstatic("traffic/Server", "data")
    setup.new("traffic/Stats").dup()
    setup.invokespecial("traffic/Stats", "<init>", 0)
    setup.putstatic("traffic/Server", "stats")
    setup.getstatic("traffic/Server", "data").astore(1)
    setup.iconst(0).istore(0)
    setup.bind(loop)
    setup.iload(0).iconst(spec.working_set).if_icmpge(done)
    setup.aload(1).iload(0)
    setup.iload(0).iconst(31).imul().iconst(17).iadd().iconst(MASK).iand()
    setup.iastore()
    setup.iinc(0, 1)
    setup.goto(loop)
    setup.bind(done)
    setup.return_()

    for kind in kinds:
        HANDLERS[kind].emit(server, spec)

    # -- the worker loop ------------------------------------------------
    worker = pb.cls("traffic/Worker", super_name="java/lang/Thread")
    worker.method("<init>").return_()
    run = worker.method("run")
    # locals: 0=this 1=packed 2=kind 3=payload 4=acc
    top = run.new_label("top")
    merge = run.new_label("merge")
    drained = run.new_label("drained")
    cases = [run.new_label(f"k_{k}") for k in kinds]
    run.iconst(0).istore(4)
    run.bind(top)
    run.invokestatic("traffic/Runtime", "poll", 0, True).istore(1)
    run.iload(1).iflt(drained)
    run.iload(1).iconst(MAX_KINDS - 1).iand().istore(2)
    run.iload(1).iconst(KIND_BITS).ishr().istore(3)
    run.iload(2).tableswitch(0, cases, merge)
    for kind, label in zip(kinds, cases):
        run.bind(label)
        run.iload(3)
        run.invokestatic("traffic/Server", method_name(kind), 1, True)
        run.iload(4).iadd().istore(4)
        run.goto(merge)
    run.bind(merge)
    run.invokestatic("traffic/Runtime", "done", 0, False)
    run.goto(top)
    run.bind(drained)
    run.getstatic("traffic/Server", "stats").iload(4)
    run.invokevirtual("traffic/Stats", "add", 1, False)
    run.return_()

    # -- main: setup, spawn, join, report ------------------------------
    main_cls = pb.cls("traffic/Main")
    m = main_cls.method("main", static=True)
    m.invokestatic("traffic/Server", "setup", 0, False)
    for t in range(spec.threads):
        m.new("traffic/Worker").dup()
        m.invokespecial("traffic/Worker", "<init>", 0)
        m.astore(t)
    for t in range(spec.threads):
        m.aload(t).invokevirtual("java/lang/Thread", "start", 0, False)
    for t in range(spec.threads):
        m.aload(t).invokevirtual("java/lang/Thread", "join", 0, False)
    m.getstatic("java/lang/System", "out")
    m.getstatic("traffic/Server", "stats")
    m.invokevirtual("traffic/Stats", "get", 0, True)
    m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)
    m.return_()

    return pb.build()
