"""Run one traffic scenario and print its measurement record.

    python -m repro.traffic --scenario api --mode tiered
    python -m repro.traffic --spec my_scenario.json --mode jit --out r.json

Presets come from :data:`repro.traffic.spec.PRESETS`; ``--spec`` loads a
ScenarioSpec JSON instead.  Override knobs (``--requests``,
``--threads``, ``--arrival``, ...) apply on top of either source.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import DEFAULT_WINDOWS, run_scenario
from .spec import ARRIVALS, PRESETS, ScenarioSpec, get_preset


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traffic",
        description="drive a server-traffic scenario through the VM")
    src = parser.add_mutually_exclusive_group()
    src.add_argument("--scenario", default="api",
                     help=f"preset name (one of {sorted(PRESETS)})")
    src.add_argument("--spec", help="path to a ScenarioSpec JSON file")
    parser.add_argument("--mode", default="tiered",
                        help="execution config (interp/jit/tiered/...)")
    parser.add_argument("--code-archive", default="",
                        help="shared code archive dir ('' disables)")
    parser.add_argument("--requests", type=int)
    parser.add_argument("--threads", type=int)
    parser.add_argument("--working-set", type=int)
    parser.add_argument("--arrival", choices=ARRIVALS)
    parser.add_argument("--rate", type=float)
    parser.add_argument("--seed", type=int)
    parser.add_argument("--windows", type=int, default=DEFAULT_WINDOWS)
    parser.add_argument("--steady-window", type=int, default=5)
    parser.add_argument("--steady-cv", type=float, default=0.10)
    parser.add_argument("--strict-steady", action="store_true",
                        help="exit nonzero unless steady state is reached")
    parser.add_argument("--out", help="write the record to this JSON file")
    args = parser.parse_args(argv)

    if args.spec:
        spec = ScenarioSpec.from_json(Path(args.spec).read_text())
    else:
        spec = get_preset(args.scenario)
    overrides = {k: getattr(args, k) for k in
                 ("requests", "threads", "working_set", "arrival",
                  "rate", "seed")
                 if getattr(args, k) is not None}
    if overrides:
        spec = spec.replace(**overrides)

    result = run_scenario(
        spec, args.mode, code_archive=args.code_archive,
        windows=args.windows, steady_window=args.steady_window,
        steady_cv=args.steady_cv)
    record = result.to_dict()
    text = json.dumps(record, indent=2)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)

    if args.strict_steady and not record["steady"]["steady"]:
        print(f"STRICT-STEADY FAILURE: scenario {spec.name!r} under "
              f"{record['mode']} never reached steady state "
              f"(cv={record['steady']['cv']}, "
              f"threshold={record['steady']['cv_threshold']})",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
