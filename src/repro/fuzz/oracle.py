"""Differential oracle: run one program under every execution
configuration and compare.

Two verdict families:

* **semantic** — the configurations must be indistinguishable on every
  mode-independent observable: stdout, bytecodes executed, classes
  loaded, heap effects, and (normalized) synchronization effects.  Lock
  elision legitimately changes *which* acquire path runs, so the
  normalized acquire/release counts fold the elided operations back in
  (``acquire_ops + elided_acquires``) and the per-case breakdown is not
  compared against elision configs; elision *violations* are always a
  divergence.
* **performance** — anomalies, not bugs by definition: JIT'd execution
  retiring more cycles than pure interpretation, an analysis-driven
  optimization (jit_opt) costing more execute cycles or native
  instructions than the plain JIT.  These mirror the "JIT slower than
  interpreter" class of JIT performance bugs.

A configuration that *raises* is folded into the comparison as an error
outcome: all configs raising the same error type agree; one config
raising while another completes is a semantic divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..isa.method import Program
from ..vm import (
    CompileOnFirstUse,
    InterpretOnly,
    JavaVM,
    TieredStrategy,
    VMResult,
)
from .gen import FUEL, ProgramSpec

#: The execution-configuration matrix, in comparison order.  ``tiered``
#: runs the online ladder with deliberately hair-trigger thresholds and
#: the tier-2 benefit screen off, so promotion, OSR, speculation and
#: deoptimization all fire inside even small generated programs.
CONFIGS = ("interp", "jit", "jit_opt", "lock_elision", "tiered")

#: Configs whose sync comparison must use elision-normalized keys
#: (tier 2 elides speculatively, so ``tiered`` belongs here too).
_ELISION = frozenset({"lock_elision", "tiered"})

#: Default headroom for the performance oracles (fraction).
DEFAULT_TOLERANCE = 0.02

#: Translate share above which a program is flagged as an interesting
#: compile-cost outlier (the paper's hello/db phenomenon, taken to its
#: extreme).  Calibrated so only ~1-2% of generated programs qualify.
TRANSLATE_SHARE = 0.77


def _make_vm(program: Program, config: str) -> JavaVM:
    if config == "interp":
        return JavaVM(program, strategy=InterpretOnly())
    if config == "jit":
        return JavaVM(program, strategy=CompileOnFirstUse())
    if config == "jit_opt":
        return JavaVM(program, strategy=CompileOnFirstUse(), jit_opt=True)
    if config == "lock_elision":
        return JavaVM(program, strategy=CompileOnFirstUse(),
                      lock_elision=True)
    if config == "tiered":
        return JavaVM(program, strategy=TieredStrategy(
            t1_invocations=2, t2_invocations=3, osr_backedges=4,
            t2_backedges=8, compile_ratio=0.01, t2_screen=False))
    raise ValueError(f"unknown config {config!r}")


@dataclass
class Outcome:
    """What one configuration did with the program."""

    config: str
    result: VMResult | None = None
    error: str | None = None          # "ErrorType: message" when it raised

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class Divergence:
    """One observable on which two configurations disagree."""

    left: str
    right: str
    key: str
    left_value: object
    right_value: object

    @property
    def signature(self) -> tuple:
        return (self.left, self.right, self.key)

    def __str__(self) -> str:
        return (f"{self.left} vs {self.right}: {self.key} "
                f"{self.left_value!r} != {self.right_value!r}")


@dataclass
class Anomaly:
    """A performance-oracle finding (suspicious, not necessarily wrong)."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class Verdict:
    """The oracle's full judgement of one program."""

    divergences: list[Divergence] = field(default_factory=list)
    anomalies: list[Anomaly] = field(default_factory=list)
    outcomes: dict[str, Outcome] = field(default_factory=dict)
    cycles: dict[str, int] = field(default_factory=dict)

    @property
    def agreed(self) -> bool:
        return not self.divergences

    @property
    def signature(self) -> frozenset:
        """Order-independent identity of the semantic failure."""
        return frozenset(d.signature for d in self.divergences)


def observables(result: VMResult, elision: bool) -> dict:
    """The mode-independent facts of one run.

    ``elision`` selects the normalized sync view so that a lock-elision
    run can be compared against non-eliding configurations.
    """
    sync = result.sync
    obs = {
        "stdout": tuple(result.stdout),
        "bytecodes": result.bytecodes_executed,
        "classes_loaded": result.classes_loaded,
        "heap_allocs": result.heap.get("allocations"),
        "heap_bytes": result.heap.get("allocated_bytes"),
        "sync_acquires": sync["acquire_ops"] + sync.get("elided_acquires", 0),
        "sync_releases": sync["release_ops"] + sync.get("elided_releases", 0),
        "elision_violations": sync.get("elision_violations", 0) and "VIOLATED",
    }
    if not elision:
        # Only comparable between configs that elide nothing.
        obs["sync_cases"] = tuple(sorted(sync["case_counts"].items()))
        obs["sync_objects"] = sync["distinct_objects"]
    return obs


def run_config(program: Program, config: str,
               fuel: int = FUEL) -> Outcome:
    """Execute ``program`` under one configuration, capturing errors."""
    outcome = Outcome(config)
    try:
        vm = _make_vm(program, config)
        outcome.result = vm.run(max_bytecodes=fuel)
    except Exception as exc:  # noqa: BLE001 - errors are oracle data
        outcome.error = f"{type(exc).__name__}: {exc}"
    return outcome


def run_oracle(
    spec: ProgramSpec,
    fuel: int = FUEL,
    tolerance: float = DEFAULT_TOLERANCE,
    mutate: tuple[str, Callable[[Program], Program]] | None = None,
    configs: tuple[str, ...] = CONFIGS,
) -> Verdict:
    """Run ``spec`` under every configuration and compare.

    Each configuration gets a *fresh* render — runtime state (statics,
    loaded-class marks) lives on the program object, so configs must
    never share one.  ``mutate=(config, fn)`` applies ``fn`` to that one
    config's program before execution: the planted-miscompile hook used
    by the oracle's own sanity check.
    """
    verdict = Verdict()
    for config in configs:
        program = spec.render()
        if mutate and mutate[0] == config:
            program = mutate[1](program)
        verdict.outcomes[config] = run_config(program, config, fuel=fuel)

    # -- semantic comparison (all pairs) ------------------------------------
    for i, left in enumerate(configs):
        for right in configs[i + 1:]:
            verdict.divergences.extend(
                _compare(verdict.outcomes[left], verdict.outcomes[right])
            )

    for config, outcome in verdict.outcomes.items():
        if outcome.ok:
            verdict.cycles[config] = outcome.result.cycles

    # -- performance oracles (only meaningful when everything ran) ----------
    if verdict.agreed and all(o.ok for o in verdict.outcomes.values()):
        verdict.anomalies.extend(
            _perf_anomalies(verdict.outcomes, tolerance)
        )
    return verdict


def _compare(left: Outcome, right: Outcome) -> list[Divergence]:
    if left.error or right.error:
        lt = (left.error or "").split(":")[0]
        rt = (right.error or "").split(":")[0]
        if lt != rt:
            return [Divergence(left.config, right.config, "outcome",
                               left.error or "completed",
                               right.error or "completed")]
        return []
    eliding = bool(_ELISION & {left.config, right.config})
    lo = observables(left.result, elision=eliding)
    ro = observables(right.result, elision=eliding)
    return [
        Divergence(left.config, right.config, key, lo[key], ro[key])
        for key in lo if lo[key] != ro[key]
    ]


def _perf_anomalies(outcomes: dict[str, Outcome],
                    tolerance: float) -> list[Anomaly]:
    interp = outcomes["interp"].result
    jit = outcomes["jit"].result
    jit_opt = outcomes["jit_opt"].result
    anomalies = []
    # A JIT whose *execution* (translate excluded: one-shot cost) retires
    # more cycles than interpretation has a codegen quality bug.
    if jit.execute_cycles > interp.cycles * (1 + tolerance):
        anomalies.append(Anomaly(
            "jit_slower_than_interp",
            f"jit execute_cycles={jit.execute_cycles} > "
            f"interp cycles={interp.cycles}"))
    if jit_opt.execute_cycles > jit.execute_cycles * (1 + tolerance):
        anomalies.append(Anomaly(
            "opt_cycle_regression",
            f"jit_opt execute_cycles={jit_opt.execute_cycles} > "
            f"jit execute_cycles={jit.execute_cycles}"))
    if jit_opt.instructions > jit.instructions:
        anomalies.append(Anomaly(
            "opt_instruction_regression",
            f"jit_opt instructions={jit_opt.instructions} > "
            f"jit instructions={jit.instructions}"))
    # Informational, not a bug: an extreme compile-cost outlier — the
    # JIT spends nearly everything translating code it barely reuses.
    # These are the survivors worth promoting into the workload set
    # (they stress exactly what tiered execution is meant to fix).
    share = jit.translate_cycles / jit.cycles if jit.cycles else 0.0
    if share > TRANSLATE_SHARE:
        anomalies.append(Anomaly(
            "translate_dominated",
            f"translate share {share:.3f} of jit cycles "
            f"({jit.translate_cycles}/{jit.cycles})"))
    return anomalies
