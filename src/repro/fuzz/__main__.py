"""``python -m repro.fuzz`` — differential fuzzing campaigns.

Examples::

    python -m repro.fuzz --seed 0 --count 200          # smoke campaign
    python -m repro.fuzz --seed 7 --count 2000 --time-budget 600
    python -m repro.fuzz --seed 0 --count 500 --promote
    python -m repro.fuzz --selftest                    # oracle has teeth?
    python -m repro.fuzz --crosscheck --count 200      # static vs dynamic

Exit status: 1 on any semantic divergence (or a failed selftest, or a
cross-check soundness/equivalence failure), 0 otherwise — performance
anomalies alone do not fail the run.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from .gen import FUEL, gen_program
from .harness import run_campaign
from .mutate import flip_one_opcode
from .oracle import DEFAULT_TOLERANCE, run_oracle


def selftest(say) -> int:
    """Prove the oracle can detect a planted miscompile.

    Flips one opcode in the program handed to the ``jit`` config only;
    the oracle must flag a divergence.  A fuzzer whose oracle cannot
    see a planted bug is a random-program *generator*, not a tester.
    """
    rng = random.Random(0)
    caught = tried = 0
    for seed in range(12):
        spec = gen_program(seed)
        try:
            spec.render()
        except Exception:  # noqa: BLE001 - skip verify-rejected programs
            continue
        tried += 1
        # A single flip can land in dead code (an untaken branch, an
        # ``x | 1`` idiom); a *miscompiling JIT* would mangle many
        # sites, so plant up to 6 independent single flips and count
        # the program as covered when any one is flagged.
        for _ in range(6):
            verdict = run_oracle(
                spec, mutate=("jit", lambda p: flip_one_opcode(p, rng)))
            if not verdict.agreed:
                caught += 1
                break
    say(f"selftest: {caught}/{tried} planted miscompiles detected")
    return 0 if tried and caught >= max(1, tried * 2 // 3) else 1


def crosscheck_campaign(args, say) -> int:
    """Static race detector vs the running VM (see ``crosscheck``)."""
    from .crosscheck import run_crosscheck

    def progress(index, result):
        if not args.quiet and (index + 1) % 50 == 0:
            say(f"  {index + 1}/{args.count}: "
                f"{len(result.violations)} violation(s), "
                f"{len(result.equivalence_failures)} equivalence "
                f"failure(s)")

    result = run_crosscheck(seed=args.seed, count=args.count,
                            fuel=args.fuel, out_dir=args.out,
                            minimize=args.minimize, progress=progress)
    summary = result.summary()
    precision = summary["racy_precision"]
    say(f"crosscheck: {summary['checked']} programs, "
        f"{summary['static_claims']} safe claims, "
        f"{summary['foreign_locked_sites']} foreign-locked sites, "
        f"{summary['soundness_violations']} soundness violation(s), "
        f"{summary['equivalence_failures']} equivalence failure(s), "
        f"racy precision "
        + (f"{precision:.2f}" if precision is not None else "n/a")
        + f" ({summary['racy_confirmed']}/{summary['racy_claims']})")
    for v in result.violations:
        print(f"  SOUNDNESS: seed {v['seed']} sites {v['sites']}",
              file=sys.stderr)
    for e in result.equivalence_failures:
        print(f"  EQUIVALENCE: seed {e['seed']}: {e['detail']}",
              file=sys.stderr)
    for path in result.reproducers:
        say(f"  reproducer: {path}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        from ..obs.manifest import (
            build_manifest,
            manifest_path_for,
            write_manifest,
        )
        manifest = build_manifest(
            tool="repro-fuzz-crosscheck", argv=sys.argv[1:],
            extra={"crosscheck": {k: v for k, v in summary.items()
                                  if k not in ("violations",
                                               "reproducers")}})
        write_manifest(manifest_path_for(args.json), manifest)
        say(f"wrote {args.json}")

    return 0 if result.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzing of interp/jit/jit_opt/"
                    "lock_elision.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--count", type=int, default=200,
                        help="programs to generate (default 200)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock cap; stop cleanly when exceeded")
    parser.add_argument("--minimize", action="store_true",
                        help="delta-debug diverging programs before "
                             "writing reproducers")
    parser.add_argument("--promote", action="store_true",
                        help="promote performance-anomaly survivors into "
                             "the workload registry")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="directory for reproducer .asm files")
    parser.add_argument("--fuel", type=int, default=FUEL,
                        help=f"per-config bytecode budget "
                             f"(default {FUEL})")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="perf-anomaly headroom fraction "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the campaign summary as JSON "
                             "(manifest written alongside)")
    parser.add_argument("--selftest", action="store_true",
                        help="planted-miscompile oracle check, then exit")
    parser.add_argument("--crosscheck", action="store_true",
                        help="static/dynamic concurrency cross-check "
                             "campaign over multithreaded programs")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    say = (lambda msg: None) if args.quiet else (
        lambda msg: print(msg, flush=True))

    if args.selftest:
        return selftest(say)

    if args.crosscheck:
        return crosscheck_campaign(args, say)

    def progress(index, result):
        if not args.quiet and (index + 1) % 50 == 0:
            say(f"  {index + 1}/{args.count}: "
                f"{result.diverged} divergence(s), "
                f"{result.anomalous} anomaly(ies)")

    result = run_campaign(
        seed=args.seed, count=args.count, time_budget=args.time_budget,
        minimize=args.minimize, promote=args.promote, out_dir=args.out,
        fuel=args.fuel, tolerance=args.tolerance, progress=progress,
    )

    summary = result.summary()
    say(f"generated {summary['generated']} "
        f"(verify-rejected {summary['verify_rejected']}), "
        f"executed {summary['executed']}, agreed {summary['agreed']}, "
        f"diverged {summary['diverged']}, "
        f"anomalous {summary['anomalous']} "
        f"in {summary['elapsed_seconds']}s"
        + (" [stopped early]" if summary["stopped_early"] else ""))
    for finding in result.findings:
        say(f"  [{finding.kind}] index {finding.index} "
            f"seed {finding.seed}: " + "; ".join(finding.details[:3])
            + (f" -> {finding.reproducer}" if finding.reproducer else ""))
    for name in result.promoted:
        say(f"  promoted workload: {name}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        from ..obs.manifest import (
            build_manifest,
            manifest_path_for,
            write_manifest,
        )
        manifest = build_manifest(tool="repro-fuzz", argv=sys.argv[1:],
                                  extra={"fuzz": {
                                      k: v for k, v in summary.items()
                                      if k != "findings"
                                  }})
        write_manifest(manifest_path_for(args.json), manifest)
        say(f"wrote {args.json}")

    return 1 if result.diverged else 0


if __name__ == "__main__":
    sys.exit(main())
