"""Miscompile planting: flip one opcode in an already-built program.

The oracle is only trustworthy if it *would* notice a wrong translation.
This module provides the mutation used by the sanity check: pick one
instruction in a user-defined method and swap its opcode for a
stack-compatible sibling (same pops/pushes, different semantics), or
nudge a constant.  The mutated program still passes the structural
verifier — the bug is purely semantic, exactly the class a broken JIT
template would introduce — so if the differential oracle flags it, the
oracle has teeth.
"""

from __future__ import annotations

import random

from ..isa.method import Program
from ..isa.opcodes import Op
from ..vm import values

#: Opcode swaps that preserve stack shape but change meaning.
_FLIPS = {
    Op.IADD: Op.ISUB,
    Op.ISUB: Op.IADD,
    Op.IMUL: Op.IADD,
    Op.IAND: Op.IOR,
    Op.IOR: Op.IAND,
    Op.IXOR: Op.IAND,
    Op.IF_ICMPLT: Op.IF_ICMPGE,
    Op.IF_ICMPGE: Op.IF_ICMPLT,
    Op.IF_ICMPEQ: Op.IF_ICMPNE,
    Op.IF_ICMPNE: Op.IF_ICMPEQ,
    Op.IFEQ: Op.IFNE,
    Op.IFNE: Op.IFEQ,
    Op.IFLE: Op.IFGT,
    Op.IFGT: Op.IFLE,
}

#: Ops whose ``a`` operand can be nudged without breaking verification.
_NUDGE = {Op.ICONST, Op.IINC}

#: Library/internal classes a mutation must never touch.
_LIBRARY_PREFIXES = ("java/", "repro/", "spec/")


def mutation_sites(program: Program) -> list[tuple]:
    """Deterministic list of (class, method, index, kind) candidates."""
    sites = []
    for cls_name in sorted(program.classes):
        if cls_name.startswith(_LIBRARY_PREFIXES):
            continue
        jclass = program.classes[cls_name]
        for mname, method in method_items(jclass):
            if method.is_native:
                continue
            for i, instr in enumerate(method.code):
                if instr.op in _FLIPS:
                    sites.append((cls_name, mname, i, "flip"))
                elif instr.op in _NUDGE:
                    sites.append((cls_name, mname, i, "nudge"))
    return sites


def method_items(jclass):
    return sorted(jclass.methods.items())


def flip_one_opcode(program: Program, rng: random.Random) -> Program:
    """Mutate ``program`` in place: one semantic-only opcode flip.

    Raises ``ValueError`` when the program offers no mutation site.
    """
    sites = mutation_sites(program)
    if not sites:
        raise ValueError("program has no mutable instruction")
    cls_name, mname, i, kind = rng.choice(sites)
    instr = program.classes[cls_name].methods[mname].code[i]
    if kind == "flip":
        instr.op = _FLIPS[instr.op]
    elif instr.op is Op.IINC:
        instr.b = values.i32(instr.b + 1)
    else:
        instr.a = values.i32(instr.a + 1)
    return program
