"""Differential fuzzing of the execution engines.

A seeded generator emits verifier-clean bytecode programs; a
differential oracle runs each under interp / jit / jit_opt /
lock_elision and flags semantic divergences and performance anomalies;
a delta-debugging minimizer shrinks failures into checked-in
reproducers.  ``python -m repro.fuzz --help`` for the CLI.
"""

from .gen import FUEL, ProgramSpec, gen_program
from .harness import CampaignResult, Finding, run_campaign
from .minimize import minimize_spec
from .mutate import flip_one_opcode, mutation_sites
from .oracle import (
    CONFIGS,
    DEFAULT_TOLERANCE,
    Anomaly,
    Divergence,
    Outcome,
    Verdict,
    run_config,
    run_oracle,
)

__all__ = [
    "Anomaly",
    "CampaignResult",
    "CONFIGS",
    "DEFAULT_TOLERANCE",
    "Divergence",
    "FUEL",
    "Finding",
    "Outcome",
    "ProgramSpec",
    "Verdict",
    "flip_one_opcode",
    "gen_program",
    "minimize_spec",
    "mutation_sites",
    "run_campaign",
    "run_config",
    "run_oracle",
]
