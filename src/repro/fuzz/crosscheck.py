"""Static/dynamic cross-check: the race detector against the running VM.

For each generated multithreaded program (``gen_mt_program``), three
comparisons:

1. **Soundness** — every allocation site the static side claims is
   elision-safe (escape-proven thread-local, or concurrency-proven
   single-locker) must never be locked by a foreign thread at runtime.
   The interpreter runs with ``track_confinement=True`` so each object
   knows its allocation site and thread; a "safe" site in
   ``foreign_locked_sites`` is a soundness bug in the analysis, not a
   warning.  Violating programs are delta-minimized and written out as
   reproducers.
2. **Equivalence** — the tiered VM consuming the static summaries
   (``static_concurrency=True``) must print exactly what pure
   interpretation prints and must finish with zero elision violations.
3. **Precision** (a statistic, not a gate) — how many statically racy
   field/static locations were actually observed shared by two or more
   threads at runtime.  Lockset analysis over-approximates; this
   quantifies by how much.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..vm import InterpretOnly, JavaVM, TieredStrategy
from .gen import FUEL, ProgramSpec, gen_mt_program
from .harness import SEED_STRIDE

__all__ = ["SeedCheck", "CrossCheckResult", "check_spec", "run_crosscheck"]


def _tiered_vm(program, static: bool) -> JavaVM:
    # Same hair-trigger ladder as the differential oracle's ``tiered``
    # config, so speculation and deopt fire inside small programs.
    return JavaVM(program, strategy=TieredStrategy(
        t1_invocations=2, t2_invocations=3, osr_backedges=4,
        t2_backedges=8, compile_ratio=0.01, t2_screen=False),
        static_concurrency=static)


def static_claims(program) -> tuple[set, set]:
    """(claimed-safe sites, claimed-racy locations) for ``program``.

    Sites are ``(qualified method name, instruction index)`` — the same
    key the confinement tracker tags onto runtime objects.
    """
    from ..analysis.concurrency import analyze_program

    ca = analyze_program(program)
    claims = set(ca.safe_claims())
    for m in program.all_methods():
        if m.is_native or not m.code:
            continue
        qn = m.qualified_name
        claims.update((qn, idx) for idx in ca.escape.elidable_allocs(m))
    return claims, set(ca.racy_locations())


@dataclass
class SeedCheck:
    """Everything the cross-check learned about one program."""

    seed: int
    claims: int = 0
    foreign_sites: int = 0
    violations: list = field(default_factory=list)   # (qn, site) pairs
    equivalence_ok: bool = True
    equivalence_detail: str = ""
    racy_claims: int = 0
    racy_confirmed: int = 0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return (self.error is None and not self.violations
                and self.equivalence_ok)


def check_spec(spec: ProgramSpec, fuel: int = FUEL) -> SeedCheck:
    """Run the three comparisons for one spec."""
    from ..vm.library import ensure_library

    check = SeedCheck(seed=spec.seed)
    try:
        analyzed = spec.render()
        ensure_library(analyzed)
        claims, racy_locs = static_claims(analyzed)
        check.claims = len(claims)
        check.racy_claims = len(racy_locs)

        # dynamic ground truth: interpret with the confinement tracker
        vm = JavaVM(spec.render(), strategy=InterpretOnly(),
                    track_confinement=True)
        result = vm.run(max_bytecodes=fuel)
        tracker = vm.confinement
        check.foreign_sites = len(tracker.foreign_locked_sites)
        check.violations = sorted(claims & tracker.foreign_locked_sites)

        # equivalence: tiered-with-static-summaries vs interpretation
        tvm = _tiered_vm(spec.render(), static=True)
        tresult = tvm.run(max_bytecodes=fuel)
        violations = tresult.sync.get("elision_violations", 0)
        if tuple(tresult.stdout) != tuple(result.stdout):
            check.equivalence_ok = False
            check.equivalence_detail = (
                f"stdout {tuple(tresult.stdout)!r} != "
                f"{tuple(result.stdout)!r}")
        elif violations:
            check.equivalence_ok = False
            check.equivalence_detail = (
                f"{violations} elision violation(s) under static plans")

        check.racy_confirmed = len(racy_locs & tracker.shared_locations())
    except Exception as exc:  # noqa: BLE001 - campaign data, not a crash
        check.error = f"{type(exc).__name__}: {exc}"
    return check


def _violates(spec: ProgramSpec, fuel: int) -> bool:
    """Minimizer predicate: does the spec still show a soundness bug?"""
    check = check_spec(spec, fuel=fuel)
    return bool(check.violations)


@dataclass
class CrossCheckResult:
    """Aggregate of one cross-check campaign."""

    checked: int = 0
    render_rejected: int = 0
    errored: int = 0
    total_claims: int = 0
    total_foreign: int = 0
    violations: list = field(default_factory=list)
    equivalence_failures: list = field(default_factory=list)
    racy_claims: int = 0
    racy_confirmed: int = 0
    reproducers: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.equivalence_failures

    def summary(self) -> dict:
        precision = (self.racy_confirmed / self.racy_claims
                     if self.racy_claims else None)
        return {
            "checked": self.checked,
            "render_rejected": self.render_rejected,
            "errored": self.errored,
            "static_claims": self.total_claims,
            "foreign_locked_sites": self.total_foreign,
            "soundness_violations": len(self.violations),
            "equivalence_failures": len(self.equivalence_failures),
            "racy_claims": self.racy_claims,
            "racy_confirmed": self.racy_confirmed,
            "racy_precision": precision,
            "violations": self.violations[:20],
            "reproducers": self.reproducers,
        }


def run_crosscheck(seed: int = 0, count: int = 200, fuel: int = FUEL,
                   out_dir: str | None = None, minimize: bool = False,
                   progress=None) -> CrossCheckResult:
    """Cross-check ``count`` generated multithreaded programs."""
    result = CrossCheckResult()
    for index in range(count):
        program_seed = seed * SEED_STRIDE + index
        try:
            spec = gen_mt_program(program_seed)
            spec.render()
        except Exception:  # noqa: BLE001 - verify-rejected: not our bug
            result.render_rejected += 1
            continue
        check = check_spec(spec, fuel=fuel)
        result.checked += 1
        if check.error is not None:
            result.errored += 1
            continue
        result.total_claims += check.claims
        result.total_foreign += check.foreign_sites
        result.racy_claims += check.racy_claims
        result.racy_confirmed += check.racy_confirmed
        if check.violations:
            if minimize:
                from .minimize import Minimizer
                spec = Minimizer(
                    spec, None, fuel, 0.0,
                    predicate=lambda c: _violates(c, fuel)).minimize()
            result.violations.append({
                "seed": program_seed,
                "sites": [list(v) for v in check.violations],
            })
            if out_dir:
                result.reproducers.append(
                    _write_reproducer(out_dir, spec, check))
        if not check.equivalence_ok:
            result.equivalence_failures.append({
                "seed": program_seed,
                "detail": check.equivalence_detail,
            })
        if progress is not None:
            progress(index, result)
    return result


def _write_reproducer(out_dir: str, spec: ProgramSpec,
                      check: SeedCheck) -> str:
    import os

    from ..isa.asm import disassemble_program
    from .harness import spec_digest

    os.makedirs(out_dir, exist_ok=True)
    header = [
        "crosscheck reproducer: static 'safe' claim foreign-locked at "
        "runtime",
        f"seed {spec.seed}; sites "
        + "; ".join(f"{qn}@{site}" for qn, site in check.violations),
    ]
    path = os.path.join(out_dir, f"soundness_{spec_digest(spec)}.asm")
    with open(path, "w") as fh:
        fh.write(disassemble_program(spec.render(), header=header))
    return path
