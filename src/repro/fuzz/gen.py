"""Seeded random bytecode-program generator.

Programs are generated as a small statement/expression IR (``ProgramSpec``)
and *rendered* through :class:`repro.isa.builder.ProgramBuilder`, so every
render produces a fresh, runtime-state-free :class:`Program` — exactly what
the differential oracle needs (one fresh program per execution config).

The grammar is validity-directed: statements are stack-neutral, every
local slot has one fixed type for the whole method, reference locals are
definitely initialized before use, divisors are forced non-zero
(``x | 1``), array indices are normalized into bounds
(``((i % L) + L) % L``), monitor enter/exit pairs are emitted around
nested blocks, and loops count a dedicated slot down to zero — so every
emitted program passes the structural *and* typed verifier and terminates
within a small, statically bounded fuel.  The verifier still runs on
every render (``build(verify=True, typed=True)``): it is the validity
filter of record, not an assumption.

The shapes intentionally mirror where runtime bugs live (see the lint
corpus): monitor balance across branches, dead stores before native
calls, escaping receivers under lock elision, deep-stack spills, switch
dispatch, inlinable tiny calls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..isa.builder import MethodBuilder, ProgramBuilder
from ..isa.method import Program
from ..isa.opcodes import ArrayType

MAIN_CLASS = "Main"
DATA_CLASS = "FuzzData"

#: Statically bounded worst-case bytecode budget for any generated
#: program (loops are <= _MAX_TRIP iterations, nesting <= _MAX_DEPTH).
FUEL = 200_000

_MAX_TRIP = 6
_MAX_DEPTH = 2

_INT_BINOPS = ("iadd", "isub", "imul", "iand", "ior", "ixor",
               "ishl", "ishr", "iushr", "idiv", "irem")
_INT_UNOPS = ("ineg", "i2b", "i2c", "i2s")
_FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")
_CMP2 = ("if_icmpeq", "if_icmpne", "if_icmplt", "if_icmpge",
         "if_icmpgt", "if_icmple")
_CMP1 = ("ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle")

_CORNER_INTS = (-(2 ** 31), 2 ** 31 - 1, -1, 0, 1, 31, 32, 255)


# ---------------------------------------------------------------------------
# expression IR (tuples: cheap, deep-copyable, deterministic)
#
#   int expr:   ("const", v) | ("local", slot) | ("bin", op, l, r)
#             | ("un", op, e) | ("arr", idx_expr) | ("getfield", name)
#             | ("getstatic", name) | ("call", helper, (args...))
#             | ("fcmp", op, fl, fr) | ("vcall", arg_expr)
#   float expr: ("fconst", v) | ("flocal", slot) | ("fbin", op, l, r)
#             | ("fneg", e) | ("i2f", int_expr) | ("fgetfield", name)
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class; subclasses are stack-neutral statements."""

    def blocks(self) -> list[list["Stmt"]]:
        """Nested statement blocks (for the minimizer)."""
        return []


@dataclass
class SetInt(Stmt):
    slot: int
    expr: tuple


@dataclass
class SetFloat(Stmt):
    slot: int
    expr: tuple


@dataclass
class SetArr(Stmt):
    index: tuple
    value: tuple


@dataclass
class PutStatic(Stmt):
    name: str
    expr: tuple


@dataclass
class PutField(Stmt):
    ref_slot: int
    name: str
    expr: tuple


@dataclass
class Print(Stmt):
    expr: tuple


@dataclass
class EscapeRef(Stmt):
    """Store a Data ref into a static field: the receiver escapes."""
    ref_slot: int


@dataclass
class NewData(Stmt):
    """Reassign a ref local to a fresh FuzzData instance."""
    ref_slot: int


@dataclass
class VirtualCall(Stmt):
    """dst = data.bump(arg) — a tiny, inlinable virtual call."""
    ref_slot: int
    dst: int
    arg: tuple


@dataclass
class If(Stmt):
    kind: str          # "cmp2" | "cmp1" | "acmp"
    op: str
    left: tuple | None
    right: tuple | None
    then: list[Stmt] = field(default_factory=list)
    orelse: list[Stmt] = field(default_factory=list)

    def blocks(self):
        return [self.then, self.orelse]


@dataclass
class Loop(Stmt):
    counter: int       # dedicated int slot, never touched by the body
    trip: int
    body: list[Stmt] = field(default_factory=list)

    def blocks(self):
        return [self.body]


@dataclass
class Sync(Stmt):
    ref_slot: int
    body: list[Stmt] = field(default_factory=list)

    def blocks(self):
        return [self.body]


@dataclass
class Switch(Stmt):
    expr: tuple
    cases: list[list[Stmt]] = field(default_factory=list)
    default: list[Stmt] = field(default_factory=list)

    def blocks(self):
        return list(self.cases) + [self.default]


@dataclass
class HelperSpec:
    name: str
    argc: int
    expr: tuple        # int expr over ("local", arg_slot) leaves


@dataclass
class WorkerSpec:
    """One ``java/lang/Thread`` subclass spawned ``copies`` times.

    Worker bodies touch only worker-private state (own ints, own array,
    own FuzzData) plus the shared object *as a lock*, and fold their
    result into ``Main.acc`` with a lock-guarded XOR — commutative, so
    every schedule and every execution config prints the same epilogue.
    """

    cls_name: str
    copies: int
    n_int: int
    array_len: int
    int_inits: tuple
    body: list[Stmt]


class _WorkerLayout:
    """Slot layout for a worker's ``run`` method (slot 0 = ``this``)."""

    n_counters = _MAX_DEPTH
    n_float = 0
    float_base = 0     # workers have no float locals

    def __init__(self, n_int: int, array_len: int) -> None:
        self.n_int = n_int
        self.array_len = array_len

    @property
    def ref_slot(self) -> int:          # the shared FuzzData (as a lock)
        return 1

    @property
    def ref2_slot(self) -> int:         # worker-private FuzzData
        return 2

    @property
    def arr_slot(self) -> int:
        return 3

    @property
    def int_base(self) -> int:
        return 4

    @property
    def counter_base(self) -> int:
        return self.int_base + self.n_int

    @property
    def lock_base(self) -> int:
        return self.counter_base + self.n_counters


@dataclass
class ProgramSpec:
    """Everything needed to deterministically re-render one program."""

    seed: int
    n_int: int
    n_float: int
    array_len: int
    int_inits: tuple
    float_inits: tuple
    helpers: list[HelperSpec]
    body: list[Stmt]
    n_counters: int = _MAX_DEPTH
    workers: list[WorkerSpec] = field(default_factory=list)

    # -- slot layout (main) -------------------------------------------------
    int_base = 0

    @property
    def float_base(self) -> int:
        return self.n_int

    @property
    def ref_slot(self) -> int:          # primary FuzzData local
        return self.n_int + self.n_float

    @property
    def ref2_slot(self) -> int:         # reassignable FuzzData local
        return self.ref_slot + 1

    @property
    def arr_slot(self) -> int:
        return self.ref_slot + 2

    @property
    def counter_base(self) -> int:
        return self.ref_slot + 3

    @property
    def lock_base(self) -> int:
        # One reserved slot per sync-nesting level: the locked ref is
        # snapshotted here so monitorexit always unlocks the object
        # monitorenter locked, even if the body reassigns the local.
        return self.counter_base + self.n_counters

    @property
    def worker_base(self) -> int:       # one slot per spawned worker
        return self.lock_base + self.n_counters

    def all_blocks(self) -> list[list[Stmt]]:
        """Every statement block in the spec, outermost first."""
        found: list[list[Stmt]] = []

        def walk(block: list[Stmt]) -> None:
            found.append(block)
            for stmt in block:
                for nested in stmt.blocks():
                    walk(nested)

        walk(self.body)
        for w in self.workers:
            walk(w.body)
        return found

    def size(self) -> int:
        """Total statement count (the minimizer's progress metric)."""
        return sum(len(b) for b in self.all_blocks())

    # -- rendering ----------------------------------------------------------
    def render(self, verify: bool = True) -> Program:
        """A fresh, verified :class:`Program` for this spec."""
        pb = ProgramBuilder(f"fuzz-{self.seed}", main_class=MAIN_CLASS)

        main_cb = pb.cls(MAIN_CLASS)
        main_cb.static_field("acc", "int")
        main_cb.static_field("shared", "ref")

        data_cb = pb.cls(DATA_CLASS)
        data_cb.field("f0", "int")
        data_cb.field("f1", "int")
        data_cb.field("g0", "float")
        init = data_cb.method("<init>")
        init.aload(0).iconst(7).putfield(DATA_CLASS, "f0").return_()
        bump = data_cb.method("bump", argc=1, returns=True)
        bump.aload(0).aload(0).getfield(DATA_CLASS, "f0")
        bump.iload(1).iadd().putfield(DATA_CLASS, "f0")
        bump.aload(0).getfield(DATA_CLASS, "f0").ireturn()

        for helper in self.helpers:
            hb = main_cb.method(helper.name, argc=helper.argc,
                                returns=True, static=True)
            _Emitter(self, hb).expr(helper.expr)
            hb.ireturn()

        for w in self.workers:
            self._render_worker(pb, w)

        mb = main_cb.method("main", static=True)
        em = _Emitter(self, mb)
        em.prologue()
        for stmt in self.body:
            em.stmt(stmt)
        if self.workers:
            self._spawn_and_join(mb)
        em.epilogue()
        mb.return_()

        return pb.build(verify=verify, typed=verify)

    def _render_worker(self, pb: ProgramBuilder, w: WorkerSpec) -> None:
        layout = _WorkerLayout(w.n_int, w.array_len)
        cb = pb.cls(w.cls_name, super_name="java/lang/Thread")
        cb.method("<init>").return_()
        mb = cb.method("run")
        # prologue: pick up the published shared object, build private state
        mb.getstatic(MAIN_CLASS, "shared").checkcast(DATA_CLASS) \
            .astore(layout.ref_slot)
        mb.new(DATA_CLASS).dup().invokespecial(DATA_CLASS, "<init>", 0) \
            .astore(layout.ref2_slot)
        mb.iconst(w.array_len).newarray(ArrayType.INT).astore(layout.arr_slot)
        for i, v in enumerate(w.int_inits):
            mb.iconst(v).istore(layout.int_base + i)
        for k in range(layout.n_counters):
            mb.iconst(0).istore(layout.counter_base + k)
        em = _Emitter(layout, mb)
        for stmt in w.body:
            em.stmt(stmt)
        # tail: fold private state into Main.acc under the shared lock.
        # XOR commutes, so the final acc is schedule-independent.
        lock = layout.lock_base
        mb.aload(layout.ref_slot).astore(lock)
        mb.aload(lock).monitorenter()
        mb.getstatic(MAIN_CLASS, "acc")
        for i in range(w.n_int):
            mb.iload(layout.int_base + i).ixor()
        mb.aload(layout.arr_slot).iconst(0).iaload().ixor()
        mb.putstatic(MAIN_CLASS, "acc")
        mb.aload(lock).monitorexit()
        mb.return_()

    def _spawn_and_join(self, mb: MethodBuilder) -> None:
        """Publish the shared object, start every worker, join them all."""
        mb.aload(self.ref_slot).putstatic(MAIN_CLASS, "shared")
        slot = self.worker_base
        for w in self.workers:
            for _ in range(w.copies):
                mb.new(w.cls_name).dup() \
                    .invokespecial(w.cls_name, "<init>", 0).astore(slot)
                mb.aload(slot) \
                    .invokevirtual("java/lang/Thread", "start", 0, False)
                slot += 1
        slot = self.worker_base
        for w in self.workers:
            for _ in range(w.copies):
                mb.aload(slot) \
                    .invokevirtual("java/lang/Thread", "join", 0, False)
                slot += 1


class _Emitter:
    """Renders IR expressions/statements through a MethodBuilder."""

    def __init__(self, spec: ProgramSpec, mb: MethodBuilder) -> None:
        self.spec = spec
        self.mb = mb
        self.sync_depth = 0

    # -- method skeleton ----------------------------------------------------
    def prologue(self) -> None:
        """Definitely-initialize every local the body may touch."""
        spec, m = self.spec, self.mb
        for i, v in enumerate(spec.int_inits):
            m.iconst(v).istore(i)
        for i, v in enumerate(spec.float_inits):
            m.fconst(v).fstore(spec.float_base + i)
        for slot in (spec.ref_slot, spec.ref2_slot):
            m.new(DATA_CLASS).dup()
            m.invokespecial(DATA_CLASS, "<init>", 0)
            m.astore(slot)
        m.iconst(spec.array_len).newarray(ArrayType.INT).astore(spec.arr_slot)
        for k in range(spec.n_counters):
            m.iconst(0).istore(spec.counter_base + k)

    def epilogue(self) -> None:
        """Print the final machine state so divergences become visible."""
        spec = self.spec
        for i in range(spec.n_int):
            self._println(("local", i))
        for i in range(spec.n_float):
            self._println(("fcmp", "fcmpl", ("flocal", i), ("fconst", 0.5)))
        self._println(("getstatic", "acc"))
        self._println(("getfield", "f0"))
        self._println(("arr", ("const", 0)))
        self._println(("arr", ("const", spec.array_len - 1)))

    # -- statements ---------------------------------------------------------
    def stmt(self, s: Stmt) -> None:
        spec, m = self.spec, self.mb
        if isinstance(s, SetInt):
            self.expr(s.expr)
            m.istore(spec.int_base + s.slot)
        elif isinstance(s, SetFloat):
            self.fexpr(s.expr)
            m.fstore(spec.float_base + s.slot)
        elif isinstance(s, SetArr):
            m.aload(spec.arr_slot)
            self._index(s.index)
            self.expr(s.value)
            m.iastore()
        elif isinstance(s, PutStatic):
            self.expr(s.expr)
            m.putstatic(MAIN_CLASS, s.name)
        elif isinstance(s, PutField):
            m.aload(s.ref_slot)
            self.expr(s.expr)
            m.putfield(DATA_CLASS, s.name)
        elif isinstance(s, Print):
            self._println(s.expr)
        elif isinstance(s, EscapeRef):
            m.aload(s.ref_slot)
            m.putstatic(MAIN_CLASS, "shared")
        elif isinstance(s, NewData):
            m.new(DATA_CLASS).dup()
            m.invokespecial(DATA_CLASS, "<init>", 0)
            m.astore(s.ref_slot)
        elif isinstance(s, VirtualCall):
            m.aload(s.ref_slot)
            self.expr(s.arg)
            m.invokevirtual(DATA_CLASS, "bump", 1, True)
            m.istore(spec.int_base + s.dst)
        elif isinstance(s, If):
            self._if(s)
        elif isinstance(s, Loop):
            self._loop(s)
        elif isinstance(s, Sync):
            self._sync(s)
        elif isinstance(s, Switch):
            self._switch(s)
        else:  # pragma: no cover - exhaustiveness guard
            raise TypeError(f"unknown statement {s!r}")

    def _if(self, s: If) -> None:
        m = self.mb
        else_lbl, end_lbl = m.new_label("else"), m.new_label("endif")
        if s.kind == "cmp2":
            self.expr(s.left)
            self.expr(s.right)
            # branch *to else* on the inverse: emitted op falls through
            # into then when it does not take — generate the op directly
            getattr(m, s.op)(else_lbl)
        elif s.kind == "cmp1":
            self.expr(s.left)
            getattr(m, s.op)(else_lbl)
        else:  # "acmp": primary ref vs the (possibly null) shared static
            m.aload(self.spec.ref_slot)
            m.getstatic(MAIN_CLASS, "shared")
            getattr(m, s.op)(else_lbl)
        for inner in s.then:
            self.stmt(inner)
        m.goto(end_lbl)
        m.bind(else_lbl)
        for inner in s.orelse:
            self.stmt(inner)
        m.bind(end_lbl)

    def _loop(self, s: Loop) -> None:
        m = self.mb
        counter = self.spec.counter_base + s.counter
        top, end = m.new_label("loop"), m.new_label("endloop")
        m.iconst(s.trip).istore(counter)
        m.bind(top)
        m.iload(counter).ifle(end)
        for inner in s.body:
            self.stmt(inner)
        m.iinc(counter, -1)
        m.goto(top)
        m.bind(end)

    def _sync(self, s: Sync) -> None:
        m = self.mb
        lock = self.spec.lock_base + self.sync_depth
        m.aload(s.ref_slot).astore(lock)
        m.aload(lock).monitorenter()
        self.sync_depth += 1
        for inner in s.body:
            self.stmt(inner)
        self.sync_depth -= 1
        m.aload(lock).monitorexit()

    def _switch(self, s: Switch) -> None:
        m = self.mb
        n = len(s.cases)
        self.expr(s.expr)
        self._normalize(n)
        labels = [m.new_label(f"case{i}") for i in range(n)]
        default = m.new_label("default")
        end = m.new_label("endswitch")
        m.tableswitch(0, labels, default)
        for label, block in zip(labels, s.cases):
            m.bind(label)
            for inner in block:
                self.stmt(inner)
            m.goto(end)
        m.bind(default)
        for inner in s.default:
            self.stmt(inner)
        m.bind(end)

    # -- expressions --------------------------------------------------------
    def expr(self, e: tuple) -> None:
        """Emit code leaving exactly one int on the operand stack."""
        m = self.mb
        kind = e[0]
        if kind == "const":
            m.iconst(e[1])
        elif kind == "local":
            m.iload(self.spec.int_base + e[1])
        elif kind == "bin":
            _, op, left, right = e
            self.expr(left)
            self.expr(right)
            if op in ("idiv", "irem"):
                m.iconst(1).ior()      # force a non-zero divisor
            getattr(m, op)()
        elif kind == "un":
            self.expr(e[2])
            getattr(m, e[1])()
        elif kind == "arr":
            m.aload(self.spec.arr_slot)
            self._index(e[1])
            m.iaload()
        elif kind == "getfield":
            m.aload(self.spec.ref_slot)
            m.getfield(DATA_CLASS, e[1])
        elif kind == "getstatic":
            m.getstatic(MAIN_CLASS, e[1])
        elif kind == "call":
            _, helper, args = e
            for arg in args:
                self.expr(arg)
            m.invokestatic(MAIN_CLASS, helper, len(args), True)
        elif kind == "fcmp":
            _, op, fl, fr = e
            self.fexpr(fl)
            self.fexpr(fr)
            getattr(m, op)()
        elif kind == "vcall":
            m.aload(self.spec.ref2_slot)
            self.expr(e[1])
            m.invokevirtual(DATA_CLASS, "bump", 1, True)
        else:  # pragma: no cover - exhaustiveness guard
            raise TypeError(f"unknown int expr {e!r}")

    def fexpr(self, e: tuple) -> None:
        """Emit code leaving exactly one float on the operand stack."""
        m = self.mb
        kind = e[0]
        if kind == "fconst":
            m.fconst(e[1])
        elif kind == "flocal":
            m.fload(self.spec.float_base + e[1])
        elif kind == "fbin":
            _, op, left, right = e
            self.fexpr(left)
            self.fexpr(right)
            getattr(m, op)()
        elif kind == "fneg":
            self.fexpr(e[1])
            m.fneg()
        elif kind == "i2f":
            self.expr(e[1])
            m.i2f()
        elif kind == "fgetfield":
            m.aload(self.spec.ref_slot)
            m.getfield(DATA_CLASS, e[1])
        else:  # pragma: no cover - exhaustiveness guard
            raise TypeError(f"unknown float expr {e!r}")

    # -- shared fragments ---------------------------------------------------
    def _index(self, e: tuple) -> None:
        """Emit an int expr normalized into [0, array_len)."""
        self.expr(e)
        self._normalize(self.spec.array_len)

    def _normalize(self, n: int) -> None:
        """TOS <- ((TOS % n) + n) % n."""
        m = self.mb
        m.iconst(n).irem().iconst(n).iadd().iconst(n).irem()

    def _println(self, e: tuple) -> None:
        m = self.mb
        m.getstatic("java/lang/System", "out")
        self.expr(e)
        m.invokevirtual("java/io/PrintStream", "printlnInt", 1, False)


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------

class _Gen:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.seed = seed
        self.n_int = self.rng.randint(3, 5)
        self.n_float = self.rng.randint(1, 2)
        self.array_len = self.rng.randint(4, 8)
        self.helpers = self._gen_helpers()

    # -- helpers ------------------------------------------------------------
    def _gen_helpers(self) -> list[HelperSpec]:
        helpers = []
        for i in range(self.rng.randint(0, 3)):
            argc = self.rng.randint(1, 2)
            leaves = [("local", k) for k in range(argc)]
            helpers.append(HelperSpec(
                name=f"h{i}", argc=argc,
                expr=self._helper_expr(leaves, depth=2),
            ))
        return helpers

    def _helper_expr(self, leaves, depth) -> tuple:
        if depth == 0 or self.rng.random() < 0.3:
            if self.rng.random() < 0.5:
                return self.rng.choice(leaves)
            return ("const", self._int_const())
        op = self.rng.choice(_INT_BINOPS)
        return ("bin", op,
                self._helper_expr(leaves, depth - 1),
                self._helper_expr(leaves, depth - 1))

    # -- int / float constants ---------------------------------------------
    def _int_const(self) -> int:
        if self.rng.random() < 0.12:
            return self.rng.choice(_CORNER_INTS)
        return self.rng.randint(-100, 100)

    def _float_const(self) -> float:
        return round(self.rng.uniform(-100.0, 100.0), 3)

    # -- expressions --------------------------------------------------------
    def iexpr(self, depth: int = 3) -> tuple:
        rng = self.rng
        if depth == 0:
            if rng.random() < 0.5:
                return ("const", self._int_const())
            return ("local", rng.randrange(self.n_int))
        roll = rng.random()
        if roll < 0.28:
            return ("const", self._int_const()) if rng.random() < 0.5 \
                else ("local", rng.randrange(self.n_int))
        if roll < 0.62:
            return ("bin", rng.choice(_INT_BINOPS),
                    self.iexpr(depth - 1), self.iexpr(depth - 1))
        if roll < 0.70:
            return ("un", rng.choice(_INT_UNOPS), self.iexpr(depth - 1))
        if roll < 0.78:
            return ("arr", self.iexpr(depth - 1))
        if roll < 0.84:
            return ("getfield", rng.choice(("f0", "f1")))
        if roll < 0.88:
            return ("getstatic", "acc")
        if roll < 0.93 and self.helpers:
            helper = rng.choice(self.helpers)
            return ("call", helper.name,
                    tuple(self.iexpr(depth - 1) for _ in range(helper.argc)))
        if roll < 0.97 and self.n_float:
            return ("fcmp", rng.choice(("fcmpl", "fcmpg")),
                    self.fexpr(depth - 1), self.fexpr(depth - 1))
        return ("vcall", self.iexpr(depth - 1))

    def fexpr(self, depth: int = 2) -> tuple:
        rng = self.rng
        if depth == 0:
            if self.n_float and rng.random() < 0.5:
                return ("flocal", rng.randrange(self.n_float))
            return ("fconst", self._float_const())
        roll = rng.random()
        if roll < 0.30:
            return ("fconst", self._float_const())
        if roll < 0.50 and self.n_float:
            return ("flocal", rng.randrange(self.n_float))
        if roll < 0.80:
            return ("fbin", rng.choice(_FLOAT_BINOPS),
                    self.fexpr(depth - 1), self.fexpr(depth - 1))
        if roll < 0.88:
            return ("fneg", self.fexpr(depth - 1))
        if roll < 0.95:
            return ("i2f", self.iexpr(depth - 1))
        return ("fgetfield", "g0")

    # -- statements ---------------------------------------------------------
    def block(self, n: int, depth: int) -> list[Stmt]:
        return [self.stmt(depth) for _ in range(n)]

    def stmt(self, depth: int) -> Stmt:
        compound_ok = depth < _MAX_DEPTH
        weights = [
            ("set_int", 5), ("set_arr", 3), ("set_float", 2),
            ("put_field", 2), ("put_static", 2), ("print", 2),
            ("vcall", 2), ("new_data", 1), ("escape", 1),
            ("if", 4 if compound_ok else 0),
            ("loop", 3 if compound_ok else 0),
            ("sync", 2 if compound_ok else 0),
            ("switch", 1 if compound_ok else 0),
        ]
        return self._dispatch(weights, depth)

    def _dispatch(self, weights, depth: int) -> Stmt:
        total = sum(w for _, w in weights)
        pick = self.rng.randrange(total)
        for name, w in weights:
            pick -= w
            if pick < 0:
                break
        return getattr(self, f"_stmt_{name}")(depth)

    def _stmt_set_int(self, depth) -> Stmt:
        return SetInt(self.rng.randrange(self.n_int), self.iexpr())

    def _stmt_set_float(self, depth) -> Stmt:
        return SetFloat(self.rng.randrange(self.n_float), self.fexpr())

    def _stmt_set_arr(self, depth) -> Stmt:
        return SetArr(self.iexpr(2), self.iexpr(2))

    def _stmt_put_static(self, depth) -> Stmt:
        return PutStatic("acc", self.iexpr())

    def _stmt_put_field(self, depth) -> Stmt:
        slot = self._ref_slot()
        return PutField(slot, self.rng.choice(("f0", "f1")), self.iexpr(2))

    def _stmt_print(self, depth) -> Stmt:
        return Print(self.iexpr(2))

    def _stmt_vcall(self, depth) -> Stmt:
        return VirtualCall(self._ref_slot(),
                           self.rng.randrange(self.n_int), self.iexpr(2))

    def _stmt_new_data(self, depth) -> Stmt:
        return NewData(self._spec_stub().ref2_slot)

    def _stmt_escape(self, depth) -> Stmt:
        return EscapeRef(self._ref_slot())

    def _stmt_if(self, depth) -> Stmt:
        rng = self.rng
        roll = rng.random()
        if roll < 0.6:
            s = If("cmp2", rng.choice(_CMP2), self.iexpr(2), self.iexpr(2))
        elif roll < 0.9:
            s = If("cmp1", rng.choice(_CMP1), self.iexpr(2), None)
        else:
            s = If("acmp", rng.choice(("if_acmpeq", "if_acmpne")), None, None)
        s.then = self.block(rng.randint(1, 3), depth + 1)
        if rng.random() < 0.7:
            s.orelse = self.block(rng.randint(1, 2), depth + 1)
        return s

    def _stmt_loop(self, depth) -> Stmt:
        return Loop(counter=depth, trip=self.rng.randint(1, _MAX_TRIP),
                    body=self.block(self.rng.randint(1, 3), depth + 1))

    def _stmt_sync(self, depth) -> Stmt:
        return Sync(self._ref_slot(),
                    body=self.block(self.rng.randint(1, 3), depth + 1))

    def _stmt_switch(self, depth) -> Stmt:
        n = self.rng.randint(2, 3)
        return Switch(self.iexpr(2),
                      cases=[self.block(self.rng.randint(1, 2), depth + 1)
                             for _ in range(n)],
                      default=self.block(1, depth + 1))

    # -- plumbing -----------------------------------------------------------
    def _spec_stub(self) -> ProgramSpec:
        """Slot arithmetic needs the layout; sizes are already fixed."""
        return ProgramSpec(self.seed, self.n_int, self.n_float,
                           self.array_len, (), (), [], [])

    def _ref_slot(self) -> int:
        stub = self._spec_stub()
        return stub.ref_slot if self.rng.random() < 0.5 else stub.ref2_slot

    def generate(self) -> ProgramSpec:
        body = self.block(self.rng.randint(6, 14), depth=0)
        return ProgramSpec(
            seed=self.seed,
            n_int=self.n_int,
            n_float=self.n_float,
            array_len=self.array_len,
            int_inits=tuple(self._int_const() for _ in range(self.n_int)),
            float_inits=tuple(self._float_const()
                              for _ in range(self.n_float)),
            helpers=self.helpers,
            body=body,
        )


class _WorkerGen(_Gen):
    """Restricted generator for worker bodies.

    No prints (output order is schedule-dependent), no reads or writes
    of shared mutable state (``Main.acc``, the shared FuzzData's
    fields), no floats.  Workers may still *lock* the shared object
    (``Sync`` on the shared slot), so generated programs exercise real
    cross-thread lock contention with deterministic observables.
    """

    def __init__(self, seed: int, helpers, layout: _WorkerLayout) -> None:
        super().__init__(seed)
        self.helpers = list(helpers)
        self.layout = layout
        self.n_int = layout.n_int
        self.n_float = 0
        self.array_len = layout.array_len

    def iexpr(self, depth: int = 3) -> tuple:
        rng = self.rng
        if depth == 0:
            if rng.random() < 0.5:
                return ("const", self._int_const())
            return ("local", rng.randrange(self.n_int))
        roll = rng.random()
        if roll < 0.30:
            return ("const", self._int_const()) if rng.random() < 0.5 \
                else ("local", rng.randrange(self.n_int))
        if roll < 0.66:
            return ("bin", rng.choice(_INT_BINOPS),
                    self.iexpr(depth - 1), self.iexpr(depth - 1))
        if roll < 0.74:
            return ("un", rng.choice(_INT_UNOPS), self.iexpr(depth - 1))
        if roll < 0.84:
            return ("arr", self.iexpr(depth - 1))
        if roll < 0.92 and self.helpers:
            helper = rng.choice(self.helpers)
            return ("call", helper.name,
                    tuple(self.iexpr(depth - 1) for _ in range(helper.argc)))
        return ("vcall", self.iexpr(depth - 1))

    def stmt(self, depth: int) -> Stmt:
        compound_ok = depth < _MAX_DEPTH
        weights = [
            ("set_int", 5), ("set_arr", 3), ("put_field", 2),
            ("vcall", 2), ("new_data", 1),
            ("if", 4 if compound_ok else 0),
            ("loop", 3 if compound_ok else 0),
            ("sync", 2 if compound_ok else 0),
            ("switch", 1 if compound_ok else 0),
        ]
        return self._dispatch(weights, depth)

    # private-state statements target the worker's own FuzzData only
    def _stmt_put_field(self, depth) -> Stmt:
        return PutField(self.layout.ref2_slot,
                        self.rng.choice(("f0", "f1")), self.iexpr(2))

    def _stmt_vcall(self, depth) -> Stmt:
        return VirtualCall(self.layout.ref2_slot,
                           self.rng.randrange(self.n_int), self.iexpr(2))

    def _stmt_new_data(self, depth) -> Stmt:
        return NewData(self.layout.ref2_slot)

    def _stmt_if(self, depth) -> Stmt:
        rng = self.rng
        if rng.random() < 0.7:
            s = If("cmp2", rng.choice(_CMP2), self.iexpr(2), self.iexpr(2))
        else:
            s = If("cmp1", rng.choice(_CMP1), self.iexpr(2), None)
        s.then = self.block(rng.randint(1, 3), depth + 1)
        if rng.random() < 0.7:
            s.orelse = self.block(rng.randint(1, 2), depth + 1)
        return s

    def _ref_slot(self) -> int:
        # lock either the shared object or the private one
        return (self.layout.ref_slot if self.rng.random() < 0.5
                else self.layout.ref2_slot)


def gen_program(seed: int) -> ProgramSpec:
    """Deterministically generate one program spec from ``seed``."""
    return _Gen(seed).generate()


def gen_mt_program(seed: int) -> ProgramSpec:
    """A multithreaded spec: ``gen_program(seed)`` plus worker threads.

    The single-threaded part is byte-identical to ``gen_program(seed)``;
    workers are appended from an independent random stream, spawned
    after the main body, and joined before the epilogue prints.
    """
    spec = gen_program(seed)
    rng = random.Random(seed ^ 0x5DEECE66D)
    for wi in range(rng.randint(1, 2)):
        wseed = seed * 31 + wi + 1
        layout = _WorkerLayout(n_int=rng.randint(2, 4),
                               array_len=rng.randint(4, 8))
        wg = _WorkerGen(wseed, spec.helpers, layout)
        spec.workers.append(WorkerSpec(
            cls_name=f"Worker{wi}",
            copies=rng.randint(1, 2),
            n_int=layout.n_int,
            array_len=layout.array_len,
            int_inits=tuple(wg._int_const()
                            for _ in range(layout.n_int)),
            body=wg.block(rng.randint(3, 8), depth=0),
        ))
    return spec
