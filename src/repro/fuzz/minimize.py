"""Delta-debugging minimizer for diverging program specs.

Works on the statement tree (not raw bytecode): candidate reductions are
(1) deleting a single statement from any block, (2) replacing a compound
statement with its own body (unwrap an If/Loop/Sync/Switch), (3) forcing
a loop's trip count to 1, and (4) dropping unused helper methods.  A
reduction is kept iff the reduced spec still renders to a verifiable
program *and* the oracle still reports a divergence whose signature
intersects the original one — the classic "interestingness" predicate of
delta debugging, specialized to differential verdicts.

Greedy fixpoint: apply passes until no reduction sticks.  Deterministic
(no randomness), so a minimized reproducer is stable across runs.
"""

from __future__ import annotations

import copy

from .gen import If, Loop, ProgramSpec, Stmt, Switch, Sync
from .oracle import Verdict, run_oracle


def _renders(spec: ProgramSpec) -> bool:
    try:
        spec.render()
    except Exception:  # noqa: BLE001 - any render failure disqualifies
        return False
    return True


class Minimizer:
    """``predicate`` overrides the oracle-based interestingness test
    (used by the minimizer's own unit tests)."""

    def __init__(self, spec: ProgramSpec, verdict: Verdict | None,
                 fuel: int, tolerance: float, predicate=None) -> None:
        self.spec = spec
        self.target = verdict.signature if verdict is not None else None
        self.fuel = fuel
        self.tolerance = tolerance
        self.predicate = predicate
        self.oracle_runs = 0

    def _still_fails(self, candidate: ProgramSpec) -> bool:
        if not _renders(candidate):
            return False
        self.oracle_runs += 1
        if self.predicate is not None:
            return bool(self.predicate(candidate))
        verdict = run_oracle(candidate, fuel=self.fuel,
                             tolerance=self.tolerance)
        return bool(verdict.signature & self.target)

    # -- one pass of each reduction family ----------------------------------
    def _try_deletions(self, spec: ProgramSpec) -> ProgramSpec | None:
        for bi, block in enumerate(spec.all_blocks()):
            for si in range(len(block)):
                candidate = copy.deepcopy(spec)
                del candidate.all_blocks()[bi][si]
                if self._still_fails(candidate):
                    return candidate
        return None

    def _try_unwraps(self, spec: ProgramSpec) -> ProgramSpec | None:
        for bi, block in enumerate(spec.all_blocks()):
            for si, stmt in enumerate(block):
                if not isinstance(stmt, (If, Loop, Sync, Switch)):
                    continue
                inner = [s for nested in stmt.blocks() for s in nested]
                candidate = copy.deepcopy(spec)
                candidate.all_blocks()[bi][si:si + 1] = \
                    copy.deepcopy(inner)
                if self._still_fails(candidate):
                    return candidate
        return None

    def _try_loop_trips(self, spec: ProgramSpec) -> ProgramSpec | None:
        for bi, block in enumerate(spec.all_blocks()):
            for si, stmt in enumerate(block):
                if isinstance(stmt, Loop) and stmt.trip > 1:
                    candidate = copy.deepcopy(spec)
                    candidate.all_blocks()[bi][si].trip = 1
                    if self._still_fails(candidate):
                        return candidate
        return None

    def _try_drop_helpers(self, spec: ProgramSpec) -> ProgramSpec | None:
        used = _used_helpers(spec)
        keep = [h for h in spec.helpers if h.name in used]
        if len(keep) < len(spec.helpers):
            candidate = copy.deepcopy(spec)
            candidate.helpers = copy.deepcopy(keep)
            if self._still_fails(candidate):
                return candidate
        return None

    def minimize(self, max_rounds: int = 200) -> ProgramSpec:
        spec = self.spec
        for _ in range(max_rounds):
            for attempt in (self._try_deletions, self._try_unwraps,
                            self._try_loop_trips, self._try_drop_helpers):
                reduced = attempt(spec)
                if reduced is not None:
                    spec = reduced
                    break
            else:
                break       # fixpoint: nothing reduced this round
        return spec


def _used_helpers(spec: ProgramSpec) -> set[str]:
    used: set[str] = set()

    def walk_expr(e) -> None:
        if not isinstance(e, tuple):
            return
        if e and e[0] == "call":
            used.add(e[1])
            for arg in e[2]:
                walk_expr(arg)
            return
        for part in e:
            if isinstance(part, tuple):
                walk_expr(part)

    def walk_stmt(s: Stmt) -> None:
        for value in vars(s).values():
            if isinstance(value, tuple):
                walk_expr(value)
        for block in s.blocks():
            for inner in block:
                walk_stmt(inner)

    for block in spec.all_blocks():
        for stmt in block:
            walk_stmt(stmt)
    for helper in spec.helpers:
        walk_expr(helper.expr)      # helpers may call helpers in future
    return used


def minimize_spec(spec: ProgramSpec, verdict: Verdict,
                  fuel: int, tolerance: float) -> tuple[ProgramSpec, int]:
    """Shrink ``spec`` while ``verdict``'s divergence reproduces.

    Returns the minimized spec and the number of oracle runs spent.
    """
    minimizer = Minimizer(spec, verdict, fuel, tolerance)
    reduced = minimizer.minimize()
    return reduced, minimizer.oracle_runs
