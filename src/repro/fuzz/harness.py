"""The fuzzing campaign: generate → verify → compare → shrink → bank.

One campaign is fully determined by ``(seed, count)`` plus the oracle
knobs: program *i* is generated from ``seed * 1_000_003 + i``, so the
same seed always yields the same programs, verdicts, and reproducers
(run-to-run determinism is itself asserted by CI).

Semantic divergences are minimized (when enabled) and written as
assembly reproducers for `tests/fuzz_corpus/`; performance-anomaly
survivors can be promoted into the workload registry
(`repro/workloads/promoted/`) where they run forever after under the
full differential and characterization test suites.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..isa.asm import disassemble_program
from .gen import FUEL, ProgramSpec, gen_program
from .minimize import minimize_spec
from .oracle import DEFAULT_TOLERANCE, Verdict, run_oracle

#: Spread consecutive campaign indices across the seed space.
SEED_STRIDE = 1_000_003

#: Ceiling on workloads promoted per campaign (keeps the registry sane).
MAX_PROMOTIONS = 4


@dataclass
class Finding:
    """One diverging (or anomalous) program and its artifacts."""

    index: int
    seed: int
    kind: str                       # "divergence" | "anomaly"
    details: list[str]
    spec: ProgramSpec
    minimized: ProgramSpec | None = None
    shrink_runs: int = 0
    reproducer: str | None = None   # path the .asm was written to

    @property
    def final_spec(self) -> ProgramSpec:
        return self.minimized or self.spec


@dataclass
class CampaignResult:
    """Counters and findings of one fuzzing campaign."""

    seed: int
    requested: int
    generated: int = 0
    verify_rejected: int = 0
    executed: int = 0
    agreed: int = 0
    diverged: int = 0
    anomalous: int = 0
    minimized: int = 0
    promoted: list[str] = field(default_factory=list)
    stopped_early: bool = False
    elapsed: float = 0.0
    findings: list[Finding] = field(default_factory=list)
    anomaly_kinds: dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "requested": self.requested,
            "generated": self.generated,
            "verify_rejected": self.verify_rejected,
            "executed": self.executed,
            "agreed": self.agreed,
            "diverged": self.diverged,
            "anomalous": self.anomalous,
            "anomaly_kinds": dict(sorted(self.anomaly_kinds.items())),
            "minimized": self.minimized,
            "promoted": list(self.promoted),
            "stopped_early": self.stopped_early,
            "elapsed_seconds": round(self.elapsed, 2),
            "findings": [
                {
                    "index": f.index,
                    "seed": f.seed,
                    "kind": f.kind,
                    "details": f.details,
                    "size": f.spec.size(),
                    "minimized_size": (f.minimized.size()
                                       if f.minimized else None),
                    "shrink_oracle_runs": f.shrink_runs,
                    "reproducer": f.reproducer,
                }
                for f in self.findings
            ],
        }


def run_campaign(
    seed: int,
    count: int,
    time_budget: float | None = None,
    minimize: bool = True,
    promote: bool = False,
    out_dir: str | Path | None = None,
    fuel: int = FUEL,
    tolerance: float = DEFAULT_TOLERANCE,
    progress=None,
) -> CampaignResult:
    """Run one deterministic fuzzing campaign.

    ``time_budget`` is a wall-clock cap in seconds; the campaign stops
    cleanly (``stopped_early``) when exceeded.  ``progress`` is an
    optional callable invoked with (index, result) after each program.
    """
    result = CampaignResult(seed=seed, requested=count)
    out = Path(out_dir) if out_dir else None
    started = time.monotonic()

    for index in range(count):
        if time_budget is not None and \
                time.monotonic() - started > time_budget:
            result.stopped_early = True
            break
        program_seed = seed * SEED_STRIDE + index
        spec = gen_program(program_seed)
        result.generated += 1
        try:
            spec.render()           # the typed verifier is the filter
        except Exception:  # noqa: BLE001 - rejection is a counter, not a bug
            result.verify_rejected += 1
            continue
        result.executed += 1

        verdict = run_oracle(spec, fuel=fuel, tolerance=tolerance)
        if verdict.agreed and not verdict.anomalies:
            result.agreed += 1
        elif not verdict.agreed:
            result.diverged += 1
            finding = _bank_divergence(spec, verdict, index, program_seed,
                                       minimize, fuel, tolerance, out)
            result.findings.append(finding)
            if finding.minimized is not None:
                result.minimized += 1
        else:
            result.agreed += 1
            result.anomalous += 1
            for anomaly in verdict.anomalies:
                result.anomaly_kinds[anomaly.kind] = \
                    result.anomaly_kinds.get(anomaly.kind, 0) + 1
            finding = Finding(index=index, seed=program_seed, kind="anomaly",
                              details=[str(a) for a in verdict.anomalies],
                              spec=spec)
            if out is not None:
                finding.reproducer = _write_reproducer(out, spec, finding)
            result.findings.append(finding)
            if promote and len(result.promoted) < MAX_PROMOTIONS:
                name = promote_spec(spec, verdict)
                if name:
                    result.promoted.append(name)
        if progress is not None:
            progress(index, result)

    result.elapsed = time.monotonic() - started
    return result


def _bank_divergence(spec, verdict, index, program_seed, minimize,
                     fuel, tolerance, out) -> Finding:
    finding = Finding(index=index, seed=program_seed, kind="divergence",
                      details=[str(d) for d in verdict.divergences],
                      spec=spec)
    if minimize:
        reduced, runs = minimize_spec(spec, verdict, fuel, tolerance)
        finding.minimized = reduced
        finding.shrink_runs = runs
    if out is not None:
        finding.reproducer = _write_reproducer(out, finding.final_spec,
                                               finding)
    return finding


def spec_digest(spec: ProgramSpec) -> str:
    """Content digest of a spec's rendered assembly (stable identity)."""
    text = disassemble_program(spec.render())
    return hashlib.sha256(text.encode()).hexdigest()[:8]


def _write_reproducer(out: Path, spec: ProgramSpec,
                      finding: Finding) -> str:
    out.mkdir(parents=True, exist_ok=True)
    header = "\n".join(
        [f"fuzz reproducer: {finding.kind} (campaign index "
         f"{finding.index}, program seed {finding.seed})"]
        + finding.details
        + ["replay: assemble + run under each config (see "
           "repro.fuzz.oracle)"]
    )
    path = out / f"{finding.kind[:3]}_{spec_digest(spec)}.asm"
    path.write_text(disassemble_program(spec.render(), header=header))
    return str(path)


def promoted_dir() -> Path:
    """Where promoted workload sources live (inside the package)."""
    from .. import workloads
    return Path(workloads.__file__).resolve().parent / "promoted"


def promote_spec(spec: ProgramSpec, verdict: Verdict) -> str | None:
    """Promote an anomaly survivor into the workload registry.

    Writes the program as assembly under ``repro/workloads/promoted/``;
    the ``repro.workloads.promoted`` module registers every ``.asm``
    there at import time.  Returns the workload name, or ``None`` if
    this program was already promoted.
    """
    digest = spec_digest(spec)
    directory = promoted_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"fuzz_{digest}.asm"
    if path.exists():
        return None
    header = "\n".join(
        ["promoted fuzz survivor (performance anomaly)"]
        + [str(a) for a in verdict.anomalies]
        + [f"generator seed: {spec.seed}"]
    )
    path.write_text(disassemble_program(spec.render(), header=header))
    return f"fuzz_{digest}"
