"""Adversarial corpus: deliberately ill-typed / ill-formed programs.

Each case builds a method the verifier stack (structural + typed) must
reject — or, for the warning-grade cases, flag — with a specific stable
error code.  ``check_corpus`` re-runs the stack over every case and is
wired into both the test suite and ``python -m repro.lint --selftest``,
so a verifier change that silently stops catching one of these fails
loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.dataflow.typestate import typecheck_method
from ..isa.builder import ClassBuilder, ProgramBuilder
from ..isa.method import Method, Program
from ..isa.opcodes import ArrayType
from ..isa.verifier import VerifyError, verify_method


@dataclass(frozen=True)
class CorpusCase:
    name: str
    expected_code: str
    rejects: bool          # error severity => assert_types/verify rejects
    description: str


def _single(build_body, name="m", returns=False, argc=0):
    """Build one method in a throwaway class, skipping program verify."""
    cb = ClassBuilder("Corpus")
    mb = cb.method(name, argc=argc, returns=returns, static=True)
    build_body(mb)
    cls = cb.build()
    return cls.methods[name], None


def _with_program(build_fn):
    """build_fn(ProgramBuilder) -> MethodBuilder; returns (method, program)."""
    pb = ProgramBuilder("corpus", main_class="Corpus")
    name = build_fn(pb)
    program = pb.build(verify=False)
    return program.get_class("Corpus").methods[name], program


# -- case bodies --------------------------------------------------------------

def _int_plus_ref():
    def body(m):
        m.iconst(1).aconst_null().iadd().pop().return_()
    return _single(body)


def _float_into_istore():
    def body(m):
        m.fconst(1.5).istore(0).return_()
    return _single(body)


def _iload_of_float_local():
    def body(m):
        m.fconst(2.0).fstore(0).iload(0).pop().return_()
    return _single(body)


def _merge_int_float_stack():
    def body(m):
        other = m.new_label()
        join = m.new_label()
        m.iconst(1).ifeq(other)
        m.iconst(5).goto(join)
        m.bind(other).fconst(2.0)
        m.bind(join).istore(0).return_()
    return _single(body)


def _getfield_on_int():
    def build(pb):
        cb = pb.cls("Corpus")
        cb.field("f", "int")
        cb.method("m", static=True).iconst(3) \
            .getfield("Corpus", "f").pop().return_()
        return "m"
    return _with_program(build)


def _monitor_on_int():
    def body(m):
        m.iconst(1).monitorenter().iconst(1).monitorexit().return_()
    return _single(body)


def _arraylength_on_object():
    def build(pb):
        cb = pb.cls("Corpus")
        cb.method("m", static=True).new("Corpus") \
            .arraylength().pop().return_()
        return "m"
    return _with_program(build)


def _iaload_on_float_array():
    def body(m):
        m.iconst(4).newarray(ArrayType.FLOAT).iconst(0) \
            .iaload().pop().return_()
    return _single(body)


def _ireturn_from_void():
    def body(m):
        m.iconst(1).ireturn()
    return _single(body, returns=False)


def _void_return_from_valued():
    def body(m):
        m.return_()
    return _single(body, returns=True)


def _monitor_leak():
    def body(m):
        m.aconst_null().monitorenter().return_()
    return _single(body)


def _exit_without_enter():
    def body(m):
        m.aconst_null().monitorexit().return_()
    return _single(body)


def _conditionally_unbalanced():
    def body(m):
        out = m.new_label()
        m.aconst_null().monitorenter()
        m.iconst(1).ifeq(out)
        m.aconst_null().monitorexit()
        m.bind(out).return_()
    return _single(body)


def _stack_underflow():
    def body(m):
        m.iadd().pop().return_()
    return _single(body)


def _aload_of_int_local():
    def body(m):
        m.iconst(7).istore(0).aload(0).pop().return_()
    return _single(body)


def _conflicted_local_read():
    def body(m):
        other = m.new_label()
        join = m.new_label()
        m.iconst(1).ifeq(other)
        m.iconst(5).istore(0).goto(join)
        m.bind(other).fconst(2.0).fstore(0)
        m.bind(join).iload(0).pop().return_()
    return _single(body)


def _uninit_local_read():
    def body(m):
        m.iload(0).pop().return_()
    return _single(body)


_CASES = [
    ("int_plus_ref", "RT002", True,
     "iadd with a null reference operand", _int_plus_ref),
    ("float_into_istore", "RT002", True,
     "istore of a float value", _float_into_istore),
    ("iload_of_float_local", "RT002", True,
     "iload from a local holding a float", _iload_of_float_local),
    ("merge_int_float_stack", "RT001", True,
     "consuming a stack slot that merges int and float", _merge_int_float_stack),
    ("getfield_on_int", "RT002", True,
     "getfield with an int receiver", _getfield_on_int),
    ("monitor_on_int", "RT002", True,
     "monitorenter on a primitive", _monitor_on_int),
    ("arraylength_on_object", "RT002", True,
     "arraylength on a plain object reference", _arraylength_on_object),
    ("iaload_on_float_array", "RT002", True,
     "iaload from a float[] array", _iaload_on_float_array),
    ("ireturn_from_void", "RT004", True,
     "value-returning return in a void method", _ireturn_from_void),
    ("void_return_from_valued", "RT004", True,
     "void return in a result-producing method", _void_return_from_valued),
    ("monitor_leak", "RM001", True,
     "return while holding a monitor", _monitor_leak),
    ("exit_without_enter", "RM002", True,
     "monitorexit with no enter on any path", _exit_without_enter),
    ("conditionally_unbalanced", "RM001", True,
     "monitor released on only one path", _conditionally_unbalanced),
    ("stack_underflow", "RS001", True,
     "binop on an empty stack", _stack_underflow),
    ("aload_of_int_local", "RT002", True,
     "aload from a local holding an int", _aload_of_int_local),
    ("conflicted_local_read", "RT003", True,
     "read of a local that is int on one path, float on another",
     _conflicted_local_read),
    ("uninit_local_read", "RL004", False,
     "read of a local no path writes (warning: VM zero-fills)",
     _uninit_local_read),
]

CASES = [CorpusCase(n, c, r, d) for n, c, r, d, _f in _CASES]


def _codes_for(method: Method, program: Program | None) -> tuple[list[str], bool]:
    """(finding codes, rejected?) when verifying ``method``."""
    try:
        verify_method(method)
    except VerifyError as exc:
        return [getattr(exc, "code", "RS000")], True
    result = typecheck_method(method, program)
    codes = [f.code for f in result.findings]
    return codes, bool(result.errors)


def check_corpus() -> list[dict]:
    """Run every case; each row reports expectation vs. observation."""
    rows = []
    for name, expected, rejects, description, build in _CASES:
        method, program = build()
        codes, rejected = _codes_for(method, program)
        # monitor-balance cases may legitimately trip the sibling code
        # (merge-order dependent: RM001 vs RM003); accept the family
        ok = expected in codes
        if not ok and expected.startswith("RM"):
            ok = any(c.startswith("RM") for c in codes)
        ok = ok and (rejected == rejects)
        rows.append({
            "name": name,
            "expected": expected,
            "observed": codes,
            "rejects": rejects,
            "rejected": rejected,
            "ok": ok,
            "description": description,
        })
    return rows
