"""Adversarial corpus: deliberately ill-typed / ill-formed programs.

Each case builds a method the verifier stack (structural + typed) must
reject — or, for the warning-grade cases, flag — with a specific stable
error code.  ``check_corpus`` re-runs the stack over every case and is
wired into both the test suite and ``python -m repro.lint --selftest``,
so a verifier change that silently stops catching one of these fails
loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.dataflow.typestate import typecheck_method
from ..isa.builder import ClassBuilder, ProgramBuilder
from ..isa.method import Method, Program
from ..isa.opcodes import ArrayType
from ..isa.verifier import VerifyError, verify_method


@dataclass(frozen=True)
class CorpusCase:
    name: str
    expected_code: str
    rejects: bool          # error severity => assert_types/verify rejects
    description: str


def _single(build_body, name="m", returns=False, argc=0):
    """Build one method in a throwaway class, skipping program verify."""
    cb = ClassBuilder("Corpus")
    mb = cb.method(name, argc=argc, returns=returns, static=True)
    build_body(mb)
    cls = cb.build()
    return cls.methods[name], None


def _with_program(build_fn):
    """build_fn(ProgramBuilder) -> MethodBuilder; returns (method, program)."""
    pb = ProgramBuilder("corpus", main_class="Corpus")
    name = build_fn(pb)
    program = pb.build(verify=False)
    return program.get_class("Corpus").methods[name], program


# -- case bodies --------------------------------------------------------------

def _int_plus_ref():
    def body(m):
        m.iconst(1).aconst_null().iadd().pop().return_()
    return _single(body)


def _float_into_istore():
    def body(m):
        m.fconst(1.5).istore(0).return_()
    return _single(body)


def _iload_of_float_local():
    def body(m):
        m.fconst(2.0).fstore(0).iload(0).pop().return_()
    return _single(body)


def _merge_int_float_stack():
    def body(m):
        other = m.new_label()
        join = m.new_label()
        m.iconst(1).ifeq(other)
        m.iconst(5).goto(join)
        m.bind(other).fconst(2.0)
        m.bind(join).istore(0).return_()
    return _single(body)


def _getfield_on_int():
    def build(pb):
        cb = pb.cls("Corpus")
        cb.field("f", "int")
        cb.method("m", static=True).iconst(3) \
            .getfield("Corpus", "f").pop().return_()
        return "m"
    return _with_program(build)


def _monitor_on_int():
    def body(m):
        m.iconst(1).monitorenter().iconst(1).monitorexit().return_()
    return _single(body)


def _arraylength_on_object():
    def build(pb):
        cb = pb.cls("Corpus")
        cb.method("m", static=True).new("Corpus") \
            .arraylength().pop().return_()
        return "m"
    return _with_program(build)


def _iaload_on_float_array():
    def body(m):
        m.iconst(4).newarray(ArrayType.FLOAT).iconst(0) \
            .iaload().pop().return_()
    return _single(body)


def _ireturn_from_void():
    def body(m):
        m.iconst(1).ireturn()
    return _single(body, returns=False)


def _void_return_from_valued():
    def body(m):
        m.return_()
    return _single(body, returns=True)


def _monitor_leak():
    def body(m):
        m.aconst_null().monitorenter().return_()
    return _single(body)


def _exit_without_enter():
    def body(m):
        m.aconst_null().monitorexit().return_()
    return _single(body)


def _conditionally_unbalanced():
    def body(m):
        out = m.new_label()
        m.aconst_null().monitorenter()
        m.iconst(1).ifeq(out)
        m.aconst_null().monitorexit()
        m.bind(out).return_()
    return _single(body)


def _stack_underflow():
    def body(m):
        m.iadd().pop().return_()
    return _single(body)


def _aload_of_int_local():
    def body(m):
        m.iconst(7).istore(0).aload(0).pop().return_()
    return _single(body)


def _conflicted_local_read():
    def body(m):
        other = m.new_label()
        join = m.new_label()
        m.iconst(1).ifeq(other)
        m.iconst(5).istore(0).goto(join)
        m.bind(other).fconst(2.0).fstore(0)
        m.bind(join).iload(0).pop().return_()
    return _single(body)


def _uninit_local_read():
    def body(m):
        m.iload(0).pop().return_()
    return _single(body)


_CASES = [
    ("int_plus_ref", "RT002", True,
     "iadd with a null reference operand", _int_plus_ref),
    ("float_into_istore", "RT002", True,
     "istore of a float value", _float_into_istore),
    ("iload_of_float_local", "RT002", True,
     "iload from a local holding a float", _iload_of_float_local),
    ("merge_int_float_stack", "RT001", True,
     "consuming a stack slot that merges int and float", _merge_int_float_stack),
    ("getfield_on_int", "RT002", True,
     "getfield with an int receiver", _getfield_on_int),
    ("monitor_on_int", "RT002", True,
     "monitorenter on a primitive", _monitor_on_int),
    ("arraylength_on_object", "RT002", True,
     "arraylength on a plain object reference", _arraylength_on_object),
    ("iaload_on_float_array", "RT002", True,
     "iaload from a float[] array", _iaload_on_float_array),
    ("ireturn_from_void", "RT004", True,
     "value-returning return in a void method", _ireturn_from_void),
    ("void_return_from_valued", "RT004", True,
     "void return in a result-producing method", _void_return_from_valued),
    ("monitor_leak", "RM001", True,
     "return while holding a monitor", _monitor_leak),
    ("exit_without_enter", "RM002", True,
     "monitorexit with no enter on any path", _exit_without_enter),
    ("conditionally_unbalanced", "RM001", True,
     "monitor released on only one path", _conditionally_unbalanced),
    ("stack_underflow", "RS001", True,
     "binop on an empty stack", _stack_underflow),
    ("aload_of_int_local", "RT002", True,
     "aload from a local holding an int", _aload_of_int_local),
    ("conflicted_local_read", "RT003", True,
     "read of a local that is int on one path, float on another",
     _conflicted_local_read),
    ("uninit_local_read", "RL004", False,
     "read of a local no path writes (warning: VM zero-fills)",
     _uninit_local_read),
]

CASES = [CorpusCase(n, c, r, d) for n, c, r, d, _f in _CASES]


def _codes_for(method: Method, program: Program | None) -> tuple[list[str], bool]:
    """(finding codes, rejected?) when verifying ``method``."""
    try:
        verify_method(method)
    except VerifyError as exc:
        return [getattr(exc, "code", "RS000")], True
    result = typecheck_method(method, program)
    codes = [f.code for f in result.findings]
    return codes, bool(result.errors)


# -- planted races (whole programs, repro.analysis.concurrency) ---------------

@dataclass(frozen=True)
class RaceCase:
    name: str
    expected_code: str     # RC code that must fire, or "race-free"
    description: str


_RACE_FAMILY = ("RC001", "RC002", "RC003")


def _link(pb: ProgramBuilder) -> Program:
    from ..vm.library import ensure_library
    program = pb.build(verify=True)
    ensure_library(program)
    return program


def _shared_counter(synchronized: bool) -> Program:
    """mtrt's shape: two worker threads add into one shared Result."""
    pb = ProgramBuilder("race-counter", "T/Main")
    res = pb.cls("T/Result")
    res.field("total", "int")
    res.method("<init>", 0, returns=False) \
        .aload(0).iconst(0).putfield("T/Result", "total").return_()
    res.method("add", 1, returns=False, synchronized=synchronized) \
        .aload(0).aload(0).getfield("T/Result", "total").iload(1).iadd() \
        .putfield("T/Result", "total").return_()
    w = pb.cls("T/Worker", super_name="java/lang/Thread")
    w.field("result", "ref")
    w.method("<init>", 1, returns=False) \
        .aload(0).aload(1).putfield("T/Worker", "result").return_()
    w.method("run", 0, returns=False) \
        .aload(0).getfield("T/Worker", "result").iconst(1) \
        .invokevirtual("T/Result", "add", 1, False).return_()
    mb = pb.cls("T/Main").method("main", 0, returns=False, static=True,
                                 max_stack=8)
    mb.new("T/Result").dup() \
        .invokespecial("T/Result", "<init>", 0, False).astore(0)
    for slot in (1, 2):
        mb.new("T/Worker").dup().aload(0) \
            .invokespecial("T/Worker", "<init>", 1, False).astore(slot) \
            .aload(slot).invokevirtual("java/lang/Thread", "start", 0, False)
    for slot in (1, 2):
        mb.aload(slot).invokevirtual("java/lang/Thread", "join", 0, False)
    mb.return_()
    return _link(pb)


def _static_counter(guarded: bool) -> Program:
    """Two workers read-modify-write one static accumulator."""
    pb = ProgramBuilder("race-static", "R/Main")
    g = pb.cls("R/Globals")
    g.static_field("acc", "int")
    g.static_field("lock", "ref")
    g.method("<init>", 0, returns=False).return_()
    w = pb.cls("R/Worker", super_name="java/lang/Thread")
    w.method("<init>", 0, returns=False).return_()
    mb = w.method("run", 0, returns=False, max_stack=4)
    if guarded:
        mb.getstatic("R/Globals", "lock").monitorenter()
    mb.getstatic("R/Globals", "acc").iconst(1).iadd() \
        .putstatic("R/Globals", "acc")
    if guarded:
        mb.getstatic("R/Globals", "lock").monitorexit()
    mb.return_()
    mb = pb.cls("R/Main").method("main", 0, returns=False, static=True,
                                 max_stack=4)
    mb.new("R/Globals").dup() \
        .invokespecial("R/Globals", "<init>", 0, False) \
        .putstatic("R/Globals", "lock")
    for slot in (0, 1):
        mb.new("R/Worker").dup() \
            .invokespecial("R/Worker", "<init>", 0, False).astore(slot) \
            .aload(slot).invokevirtual("java/lang/Thread", "start", 0, False)
    mb.return_()
    return _link(pb)


def _array_race() -> Program:
    """Two workers store into the same shared static int array."""
    pb = ProgramBuilder("race-array", "R/Main")
    pb.cls("R/Globals").static_field("arr", "ref") \
        .method("<init>", 0, returns=False).return_()
    w = pb.cls("R/Worker", super_name="java/lang/Thread")
    w.method("<init>", 0, returns=False).return_()
    w.method("run", 0, returns=False, max_stack=4) \
        .getstatic("R/Globals", "arr").iconst(0).iconst(7).iastore() \
        .return_()
    mb = pb.cls("R/Main").method("main", 0, returns=False, static=True,
                                 max_stack=4)
    mb.iconst(4).newarray(ArrayType.INT).putstatic("R/Globals", "arr")
    for slot in (0, 1):
        mb.new("R/Worker").dup() \
            .invokespecial("R/Worker", "<init>", 0, False).astore(slot) \
            .aload(slot).invokevirtual("java/lang/Thread", "start", 0, False)
    mb.return_()
    return _link(pb)


def _single_locker() -> Program:
    """A globally published box only main ever locks: RC004 territory."""
    pb = ProgramBuilder("race-elide", "R/Main")
    box = pb.cls("R/Box")
    box.field("v", "int")
    box.method("<init>", 0, returns=False).return_()
    box.method("poke", 0, returns=False, synchronized=True) \
        .aload(0).aload(0).getfield("R/Box", "v").iconst(1).iadd() \
        .putfield("R/Box", "v").return_()
    pb.cls("R/Globals").static_field("box", "ref") \
        .method("<init>", 0, returns=False).return_()
    mb = pb.cls("R/Main").method("main", 0, returns=False, static=True,
                                 max_stack=4)
    mb.new("R/Box").dup().invokespecial("R/Box", "<init>", 0, False) \
        .putstatic("R/Globals", "box")
    mb.getstatic("R/Globals", "box").invokevirtual("R/Box", "poke", 0, False)
    mb.return_()
    return _link(pb)


_RACE_CASES = [
    ("planted_field_race", "RC001",
     "two threads add into a shared counter without a lock",
     lambda: _shared_counter(synchronized=False)),
    ("guarded_field_free", "race-free",
     "the same counter behind a synchronized method is race-free",
     lambda: _shared_counter(synchronized=True)),
    ("planted_static_race", "RC002",
     "unguarded read-modify-write of a static from two threads",
     lambda: _static_counter(guarded=False)),
    ("guarded_static_free", "race-free",
     "the same static guarded by one global lock object is race-free",
     lambda: _static_counter(guarded=True)),
    ("planted_array_race", "RC003",
     "two threads store into the same shared static array",
     lambda: _array_race()),
    ("single_locker_elidable", "RC004",
     "a published box only one thread ever locks is statically elidable",
     lambda: _single_locker()),
]

RACE_CASES = [RaceCase(n, c, d) for n, c, d, _f in _RACE_CASES]


def check_race_corpus() -> list[dict]:
    """Run the race detector over every planted-race program."""
    from ..analysis.concurrency import analyze_program

    rows = []
    for name, expected, description, build in _RACE_CASES:
        codes = [f.code for f in analyze_program(build()).all_findings()]
        if expected == "race-free":
            ok = not any(c in _RACE_FAMILY for c in codes)
        else:
            ok = expected in codes
        rows.append({
            "name": name,
            "expected": expected,
            "observed": codes,
            "ok": ok,
            "description": description,
        })
    return rows


def check_corpus() -> list[dict]:
    """Run every case; each row reports expectation vs. observation."""
    rows = []
    for name, expected, rejects, description, build in _CASES:
        method, program = build()
        codes, rejected = _codes_for(method, program)
        # monitor-balance cases may legitimately trip the sibling code
        # (merge-order dependent: RM001 vs RM003); accept the family
        ok = expected in codes
        if not ok and expected.startswith("RM"):
            ok = any(c.startswith("RM") for c in codes)
        ok = ok and (rejected == rejects)
        rows.append({
            "name": name,
            "expected": expected,
            "observed": codes,
            "rejects": rejects,
            "rejected": rejected,
            "ok": ok,
            "description": description,
        })
    return rows
