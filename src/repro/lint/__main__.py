"""``python -m repro.lint`` — lint bundled workloads, check the corpus.

Examples::

    python -m repro.lint                       # report findings
    python -m repro.lint --strict              # fail on error findings
    python -m repro.lint --selftest            # corpus must be caught
    python -m repro.lint --workloads spec,promoted --asm-dir tests/fuzz_corpus
    python -m repro.lint --format sarif --output lint.sarif
    python -m repro.lint --golden src/repro/lint/golden_findings.json
    python -m repro.lint --update-golden src/repro/lint/golden_findings.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter

from . import CODES, lint_asm_dir, lint_workload, prefixed
from .corpus import check_corpus, check_race_corpus

_DEFAULT_GOLDEN = os.path.join(os.path.dirname(__file__),
                               "golden_findings.json")

#: SARIF severity names for our severities.
_SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}


def expand_workloads(spec: str | None) -> list[str]:
    """Resolve a ``--workloads`` spec; ``spec``/``promoted`` are groups."""
    from ..workloads.base import SPEC_BENCHMARKS, all_workloads

    if spec is None:
        return list(SPEC_BENCHMARKS)
    names: list[str] = []
    for tok in spec.split(","):
        tok = tok.strip()
        if tok == "spec":
            names.extend(SPEC_BENCHMARKS)
        elif tok == "promoted":
            names.extend(sorted(n for n in all_workloads()
                                if n.startswith("fuzz_")))
        elif tok:
            names.append(tok)
    return names


def _collect(workloads, scale: str, say, asm_dirs=()) -> list:
    findings = []
    seen = set()           # (code, method, pc) keys, O(1) membership
    for name in workloads:
        wf = lint_workload(name, scale=scale)
        if name.startswith("fuzz_"):
            wf = prefixed(wf, name)
        say(f"{name:10s} {len(wf)} finding(s)")
        # library methods are linted once per workload; keep one copy
        for f in wf:
            if f.key not in seen:
                seen.add(f.key)
                findings.append(f)
    for path in asm_dirs:
        wf = lint_asm_dir(path)
        say(f"{path}: {len(wf)} finding(s)")
        for f in wf:
            if f.key not in seen:
                seen.add(f.key)
                findings.append(f)
    return findings


def _findings_json(findings) -> list[dict]:
    return [{"code": f.code, "severity": f.severity, "method": f.method,
             "index": f.index, "message": f.message} for f in findings]


def _findings_sarif(findings) -> dict:
    used = sorted({f.code for f in findings})
    return {
        "version": "2.1.0",
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro",
                "rules": [{"id": code,
                           "shortDescription": {"text": CODES[code][1]}}
                          for code in used],
            }},
            "results": [{
                "ruleId": f.code,
                "level": _SARIF_LEVEL[f.severity],
                "message": {"text": f.message},
                "locations": [{"logicalLocations": [
                    {"fullyQualifiedName": f"{f.method}@{f.index}"}]}],
            } for f in findings],
        }],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static-analysis lint over the bundled workloads.",
    )
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload subset; the groups "
                             "'spec' and 'promoted' expand to the SpecJVM "
                             "set and the fuzz-promoted set "
                             "(default: all bundled SpecJVM programs)")
    parser.add_argument("--asm-dir", action="append", default=[],
                        metavar="DIR",
                        help="also lint every *.asm file under DIR "
                             "(repeatable)")
    parser.add_argument("--scale", default="s0",
                        choices=("s0", "s1", "s10"),
                        help="workload build scale (default s0)")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on any error-severity finding")
    parser.add_argument("--selftest", action="store_true",
                        help="also verify the adversarial corpus is caught")
    parser.add_argument("--golden", default=None, metavar="FILE",
                        help="compare findings against a golden file; new "
                             "findings fail (default file used if present)")
    parser.add_argument("--update-golden", default=None, metavar="FILE",
                        help="write the observed findings as the new golden")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="dump findings as JSON (shorthand for "
                             "--format json --output FILE)")
    parser.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (default text)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the json/sarif report here "
                             "(default stdout)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    # With a machine format on stdout, keep the chatter off stdout.
    machine_stdout = args.format != "text" and args.output is None
    say = (lambda msg: None) if args.quiet else (
        lambda msg: print(msg, flush=True,
                          file=sys.stderr if machine_stdout else sys.stdout))

    workloads = expand_workloads(args.workloads)

    status = 0

    if args.selftest:
        rows = check_corpus() + check_race_corpus()
        bad = [r for r in rows if not r["ok"]]
        say(f"corpus: {len(rows) - len(bad)}/{len(rows)} cases caught")
        for r in bad:
            print(f"CORPUS MISS: {r['name']} expected {r['expected']} "
                  f"got {r['observed']}", file=sys.stderr)
        if bad:
            status = 1

    findings = _collect(workloads, args.scale, say, asm_dirs=args.asm_dir)
    by_severity = Counter(f.severity for f in findings)
    for f in findings:
        say("  " + f.render())
    say(f"total: {len(findings)} finding(s) "
        f"({by_severity['error']} error, {by_severity['warning']} warning, "
        f"{by_severity['info']} info)")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(_findings_json(findings), fh, indent=2)
            fh.write("\n")
        say(f"wrote {args.json}")

    if args.format != "text":
        doc = (_findings_sarif(findings) if args.format == "sarif"
               else _findings_json(findings))
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
            say(f"wrote {args.output}")
        else:
            json.dump(doc, sys.stdout, indent=2)
            sys.stdout.write("\n")

    if args.update_golden:
        payload = {"workloads": sorted(workloads),
                   "scale": args.scale,
                   "asm_dirs": sorted(args.asm_dir),
                   "findings": sorted(f.key for f in findings)}
        with open(args.update_golden, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        say(f"wrote {args.update_golden}")

    golden_path = args.golden
    if golden_path is None and os.path.exists(_DEFAULT_GOLDEN) \
            and not args.update_golden:
        golden_path = _DEFAULT_GOLDEN
    if golden_path:
        try:
            with open(golden_path) as fh:
                golden = set(json.load(fh).get("findings", []))
        except FileNotFoundError:
            print(f"GOLDEN: {golden_path} not found", file=sys.stderr)
            golden = None
            status = 1
        if golden is not None:
            current = {f.key for f in findings}
            new = sorted(current - golden)
            resolved = sorted(golden - current)
            for key in new:
                print(f"NEW FINDING (not in golden): {key}",
                      file=sys.stderr)
            for key in resolved:
                say(f"resolved (still in golden, consider updating): {key}")
            if new:
                status = 1
            else:
                say(f"golden: no new findings vs {golden_path}")

    if args.strict and by_severity["error"]:
        print(f"STRICT: {by_severity['error']} error finding(s)",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
