"""``python -m repro.lint`` — lint bundled workloads, check the corpus.

Examples::

    python -m repro.lint                       # report findings
    python -m repro.lint --strict              # fail on error findings
    python -m repro.lint --selftest            # corpus must be caught
    python -m repro.lint --golden src/repro/lint/golden_findings.json
    python -m repro.lint --update-golden src/repro/lint/golden_findings.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter

from . import lint_workload
from .corpus import check_corpus

_DEFAULT_GOLDEN = os.path.join(os.path.dirname(__file__),
                               "golden_findings.json")


def _collect(workloads, scale: str, say) -> list:
    findings = []
    for name in workloads:
        wf = lint_workload(name, scale=scale)
        say(f"{name:10s} {len(wf)} finding(s)")
        # library methods are linted once per workload; keep one copy
        findings.extend(f for f in wf if f not in findings)
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static-analysis lint over the bundled workloads.",
    )
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload subset "
                             "(default: all bundled SpecJVM programs)")
    parser.add_argument("--scale", default="s0",
                        choices=("s0", "s1", "s10"),
                        help="workload build scale (default s0)")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on any error-severity finding")
    parser.add_argument("--selftest", action="store_true",
                        help="also verify the adversarial corpus is caught")
    parser.add_argument("--golden", default=None, metavar="FILE",
                        help="compare findings against a golden file; new "
                             "findings fail (default file used if present)")
    parser.add_argument("--update-golden", default=None, metavar="FILE",
                        help="write the observed findings as the new golden")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="dump findings as JSON")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    say = (lambda msg: None) if args.quiet else (
        lambda msg: print(msg, flush=True))

    from ..workloads.base import SPEC_BENCHMARKS
    workloads = (args.workloads.split(",") if args.workloads
                 else list(SPEC_BENCHMARKS))

    status = 0

    if args.selftest:
        rows = check_corpus()
        bad = [r for r in rows if not r["ok"]]
        say(f"corpus: {len(rows) - len(bad)}/{len(rows)} cases caught")
        for r in bad:
            print(f"CORPUS MISS: {r['name']} expected {r['expected']} "
                  f"got {r['observed']}", file=sys.stderr)
        if bad:
            status = 1

    findings = _collect(workloads, args.scale, say)
    by_severity = Counter(f.severity for f in findings)
    for f in findings:
        say("  " + f.render())
    say(f"total: {len(findings)} finding(s) "
        f"({by_severity['error']} error, {by_severity['warning']} warning, "
        f"{by_severity['info']} info)")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump([{"code": f.code, "severity": f.severity,
                        "method": f.method, "index": f.index,
                        "message": f.message} for f in findings],
                      fh, indent=2)
            fh.write("\n")
        say(f"wrote {args.json}")

    if args.update_golden:
        payload = {"workloads": sorted(workloads),
                   "scale": args.scale,
                   "findings": sorted(f.key for f in findings)}
        with open(args.update_golden, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        say(f"wrote {args.update_golden}")

    golden_path = args.golden
    if golden_path is None and os.path.exists(_DEFAULT_GOLDEN) \
            and not args.update_golden:
        golden_path = _DEFAULT_GOLDEN
    if golden_path:
        try:
            with open(golden_path) as fh:
                golden = set(json.load(fh).get("findings", []))
        except FileNotFoundError:
            print(f"GOLDEN: {golden_path} not found", file=sys.stderr)
            golden = None
            status = 1
        if golden is not None:
            current = {f.key for f in findings}
            new = sorted(current - golden)
            resolved = sorted(golden - current)
            for key in new:
                print(f"NEW FINDING (not in golden): {key}",
                      file=sys.stderr)
            for key in resolved:
                say(f"resolved (still in golden, consider updating): {key}")
            if new:
                status = 1
            else:
                say(f"golden: no new findings vs {golden_path}")

    if args.strict and by_severity["error"]:
        print(f"STRICT: {by_severity['error']} error finding(s)",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
