"""``repro.lint`` — static analysis findings over bytecode programs.

Runs every dataflow analysis (structural + typed verification,
unreachable code, dead stores, constant branches, escape/lock-elision
facts, interprocedural race detection) over a program and reports
:class:`Finding` records with stable error codes (see
``repro.analysis.dataflow.findings``).

The CLI (``python -m repro.lint``) lints every bundled SpecJVM workload
with the runtime library linked in, can self-test against the
adversarial corpus (``corpus.py``), and can diff the findings against a
checked-in golden file so new findings fail CI loudly.
"""

from __future__ import annotations

import os

from ..analysis.dataflow import build_cfg
from ..analysis.dataflow.constprop import constant_branches
from ..analysis.dataflow.escape import EscapeSummaries
from ..analysis.dataflow.findings import CODES, Finding
from ..analysis.dataflow.liveness import dead_stores
from ..analysis.dataflow.typestate import typecheck_method
from ..isa.method import Method, Program
from ..isa.verifier import VerifyError, verify_method

__all__ = ["Finding", "CODES", "lint_method", "lint_program",
           "lint_workload", "lint_asm_dir", "concurrency_findings"]


def lint_method(method: Method, program: Program | None = None,
                summaries: EscapeSummaries | None = None) -> list[Finding]:
    """All findings for one bytecode method."""
    if method.is_native or not method.code:
        return []
    qn = method.qualified_name
    try:
        verify_method(method)
    except VerifyError as exc:
        return [Finding(getattr(exc, "code", "RS000"), qn, -1, str(exc))]

    findings: list[Finding] = []
    cfg = build_cfg(method)

    # unreachable code: one finding per maximal dead run
    run_start = None
    for i in range(len(method.code) + 1):
        dead = i < len(method.code) and method.depth_in[i] == -1
        if dead and run_start is None:
            run_start = i
        elif not dead and run_start is not None:
            findings.append(Finding(
                "RL001", qn, run_start,
                f"instructions {run_start}..{i - 1} are unreachable"))
            run_start = None

    findings.extend(typecheck_method(method, program, cfg=cfg).findings)
    for idx in dead_stores(method, cfg=cfg):
        findings.append(Finding(
            "RL002", qn, idx,
            f"store to local {method.code[idx].a} is never read"))
    findings.extend(constant_branches(method, cfg=cfg))
    if summaries is not None:
        findings.extend(summaries.findings(method))
    return findings


def concurrency_findings(program: Program,
                         summaries: EscapeSummaries | None = None
                         ) -> list[Finding]:
    """Whole-program ``RC0xx`` findings from the race detector.

    Returns ``[]`` for programs without an entry point (single-method
    corpus cases) — the interprocedural passes need a root to walk from.
    """
    from ..analysis.concurrency import analyze_program
    try:
        return analyze_program(program, escape=summaries).all_findings()
    except (KeyError, ValueError):
        return []


def lint_program(program: Program, escape: bool = True,
                 concurrency: bool = True) -> list[Finding]:
    """All findings for every bytecode method of ``program``."""
    summaries = EscapeSummaries(program) if escape else None
    findings: list[Finding] = []
    for method in program.all_methods():
        findings.extend(lint_method(method, program, summaries))
    if concurrency:
        findings.extend(concurrency_findings(program, summaries))
    return findings


def lint_workload(name: str, scale: str = "s0",
                  link_library: bool = True) -> list[Finding]:
    """Build a bundled workload (library linked) and lint it."""
    from ..vm.library import ensure_library
    from ..workloads.base import get_workload

    program = get_workload(name).build(scale)
    if link_library:
        ensure_library(program)
    return lint_program(program)


def prefixed(findings: list[Finding], prefix: str) -> list[Finding]:
    """Re-key findings under ``prefix:`` so same-named programs (every
    fuzz-promoted workload calls its body ``Main.fuzzbody``) stay
    distinct in golden files."""
    return [Finding(f.code, f"{prefix}:{f.method}", f.index, f.message)
            for f in findings]


def lint_asm_dir(path: str) -> list[Finding]:
    """Assemble and lint every ``*.asm`` under ``path``.

    Each file is linted as its own program (library linked), and the
    finding's method name is prefixed with the file stem so findings
    from different files never collide in golden keys.
    """
    from ..isa.asm import assemble
    from ..vm.library import ensure_library

    findings: list[Finding] = []
    for entry in sorted(os.listdir(path)):
        if not entry.endswith(".asm"):
            continue
        stem = entry[:-4]
        with open(os.path.join(path, entry)) as fh:
            program = assemble(fh.read())
        ensure_library(program)
        findings.extend(prefixed(lint_program(program), stem))
    return findings
