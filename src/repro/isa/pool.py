"""Per-class constant pools with lazy (resolution-cached) entries.

Field and method references start *symbolic* — (class name, member name)
— exactly as in real class files, and are resolved on first use by the
class loader (which charges the resolution work to the trace).  The
resolved pointer is cached in the entry, so later executions take the
fast path, mirroring constant-pool quickening in real JVMs.
"""

from __future__ import annotations


class PoolEntry:
    """Base class for constant-pool entries."""

    __slots__ = ("resolved",)

    def __init__(self) -> None:
        self.resolved = None  # filled in by the class loader on first use


class StringConst(PoolEntry):
    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"StringConst({self.value!r})"


class FloatConst(PoolEntry):
    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        super().__init__()
        self.value = float(value)

    def __repr__(self) -> str:
        return f"FloatConst({self.value})"


class ClassRef(PoolEntry):
    __slots__ = ("class_name",)

    def __init__(self, class_name: str) -> None:
        super().__init__()
        self.class_name = class_name

    def __repr__(self) -> str:
        return f"ClassRef({self.class_name})"


class FieldRef(PoolEntry):
    __slots__ = ("class_name", "field_name")

    def __init__(self, class_name: str, field_name: str) -> None:
        super().__init__()
        self.class_name = class_name
        self.field_name = field_name

    def __repr__(self) -> str:
        return f"FieldRef({self.class_name}.{self.field_name})"


class MethodRef(PoolEntry):
    """A symbolic method reference.

    ``argc`` is the number of declared argument slots (excluding the
    receiver); ``has_result`` says whether the callee pushes a value.
    Both are needed statically by the verifier and the JIT.
    """

    __slots__ = ("class_name", "method_name", "argc", "has_result")

    def __init__(self, class_name: str, method_name: str, argc: int,
                 has_result: bool) -> None:
        super().__init__()
        self.class_name = class_name
        self.method_name = method_name
        self.argc = argc
        self.has_result = has_result

    def __repr__(self) -> str:
        return f"MethodRef({self.class_name}.{self.method_name}/{self.argc})"


class ConstantPool:
    """An append-only, deduplicating constant pool."""

    def __init__(self) -> None:
        self.entries: list[PoolEntry] = []
        self._index: dict[tuple, int] = {}

    def _add(self, key: tuple, make) -> int:
        idx = self._index.get(key)
        if idx is None:
            idx = len(self.entries)
            self.entries.append(make())
            self._index[key] = idx
        return idx

    def string(self, value: str) -> int:
        return self._add(("s", value), lambda: StringConst(value))

    def float_const(self, value: float) -> int:
        return self._add(("f", float(value)), lambda: FloatConst(value))

    def class_ref(self, class_name: str) -> int:
        return self._add(("c", class_name), lambda: ClassRef(class_name))

    def field_ref(self, class_name: str, field_name: str) -> int:
        return self._add(
            ("fr", class_name, field_name),
            lambda: FieldRef(class_name, field_name),
        )

    def method_ref(self, class_name: str, method_name: str, argc: int,
                   has_result: bool) -> int:
        return self._add(
            ("mr", class_name, method_name, argc, has_result),
            lambda: MethodRef(class_name, method_name, argc, has_result),
        )

    def __getitem__(self, idx: int) -> PoolEntry:
        return self.entries[idx]

    def __len__(self) -> int:
        return len(self.entries)
