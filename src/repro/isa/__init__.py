"""Bytecode instruction set, class/method model, builders and verifier."""

from .builder import ClassBuilder, Label, MethodBuilder, ProgramBuilder
from .instruction import Instr
from .method import Field, JClass, Method, Program
from .opcodes import (
    ARRAY_ELEM_BYTES,
    BRANCH_OPS,
    INVOKE_OPS,
    N_OPCODES,
    OPINFO,
    TERMINATOR_OPS,
    ArrayType,
    Op,
)
from .pool import (
    ClassRef,
    ConstantPool,
    FieldRef,
    FloatConst,
    MethodRef,
    PoolEntry,
    StringConst,
)
from .verifier import VerifyError, verify_method, verify_program

__all__ = [
    "ARRAY_ELEM_BYTES",
    "ArrayType",
    "BRANCH_OPS",
    "ClassBuilder",
    "ClassRef",
    "ConstantPool",
    "Field",
    "FieldRef",
    "FloatConst",
    "INVOKE_OPS",
    "Instr",
    "JClass",
    "Label",
    "Method",
    "MethodBuilder",
    "MethodRef",
    "N_OPCODES",
    "OPINFO",
    "Op",
    "PoolEntry",
    "Program",
    "ProgramBuilder",
    "StringConst",
    "TERMINATOR_OPS",
    "VerifyError",
    "verify_method",
    "verify_program",
]
