"""Structural bytecode verification and stack-depth inference.

A light-weight analogue of the JVM verifier.  It checks that bytecode is
well formed (targets in range, locals in range, pool indices valid, no
falling off the end) and computes, for every instruction, the operand
stack depth on entry — a fact the JIT's stack-to-register mapping and
the interpreter's address generation both rely on.
"""

from __future__ import annotations

from .instruction import Instr
from .method import Method
from .opcodes import Op, OPINFO
from .pool import FieldRef, MethodRef, ClassRef, FloatConst, StringConst


class VerifyError(Exception):
    """Raised when a method fails structural verification."""


def _stack_delta(method: Method, instr: Instr) -> tuple[int, int]:
    """(pops, pushes) for an instruction, resolving invoke arity."""
    info = OPINFO[instr.op]
    if info.kind != "invoke":
        return info.pops, info.pushes
    ref = method.pool[instr.a]
    if not isinstance(ref, MethodRef):
        raise VerifyError(
            f"{method.qualified_name}: invoke operand {instr.a} is not a MethodRef"
        )
    pops = ref.argc + (0 if instr.op is Op.INVOKESTATIC else 1)
    return pops, (1 if ref.has_result else 0)


def _check_pool_operand(method: Method, i: int, instr: Instr) -> None:
    kind = OPINFO[instr.op].kind
    pool = method.pool
    if kind in ("field", "invoke", "typecheck") or instr.op in (
        Op.NEW, Op.ANEWARRAY, Op.LDC,
    ):
        if not (0 <= instr.a < len(pool)):
            raise VerifyError(
                f"{method.qualified_name}@{i}: pool index {instr.a} out of range"
            )
        entry = pool[instr.a]
        expected = {
            "field": FieldRef,
            "invoke": MethodRef,
            "typecheck": ClassRef,
        }.get(kind)
        if instr.op in (Op.NEW, Op.ANEWARRAY):
            expected = ClassRef
        if instr.op is Op.LDC:
            if not isinstance(entry, (StringConst, FloatConst)):
                raise VerifyError(
                    f"{method.qualified_name}@{i}: ldc operand must be a "
                    f"string/float constant, got {entry!r}"
                )
            return
        if expected is not None and not isinstance(entry, expected):
            raise VerifyError(
                f"{method.qualified_name}@{i}: {instr.info.mnemonic} expects "
                f"{expected.__name__}, got {entry!r}"
            )


def verify_method(method: Method, max_stack: int = 64) -> list[int]:
    """Verify ``method`` and return the per-instruction entry depth list.

    The result is also stored on ``method.depth_in``.  Unreachable
    instructions get depth -1.
    """
    if method.is_native:
        method.depth_in = []
        return []
    code = method.code
    n = len(code)
    if n == 0:
        raise VerifyError(f"{method.qualified_name}: empty code")

    depth_in = [-1] * n
    max_depth = 0
    worklist = [(0, 0)]
    while worklist:
        i, depth = worklist.pop()
        while True:
            if not (0 <= i < n):
                raise VerifyError(
                    f"{method.qualified_name}: control flow reaches index {i}, "
                    f"out of range 0..{n - 1}"
                )
            if depth_in[i] != -1:
                if depth_in[i] != depth:
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: inconsistent stack depth "
                        f"({depth_in[i]} vs {depth})"
                    )
                break
            depth_in[i] = depth
            instr = code[i]
            info = OPINFO[instr.op]

            if info.kind in ("load_local", "store_local", "iinc"):
                if not (0 <= instr.a < method.max_locals):
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: local {instr.a} out of "
                        f"range (max_locals={method.max_locals})"
                    )
            _check_pool_operand(method, i, instr)

            pops, pushes = _stack_delta(method, instr)
            if depth < pops:
                raise VerifyError(
                    f"{method.qualified_name}@{i}: stack underflow at "
                    f"{instr.info.mnemonic} (depth {depth}, pops {pops})"
                )
            depth = depth - pops + pushes
            max_depth = max(max_depth, depth)
            if depth > max_stack:
                raise VerifyError(
                    f"{method.qualified_name}@{i}: stack overflow (depth {depth})"
                )

            kind = info.kind
            if kind == "return":
                break
            targets = instr.branch_targets()
            for t in targets:
                if not (0 <= t < n):
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: branch target {t} out of range"
                    )
            if kind == "goto":
                i = instr.a
                continue
            if kind == "switch":
                for t in targets:
                    worklist.append((t, depth))
                break
            if kind == "branch":
                worklist.append((instr.a, depth))
            # fall through
            if i + 1 >= n:
                raise VerifyError(
                    f"{method.qualified_name}@{i}: control falls off the end"
                )
            i += 1

    method.depth_in = depth_in
    method.max_stack = max_depth
    return depth_in


def verify_program(program) -> None:
    """Verify every non-native method in a program."""
    for method in program.all_methods():
        verify_method(method)
        method.compute_layout()
