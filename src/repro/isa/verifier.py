"""Structural bytecode verification and stack-depth inference.

A light-weight analogue of the JVM verifier.  It checks that bytecode is
well formed (targets in range, locals in range, pool indices valid, no
falling off the end), computes, for every instruction, the operand
stack depth on entry — a fact the JIT's stack-to-register mapping and
the interpreter's address generation both rely on — and proves monitor
balance: no path may leave a method holding a monitor or release one it
never acquired.

Every :class:`VerifyError` carries a stable ``code`` (``RS0xx`` for
stack/structure, ``RM0xx`` for monitor balance) so ``repro.lint`` and
its golden files can pin exact failure modes.

The operand-stack limit is derived from the method itself: a declared
``max_stack`` when the builder provides one, else a static worst-case
bound over the code (sum of the positive per-instruction stack deltas).
The historical hard-coded 64-slot default is gone; callers can still
impose an explicit limit via the ``max_stack`` argument.

*Typed* verification — per-slot type inference, stack maps — lives in
``repro.analysis.dataflow.typestate`` and is enabled through
``verify_program(..., typed=True)`` or the ``repro.lint`` CLI.
"""

from __future__ import annotations

from .instruction import Instr
from .method import Method
from .opcodes import Op, OPINFO
from .pool import FieldRef, MethodRef, ClassRef, FloatConst, StringConst


class VerifyError(Exception):
    """Raised when a method fails structural verification."""

    def __init__(self, message: str, code: str = "RS000") -> None:
        super().__init__(message)
        self.code = code


def _stack_delta(method: Method, instr: Instr) -> tuple[int, int]:
    """(pops, pushes) for an instruction, resolving invoke arity."""
    info = OPINFO[instr.op]
    if info.kind != "invoke":
        return info.pops, info.pushes
    ref = method.pool[instr.a]
    if not isinstance(ref, MethodRef):
        raise VerifyError(
            f"{method.qualified_name}: invoke operand {instr.a} is not a MethodRef",
            code="RS007",
        )
    pops = ref.argc + (0 if instr.op is Op.INVOKESTATIC else 1)
    return pops, (1 if ref.has_result else 0)


def _check_pool_operand(method: Method, i: int, instr: Instr) -> None:
    kind = OPINFO[instr.op].kind
    pool = method.pool
    if kind in ("field", "invoke", "typecheck") or instr.op in (
        Op.NEW, Op.ANEWARRAY, Op.LDC,
    ):
        if not (0 <= instr.a < len(pool)):
            raise VerifyError(
                f"{method.qualified_name}@{i}: pool index {instr.a} out of range",
                code="RS007",
            )
        entry = pool[instr.a]
        expected = {
            "field": FieldRef,
            "invoke": MethodRef,
            "typecheck": ClassRef,
        }.get(kind)
        if instr.op in (Op.NEW, Op.ANEWARRAY):
            expected = ClassRef
        if instr.op is Op.LDC:
            if not isinstance(entry, (StringConst, FloatConst)):
                raise VerifyError(
                    f"{method.qualified_name}@{i}: ldc operand must be a "
                    f"string/float constant, got {entry!r}",
                    code="RS007",
                )
            return
        if expected is not None and not isinstance(entry, expected):
            raise VerifyError(
                f"{method.qualified_name}@{i}: {instr.info.mnemonic} expects "
                f"{expected.__name__}, got {entry!r}",
                code="RS007",
            )


def static_stack_bound(method: Method) -> int:
    """Worst-case operand-stack growth, summed over the code.

    Every instruction's net push is at most +1 in this ISA, so this is a
    sound (if loose) upper bound on any real execution depth — the limit
    a method with no declared ``max_stack`` is verified against.
    """
    bound = 0
    for instr in method.code:
        try:
            pops, pushes = _stack_delta(method, instr)
        except VerifyError:
            pushes, pops = 1, 0   # bad pool entry; the main loop reports it
        bound += max(0, pushes - pops)
    return max(8, bound)


def verify_method(method: Method, max_stack: int | None = None) -> list[int]:
    """Verify ``method`` and return the per-instruction entry depth list.

    The result is also stored on ``method.depth_in``.  Unreachable
    instructions get depth -1.  ``max_stack`` overrides the verified
    stack limit; by default the method's declared ``max_stack`` is used,
    or a computed worst-case bound when none was declared.
    """
    if method.is_native:
        method.depth_in = []
        return []
    code = method.code
    n = len(code)
    if n == 0:
        raise VerifyError(f"{method.qualified_name}: empty code", code="RS008")

    if max_stack is not None:
        limit = max_stack
    elif method.declared_max_stack is not None:
        limit = method.declared_max_stack
    else:
        limit = static_stack_bound(method)

    depth_in = [-1] * n
    mon_in = [-1] * n
    max_depth = 0
    worklist = [(0, 0, 0)]
    while worklist:
        i, depth, mons = worklist.pop()
        while True:
            if not (0 <= i < n):
                raise VerifyError(
                    f"{method.qualified_name}: control flow reaches index {i}, "
                    f"out of range 0..{n - 1}",
                    code="RS005",
                )
            if depth_in[i] != -1:
                if depth_in[i] != depth:
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: inconsistent stack depth "
                        f"({depth_in[i]} vs {depth})",
                        code="RS003",
                    )
                if mon_in[i] != mons:
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: inconsistent monitor "
                        f"depth ({mon_in[i]} vs {mons})",
                        code="RM003",
                    )
                break
            depth_in[i] = depth
            mon_in[i] = mons
            instr = code[i]
            info = OPINFO[instr.op]

            if info.kind in ("load_local", "store_local", "iinc"):
                if not (0 <= instr.a < method.max_locals):
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: local {instr.a} out of "
                        f"range (max_locals={method.max_locals})",
                        code="RS006",
                    )
            _check_pool_operand(method, i, instr)

            pops, pushes = _stack_delta(method, instr)
            if depth < pops:
                raise VerifyError(
                    f"{method.qualified_name}@{i}: stack underflow at "
                    f"{instr.info.mnemonic} (depth {depth}, pops {pops})",
                    code="RS001",
                )
            depth = depth - pops + pushes
            max_depth = max(max_depth, depth)
            if depth > limit:
                raise VerifyError(
                    f"{method.qualified_name}@{i}: stack overflow "
                    f"(depth {depth} exceeds max_stack {limit})",
                    code="RS002",
                )

            if instr.op is Op.MONITORENTER:
                mons += 1
            elif instr.op is Op.MONITOREXIT:
                if mons == 0:
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: monitorexit without a "
                        f"matching monitorenter",
                        code="RM002",
                    )
                mons -= 1

            kind = info.kind
            if kind == "return":
                if mons != 0:
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: "
                        f"{instr.info.mnemonic} while holding {mons} "
                        f"monitor{'s' if mons > 1 else ''}",
                        code="RM001",
                    )
                break
            targets = instr.branch_targets()
            for t in targets:
                if not (0 <= t < n):
                    raise VerifyError(
                        f"{method.qualified_name}@{i}: branch target {t} out of range",
                        code="RS005",
                    )
            if kind == "goto":
                i = instr.a
                continue
            if kind == "switch":
                for t in targets:
                    worklist.append((t, depth, mons))
                break
            if kind == "branch":
                worklist.append((instr.a, depth, mons))
            # fall through
            if i + 1 >= n:
                raise VerifyError(
                    f"{method.qualified_name}@{i}: control falls off the end",
                    code="RS004",
                )
            i += 1

    method.depth_in = depth_in
    method.max_stack = max_depth
    return depth_in


def verify_program(program, typed: bool = False) -> None:
    """Verify every non-native method in a program.

    With ``typed=True`` the abstract-interpretation typed verifier runs
    after the structural pass and rejects type-confused methods (import
    deferred: the dataflow package builds on these verified facts).
    """
    for method in program.all_methods():
        verify_method(method)
        method.compute_layout()
    if typed:
        from ..analysis.dataflow.typestate import assert_types
        for method in program.all_methods():
            if not method.is_native and method.code:
                assert_types(method, program)
