"""The bytecode instruction set of the simulated JVM.

A ~80-opcode stack ISA covering the subset of the real JVM instruction
set that the SpecJVM98-style workloads need: integer and float
arithmetic, locals and operand-stack manipulation, object/array/field
access, virtual/static/special invocation, monitors, and the full
conditional-branch family.  ``long``/``double`` and exceptions are
omitted (see DESIGN.md); the real interpreter's ~220-way dispatch switch
becomes an ~80-way switch here, which rescales the dispatch-table size
but preserves the dispatch *mechanism* (indirect jump per bytecode) that
the architectural results hinge on.

Opcode numbering is internal — bytecode "addresses" used by the memory
studies come from each instruction's encoded byte length, which follows
the real JVM encoding sizes.
"""

from __future__ import annotations

from enum import IntEnum, auto


class Op(IntEnum):
    """Bytecode opcodes."""

    NOP = 0
    # -- constants --
    ICONST = auto()       # push int immediate (iconst_*/bipush/sipush folded)
    FCONST = auto()       # push float immediate (fconst_*)
    ACONST_NULL = auto()
    LDC = auto()          # push constant-pool entry (string / float)
    # -- locals --
    ILOAD = auto()
    FLOAD = auto()
    ALOAD = auto()
    ISTORE = auto()
    FSTORE = auto()
    ASTORE = auto()
    IINC = auto()
    # -- operand stack --
    POP = auto()
    DUP = auto()
    DUP_X1 = auto()
    SWAP = auto()
    # -- integer arithmetic --
    IADD = auto()
    ISUB = auto()
    IMUL = auto()
    IDIV = auto()
    IREM = auto()
    INEG = auto()
    ISHL = auto()
    ISHR = auto()
    IUSHR = auto()
    IAND = auto()
    IOR = auto()
    IXOR = auto()
    # -- float arithmetic --
    FADD = auto()
    FSUB = auto()
    FMUL = auto()
    FDIV = auto()
    FNEG = auto()
    # -- conversions --
    I2F = auto()
    F2I = auto()
    I2B = auto()
    I2C = auto()
    I2S = auto()
    # -- comparisons --
    FCMPL = auto()
    FCMPG = auto()
    # -- single-operand int branches --
    IFEQ = auto()
    IFNE = auto()
    IFLT = auto()
    IFGE = auto()
    IFGT = auto()
    IFLE = auto()
    # -- two-operand int branches --
    IF_ICMPEQ = auto()
    IF_ICMPNE = auto()
    IF_ICMPLT = auto()
    IF_ICMPGE = auto()
    IF_ICMPGT = auto()
    IF_ICMPLE = auto()
    # -- reference branches --
    IF_ACMPEQ = auto()
    IF_ACMPNE = auto()
    IFNULL = auto()
    IFNONNULL = auto()
    # -- unconditional control --
    GOTO = auto()
    TABLESWITCH = auto()
    LOOKUPSWITCH = auto()
    # -- returns --
    IRETURN = auto()
    FRETURN = auto()
    ARETURN = auto()
    RETURN = auto()
    # -- fields --
    GETSTATIC = auto()
    PUTSTATIC = auto()
    GETFIELD = auto()
    PUTFIELD = auto()
    # -- invocation --
    INVOKEVIRTUAL = auto()
    INVOKESPECIAL = auto()
    INVOKESTATIC = auto()
    # -- allocation --
    NEW = auto()
    NEWARRAY = auto()      # a = element type code (see ArrayType)
    ANEWARRAY = auto()
    # -- arrays --
    ARRAYLENGTH = auto()
    IALOAD = auto()
    IASTORE = auto()
    FALOAD = auto()
    FASTORE = auto()
    AALOAD = auto()
    AASTORE = auto()
    BALOAD = auto()
    BASTORE = auto()
    CALOAD = auto()
    CASTORE = auto()
    # -- type checks --
    CHECKCAST = auto()
    INSTANCEOF = auto()
    # -- monitors --
    MONITORENTER = auto()
    MONITOREXIT = auto()


N_OPCODES = len(Op)


class ArrayType(IntEnum):
    """Element type codes for :data:`Op.NEWARRAY` (JVM atype values)."""

    BOOLEAN = 4
    CHAR = 5
    FLOAT = 6
    BYTE = 8
    SHORT = 9
    INT = 10


#: Element size in bytes per :class:`ArrayType` (drives array address maths).
ARRAY_ELEM_BYTES = {
    ArrayType.BOOLEAN: 1,
    ArrayType.CHAR: 2,
    ArrayType.FLOAT: 4,
    ArrayType.BYTE: 1,
    ArrayType.SHORT: 2,
    ArrayType.INT: 4,
}


class OpInfo:
    """Static metadata for one opcode."""

    __slots__ = ("mnemonic", "length", "pops", "pushes", "kind")

    def __init__(self, mnemonic: str, length: int, pops, pushes, kind: str) -> None:
        self.mnemonic = mnemonic
        self.length = length      # encoded size in bytes
        self.pops = pops          # None => pool-dependent (invokes)
        self.pushes = pushes
        self.kind = kind


def _info(op: Op) -> OpInfo:
    name = op.name.lower()
    one_byte = {
        Op.NOP, Op.ACONST_NULL, Op.POP, Op.DUP, Op.DUP_X1, Op.SWAP,
        Op.IADD, Op.ISUB, Op.IMUL, Op.IDIV, Op.IREM, Op.INEG,
        Op.ISHL, Op.ISHR, Op.IUSHR, Op.IAND, Op.IOR, Op.IXOR,
        Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FNEG,
        Op.I2F, Op.F2I, Op.I2B, Op.I2C, Op.I2S, Op.FCMPL, Op.FCMPG,
        Op.IRETURN, Op.FRETURN, Op.ARETURN, Op.RETURN,
        Op.ARRAYLENGTH, Op.IALOAD, Op.IASTORE, Op.FALOAD, Op.FASTORE,
        Op.AALOAD, Op.AASTORE, Op.BALOAD, Op.BASTORE, Op.CALOAD,
        Op.CASTORE, Op.MONITORENTER, Op.MONITOREXIT, Op.FCONST, Op.ICONST,
    }
    if op in (Op.ILOAD, Op.FLOAD, Op.ALOAD, Op.ISTORE, Op.FSTORE,
              Op.ASTORE, Op.NEWARRAY, Op.LDC):
        length = 2
    elif op in (Op.TABLESWITCH, Op.LOOKUPSWITCH):
        length = 12  # padded base; per-target bytes added by the method
    elif op in one_byte:
        length = 1
    else:
        length = 3  # branches, field/method refs, NEW, IINC, GOTO, ...

    branch_ops = {
        Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFGE, Op.IFGT, Op.IFLE,
        Op.IF_ICMPEQ, Op.IF_ICMPNE, Op.IF_ICMPLT, Op.IF_ICMPGE,
        Op.IF_ICMPGT, Op.IF_ICMPLE, Op.IF_ACMPEQ, Op.IF_ACMPNE,
        Op.IFNULL, Op.IFNONNULL,
    }

    pops, pushes, kind = 0, 0, "misc"
    if op in (Op.ICONST, Op.FCONST, Op.ACONST_NULL, Op.LDC):
        pushes, kind = 1, "const"
    elif op in (Op.ILOAD, Op.FLOAD, Op.ALOAD):
        pushes, kind = 1, "load_local"
    elif op in (Op.ISTORE, Op.FSTORE, Op.ASTORE):
        pops, kind = 1, "store_local"
    elif op is Op.IINC:
        kind = "iinc"
    elif op is Op.POP:
        pops, kind = 1, "stack"
    elif op is Op.DUP:
        pops, pushes, kind = 1, 2, "stack"
    elif op is Op.DUP_X1:
        pops, pushes, kind = 2, 3, "stack"
    elif op is Op.SWAP:
        pops, pushes, kind = 2, 2, "stack"
    elif op in (Op.IADD, Op.ISUB, Op.IMUL, Op.IDIV, Op.IREM, Op.ISHL,
                Op.ISHR, Op.IUSHR, Op.IAND, Op.IOR, Op.IXOR,
                Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV,
                Op.FCMPL, Op.FCMPG):
        pops, pushes, kind = 2, 1, "binop"
    elif op in (Op.INEG, Op.FNEG, Op.I2F, Op.F2I, Op.I2B, Op.I2C, Op.I2S):
        pops, pushes, kind = 1, 1, "unop"
    elif op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFGE, Op.IFGT, Op.IFLE,
                Op.IFNULL, Op.IFNONNULL):
        pops, kind = 1, "branch"
    elif op in branch_ops:
        pops, kind = 2, "branch"
    elif op is Op.GOTO:
        kind = "goto"
    elif op in (Op.TABLESWITCH, Op.LOOKUPSWITCH):
        pops, kind = 1, "switch"
    elif op in (Op.IRETURN, Op.FRETURN, Op.ARETURN):
        pops, kind = 1, "return"
    elif op is Op.RETURN:
        kind = "return"
    elif op is Op.GETSTATIC:
        pushes, kind = 1, "field"
    elif op is Op.PUTSTATIC:
        pops, kind = 1, "field"
    elif op is Op.GETFIELD:
        pops, pushes, kind = 1, 1, "field"
    elif op is Op.PUTFIELD:
        pops, kind = 2, "field"
    elif op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC):
        pops, pushes, kind = None, None, "invoke"
    elif op is Op.NEW:
        pushes, kind = 1, "new"
    elif op in (Op.NEWARRAY, Op.ANEWARRAY):
        pops, pushes, kind = 1, 1, "new"
    elif op is Op.ARRAYLENGTH:
        pops, pushes, kind = 1, 1, "array"
    elif op in (Op.IALOAD, Op.FALOAD, Op.AALOAD, Op.BALOAD, Op.CALOAD):
        pops, pushes, kind = 2, 1, "array"
    elif op in (Op.IASTORE, Op.FASTORE, Op.AASTORE, Op.BASTORE, Op.CASTORE):
        pops, kind = 3, "array"
    elif op in (Op.CHECKCAST, Op.INSTANCEOF):
        pops, pushes, kind = 1, 1, "typecheck"
    elif op in (Op.MONITORENTER, Op.MONITOREXIT):
        pops, kind = 1, "monitor"

    return OpInfo(name, length, pops, pushes, kind)


#: Opcode metadata, indexed by :class:`Op` value.
OPINFO: dict[Op, OpInfo] = {op: _info(op) for op in Op}

#: Conditional-branch opcodes.
BRANCH_OPS = frozenset(op for op in Op if OPINFO[op].kind == "branch")
#: Invocation opcodes.
INVOKE_OPS = frozenset(op for op in Op if OPINFO[op].kind == "invoke")
#: Opcodes that terminate a basic block.
TERMINATOR_OPS = frozenset(
    op for op in Op if OPINFO[op].kind in ("branch", "goto", "switch", "return")
)
