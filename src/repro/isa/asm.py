"""A textual assembler (and method lister) for the bytecode ISA.

Grammar, one directive or instruction per line (``;`` starts a comment):

.. code-block:: text

    .class spec/Counter                  ; optional: extends <super>
    .field value int                     ; int | float | ref [static]
    .method tick static returns          ; flags: static/returns/synchronized
        iconst 1
        istore 1
    loop:                                ; labels end with ':'
        iload 1
        ifgt done
        iinc 1 1
        goto loop
    done:
        iload 1
        ireturn
    .end

Operand forms: immediates are integers/floats; field/method references
are ``Class name [argc] [ret|void]``; string constants use
``ldc_str "text"``.  Every mnemonic matches its
:class:`~repro.isa.builder.MethodBuilder` method.
"""

from __future__ import annotations

import shlex

from .builder import ClassBuilder, Label, MethodBuilder, ProgramBuilder
from .method import Method, Program
from .opcodes import ArrayType, Op
from .pool import StringConst


class AsmError(Exception):
    """Syntax or structure error in assembly text."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


#: Mnemonics taking one integer operand (local index / immediate).
_INT_OPS = {
    "iconst", "iload", "fload", "aload", "istore", "fstore", "astore",
}
#: Mnemonics taking (class, field).
_FIELD_OPS = {"getfield", "putfield", "getstatic", "putstatic"}
#: Mnemonics taking (class, name, argc, ret|void).
_INVOKE_OPS = {"invokevirtual", "invokespecial", "invokestatic"}
#: Mnemonics taking a class name.
_CLASS_OPS = {"new", "anewarray", "checkcast", "instanceof"}
#: Mnemonics taking a label.
_BRANCH_OPS = {
    "ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle", "if_icmpeq",
    "if_icmpne", "if_icmplt", "if_icmpge", "if_icmpgt", "if_icmple",
    "if_acmpeq", "if_acmpne", "ifnull", "ifnonnull", "goto",
}
#: Zero-operand mnemonics (anything callable on MethodBuilder).
_PLAIN_OPS = {
    "nop", "aconst_null", "pop", "dup", "dup_x1", "swap",
    "iadd", "isub", "imul", "idiv", "irem", "ineg", "ishl", "ishr",
    "iushr", "iand", "ior", "ixor", "fadd", "fsub", "fmul", "fdiv",
    "fneg", "i2f", "f2i", "i2b", "i2c", "i2s", "fcmpl", "fcmpg",
    "ireturn", "freturn", "areturn", "arraylength", "iaload", "iastore",
    "faload", "fastore", "aaload", "aastore", "baload", "bastore",
    "caload", "castore", "monitorenter", "monitorexit",
}

_ARRAY_TYPES = {t.name.lower(): t for t in ArrayType}


class _MethodState:
    def __init__(self, builder: MethodBuilder) -> None:
        self.builder = builder
        self.labels: dict[str, Label] = {}

    def label(self, name: str) -> Label:
        if name not in self.labels:
            self.labels[name] = self.builder.new_label(name)
        return self.labels[name]


def assemble(text: str, program_name: str = "asm",
             main_class: str | None = None) -> Program:
    """Assemble source text into a verified :class:`Program`."""
    pb: ProgramBuilder | None = None
    current_class: ClassBuilder | None = None
    current: _MethodState | None = None
    classes: list[str] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        try:
            tokens = shlex.split(line)
        except ValueError as exc:
            raise AsmError(line_no, f"bad quoting: {exc}") from None

        head = tokens[0]
        if head == ".class":
            if current is not None:
                raise AsmError(line_no, ".class inside a method")
            if len(tokens) not in (2, 4):
                raise AsmError(line_no, ".class NAME [extends SUPER]")
            super_name = tokens[3] if len(tokens) == 4 else "java/lang/Object"
            if pb is None:
                pb = ProgramBuilder(program_name,
                                    main_class=main_class or tokens[1])
            current_class = pb.cls(tokens[1], super_name=super_name)
            classes.append(tokens[1])
        elif head == ".field":
            if current_class is None:
                raise AsmError(line_no, ".field outside a class")
            if len(tokens) < 3:
                raise AsmError(line_no, ".field NAME TYPE [static]")
            if "static" in tokens[3:]:
                current_class.static_field(tokens[1], tokens[2])
            else:
                current_class.field(tokens[1], tokens[2])
        elif head == ".method":
            if current_class is None:
                raise AsmError(line_no, ".method outside a class")
            if current is not None:
                raise AsmError(line_no, "missing .end before .method")
            name = tokens[1]
            flags = set(tokens[2:])
            argc = 0
            for flag in list(flags):
                if flag.startswith("argc="):
                    argc = int(flag.split("=", 1)[1])
                    flags.discard(flag)
            unknown = flags - {"static", "returns", "synchronized"}
            if unknown:
                raise AsmError(line_no, f"unknown flags {sorted(unknown)}")
            mb = current_class.method(
                name, argc=argc,
                returns="returns" in flags,
                static="static" in flags,
                synchronized="synchronized" in flags,
            )
            current = _MethodState(mb)
        elif head == ".end":
            if current is None:
                raise AsmError(line_no, ".end without .method")
            current = None
        elif head.endswith(":") and len(tokens) == 1:
            if current is None:
                raise AsmError(line_no, "label outside a method")
            current.builder.bind(current.label(head[:-1]))
        else:
            if current is None:
                raise AsmError(line_no, f"instruction outside a method: {head}")
            _assemble_instruction(current, tokens, line_no)

    if current is not None:
        raise AsmError(line_no, "unterminated .method")
    if pb is None:
        raise AsmError(0, "no .class directive found")
    try:
        return pb.build()
    except Exception as exc:
        raise AsmError(0, f"verification failed: {exc}") from exc


def _assemble_instruction(state: _MethodState, tokens, line_no) -> None:
    b = state.builder
    op = tokens[0]
    args = tokens[1:]
    try:
        if op in _PLAIN_OPS:
            getattr(b, "return_" if op == "return" else op)()
        elif op == "return":
            b.return_()
        elif op in _INT_OPS:
            b_method = getattr(b, op)
            b_method(int(args[0], 0))
        elif op == "fconst":
            b.fconst(float(args[0]))
        elif op == "iinc":
            b.iinc(int(args[0], 0), int(args[1], 0) if len(args) > 1 else 1)
        elif op == "ldc_str":
            b.ldc_str(args[0])
        elif op == "ldc_float":
            b.ldc_float(float(args[0]))
        elif op == "newarray":
            b.newarray(_ARRAY_TYPES[args[0].lower()])
        elif op in _CLASS_OPS:
            getattr(b, op)(args[0])
        elif op in _FIELD_OPS:
            getattr(b, op)(args[0], args[1])
        elif op in _INVOKE_OPS:
            argc = int(args[2]) if len(args) > 2 else 0
            returns = len(args) > 3 and args[3] in ("ret", "returns")
            getattr(b, op)(args[0], args[1], argc, returns)
        elif op in _BRANCH_OPS:
            getattr(b, op)(state.label(args[0]))
        elif op == "tableswitch":
            # tableswitch LOW L1 L2 ... default LD
            low = int(args[0], 0)
            if "default" not in args:
                raise AsmError(line_no, "tableswitch needs 'default LABEL'")
            split = args.index("default")
            targets = [state.label(t) for t in args[1:split]]
            b.tableswitch(low, targets, state.label(args[split + 1]))
        elif op == "lookupswitch":
            # lookupswitch K1:L1 K2:L2 ... default LD
            if "default" not in args:
                raise AsmError(line_no, "lookupswitch needs 'default LABEL'")
            split = args.index("default")
            table = {}
            for pair in args[:split]:
                key, _, label = pair.partition(":")
                table[int(key, 0)] = state.label(label)
            b.lookupswitch(table, state.label(args[split + 1]))
        else:
            raise AsmError(line_no, f"unknown mnemonic {op!r}")
    except AsmError:
        raise
    except (IndexError, ValueError, KeyError) as exc:
        raise AsmError(line_no, f"bad operands for {op!r}: {exc}") from None


#: Classes :func:`disassemble_program` skips — the runtime library is
#: linked into every program by the VM, never part of its source.
_LIBRARY_PREFIXES = ("java/", "repro/")

_ARRAY_NAMES = {int(t): t.name.lower() for t in ArrayType}


def disassemble_program(program: Program, header: str = "") -> str:
    """Render ``program`` back into :func:`assemble`-compatible source.

    The main class is emitted first so that re-assembling with the
    default ``main_class`` reproduces the entry point.  Runtime-library
    classes (``java/*``, ``repro/*``) are skipped — the VM links them
    into every program.  ``assemble(disassemble_program(p))`` rebuilds a
    semantically identical program, and disassembly of the rebuilt
    program is a textual fixpoint.
    """
    names = [name for name in program.classes
             if not name.startswith(_LIBRARY_PREFIXES)]
    names.sort(key=lambda n: (n != program.main_class, n))
    lines: list[str] = []
    for text in header.splitlines():
        lines.append(f"; {text}" if text else ";")
    for name in names:
        _disassemble_class(program.classes[name], lines)
    return "\n".join(lines) + "\n"


def _disassemble_class(jclass, lines: list[str]) -> None:
    if jclass.super_name and jclass.super_name != "java/lang/Object":
        lines.append(f".class {jclass.name} extends {jclass.super_name}")
    else:
        lines.append(f".class {jclass.name}")
    for fld in jclass.fields:
        static = " static" if fld.is_static else ""
        lines.append(f".field {fld.name} {fld.ftype}{static}")
    for mname in jclass.methods:
        method = jclass.methods[mname]
        if method.is_native:
            raise ValueError(
                f"cannot disassemble native method {method.qualified_name}")
        _disassemble_method(method, lines)
    lines.append("")


def _disassemble_method(method: Method, lines: list[str]) -> None:
    flags = []
    if method.argc:
        flags.append(f"argc={method.argc}")
    if method.is_static:
        flags.append("static")
    if method.has_result:
        flags.append("returns")
    if method.is_synchronized:
        flags.append("synchronized")
    lines.append(f".method {method.name}" +
                 ("" if not flags else " " + " ".join(flags)))

    targets = _branch_targets(method)
    labels = {index: f"L{index}" for index in sorted(targets)}
    for index, instr in enumerate(method.code):
        if index in labels:
            lines.append(f"{labels[index]}:")
        lines.append("    " + _disassemble_instr(instr, method, labels))
    if len(method.code) in labels:
        lines.append(f"{labels[len(method.code)]}:")
    lines.append(".end")


def _branch_targets(method: Method) -> set[int]:
    targets: set[int] = set()
    for instr in method.code:
        kind = instr.info.kind
        if kind in ("branch", "goto"):
            targets.add(instr.a)
        elif instr.op is Op.TABLESWITCH:
            low, switch_targets, default = instr.extra
            targets.update(switch_targets)
            targets.add(default)
        elif instr.op is Op.LOOKUPSWITCH:
            table, default = instr.extra
            targets.update(table.values())
            targets.add(default)
    return targets


def _disassemble_instr(instr, method: Method, labels: dict[int, str]) -> str:
    op = instr.op
    name = instr.info.mnemonic
    pool = method.pool if method.pool is not None else method.jclass.pool
    if op is Op.ICONST:
        return f"iconst {instr.a}"
    if op is Op.FCONST:
        return f"fconst {instr.a!r}"
    if op is Op.LDC:
        entry = pool[instr.a]
        if isinstance(entry, StringConst):
            return f"ldc_str {shlex.quote(entry.value)}"
        return f"ldc_float {entry.value!r}"
    if op in (Op.ILOAD, Op.FLOAD, Op.ALOAD,
              Op.ISTORE, Op.FSTORE, Op.ASTORE):
        return f"{name} {instr.a}"
    if op is Op.IINC:
        return f"iinc {instr.a} {instr.b}"
    if op is Op.NEWARRAY:
        return f"newarray {_ARRAY_NAMES[instr.a]}"
    if op in (Op.NEW, Op.ANEWARRAY, Op.CHECKCAST, Op.INSTANCEOF):
        return f"{name} {pool[instr.a].class_name}"
    if op in (Op.GETFIELD, Op.PUTFIELD, Op.GETSTATIC, Op.PUTSTATIC):
        ref = pool[instr.a]
        return f"{name} {ref.class_name} {ref.field_name}"
    if op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC):
        ref = pool[instr.a]
        ret = "ret" if ref.has_result else "void"
        return f"{name} {ref.class_name} {ref.method_name} {ref.argc} {ret}"
    if instr.info.kind in ("branch", "goto"):
        return f"{name} {labels[instr.a]}"
    if op is Op.TABLESWITCH:
        low, switch_targets, default = instr.extra
        parts = [str(low)] + [labels[t] for t in switch_targets]
        return f"tableswitch {' '.join(parts)} default {labels[default]}"
    if op is Op.LOOKUPSWITCH:
        table, default = instr.extra
        pairs = " ".join(f"{k}:{labels[t]}"
                         for k, t in sorted(table.items()))
        return f"lookupswitch {pairs} default {labels[default]}"
    return name


def list_method(method: Method) -> str:
    """A numbered bytecode listing of a built method (the inverse view)."""
    lines = [f"; {method.qualified_name} "
             f"(argc={method.argc}, max_locals={method.max_locals})"]
    for index, instr in enumerate(method.code):
        depth = (method.depth_in[index]
                 if index < len(method.depth_in) else "?")
        lines.append(f"{index:>5d}  [{depth:>2}]  {instr!r}")
    return "\n".join(lines)
