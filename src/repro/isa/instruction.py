"""Bytecode instruction representation."""

from __future__ import annotations

from .opcodes import Op, OPINFO


class Instr:
    """One bytecode instruction.

    ``a`` and ``b`` are the (decoded) immediate operands; branch targets
    are *instruction indices* within the owning method's code list.
    ``extra`` carries switch tables: for ``TABLESWITCH`` a
    ``(low, [targets], default)`` tuple, for ``LOOKUPSWITCH`` a
    ``({match: target}, default)`` tuple.
    """

    __slots__ = ("op", "a", "b", "extra")

    def __init__(self, op: Op, a=0, b=0, extra=None) -> None:
        self.op = op
        self.a = a
        self.b = b
        self.extra = extra

    @property
    def info(self):
        return OPINFO[self.op]

    def encoded_length(self) -> int:
        """Size of this instruction in the simulated bytecode stream."""
        base = OPINFO[self.op].length
        if self.op is Op.TABLESWITCH:
            low, targets, _default = self.extra
            return base + 4 * len(targets)
        if self.op is Op.LOOKUPSWITCH:
            table, _default = self.extra
            return base + 8 * len(table)
        return base

    def branch_targets(self) -> list[int]:
        """All possible control-transfer destinations (instruction indices)."""
        kind = OPINFO[self.op].kind
        if kind in ("branch", "goto"):
            return [self.a]
        if self.op is Op.TABLESWITCH:
            low, targets, default = self.extra
            return list(targets) + [default]
        if self.op is Op.LOOKUPSWITCH:
            table, default = self.extra
            return list(table.values()) + [default]
        return []

    #: kinds whose ``a`` operand is meaningful even when it is zero
    _ALWAYS_SHOW_A = ("const", "load_local", "store_local", "iinc",
                      "branch", "goto", "field", "invoke", "new",
                      "typecheck")

    def __repr__(self) -> str:
        parts = [self.info.mnemonic]
        if self.a or self.info.kind in self._ALWAYS_SHOW_A:
            parts.append(str(self.a))
        if self.b:
            parts.append(str(self.b))
        return " ".join(parts)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Instr)
            and self.op == other.op
            and self.a == other.a
            and self.b == other.b
            and self.extra == other.extra
        )

    def __hash__(self) -> int:
        return hash((self.op, self.a, self.b))
