"""Fluent builders for bytecode programs.

The workloads (our SpecJVM98 stand-ins) and the runtime library are
authored against this API.  A :class:`MethodBuilder` exposes one method
per opcode plus labels for control flow; :class:`ClassBuilder` and
:class:`ProgramBuilder` assemble classes and whole programs, running the
verifier at build time so malformed workloads fail fast.
"""

from __future__ import annotations

from typing import Callable

from .instruction import Instr
from .method import Field, JClass, Method, Program
from .opcodes import ArrayType, Op
from .verifier import verify_program


class Label:
    """A forward-referencable branch target."""

    __slots__ = ("index", "name")

    def __init__(self, name: str = "") -> None:
        self.index: int | None = None
        self.name = name

    def __repr__(self) -> str:
        return f"Label({self.name or id(self)}@{self.index})"


class MethodBuilder:
    """Builds the bytecode body of one method."""

    def __init__(
        self,
        class_builder: "ClassBuilder",
        name: str,
        argc: int = 0,
        returns: bool = False,
        static: bool = False,
        synchronized: bool = False,
        max_stack: int | None = None,
    ) -> None:
        self._cb = class_builder
        self._pool = class_builder.jclass.pool
        self.name = name
        self.argc = argc
        self.returns = returns
        self.static = static
        self.synchronized = synchronized
        self.max_stack = max_stack
        self._code: list[Instr] = []
        self._fixups: list[tuple[int, Label]] = []
        self._switch_fixups: list[int] = []
        self._max_local = argc + (0 if static else 1) - 1

    # -- labels ---------------------------------------------------------
    def new_label(self, name: str = "") -> Label:
        return Label(name)

    def bind(self, label: Label) -> "MethodBuilder":
        if label.index is not None:
            raise ValueError(f"label {label!r} bound twice")
        label.index = len(self._code)
        return self

    # -- low-level emission ----------------------------------------------
    def emit(self, op: Op, a=0, b=0, extra=None) -> "MethodBuilder":
        self._code.append(Instr(op, a, b, extra))
        return self

    def _emit_branch(self, op: Op, label: Label) -> "MethodBuilder":
        self._fixups.append((len(self._code), label))
        return self.emit(op, -1)

    def _local(self, op: Op, index: int) -> "MethodBuilder":
        self._max_local = max(self._max_local, index)
        return self.emit(op, index)

    # -- constants --------------------------------------------------------
    def nop(self):
        return self.emit(Op.NOP)

    def iconst(self, value: int):
        return self.emit(Op.ICONST, int(value))

    def fconst(self, value: float):
        return self.emit(Op.FCONST, float(value))

    def aconst_null(self):
        return self.emit(Op.ACONST_NULL)

    def ldc_str(self, value: str):
        return self.emit(Op.LDC, self._pool.string(value))

    def ldc_float(self, value: float):
        return self.emit(Op.LDC, self._pool.float_const(value))

    # -- locals -----------------------------------------------------------
    def iload(self, i: int):
        return self._local(Op.ILOAD, i)

    def fload(self, i: int):
        return self._local(Op.FLOAD, i)

    def aload(self, i: int):
        return self._local(Op.ALOAD, i)

    def istore(self, i: int):
        return self._local(Op.ISTORE, i)

    def fstore(self, i: int):
        return self._local(Op.FSTORE, i)

    def astore(self, i: int):
        return self._local(Op.ASTORE, i)

    def iinc(self, i: int, delta: int = 1):
        self._max_local = max(self._max_local, i)
        return self.emit(Op.IINC, i, delta)

    # -- stack --------------------------------------------------------------
    def pop(self):
        return self.emit(Op.POP)

    def dup(self):
        return self.emit(Op.DUP)

    def dup_x1(self):
        return self.emit(Op.DUP_X1)

    def swap(self):
        return self.emit(Op.SWAP)

    # -- arithmetic ----------------------------------------------------------
    def iadd(self):
        return self.emit(Op.IADD)

    def isub(self):
        return self.emit(Op.ISUB)

    def imul(self):
        return self.emit(Op.IMUL)

    def idiv(self):
        return self.emit(Op.IDIV)

    def irem(self):
        return self.emit(Op.IREM)

    def ineg(self):
        return self.emit(Op.INEG)

    def ishl(self):
        return self.emit(Op.ISHL)

    def ishr(self):
        return self.emit(Op.ISHR)

    def iushr(self):
        return self.emit(Op.IUSHR)

    def iand(self):
        return self.emit(Op.IAND)

    def ior(self):
        return self.emit(Op.IOR)

    def ixor(self):
        return self.emit(Op.IXOR)

    def fadd(self):
        return self.emit(Op.FADD)

    def fsub(self):
        return self.emit(Op.FSUB)

    def fmul(self):
        return self.emit(Op.FMUL)

    def fdiv(self):
        return self.emit(Op.FDIV)

    def fneg(self):
        return self.emit(Op.FNEG)

    def i2f(self):
        return self.emit(Op.I2F)

    def f2i(self):
        return self.emit(Op.F2I)

    def i2b(self):
        return self.emit(Op.I2B)

    def i2c(self):
        return self.emit(Op.I2C)

    def i2s(self):
        return self.emit(Op.I2S)

    def fcmpl(self):
        return self.emit(Op.FCMPL)

    def fcmpg(self):
        return self.emit(Op.FCMPG)

    # -- branches --------------------------------------------------------------
    def ifeq(self, label: Label):
        return self._emit_branch(Op.IFEQ, label)

    def ifne(self, label: Label):
        return self._emit_branch(Op.IFNE, label)

    def iflt(self, label: Label):
        return self._emit_branch(Op.IFLT, label)

    def ifge(self, label: Label):
        return self._emit_branch(Op.IFGE, label)

    def ifgt(self, label: Label):
        return self._emit_branch(Op.IFGT, label)

    def ifle(self, label: Label):
        return self._emit_branch(Op.IFLE, label)

    def if_icmpeq(self, label: Label):
        return self._emit_branch(Op.IF_ICMPEQ, label)

    def if_icmpne(self, label: Label):
        return self._emit_branch(Op.IF_ICMPNE, label)

    def if_icmplt(self, label: Label):
        return self._emit_branch(Op.IF_ICMPLT, label)

    def if_icmpge(self, label: Label):
        return self._emit_branch(Op.IF_ICMPGE, label)

    def if_icmpgt(self, label: Label):
        return self._emit_branch(Op.IF_ICMPGT, label)

    def if_icmple(self, label: Label):
        return self._emit_branch(Op.IF_ICMPLE, label)

    def if_acmpeq(self, label: Label):
        return self._emit_branch(Op.IF_ACMPEQ, label)

    def if_acmpne(self, label: Label):
        return self._emit_branch(Op.IF_ACMPNE, label)

    def ifnull(self, label: Label):
        return self._emit_branch(Op.IFNULL, label)

    def ifnonnull(self, label: Label):
        return self._emit_branch(Op.IFNONNULL, label)

    def goto(self, label: Label):
        return self._emit_branch(Op.GOTO, label)

    def tableswitch(self, low: int, targets: list[Label], default: Label):
        self._switch_fixups.append(len(self._code))
        return self.emit(Op.TABLESWITCH, extra=(low, list(targets), default))

    def lookupswitch(self, table: dict[int, Label], default: Label):
        self._switch_fixups.append(len(self._code))
        return self.emit(Op.LOOKUPSWITCH, extra=(dict(table), default))

    # -- returns ----------------------------------------------------------------
    def ireturn(self):
        return self.emit(Op.IRETURN)

    def freturn(self):
        return self.emit(Op.FRETURN)

    def areturn(self):
        return self.emit(Op.ARETURN)

    def return_(self):
        return self.emit(Op.RETURN)

    # -- fields -----------------------------------------------------------------
    def getstatic(self, class_name: str, field_name: str):
        return self.emit(Op.GETSTATIC, self._pool.field_ref(class_name, field_name))

    def putstatic(self, class_name: str, field_name: str):
        return self.emit(Op.PUTSTATIC, self._pool.field_ref(class_name, field_name))

    def getfield(self, class_name: str, field_name: str):
        return self.emit(Op.GETFIELD, self._pool.field_ref(class_name, field_name))

    def putfield(self, class_name: str, field_name: str):
        return self.emit(Op.PUTFIELD, self._pool.field_ref(class_name, field_name))

    # -- invocation ----------------------------------------------------------------
    def invokevirtual(self, class_name: str, method_name: str, argc: int,
                      returns: bool):
        return self.emit(
            Op.INVOKEVIRTUAL,
            self._pool.method_ref(class_name, method_name, argc, returns),
        )

    def invokespecial(self, class_name: str, method_name: str, argc: int,
                      returns: bool = False):
        return self.emit(
            Op.INVOKESPECIAL,
            self._pool.method_ref(class_name, method_name, argc, returns),
        )

    def invokestatic(self, class_name: str, method_name: str, argc: int,
                     returns: bool):
        return self.emit(
            Op.INVOKESTATIC,
            self._pool.method_ref(class_name, method_name, argc, returns),
        )

    # -- allocation -------------------------------------------------------------------
    def new(self, class_name: str):
        return self.emit(Op.NEW, self._pool.class_ref(class_name))

    def newarray(self, elem: ArrayType):
        return self.emit(Op.NEWARRAY, int(elem))

    def anewarray(self, class_name: str):
        return self.emit(Op.ANEWARRAY, self._pool.class_ref(class_name))

    # -- arrays ---------------------------------------------------------------------------
    def arraylength(self):
        return self.emit(Op.ARRAYLENGTH)

    def iaload(self):
        return self.emit(Op.IALOAD)

    def iastore(self):
        return self.emit(Op.IASTORE)

    def faload(self):
        return self.emit(Op.FALOAD)

    def fastore(self):
        return self.emit(Op.FASTORE)

    def aaload(self):
        return self.emit(Op.AALOAD)

    def aastore(self):
        return self.emit(Op.AASTORE)

    def baload(self):
        return self.emit(Op.BALOAD)

    def bastore(self):
        return self.emit(Op.BASTORE)

    def caload(self):
        return self.emit(Op.CALOAD)

    def castore(self):
        return self.emit(Op.CASTORE)

    # -- type checks / monitors -------------------------------------------------------------
    def checkcast(self, class_name: str):
        return self.emit(Op.CHECKCAST, self._pool.class_ref(class_name))

    def instanceof(self, class_name: str):
        return self.emit(Op.INSTANCEOF, self._pool.class_ref(class_name))

    def monitorenter(self):
        return self.emit(Op.MONITORENTER)

    def monitorexit(self):
        return self.emit(Op.MONITOREXIT)

    # -- finalize ----------------------------------------------------------------------------
    def build(self) -> Method:
        for at, label in self._fixups:
            if label.index is None:
                raise ValueError(
                    f"{self._cb.jclass.name}.{self.name}: unbound label {label!r}"
                )
            self._code[at].a = label.index
        def _resolve(label: Label) -> int:
            if label.index is None:
                raise ValueError(
                    f"{self._cb.jclass.name}.{self.name}: unbound switch "
                    f"label {label!r}"
                )
            return label.index

        for at in self._switch_fixups:
            instr = self._code[at]
            if instr.op is Op.TABLESWITCH:
                low, targets, default = instr.extra
                instr.extra = (low, [_resolve(t) for t in targets], _resolve(default))
            else:
                table, default = instr.extra
                instr.extra = (
                    {k: _resolve(t) for k, t in table.items()},
                    _resolve(default),
                )
        method = Method(
            name=self.name,
            argc=self.argc,
            has_result=self.returns,
            is_static=self.static,
            is_synchronized=self.synchronized,
            max_locals=self._max_local + 1,
            code=self._code,
            max_stack=self.max_stack,
        )
        return method


class ClassBuilder:
    """Builds one :class:`JClass`."""

    def __init__(self, name: str, super_name: str | None = "java/lang/Object") -> None:
        self.jclass = JClass(name, super_name)
        self._pending: list[MethodBuilder] = []

    def field(self, name: str, ftype: str = "int") -> "ClassBuilder":
        self.jclass.add_field(Field(name, ftype))
        return self

    def static_field(self, name: str, ftype: str = "int") -> "ClassBuilder":
        self.jclass.add_field(Field(name, ftype, is_static=True))
        return self

    def method(self, name: str, argc: int = 0, returns: bool = False,
               static: bool = False, synchronized: bool = False,
               max_stack: int | None = None) -> MethodBuilder:
        mb = MethodBuilder(self, name, argc, returns, static, synchronized,
                           max_stack=max_stack)
        self._pending.append(mb)
        return mb

    def native_method(self, name: str, argc: int, returns: bool,
                      impl: Callable, static: bool = False,
                      synchronized: bool = False, cost: int = 20,
                      escape: tuple[str, ...] | None = None) -> "ClassBuilder":
        m = Method(
            name=name,
            argc=argc,
            has_result=returns,
            is_static=static,
            is_synchronized=synchronized,
            native_impl=impl,
            native_cost=cost,
            native_escape=escape,
        )
        self.jclass.add_method(m)
        return self

    def build(self) -> JClass:
        for mb in self._pending:
            self.jclass.add_method(mb.build())
        self._pending = []
        return self.jclass


class ProgramBuilder:
    """Builds a whole :class:`Program` and verifies it."""

    def __init__(self, name: str, main_class: str = "Main") -> None:
        self.program = Program(name, main_class)
        self._class_builders: list[ClassBuilder] = []

    def cls(self, name: str, super_name: str | None = "java/lang/Object") -> ClassBuilder:
        cb = ClassBuilder(name, super_name)
        self._class_builders.append(cb)
        return cb

    def include(self, jclass: JClass) -> "ProgramBuilder":
        self.program.add_class(jclass)
        return self

    def build(self, verify: bool = True, typed: bool = False) -> Program:
        for cb in self._class_builders:
            self.program.add_class(cb.build())
        self._class_builders = []
        if verify:
            verify_program(self.program, typed=typed)
        return self.program
