"""Method, field, class and program structures.

These model the *loaded* form of a class file: bytecode plus symbolic
constant pool.  Runtime-only state (vtable layout, bytecode addresses,
compiled code) is attached by the class loader and the JIT at run time
and kept in clearly named attributes initialized here to ``None``/empty.

Simplification relative to real class files: methods are keyed by name
only (no overload resolution by descriptor); the workloads are written
accordingly.
"""

from __future__ import annotations

from typing import Callable, Optional

from .instruction import Instr
from .pool import ConstantPool


class Field:
    """An instance or static field declaration."""

    __slots__ = ("name", "ftype", "is_static")

    #: Field byte widths (drives object layout and access addresses).
    TYPE_BYTES = {"int": 4, "float": 4, "ref": 4, "byte": 1, "char": 2}

    def __init__(self, name: str, ftype: str = "int", is_static: bool = False) -> None:
        if ftype not in self.TYPE_BYTES:
            raise ValueError(f"unknown field type {ftype!r}")
        self.name = name
        self.ftype = ftype
        self.is_static = is_static

    @property
    def byte_size(self) -> int:
        return self.TYPE_BYTES[self.ftype]

    def __repr__(self) -> str:
        static = "static " if self.is_static else ""
        return f"Field({static}{self.ftype} {self.name})"


class Method:
    """A bytecode (or native) method."""

    def __init__(
        self,
        name: str,
        argc: int = 0,
        has_result: bool = False,
        is_static: bool = False,
        is_synchronized: bool = False,
        max_locals: int | None = None,
        code: list[Instr] | None = None,
        native_impl: Optional[Callable] = None,
        native_cost: int = 20,
        max_stack: int | None = None,
        native_escape: tuple[str, ...] | None = None,
    ) -> None:
        self.name = name
        self.argc = argc
        self.has_result = has_result
        self.is_static = is_static
        self.is_synchronized = is_synchronized
        self.code: list[Instr] = code or []
        self.native_impl = native_impl
        self.native_cost = native_cost  # native instrs charged per call
        #: declared operand-stack limit; None => verifier computes a bound
        self.declared_max_stack = max_stack
        #: escape-analysis annotation for natives: per-param-slot levels
        #: drawn from {"none", "returned", "global"}; None => all "global"
        self.native_escape = native_escape
        n_params = argc + (0 if is_static else 1)
        self.max_locals = max_locals if max_locals is not None else n_params

        # Filled in when the owning class is registered / loaded:
        self.jclass: "JClass | None" = None
        self.pool: ConstantPool | None = None
        self.method_id: int = -1
        self.bc_addr: int = 0              # base address in the bytecode region
        self.bc_offsets: list[int] = []    # per-instruction byte offset
        self.bc_length: int = 0
        self.depth_in: list[int] = []      # verifier: stack depth at entry
        self.max_stack: int = 8            # verifier: max operand-stack depth

    @property
    def is_native(self) -> bool:
        return self.native_impl is not None

    @property
    def n_param_slots(self) -> int:
        """Locals consumed by arguments (receiver included if virtual)."""
        return self.argc + (0 if self.is_static else 1)

    @property
    def qualified_name(self) -> str:
        cls = self.jclass.name if self.jclass else "?"
        return f"{cls}.{self.name}"

    def compute_layout(self) -> None:
        """Assign per-instruction byte offsets within the method."""
        self.bc_offsets = []
        off = 0
        for instr in self.code:
            self.bc_offsets.append(off)
            off += instr.encoded_length()
        self.bc_length = off

    def __repr__(self) -> str:
        return f"Method({self.qualified_name}/{self.argc}, {len(self.code)} instrs)"


class JClass:
    """A class declaration (the loaded image of one class file)."""

    def __init__(self, name: str, super_name: str | None = "java/lang/Object") -> None:
        self.name = name
        self.super_name = super_name if name != "java/lang/Object" else None
        self.fields: list[Field] = []
        self.methods: dict[str, Method] = {}
        self.pool = ConstantPool()

        # Runtime state, attached by the class loader:
        self.super_class: "JClass | None" = None
        self.field_offsets: dict[str, int] = {}
        self.field_types: dict[str, str] = {}
        self.instance_bytes: int = 0
        self.static_addr: dict[str, int] = {}
        self.statics: dict[str, object] = {}
        self.loaded: bool = False
        self.initialized: bool = False
        self.class_id: int = -1

    def add_field(self, field: Field) -> None:
        self.fields.append(field)

    def add_method(self, method: Method) -> None:
        if method.name in self.methods:
            raise ValueError(
                f"duplicate method {method.name!r} in class {self.name!r}"
            )
        method.jclass = self
        method.pool = self.pool
        self.methods[method.name] = method

    def find_method(self, name: str) -> Method | None:
        """Resolve a method by walking up the superclass chain."""
        cls: JClass | None = self
        while cls is not None:
            m = cls.methods.get(name)
            if m is not None:
                return m
            cls = cls.super_class
        return None

    def is_subclass_of(self, other: "JClass") -> bool:
        cls: JClass | None = self
        while cls is not None:
            if cls is other:
                return True
            cls = cls.super_class
        return False

    def __repr__(self) -> str:
        return f"JClass({self.name}, {len(self.methods)} methods)"


class Program:
    """A closed set of classes plus an entry point."""

    def __init__(self, name: str, main_class: str = "Main") -> None:
        self.name = name
        self.main_class = main_class
        self.classes: dict[str, JClass] = {}

    def add_class(self, jclass: JClass) -> JClass:
        if jclass.name in self.classes:
            raise ValueError(f"duplicate class {jclass.name!r}")
        self.classes[jclass.name] = jclass
        return jclass

    def get_class(self, name: str) -> JClass:
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(f"class {name!r} not in program {self.name!r}") from None

    def merge(self, other: "Program") -> None:
        """Add all of ``other``'s classes (used to link the library)."""
        for cls in other.classes.values():
            self.add_class(cls)

    @property
    def entry_method(self) -> Method:
        main = self.get_class(self.main_class).methods.get("main")
        if main is None:
            raise KeyError(f"{self.main_class} has no 'main' method")
        return main

    def all_methods(self):
        for cls in self.classes.values():
            yield from cls.methods.values()

    def __repr__(self) -> str:
        return f"Program({self.name}, {len(self.classes)} classes)"
