"""Trace disassembly and region profiling (debugging / inspection aids).

``disassemble`` renders a window of a native trace as readable text;
``region_profile`` summarizes where a trace's fetches and data
references land in the simulated address space — the quickest way to
sanity-check that a run is exercising the machinery it should.
"""

from __future__ import annotations

from collections import Counter

from .layout import region_name
from .nisa import FLAG_TAKEN, FLAG_TRANSLATE, FLAG_WRITE, NCat
from .trace import Trace


def disassemble(trace: Trace, start: int = 0, count: int = 32) -> str:
    """Readable listing of trace rows ``[start, start+count)``."""
    lines = []
    end = min(trace.n, start + count)
    for i in range(start, end):
        cat = NCat(int(trace.cat[i]))
        pc = int(trace.pc[i])
        parts = [f"{i:>8d}", f"{pc:#010x}", f"{cat.name.lower():7s}"]
        dst = int(trace.dst[i])
        srcs = [int(trace.src1[i]), int(trace.src2[i])]
        regs = []
        if dst >= 0:
            regs.append(f"r{dst}")
        regs += [f"r{s}" for s in srcs if s >= 0]
        if regs:
            parts.append(",".join(regs))
        ea = int(trace.ea[i])
        if ea:
            mark = "<-" if trace.flags[i] & FLAG_WRITE else "->"
            parts.append(f"[{ea:#010x} {region_name(ea)}] {mark}")
        target = int(trace.target[i])
        if target:
            taken = "taken" if trace.flags[i] & FLAG_TAKEN else "not-taken"
            parts.append(f"=> {target:#010x} ({taken})")
        if trace.flags[i] & FLAG_TRANSLATE:
            parts.append("{translate}")
        lines.append("  ".join(parts))
    return "\n".join(lines)


def region_profile(trace: Trace) -> dict[str, dict[str, int]]:
    """Per-region fetch and data-reference counts."""
    fetch = Counter()
    data_r = Counter()
    data_w = Counter()
    # Sample-free exact counts via vectorized filtering per region would
    # need the region table; Counter over python ints is fine at trace
    # scale for an inspection utility.
    mem = trace.is_memory
    writes = trace.is_write
    for pc in trace.pc.tolist():
        fetch[region_name(pc)] += 1
    for ea, w in zip(trace.ea[mem].tolist(), writes[mem].tolist()):
        (data_w if w else data_r)[region_name(ea)] += 1
    return {
        "fetch": dict(fetch),
        "data_read": dict(data_r),
        "data_write": dict(data_w),
    }


def format_region_profile(trace: Trace) -> str:
    """Pretty one-screen region summary."""
    profile = region_profile(trace)
    lines = []
    for section, counts in profile.items():
        total = sum(counts.values()) or 1
        lines.append(f"{section} ({total:,} refs):")
        for region, n in sorted(counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {region:12s} {n:>12,}  ({100 * n / total:5.1f}%)")
    return "\n".join(lines)
