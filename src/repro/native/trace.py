"""Native trace recording and archives.

The runtime emits native instruction events through a *sink*.  Two sinks
exist: :class:`CountingSink` only accumulates cycle and category counts
(cheap; used for the timing studies of Section 3), and
:class:`RecordingSink` additionally records the full event stream into a
columnar :class:`Trace` archive that the cache / branch / pipeline
simulators replay (the Shade-trace equivalent).
"""

from __future__ import annotations

import os
from typing import Iterator, Sequence

import numpy as np

from .costs import CYCLES_BY_CAT
from .nisa import (
    FLAG_TAKEN,
    FLAG_TRANSLATE,
    FLAG_WRITE,
    INDIRECT_CATS,
    MEMORY_CATS,
    N_CATEGORIES,
    NCat,
    TRANSFER_CATS,
)
from .template import Template

_COLUMNS = ("pc", "cat", "ea", "flags", "target", "dst", "src1", "src2")
_DTYPES = {
    "pc": np.int64,
    "cat": np.int16,
    "ea": np.int64,
    "flags": np.int16,
    "target": np.int64,
    "dst": np.int16,
    "src1": np.int16,
    "src2": np.int16,
}
#: Structured row dtype of the ``.npy`` archive format.  A plain
#: ``np.save`` of this record array can be reopened with
#: ``mmap_mode="r"``, so loading a cached trace costs a page-table
#: mapping instead of a full decompress-and-copy.
_RECORD_DTYPE = np.dtype([(c, _DTYPES[c]) for c in _COLUMNS])


class Trace:
    """An immutable columnar native-instruction trace.

    Columns (parallel arrays of length ``n``):

    - ``pc``      instruction address
    - ``cat``     :class:`~repro.native.nisa.NCat` code
    - ``ea``      effective address for memory operations (0 otherwise)
    - ``flags``   event flag bits (taken / write / translate / ...)
    - ``target``  control-transfer target pc (0 otherwise)
    - ``dst``, ``src1``, ``src2``  register operands (-1 = none)
    """

    __slots__ = tuple(_COLUMNS) + ("n",)

    def __init__(self, **columns: np.ndarray) -> None:
        lengths = {len(columns[c]) for c in _COLUMNS}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {lengths}")
        for c in _COLUMNS:
            setattr(self, c, columns[c])
        self.n = lengths.pop()

    # -- constructors -------------------------------------------------
    @classmethod
    def from_columns(cls, **columns) -> "Trace":
        """Build from any array-likes, coercing dtypes."""
        coerced = {
            c: np.asarray(columns[c], dtype=_DTYPES[c]) for c in _COLUMNS
        }
        return cls(**coerced)

    @classmethod
    def empty(cls) -> "Trace":
        return cls.from_columns(**{c: [] for c in _COLUMNS})

    @classmethod
    def concatenate(cls, traces: Sequence["Trace"]) -> "Trace":
        if not traces:
            return cls.empty()
        return cls(
            **{
                c: np.concatenate([getattr(t, c) for t in traces])
                for c in _COLUMNS
            }
        )

    # -- persistence ---------------------------------------------------
    def to_records(self) -> np.ndarray:
        """The trace as one structured record array (``.npy`` format)."""
        records = np.empty(self.n, dtype=_RECORD_DTYPE)
        for c in _COLUMNS:
            records[c] = getattr(self, c)
        return records

    @classmethod
    def from_records(cls, records: np.ndarray) -> "Trace":
        if records.dtype != _RECORD_DTYPE or records.ndim != 1:
            raise ValueError(
                f"not a trace record array: dtype={records.dtype}, "
                f"ndim={records.ndim}"
            )
        # Field views of a memory map stay lazy: pages fault in as the
        # simulators touch each column.
        return cls(**{c: records[c] for c in _COLUMNS})

    def save(self, path: str) -> None:
        """Persist by extension: ``.npy`` (mappable record array,
        the cache format) or anything else as a compressed ``.npz``."""
        if str(path).endswith(".npy"):
            np.save(path, self.to_records(), allow_pickle=False)
        else:
            np.savez_compressed(
                path, **{c: getattr(self, c) for c in _COLUMNS}
            )

    @classmethod
    def load(cls, path: str) -> "Trace":
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        if str(path).endswith(".npy"):
            records = np.load(path, mmap_mode="r", allow_pickle=False)
            return cls.from_records(records)
        with np.load(path) as data:
            return cls(**{c: data[c] for c in _COLUMNS})

    # -- derived views ---------------------------------------------------
    def select(self, mask: np.ndarray) -> "Trace":
        """A sub-trace of the rows where ``mask`` is true."""
        return Trace(**{c: getattr(self, c)[mask] for c in _COLUMNS})

    @property
    def is_memory(self) -> np.ndarray:
        return np.isin(self.cat, list(MEMORY_CATS))

    @property
    def is_write(self) -> np.ndarray:
        return (self.flags & FLAG_WRITE) != 0

    @property
    def is_transfer(self) -> np.ndarray:
        return np.isin(self.cat, list(TRANSFER_CATS))

    @property
    def is_indirect(self) -> np.ndarray:
        return np.isin(self.cat, list(INDIRECT_CATS))

    @property
    def is_taken(self) -> np.ndarray:
        return (self.flags & FLAG_TAKEN) != 0

    @property
    def in_translate(self) -> np.ndarray:
        return (self.flags & FLAG_TRANSLATE) != 0

    def category_counts(self) -> np.ndarray:
        """Dynamic count per :class:`NCat`, length ``N_CATEGORIES``."""
        return np.bincount(self.cat, minlength=N_CATEGORIES).astype(np.int64)

    def base_cycles(self) -> int:
        """Total cycles under the flat cost model."""
        return int(CYCLES_BY_CAT[self.cat].sum())

    def __len__(self) -> int:
        return self.n

    def iter_events(self) -> Iterator[tuple]:
        """Row-wise iteration (slow; for tests and debugging)."""
        for i in range(self.n):
            yield tuple(int(getattr(self, c)[i]) for c in _COLUMNS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(n={self.n})"


class CountingSink:
    """Accumulates cycles and per-category counts; records nothing.

    Also tracks the same totals split by the *translate* flag so that
    Section 3's translate-vs-execute accounting works without a full
    trace.
    """

    records = False

    def __init__(self) -> None:
        self.cycles = 0
        self.translate_cycles = 0
        self.cat_counts = np.zeros(N_CATEGORIES, dtype=np.int64)
        self.instructions = 0

    def emit(self, template: Template, eas=(), takens=(), targets=()) -> None:
        self.cycles += template.cycles
        self.instructions += template.n
        self.cat_counts += template.cat_counts
        if template.n and (template.flags[0] & FLAG_TRANSLATE):
            self.translate_cycles += template.cycles

    def emit_cycles(self, cycles: int) -> None:
        """Charge raw cycles with no instruction stream (lock spins etc.)."""
        self.cycles += cycles


class RecordingSink(CountingSink):
    """Counts *and* records the full native event stream."""

    records = True

    def __init__(self, initial_capacity: int = 1 << 16) -> None:
        super().__init__()
        self._cap = max(int(initial_capacity), 16)
        self._n = 0
        self._cols = {
            c: np.zeros(self._cap, dtype=_DTYPES[c]) for c in _COLUMNS
        }

    def _ensure(self, extra: int) -> None:
        need = self._n + extra
        if need <= self._cap:
            return
        new_cap = self._cap
        while new_cap < need:
            new_cap *= 2
        for c in _COLUMNS:
            grown = np.zeros(new_cap, dtype=_DTYPES[c])
            grown[: self._n] = self._cols[c][: self._n]
            self._cols[c] = grown
        self._cap = new_cap

    def emit(self, template: Template, eas=(), takens=(), targets=()) -> None:
        super().emit(template, eas, takens, targets)
        n = template.n
        if n == 0:
            return
        self._ensure(n)
        s = self._n
        cols = self._cols
        cols["pc"][s : s + n] = template.pc
        cols["cat"][s : s + n] = template.cat
        cols["ea"][s : s + n] = template.ea
        cols["flags"][s : s + n] = template.flags
        cols["target"][s : s + n] = template.target
        cols["dst"][s : s + n] = template.dst
        cols["src1"][s : s + n] = template.src1
        cols["src2"][s : s + n] = template.src2
        if len(template.patch_ea):
            cols["ea"][s + template.patch_ea] = eas
        if len(template.patch_taken):
            rows = s + template.patch_taken
            taken_bits = np.asarray(takens, dtype=np.int16) * FLAG_TAKEN
            cols["flags"][rows] = (cols["flags"][rows] & ~FLAG_TAKEN) | taken_bits
        if len(template.patch_target):
            cols["target"][s + template.patch_target] = targets
        self._n += n

    def trace(self) -> Trace:
        """Freeze the recorded stream into a :class:`Trace`."""
        return Trace(
            **{c: self._cols[c][: self._n].copy() for c in _COLUMNS}
        )

    def __len__(self) -> int:
        return self._n
