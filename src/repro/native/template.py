"""Native-code templates.

A *template* is a short, pre-resolved sequence of native instructions —
an interpreter handler body, a chunk of JIT-compiled code for one
bytecode, a runtime-routine stub.  Templates are built once (at VM
start-up or at JIT-compile time) and then *emitted* into the trace every
time the corresponding work executes, with the per-execution values
(effective addresses, branch outcomes, indirect-jump targets) patched in.

This block-copy design is what makes whole-benchmark native traces
tractable in Python: the inner loop of trace generation is a handful of
numpy slice assignments per bytecode instead of per native instruction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .costs import CYCLES_BY_CAT
from .layout import NATIVE_INSTR_BYTES, TextRegion
from .nisa import (
    FLAG_TAKEN,
    FLAG_WRITE,
    N_CATEGORIES,
    NCat,
    NO_REG,
    TRANSFER_CATS,
)

#: Sentinel marking a field whose value is supplied at emission time.
PATCH = object()


class Template:
    """An immutable, pc-resolved native instruction block.

    Attributes are parallel numpy arrays of length :attr:`n`; the
    ``patch_*`` arrays hold the row indices whose corresponding field is
    filled in per emission, in the order the builder declared them.
    """

    __slots__ = (
        "name",
        "n",
        "pc",
        "cat",
        "ea",
        "flags",
        "target",
        "dst",
        "src1",
        "src2",
        "patch_ea",
        "patch_taken",
        "patch_target",
        "cycles",
        "cat_counts",
    )

    def __init__(
        self,
        name: str,
        pc: np.ndarray,
        cat: np.ndarray,
        ea: np.ndarray,
        flags: np.ndarray,
        target: np.ndarray,
        dst: np.ndarray,
        src1: np.ndarray,
        src2: np.ndarray,
        patch_ea: np.ndarray,
        patch_taken: np.ndarray,
        patch_target: np.ndarray,
    ) -> None:
        self.name = name
        self.n = len(pc)
        self.pc = pc
        self.cat = cat
        self.ea = ea
        self.flags = flags
        self.target = target
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.patch_ea = patch_ea
        self.patch_taken = patch_taken
        self.patch_target = patch_target
        self.cycles = int(CYCLES_BY_CAT[cat].sum())
        self.cat_counts = np.bincount(cat, minlength=N_CATEGORIES).astype(np.int64)

    @property
    def base_pc(self) -> int:
        """pc of the first instruction (templates are contiguous)."""
        return int(self.pc[0]) if self.n else 0

    @property
    def end_pc(self) -> int:
        """pc one past the last instruction."""
        return int(self.pc[-1]) + NATIVE_INSTR_BYTES if self.n else 0

    def __len__(self) -> int:
        return self.n

    def slice_rows(self, start: int, end: int) -> "Template":
        """A sub-template of rows ``[start, end)`` with patch indices
        filtered and rebased (used by the folding interpreter to drop a
        handler's dispatch prefix or back-jump)."""

        def rebase(patch: np.ndarray) -> np.ndarray:
            kept = patch[(patch >= start) & (patch < end)]
            return (kept - start).astype(np.int64)

        sel = slice(start, end)
        return Template(
            name=f"{self.name}[{start}:{end}]",
            pc=self.pc[sel],
            cat=self.cat[sel],
            ea=self.ea[sel],
            flags=self.flags[sel],
            target=self.target[sel],
            dst=self.dst[sel],
            src1=self.src1[sel],
            src2=self.src2[sel],
            patch_ea=rebase(self.patch_ea),
            patch_taken=rebase(self.patch_taken),
            patch_target=rebase(self.patch_target),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Template({self.name!r}, n={self.n}, pc={self.base_pc:#x})"


class TemplateBuilder:
    """Accumulates instructions and resolves them into a :class:`Template`.

    Parameters
    ----------
    name:
        Diagnostic name (e.g. ``"handler:iadd"``).
    base_flags:
        Flag bits OR-ed into every instruction (e.g. ``FLAG_TRANSLATE``
        for code belonging to the JIT's translate routine).
    """

    def __init__(self, name: str = "", base_flags: int = 0) -> None:
        self.name = name
        self.base_flags = base_flags
        self._cat: list[int] = []
        self._ea: list[int] = []
        self._flags: list[int] = []
        self._target: list = []  # int, ("rel", k) or 0
        self._dst: list[int] = []
        self._src1: list[int] = []
        self._src2: list[int] = []
        self._patch_ea: list[int] = []
        self._patch_taken: list[int] = []
        self._patch_target: list[int] = []

    def instr(
        self,
        cat: NCat,
        dst: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        ea=None,
        taken=None,
        target=None,
        flags: int = 0,
    ) -> "TemplateBuilder":
        """Append one instruction.

        ``ea``, ``taken`` and ``target`` may each be a concrete value or
        the :data:`PATCH` sentinel; patched fields are supplied at
        emission time, in declaration order.
        """
        row = len(self._cat)
        f = self.base_flags | flags
        if cat == NCat.STORE:
            f |= FLAG_WRITE

        if ea is PATCH:
            self._patch_ea.append(row)
            ea_val = 0
        elif ea is None:
            ea_val = 0
        else:
            ea_val = int(ea)

        if taken is PATCH:
            self._patch_taken.append(row)
        elif taken is None:
            # Unconditional transfers are always taken.
            if cat in TRANSFER_CATS and cat != NCat.BRANCH:
                f |= FLAG_TAKEN
        elif taken:
            f |= FLAG_TAKEN

        if target is PATCH:
            self._patch_target.append(row)
            tgt_val = 0
        elif target is None:
            tgt_val = 0
        elif isinstance(target, tuple) and target[0] == "rel":
            tgt_val = target  # resolved in build()
        else:
            tgt_val = int(target)

        self._cat.append(int(cat))
        self._ea.append(ea_val)
        self._flags.append(f)
        self._target.append(tgt_val)
        self._dst.append(dst)
        self._src1.append(src1)
        self._src2.append(src2)
        return self

    # Convenience emitters -------------------------------------------------
    def ialu(self, dst=NO_REG, src1=NO_REG, src2=NO_REG, n: int = 1):
        """Append ``n`` integer ALU operations."""
        for _ in range(n):
            self.instr(NCat.IALU, dst=dst, src1=src1, src2=src2)
        return self

    def load(self, dst=NO_REG, src1=NO_REG, ea=PATCH):
        return self.instr(NCat.LOAD, dst=dst, src1=src1, ea=ea)

    def store(self, src1=NO_REG, src2=NO_REG, ea=PATCH):
        return self.instr(NCat.STORE, src1=src1, src2=src2, ea=ea)

    def rel(self, k: int) -> tuple:
        """A branch target ``k`` instructions away from the branch."""
        return ("rel", k)

    def __len__(self) -> int:
        return len(self._cat)

    def build(self, region: TextRegion | None = None, base_pc: int | None = None) -> Template:
        """Resolve pcs (allocating from ``region`` unless ``base_pc`` is
        given) and freeze into a :class:`Template`."""
        n = len(self._cat)
        if base_pc is None:
            if region is None:
                raise ValueError("either region or base_pc must be provided")
            base_pc = region.alloc(n)
        pc = base_pc + NATIVE_INSTR_BYTES * np.arange(n, dtype=np.int64)
        target = np.zeros(n, dtype=np.int64)
        for i, t in enumerate(self._target):
            if isinstance(t, tuple):
                target[i] = pc[i] + t[1] * NATIVE_INSTR_BYTES
            else:
                target[i] = t
        return Template(
            name=self.name,
            pc=pc,
            cat=np.asarray(self._cat, dtype=np.int16),
            ea=np.asarray(self._ea, dtype=np.int64),
            flags=np.asarray(self._flags, dtype=np.int16),
            target=target,
            dst=np.asarray(self._dst, dtype=np.int16),
            src1=np.asarray(self._src1, dtype=np.int16),
            src2=np.asarray(self._src2, dtype=np.int16),
            patch_ea=np.asarray(self._patch_ea, dtype=np.int64),
            patch_taken=np.asarray(self._patch_taken, dtype=np.int64),
            patch_target=np.asarray(self._patch_target, dtype=np.int64),
        )


def concat_templates(name: str, templates: Sequence[Template]) -> Template:
    """Concatenate already-resolved templates into one block.

    Used by the JIT to stitch per-bytecode chunks into a method body
    view; patch indices are re-based onto the combined block.
    """
    if not templates:
        raise ValueError("cannot concatenate zero templates")
    offsets = np.cumsum([0] + [t.n for t in templates[:-1]])
    return Template(
        name=name,
        pc=np.concatenate([t.pc for t in templates]),
        cat=np.concatenate([t.cat for t in templates]),
        ea=np.concatenate([t.ea for t in templates]),
        flags=np.concatenate([t.flags for t in templates]),
        target=np.concatenate([t.target for t in templates]),
        dst=np.concatenate([t.dst for t in templates]),
        src1=np.concatenate([t.src1 for t in templates]),
        src2=np.concatenate([t.src2 for t in templates]),
        patch_ea=np.concatenate(
            [t.patch_ea + off for t, off in zip(templates, offsets)]
        ).astype(np.int64),
        patch_taken=np.concatenate(
            [t.patch_taken + off for t, off in zip(templates, offsets)]
        ).astype(np.int64),
        patch_target=np.concatenate(
            [t.patch_target + off for t, off in zip(templates, offsets)]
        ).astype(np.int64),
    )
