"""Per-category native cycle cost model.

A flat, in-order cost model used for the execution-time accounting of
Section 3 (translate vs execute vs interpret, the oracle analysis).  The
detailed timing studies (Figures 9/10) use the superscalar pipeline
simulator instead; this model only needs to get the *relative* costs of
instruction classes right, which is what the paper's normalized results
depend on.

Costs approximate an UltraSPARC-II-class core: single-cycle integer ALU,
multi-cycle multiply/divide, two-cycle cache-hit loads.
"""

from __future__ import annotations

import numpy as np

from .nisa import N_CATEGORIES, NCat

#: Base cycles charged per native instruction, indexed by :class:`NCat`.
CYCLES_BY_CAT = np.zeros(N_CATEGORIES, dtype=np.int64)
CYCLES_BY_CAT[NCat.NOP] = 1
CYCLES_BY_CAT[NCat.IALU] = 1
CYCLES_BY_CAT[NCat.IMUL] = 4
CYCLES_BY_CAT[NCat.IDIV] = 20
CYCLES_BY_CAT[NCat.FALU] = 2
CYCLES_BY_CAT[NCat.FMUL] = 4
CYCLES_BY_CAT[NCat.FDIV] = 12
CYCLES_BY_CAT[NCat.LOAD] = 2
CYCLES_BY_CAT[NCat.STORE] = 2
CYCLES_BY_CAT[NCat.BRANCH] = 1
CYCLES_BY_CAT[NCat.JUMP] = 1
CYCLES_BY_CAT[NCat.IJUMP] = 3
CYCLES_BY_CAT[NCat.CALL] = 1
CYCLES_BY_CAT[NCat.ICALL] = 3
CYCLES_BY_CAT[NCat.RET] = 2


def cycles_for_categories(cats: np.ndarray) -> int:
    """Total base cycles for an array of category codes."""
    return int(CYCLES_BY_CAT[np.asarray(cats, dtype=np.int64)].sum())
