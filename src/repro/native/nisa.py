"""The native (SPARC-like) instruction-set model.

The architectural studies are trace driven: the runtime emits, for every
piece of work it does, the stream of native instructions an UltraSPARC
binary would have executed.  This module defines the vocabulary of that
stream — instruction categories, the register file, and the grouping of
categories into the classes the paper's instruction-mix figure uses.
"""

from __future__ import annotations

from enum import IntEnum


class NCat(IntEnum):
    """Native instruction categories."""

    NOP = 0
    IALU = 1       # integer add/sub/logical/shift/sethi/move
    IMUL = 2
    IDIV = 3
    FALU = 4       # fp add/sub/convert/compare
    FMUL = 5
    FDIV = 6
    LOAD = 7
    STORE = 8
    BRANCH = 9     # conditional branch
    JUMP = 10      # unconditional direct jump
    IJUMP = 11     # register-indirect jump (switch dispatch, virtual call)
    CALL = 12      # direct call
    ICALL = 13     # indirect call (through a register / vtable)
    RET = 14       # return


N_CATEGORIES = len(NCat)

#: Categories that access memory.
MEMORY_CATS = frozenset({NCat.LOAD, NCat.STORE})

#: Categories that transfer control.
TRANSFER_CATS = frozenset(
    {NCat.BRANCH, NCat.JUMP, NCat.IJUMP, NCat.CALL, NCat.ICALL, NCat.RET}
)

#: Control transfers whose target comes from a register (hard to predict).
INDIRECT_CATS = frozenset({NCat.IJUMP, NCat.ICALL, NCat.RET})

#: Categories counted as arithmetic in the mix summary.
ARITH_CATS = frozenset(
    {NCat.IALU, NCat.IMUL, NCat.IDIV, NCat.FALU, NCat.FMUL, NCat.FDIV}
)

#: Floating-point categories.
FLOAT_CATS = frozenset({NCat.FALU, NCat.FMUL, NCat.FDIV})

#: Mix buckets used by the paper's Figure 2.
MIX_BUCKETS = ("load", "store", "branch", "call", "ijump", "jump", "ret",
               "ialu", "fpu", "nop")


def mix_bucket(cat: int) -> str:
    """Map a category to its Figure-2 mix bucket."""
    c = NCat(cat)
    if c is NCat.LOAD:
        return "load"
    if c is NCat.STORE:
        return "store"
    if c is NCat.BRANCH:
        return "branch"
    if c in (NCat.CALL, NCat.ICALL):
        return "call"
    if c is NCat.IJUMP:
        return "ijump"
    if c is NCat.JUMP:
        return "jump"
    if c is NCat.RET:
        return "ret"
    if c in (NCat.FALU, NCat.FMUL, NCat.FDIV):
        return "fpu"
    if c is NCat.NOP:
        return "nop"
    return "ialu"


# ---------------------------------------------------------------------------
# Register file
# ---------------------------------------------------------------------------
# A flat 32-register integer file, SPARC-style in spirit.  Register 0 is
# hard-wired zero.  The interpreter binary uses a fixed set of "VM
# registers"; JIT-compiled code allocates from the remaining window.

N_REGISTERS = 32

REG_ZERO = 0      # hard-wired zero
REG_VPC = 1       # interpreter: virtual (bytecode) pc
REG_SP = 2        # interpreter: operand-stack pointer
REG_LOCALS = 3    # interpreter: locals base pointer
REG_FP = 4        # frame pointer
REG_TMP0 = 5
REG_TMP1 = 6
REG_TMP2 = 7
REG_RETVAL = 8    # return-value register (o0-like)
REG_ARG0 = 8
REG_ARG1 = 9
REG_ARG2 = 10
REG_THREAD = 11   # current-thread pointer

#: First register available to the JIT's register allocator.
JIT_REG_BASE = 12
#: Number of registers the JIT may allocate (the rest are VM-reserved).
JIT_REG_COUNT = N_REGISTERS - JIT_REG_BASE

NO_REG = -1


# ---------------------------------------------------------------------------
# Event flag bits (stored in the trace "flags" column)
# ---------------------------------------------------------------------------

FLAG_TAKEN = 1        # control transfer was taken
FLAG_WRITE = 2        # memory access is a store
FLAG_TRANSLATE = 4    # event belongs to the JIT translate portion
FLAG_CLASSLOAD = 8    # event belongs to class loading / resolution
FLAG_SYNC = 16        # event belongs to a synchronization operation
