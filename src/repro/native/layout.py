"""Simulated address-space layout for the Java runtime.

Every component of the runtime lives at a fixed region of a simulated
32-bit address space, mirroring how a real JVM process is laid out.  The
architectural studies (cache interference between the translator and the
code it installs, instruction fetch from the code cache, bytecode reads
treated as *data* by the interpreter, ...) depend on these regions being
distinct and stable.

All addresses are byte addresses; native instructions are 4 bytes wide
(SPARC-like fixed-width encoding).
"""

from __future__ import annotations

#: Width of one native instruction in bytes (SPARC fixed 32-bit encoding).
NATIVE_INSTR_BYTES = 4

#: Width of one stack slot / machine word in bytes.
WORD_BYTES = 4

# ---------------------------------------------------------------------------
# Text (instruction) regions
# ---------------------------------------------------------------------------

#: The interpreter binary: dispatch loop plus one handler per opcode.
INTERP_TEXT_BASE = 0x0100_0000
INTERP_TEXT_SIZE = 0x0010_0000

#: The JIT compiler (``translate``) binary: per-opcode code generators.
JITC_TEXT_BASE = 0x0200_0000
JITC_TEXT_SIZE = 0x0010_0000

#: The code cache where translated native code is installed.  Writes to
#: this region during installation are *data* stores; subsequent
#: executions of the translated method fetch the same addresses as
#: *instructions*.
CODE_CACHE_BASE = 0x0300_0000
CODE_CACHE_SIZE = 0x0080_0000

#: VM runtime support routines (class loader, allocator, lock manager,
#: native-method stubs).
VM_TEXT_BASE = 0x0380_0000
VM_TEXT_SIZE = 0x0010_0000

# ---------------------------------------------------------------------------
# Data regions
# ---------------------------------------------------------------------------

#: VM metadata: method blocks, vtables, constant pools, monitor cache.
VM_DATA_BASE = 0x0400_0000
VM_DATA_SIZE = 0x0100_0000

#: Loaded bytecode streams.  The interpreter *reads these as data*.
BYTECODE_BASE = 0x0500_0000
BYTECODE_SIZE = 0x0100_0000

#: Java thread stacks (frames: locals + operand stacks), 64 KB per thread.
STACK_BASE = 0x0600_0000
STACK_SIZE_PER_THREAD = 0x0001_0000
STACK_REGION_SIZE = 0x0100_0000

#: The garbage-collected object heap.
HEAP_BASE = 0x0800_0000
HEAP_SIZE = 0x1000_0000

#: Static (class) variables.
STATICS_BASE = 0x0A00_0000
STATICS_SIZE = 0x0010_0000

#: Raw class-file images, read during class loading.
CLASSFILE_BASE = 0x0B00_0000
CLASSFILE_SIZE = 0x0100_0000


def thread_stack_base(thread_id: int) -> int:
    """Base address of the stack region for a given thread."""
    return STACK_BASE + thread_id * STACK_SIZE_PER_THREAD


def region_name(address: int) -> str:
    """Human-readable name of the region an address falls in.

    Used by diagnostics and by tests asserting that traces touch the
    regions they are supposed to.
    """
    ranges = (
        (INTERP_TEXT_BASE, INTERP_TEXT_SIZE, "interp_text"),
        (JITC_TEXT_BASE, JITC_TEXT_SIZE, "jitc_text"),
        (CODE_CACHE_BASE, CODE_CACHE_SIZE, "code_cache"),
        (VM_TEXT_BASE, VM_TEXT_SIZE, "vm_text"),
        (VM_DATA_BASE, VM_DATA_SIZE, "vm_data"),
        (BYTECODE_BASE, BYTECODE_SIZE, "bytecode"),
        (STACK_BASE, STACK_REGION_SIZE, "stack"),
        (HEAP_BASE, HEAP_SIZE, "heap"),
        (STATICS_BASE, STATICS_SIZE, "statics"),
        (CLASSFILE_BASE, CLASSFILE_SIZE, "classfile"),
    )
    for base, size, name in ranges:
        if base <= address < base + size:
            return name
    return "unmapped"


class TextRegion:
    """Bump allocator handing out native-instruction pcs inside a region.

    The interpreter and JIT-compiler binaries allocate their handler /
    generator routines from their regions once at start-up; the code
    cache allocates a fresh range for every translated method.
    """

    def __init__(self, base: int, size: int, name: str = "") -> None:
        self.base = base
        self.size = size
        self.name = name
        self._cursor = base

    def alloc(self, n_instructions: int) -> int:
        """Reserve ``n_instructions`` slots; return the base pc."""
        if n_instructions < 0:
            raise ValueError("cannot allocate a negative instruction count")
        pc = self._cursor
        self._cursor += n_instructions * NATIVE_INSTR_BYTES
        if self._cursor > self.base + self.size:
            raise MemoryError(
                f"text region {self.name or hex(self.base)} exhausted "
                f"({self._cursor - self.base} bytes used of {self.size})"
            )
        return pc

    @property
    def used_bytes(self) -> int:
        """Number of bytes allocated so far."""
        return self._cursor - self.base

    def reset(self) -> None:
        """Release everything (used when a VM instance is discarded)."""
        self._cursor = self.base
