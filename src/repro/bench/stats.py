"""Statistically honest measurement primitives.

The original ``BENCH_*`` guards compared *single* samples — exactly the
methodology "Misleading Microbenchmarks on the Java Virtual Machines"
(PAPERS.md) shows can invert conclusions: a measurement taken during
warmup (JIT translation, cache population, allocator ramp-up) is an
estimate of a transient, not of the quantity under study.  This module
provides the three pieces an honest harness needs:

- :func:`detect_steady` — warmup/steady-state detection over a stream of
  per-iteration samples via a sliding-window coefficient-of-variation
  test: the warmup prefix is the shortest prefix whose removal leaves a
  suffix with CV below threshold (and long enough to trust).  A stream
  that never stabilizes — drift, bimodality past the prefix — is
  reported *non-steady* rather than silently averaged.
- :func:`bootstrap_ci` — seeded, deterministic bootstrap confidence
  intervals for any statistic of the steady samples (median by
  default), so guards can compare intervals instead of point estimates.
- :func:`summarize` / :func:`steady_report` — the JSON-ready record the
  ``BENCH_*`` emitters embed and CI asserts against.

Everything is pure and deterministic: the bootstrap is driven by an
explicit seed, so two runs over the same samples produce byte-identical
reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Default sliding-window length for the CV test.
DEFAULT_WINDOW = 4

#: Default CV threshold declaring a suffix steady.  Wall-clock samples
#: on shared CI machines sit well under this when warm; a stream still
#: paying one-time costs (or drifting) does not.
DEFAULT_CV = 0.25

#: Bootstrap resamples (deterministic given the seed).
DEFAULT_RESAMPLES = 2000


def coefficient_of_variation(samples) -> float:
    """stdev/mean of ``samples`` (population stdev; 0.0 for n<2)."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 2:
        return 0.0
    mean = float(arr.mean())
    if mean == 0.0:
        return math.inf if float(arr.std()) else 0.0
    return float(arr.std() / abs(mean))


def summarize(samples) -> dict:
    """Point statistics of a sample stream (JSON-ready)."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        return {"n": 0}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "stdev": float(arr.std()),
        "cv": coefficient_of_variation(arr),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


@dataclass
class SteadyVerdict:
    """Outcome of warmup/steady-state detection."""

    steady: bool
    #: samples discarded as warmup (0 when the whole stream is steady;
    #: equals ``n`` when no steady suffix exists).
    warmup: int
    #: CV of the accepted suffix (of the best suffix tried, when not
    #: steady).
    cv: float
    window: int
    threshold: float
    samples: list = field(default_factory=list)

    @property
    def steady_samples(self) -> list:
        return self.samples[self.warmup:] if self.steady else []

    def to_dict(self) -> dict:
        out = {
            "steady": self.steady,
            "warmup_discarded": self.warmup,
            "cv": round(self.cv, 6),
            "window": self.window,
            "cv_threshold": self.threshold,
        }
        if self.steady:
            out["steady_stats"] = summarize(self.steady_samples)
        return out


def detect_steady(samples, window: int = DEFAULT_WINDOW,
                  cv_threshold: float = DEFAULT_CV) -> SteadyVerdict:
    """Find the warmup prefix of ``samples`` via a sliding CV test.

    The stream is *steady from i* when the entire suffix
    ``samples[i:]`` has CV below ``cv_threshold`` — judging the full
    suffix (not just one window) rejects slow drift and late bimodality
    that a local window would miss.  The verdict is steady when some
    ``i`` with at least ``window`` remaining samples qualifies; the
    smallest such ``i`` is the warmup length.  Fewer than ``window``
    samples can never be declared steady: refusing to judge is the
    honest answer for a stream too short to characterize.
    """
    arr = [float(s) for s in samples]
    n = len(arr)
    best_cv = math.inf
    for i in range(0, n - window + 1):
        cv = coefficient_of_variation(arr[i:])
        best_cv = min(best_cv, cv)
        if cv <= cv_threshold:
            return SteadyVerdict(True, i, cv, window, cv_threshold, arr)
    return SteadyVerdict(False, n, best_cv if n else math.inf,
                         window, cv_threshold, arr)


def bootstrap_ci(samples, stat=np.median, confidence: float = 0.95,
                 resamples: int = DEFAULT_RESAMPLES, seed: int = 0) -> dict:
    """Seeded bootstrap confidence interval for ``stat(samples)``.

    Returns ``{point, lo, hi, confidence, resamples, rel_margin}`` where
    ``rel_margin`` is the half-width of the interval relative to the
    point estimate — the number a tolerance check should look at.
    Deterministic given ``seed``.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("bootstrap_ci needs at least one sample")
    point = float(stat(arr))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    dist = np.sort(np.asarray(stat(arr[idx], axis=1), dtype=np.float64))
    alpha = (1.0 - confidence) / 2.0
    lo = float(np.quantile(dist, alpha))
    hi = float(np.quantile(dist, 1.0 - alpha))
    rel = ((hi - lo) / (2.0 * abs(point))) if point else math.inf
    return {
        "point": point,
        "lo": lo,
        "hi": hi,
        "confidence": confidence,
        "resamples": resamples,
        "rel_margin": round(rel, 6),
    }


def steady_report(samples, window: int = DEFAULT_WINDOW,
                  cv_threshold: float = DEFAULT_CV,
                  confidence: float = 0.95, seed: int = 0) -> dict:
    """Detection verdict + bootstrap CI of the steady median, JSON-ready.

    The one-call form the bench emitters use: runs
    :func:`detect_steady`, and when a steady suffix exists attaches the
    bootstrap interval of its median (the interval is omitted — not
    faked — for non-steady streams).
    """
    verdict = detect_steady(samples, window=window,
                            cv_threshold=cv_threshold)
    out = verdict.to_dict()
    out["samples"] = [round(float(s), 6) for s in samples]
    if verdict.steady:
        out["median_ci"] = bootstrap_ci(verdict.steady_samples,
                                        confidence=confidence, seed=seed)
    return out


def percentiles(values, points=(50, 90, 95, 99, 99.9)) -> dict:
    """Named percentiles of ``values`` (ints in, ints out for cycles)."""
    arr = np.asarray(values)
    if arr.size == 0:
        return {f"p{str(p).replace('.', '_')}": None for p in points}
    out = {}
    for p in points:
        key = f"p{str(p).replace('.', '_')}"
        out[key] = int(round(float(np.percentile(arr, p))))
    out["max"] = int(arr.max())
    return out
