"""Kernel benchmark harness: scalar vs. vector replay wall-clock.

Times the *analysis* phase of selected experiments (the figure/table
``run`` functions) under each simulation kernel, against a warm trace
cache but cold simulator state — the replay memo is dropped before
every timed invocation, so each measurement includes trace load,
stream derivation and simulation, exactly what a fresh CLI run pays.

Each timing doubles as an equivalence check: the scalar and vector
result dictionaries must be identical, or the benchmark fails.

``python -m repro.bench`` writes the measurements as JSON
(``BENCH_kernels.json``) and can compare the speedups against a
committed baseline (``--check``), failing on regressions beyond a
tolerance — ratios, not absolute seconds, so the check is
machine-independent.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from ..analysis.replay import clear_replay_memo
from ..arch.kernels import ENV_VAR, KERNELS
from ..experiments.base import collect_jobs, get_experiment
from ..obs import TRACER, measure_disabled_overhead
from .stats import DEFAULT_CV, DEFAULT_WINDOW, bootstrap_ci, detect_steady

#: The replay-dominated experiments the acceptance targets name.
DEFAULT_TARGETS = ("fig3", "fig7", "table3")


def _time_target(fn, kernel: str, repeats: int, scale: str,
                 benchmarks) -> tuple[float, list[float], dict]:
    """(best_seconds, all_seconds, result_dict) for one kernel."""
    saved = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = kernel
    try:
        seconds = []
        result = None
        for _ in range(repeats):
            clear_replay_memo()
            started = time.perf_counter()
            result = fn(scale=scale, benchmarks=benchmarks)
            seconds.append(time.perf_counter() - started)
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved
    return min(seconds), seconds, result.to_dict()


def prewarm(targets, scale: str, benchmarks, max_workers: int = 1) -> None:
    """Compute and cache every trace the targets will replay."""
    from ..analysis.parallel import run_jobs

    jobs = collect_jobs(targets, scale=scale, benchmarks=benchmarks)
    if jobs:
        run_jobs(jobs, max_workers=max_workers)


def bench_analysis(scale: str = "s0", benchmarks=None) -> dict:
    """Per-workload wall-clock of each static-analysis pass.

    Times the four dataflow passes (typed verification, liveness,
    constant propagation, whole-program escape) over every bytecode
    method of each workload with the library linked, reporting totals
    and per-method averages.  This is the analysis cost a
    ``lock_elision``/``jit_opt`` VM run or a ``repro.lint`` invocation
    pays up front.
    """
    from ..analysis.dataflow.constprop import solve_constants
    from ..analysis.dataflow.escape import EscapeSummaries
    from ..analysis.dataflow.liveness import dead_stores, pop_only_pushes
    from ..analysis.dataflow.typestate import typecheck_method
    from ..vm.library import ensure_library
    from ..workloads.base import SPEC_BENCHMARKS, get_workload

    report = {}
    for name in benchmarks or SPEC_BENCHMARKS:
        program = get_workload(name).build(scale)
        ensure_library(program)
        methods = [m for m in program.all_methods()
                   if not m.is_native and m.code]

        def timed(thunk):
            started = time.perf_counter()
            thunk()
            return time.perf_counter() - started

        passes = {
            "typecheck": timed(
                lambda: [typecheck_method(m, program) for m in methods]),
            "liveness": timed(
                lambda: [(dead_stores(m), pop_only_pushes(m))
                         for m in methods]),
            "constprop": timed(
                lambda: [solve_constants(m) for m in methods]),
            "escape": timed(lambda: EscapeSummaries(program)),
        }
        n = len(methods)
        entry = {"methods": n}
        for pname, secs in passes.items():
            entry[f"{pname}_ms"] = round(1000 * secs, 3)
            entry[f"{pname}_us_per_method"] = round(1e6 * secs / max(1, n), 1)
        entry["total_ms"] = round(1000 * sum(passes.values()), 3)
        report[name] = entry
    return report


def _steady_median(runs, window: int, cv_threshold: float):
    """(median seconds, steady-verdict dict) for one sample stream.

    The median is taken over the steady suffix when one exists —
    discarding the warmup iterations instead of hoping ``min()``
    dodged them — and over all samples otherwise (with the verdict
    recording that the stream never stabilized).
    """
    verdict = detect_steady(runs, window=window, cv_threshold=cv_threshold)
    samples = verdict.steady_samples if verdict.steady else runs
    median = float(np.median(np.asarray(samples, dtype=np.float64)))
    out = verdict.to_dict()
    if len(samples) >= 2:
        out["median_ci"] = bootstrap_ci(samples)
    return median, out


def run_bench(targets=DEFAULT_TARGETS, scale: str = "s0",
              benchmarks=None, repeats: int = 3,
              analysis: bool = True,
              steady_window: int = DEFAULT_WINDOW,
              steady_cv: float = DEFAULT_CV,
              progress=None) -> dict:
    """Benchmark ``targets`` under every kernel.

    Returns ``{"meta": ..., "targets": {id: {scalar_seconds,
    vector_seconds, speedup, identical}}}``.  ``identical`` is the
    scalar-vs-vector result comparison — the report keeps it per
    target rather than raising, so one divergence doesn't hide the
    other measurements.

    Each kernel's timing is a *sample stream*, not a single number:
    the per-repeat samples run through warmup detection
    (:func:`repro.bench.stats.detect_steady`) and the reported
    ``speedup`` is the ratio of steady medians with bootstrap CIs
    alongside — fewer than ``steady_window`` repeats can never be
    declared steady, so ``--strict-steady`` also enforces a minimum
    sample count.
    """
    say = progress or (lambda msg: None)
    say(f"pre-warming trace cache for {', '.join(targets)} "
        f"(scale={scale})")
    prewarm(targets, scale, benchmarks)

    report: dict = {
        "meta": {
            "scale": scale,
            "benchmarks": list(benchmarks) if benchmarks else None,
            "repeats": repeats,
            "kernels": list(KERNELS),
            "steady": {"window": steady_window, "cv_threshold": steady_cv},
            "speedup_basis": "steady-median",
        },
        "targets": {},
    }
    for exp_id in targets:
        fn = get_experiment(exp_id)
        entry: dict = {}
        results = {}
        medians = {}
        for kernel in KERNELS:
            with TRACER.span("bench.target", id=exp_id, kernel=kernel):
                best, runs, result = _time_target(fn, kernel, repeats,
                                                  scale, benchmarks)
            median, steady = _steady_median(runs, steady_window, steady_cv)
            entry[f"{kernel}_seconds"] = round(best, 4)
            entry[f"{kernel}_median"] = round(median, 4)
            entry[f"{kernel}_runs"] = [round(s, 4) for s in runs]
            entry[f"{kernel}_steady"] = steady
            medians[kernel] = median
            results[kernel] = result
            say(f"{exp_id:8s} {kernel:6s} median {median:7.3f}s "
                f"(best {best:.3f}s of {len(runs)}, "
                f"steady={steady['steady']})")
        entry["speedup"] = round(
            medians["scalar"] / max(medians["vector"], 1e-9), 2
        )
        entry["identical"] = results["scalar"] == results["vector"]
        say(f"{exp_id:8s} speedup {entry['speedup']:.2f}x "
            f"identical={entry['identical']}")
        report["targets"][exp_id] = entry
    if analysis:
        say("timing static-analysis passes")
        report["analysis"] = bench_analysis(scale, benchmarks)
        for name, entry in report["analysis"].items():
            say(f"{name:10s} {entry['methods']:3d} methods "
                f"{entry['total_ms']:8.1f}ms total")
    if not TRACER.enabled:
        # Record the disabled tracer's per-call cost alongside the
        # kernel numbers so the zero-overhead-when-off property is a
        # tracked measurement, not an assumption.
        probe = measure_disabled_overhead(100_000)
        report["obs_overhead"] = {
            "check_ns": round(probe["check_ns"], 1),
            "span_ns": round(probe["span_ns"], 1),
        }
        say(f"disabled tracer: {report['obs_overhead']['check_ns']}ns "
            f"check, {report['obs_overhead']['span_ns']}ns span()")
    return report


def check_regression(report: dict, baseline: dict,
                     tolerance: float = 0.2) -> list[str]:
    """Speedup regressions of ``report`` against ``baseline``.

    A target regresses when its measured speedup falls below the
    baseline speedup by more than ``tolerance`` (relative).  Absolute
    times are never compared, so a slower CI machine doesn't fail the
    check — only a kernel that lost its advantage does.
    """
    failures = []
    for exp_id, base in baseline.get("targets", {}).items():
        current = report["targets"].get(exp_id)
        if current is None:
            failures.append(f"{exp_id}: missing from benchmark run")
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if current["speedup"] < floor:
            failures.append(
                f"{exp_id}: speedup {current['speedup']:.2f}x below "
                f"floor {floor:.2f}x (baseline {base['speedup']:.2f}x, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def nonsteady_targets(report: dict) -> list[str]:
    """``"<target>/<kernel>"`` entries whose sample stream never
    reached detected steady state (what ``--strict-steady`` gates on)."""
    out = []
    for exp_id, entry in report.get("targets", {}).items():
        for kernel in report["meta"]["kernels"]:
            steady = entry.get(f"{kernel}_steady")
            if steady is not None and not steady["steady"]:
                out.append(f"{exp_id}/{kernel}")
    return out


def save_report(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)
