"""``python -m repro.bench`` — scalar-vs-vector kernel benchmarks.

Examples::

    python -m repro.bench --out BENCH_kernels.json
    python -m repro.bench --scale s0 --benchmarks db,compress \
        --repeats 2 --check benchmarks/bench_baseline.json
"""

from __future__ import annotations

import argparse
import os
import sys

from .. import obs
from . import (DEFAULT_TARGETS, check_regression, load_report,
               nonsteady_targets, run_bench, save_report)
from .stats import DEFAULT_CV, DEFAULT_WINDOW


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the scalar vs. vector simulation kernels.",
    )
    parser.add_argument("--targets", default=",".join(DEFAULT_TARGETS),
                        help="comma-separated experiment ids "
                             f"(default {','.join(DEFAULT_TARGETS)})")
    parser.add_argument("--scale", default="s1",
                        choices=("s0", "s1", "s10"),
                        help="workload input scale (default s1)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per kernel; best is kept")
    parser.add_argument("--no-analysis", action="store_true",
                        help="skip the static-analysis pass timing section")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the report JSON here")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare speedups against a baseline report")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed relative speedup drop vs. the "
                             "baseline (default 0.2)")
    parser.add_argument("--steady-window", type=int, default=DEFAULT_WINDOW,
                        help="minimum steady suffix length for warmup "
                             f"detection (default {DEFAULT_WINDOW})")
    parser.add_argument("--steady-cv", type=float, default=DEFAULT_CV,
                        help="coefficient-of-variation threshold declaring "
                             f"a sample suffix steady (default {DEFAULT_CV})")
    parser.add_argument("--strict-steady", action="store_true",
                        help="exit nonzero when any timed sample stream "
                             "never reaches detected steady state")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="trace cache directory (default: "
                             "$REPRO_TRACE_CACHE or .trace_cache)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record span/counter events and write them "
                             "as JSONL (also enabled by $REPRO_OBS)")
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        os.environ["REPRO_TRACE_CACHE"] = args.cache_dir

    trace_path = args.trace or os.environ.get("REPRO_OBS") or None
    if trace_path:
        obs.TRACER.enable()
        obs.TRACER.reset()

    targets = [t for t in args.targets.split(",") if t]
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    report = run_bench(targets=targets, scale=args.scale,
                       benchmarks=benchmarks, repeats=args.repeats,
                       analysis=not args.no_analysis,
                       steady_window=args.steady_window,
                       steady_cv=args.steady_cv,
                       progress=lambda msg: print(msg, flush=True))

    status = 0
    broken = [t for t, e in report["targets"].items()
              if not e["identical"]]
    if broken:
        print(f"FAIL: scalar/vector results differ for: "
              f"{', '.join(broken)}", file=sys.stderr)
        status = 1

    nonsteady = nonsteady_targets(report)
    if nonsteady:
        level = "FAIL" if args.strict_steady else "warning"
        print(f"{level}: non-steady sample streams: "
              f"{', '.join(nonsteady)}", file=sys.stderr)
        if args.strict_steady:
            status = 1

    if args.out:
        save_report(report, args.out)
        print(f"wrote {args.out}")
        manifest = obs.build_manifest(
            "repro.bench",
            argv=argv if argv is not None else sys.argv[1:],
            extra={"targets": targets, "scale": args.scale,
                   "benchmarks": benchmarks, "repeats": args.repeats,
                   "steady": report["meta"]["steady"],
                   "strict_steady": args.strict_steady},
        )
        manifest_path = obs.manifest_path_for(args.out)
        obs.write_manifest(manifest_path, manifest)
        print(f"wrote manifest to {manifest_path}")
    if trace_path:
        n_events = obs.write_events(trace_path)
        print(f"wrote {n_events} events to {trace_path}")

    if args.check:
        failures = check_regression(report, load_report(args.check),
                                    tolerance=args.tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(f"speedups within {args.tolerance:.0%} of "
                  f"{args.check}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
