"""Control-flow graph construction over ``isa.Instr`` lists.

Basic blocks are maximal single-entry straight-line runs; edges carry a
kind tag (``fall``, ``branch``, ``goto``, ``switch``) so clients can
distinguish the fall-through path of a conditional from its taken path.
"""

from __future__ import annotations

from ...isa.method import Method
from ...isa.opcodes import OPINFO, TERMINATOR_OPS


class BasicBlock:
    """Instructions ``[start, end)`` of the owning method."""

    __slots__ = ("index", "start", "end", "succs", "preds")

    def __init__(self, index: int, start: int, end: int) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.succs: list[tuple[int, str]] = []   # (block index, edge kind)
        self.preds: list[int] = []

    def __repr__(self) -> str:
        succs = ", ".join(f"{b}:{k}" for b, k in self.succs)
        return f"BasicBlock(#{self.index} [{self.start}:{self.end}) -> {succs})"


class CFG:
    """Blocks plus instruction->block mapping for one method."""

    __slots__ = ("method", "blocks", "block_index")

    def __init__(self, method: Method, blocks: list[BasicBlock],
                 block_index: list[int]) -> None:
        self.method = method
        self.blocks = blocks
        self.block_index = block_index   # instruction idx -> block idx

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def reachable_rpo(self) -> list[int]:
        """Block indices reachable from entry, in reverse postorder."""
        seen = set()
        order: list[int] = []

        def visit(b: int) -> None:
            # Iterative DFS; methods are small but recursion limits are rude.
            stack = [(b, iter(self.blocks[b].succs))]
            seen.add(b)
            while stack:
                block, succs = stack[-1]
                advanced = False
                for succ, _kind in succs:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(block)
                    stack.pop()

        visit(0)
        order.reverse()
        return order

    def unreachable_instrs(self) -> list[int]:
        reach = set(self.reachable_rpo())
        out = []
        for block in self.blocks:
            if block.index not in reach:
                out.extend(range(block.start, block.end))
        return out


def build_cfg(method: Method) -> CFG:
    """Build the CFG of a (structurally verified) bytecode method."""
    code = method.code
    n = len(code)
    if n == 0:
        raise ValueError(f"{method.qualified_name}: no code to build a CFG for")

    leaders = {0}
    for i, instr in enumerate(code):
        if instr.op in TERMINATOR_OPS:
            if i + 1 < n:
                leaders.add(i + 1)
            for t in instr.branch_targets():
                if 0 <= t < n:
                    leaders.add(t)
    starts = sorted(leaders)

    blocks: list[BasicBlock] = []
    block_index = [0] * n
    for bi, start in enumerate(starts):
        end = starts[bi + 1] if bi + 1 < len(starts) else n
        blocks.append(BasicBlock(bi, start, end))
        for i in range(start, end):
            block_index[i] = bi

    for block in blocks:
        last = code[block.end - 1]
        kind = OPINFO[last.op].kind
        if kind == "return":
            continue
        if kind == "goto":
            block.succs.append((block_index[last.a], "goto"))
            continue
        if kind == "switch":
            seen = set()
            for t in last.branch_targets():
                bi = block_index[t]
                if bi not in seen:
                    seen.add(bi)
                    block.succs.append((bi, "switch"))
            continue
        if kind == "branch":
            block.succs.append((block_index[last.a], "branch"))
        # fall through (also for blocks split by a label, not a terminator)
        if block.end < n:
            fall = block_index[block.end]
            if all(s != fall for s, _ in block.succs) or kind != "branch":
                block.succs.append((fall, "fall"))

    for block in blocks:
        for succ, _kind in block.succs:
            blocks[succ].preds.append(block.index)
    return CFG(method, blocks, block_index)
