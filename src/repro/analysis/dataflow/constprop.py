"""Forward constant and copy propagation.

Folds with the interpreter's exact semantics (``vm.values`` int32
wrapping, fcmp NaN rules), so a branch this pass calls constant really
is constant at run time.

Value lattice per local / stack slot::

    ("c", v)   known constant (int or float)
    ("l", i)   copy of local ``i``'s value at load time (stack only)
    "nac"      not-a-constant (top)

Locals above the parameter slots start as ``("c", 0)`` — frames
zero-initialize locals, so the "uninitialized" read the typed verifier
warns about is, semantically, a constant zero.  Parameters start
``nac``.

Relation to ``vm/folding.py``: that module implements picoJava-style
*dispatch* folding — a trace-time sink that merges adjacent simple
bytecodes into one dispatch to model a folding frontend.  It operates
on dynamic traces and changes only the cost model.  This pass is the
static, semantics-level subsumption of the compile-time half of that
idea: constants are proven per program point and constant branches are
reported (``RL003``) rather than merely counted at run time.  The two
deliberately coexist — the folding sink stays as the picoJava
comparison's mechanism, experiments keep their ``interp-fold`` mode.
"""

from __future__ import annotations

from ...isa.method import Method
from ...isa.opcodes import Op, OPINFO
from ...isa.pool import FloatConst
from ...vm import values
from .cfg import CFG, build_cfg
from .findings import Finding
from .solver import DataflowProblem, Solution, solve

NAC = "nac"

_INT_FOLD = {
    Op.IADD: lambda a, b: values.i32(a + b),
    Op.ISUB: lambda a, b: values.i32(a - b),
    Op.IMUL: lambda a, b: values.i32(a * b),
    Op.IDIV: values.idiv,
    Op.IREM: values.irem,
    Op.ISHL: values.ishl,
    Op.ISHR: values.ishr,
    Op.IUSHR: values.iushr,
    Op.IAND: lambda a, b: values.i32(a & b),
    Op.IOR: lambda a, b: values.i32(a | b),
    Op.IXOR: lambda a, b: values.i32(a ^ b),
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
}

_UN_FOLD = {
    Op.INEG: lambda v: values.i32(-v),
    Op.FNEG: lambda v: -v,
    Op.I2F: float,
    Op.F2I: lambda v: values.i32(int(v)),
    Op.I2B: values.i8,
    Op.I2C: values.u16,
    Op.I2S: values.i16,
}

_IF1_TESTS = {
    Op.IFEQ: lambda v: v == 0,
    Op.IFNE: lambda v: v != 0,
    Op.IFLT: lambda v: v < 0,
    Op.IFGE: lambda v: v >= 0,
    Op.IFGT: lambda v: v > 0,
    Op.IFLE: lambda v: v <= 0,
}

_IF2_TESTS = {
    Op.IF_ICMPEQ: lambda a, b: a == b,
    Op.IF_ICMPNE: lambda a, b: a != b,
    Op.IF_ICMPLT: lambda a, b: a < b,
    Op.IF_ICMPGE: lambda a, b: a >= b,
    Op.IF_ICMPGT: lambda a, b: a > b,
    Op.IF_ICMPLE: lambda a, b: a <= b,
}


class ConstProblem(DataflowProblem):
    """States are ``(stack, locals)`` tuples of lattice values."""

    direction = "forward"

    def boundary(self, method: Method):
        locs = [NAC] * method.max_locals
        for i in range(method.n_param_slots, method.max_locals):
            locs[i] = ("c", 0)
        return ((), tuple(locs))

    def bottom(self, method: Method):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return (tuple(_join(x, y) for x, y in zip(a[0], b[0])),
                tuple(_join(x, y) for x, y in zip(a[1], b[1])))

    def transfer(self, method: Method, idx: int, instr, state):
        if state is None:
            return None
        stack, locs = list(state[0]), list(state[1])
        op = instr.op
        info = OPINFO[op]
        kind = info.kind

        def pop():
            return stack.pop() if stack else NAC

        if op is Op.ICONST:
            stack.append(("c", instr.a))
        elif op is Op.FCONST:
            stack.append(("c", float(instr.a)))
        elif op is Op.LDC:
            entry = method.pool[instr.a]
            stack.append(("c", entry.value)
                         if isinstance(entry, FloatConst) else NAC)
        elif kind == "const":
            stack.append(NAC)    # ACONST_NULL: refs are not folded
        elif kind == "load_local":
            v = locs[instr.a]
            stack.append(v if v[0] == "c" else ("l", instr.a))
        elif kind == "store_local":
            v = pop()
            if v[0] == "l":
                v = locs[v[1]] if locs[v[1]][0] == "c" else NAC
            _kill_copies(stack, locs[instr.a], instr.a)
            locs[instr.a] = v
        elif kind == "iinc":
            v = locs[instr.a]
            _kill_copies(stack, v, instr.a)
            locs[instr.a] = (("c", values.i32(v[1] + instr.b))
                             if v[0] == "c" else NAC)
        elif kind == "stack":
            if op is Op.POP:
                pop()
            elif op is Op.DUP:
                stack.append(stack[-1] if stack else NAC)
            elif op is Op.DUP_X1:
                b = pop()
                a = pop()
                stack.extend((b, a, b))
            else:  # SWAP
                b = pop()
                a = pop()
                stack.extend((b, a))
        elif kind == "binop":
            b = _value(pop(), locs)
            a = _value(pop(), locs)
            fold = _INT_FOLD.get(op)
            if fold and a[0] == "c" and b[0] == "c":
                try:
                    stack.append(("c", fold(a[1], b[1])))
                except ZeroDivisionError:
                    stack.append(NAC)   # traps at runtime; don't fold
            elif op in (Op.FCMPL, Op.FCMPG) and a[0] == "c" and b[0] == "c":
                stack.append(("c", values.fcmp(a[1], b[1],
                                               -1 if op is Op.FCMPL else 1)))
            elif op is Op.FDIV and a[0] == "c" and b[0] == "c" and b[1] != 0.0:
                stack.append(("c", a[1] / b[1]))
            else:
                stack.append(NAC)
        elif kind == "unop":
            v = _value(pop(), locs)
            if v[0] == "c":
                try:
                    stack.append(("c", _UN_FOLD[op](v[1])))
                except (OverflowError, ValueError):   # e.g. f2i of inf/nan
                    stack.append(NAC)
            else:
                stack.append(NAC)
        else:
            pops, pushes = _delta(method, instr)
            del stack[len(stack) - pops:]
            stack.extend(NAC for _ in range(pushes))
        return (tuple(stack), tuple(locs))


def _delta(method, instr):
    from ...isa.verifier import _stack_delta
    return _stack_delta(method, instr)


def _join(a, b):
    if a == b:
        # 0 == 0.0 in Python; don't conflate int and float constants
        if a[0] == "c" and type(a[1]) is not type(b[1]):
            return NAC
        return a
    return NAC


def _value(v, locs):
    """Resolve a copy to its current constant, if any."""
    if v[0] == "l":
        cur = locs[v[1]]
        return cur if cur[0] == "c" else NAC
    return v


def _kill_copies(stack, old_value, local):
    """A write to ``local`` invalidates stack copies of its old value.

    If the old value was a known constant the copies keep it; otherwise
    they degrade to not-a-constant (the copy holds the *old*, now
    unknowable, value)."""
    for i, v in enumerate(stack):
        if v[0] == "l" and v[1] == local:
            stack[i] = old_value if old_value[0] == "c" else NAC


def solve_constants(method: Method, cfg: CFG | None = None) -> Solution:
    return solve(method, ConstProblem(), cfg=cfg)


def constant_branches(method: Method, cfg: CFG | None = None) -> list[Finding]:
    """``RL003`` findings for conditional branches whose outcome is fixed."""
    cfg = cfg or build_cfg(method)
    solution = solve_constants(method, cfg=cfg)
    findings = []
    qn = method.qualified_name
    for i, instr in enumerate(method.code):
        state = solution.in_states[i]
        if state is None:
            continue
        stack, locs = state
        op = instr.op
        verdict = None
        if op in _IF1_TESTS and stack:
            v = _value(stack[-1], locs)
            if v[0] == "c":
                verdict = _IF1_TESTS[op](v[1])
        elif op in _IF2_TESTS and len(stack) >= 2:
            b = _value(stack[-1], locs)
            a = _value(stack[-2], locs)
            if a[0] == "c" and b[0] == "c":
                verdict = _IF2_TESTS[op](a[1], b[1])
        if verdict is not None:
            findings.append(Finding(
                "RL003", qn, i,
                f"{OPINFO[op].mnemonic} is always "
                f"{'taken' if verdict else 'fall-through'}"))
    return findings
