"""Abstract-interpretation dataflow framework over the bytecode ISA.

A small classical-dataflow toolkit: CFG construction (`cfg`), a generic
forward/backward worklist solver over join semilattices (`solver`), and
four concrete analyses built on it:

* `typestate` — per-slot/per-local type inference; upgrades the
  structural verifier into a typed verifier emitting JVM-style stack
  maps and rejecting type-confused programs.
* `liveness` — backward local liveness plus def-use chains; consumed by
  the JIT to kill dead stores and shrink spill traffic.
* `constprop` — forward constant/copy propagation with the interpreter's
  exact int32 semantics; powers the constant-branch lint findings.
* `escape` — interprocedural escape analysis over NEW/field/invoke
  flows; proves allocation sites thread-local so the VM can elide
  MONITORENTER/MONITOREXIT on non-escaping receivers.

Everything here is pure Python over ``repro.isa`` structures — no numpy,
no VM state — so the analyses run at verify time or from the
``repro.lint`` CLI without touching simulator machinery.
"""

from __future__ import annotations

from .cfg import CFG, BasicBlock, build_cfg
from .findings import Finding, Severity
from .solver import DataflowProblem, Solution, check_fixpoint, solve

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "DataflowProblem",
    "Solution",
    "solve",
    "check_fixpoint",
    "Finding",
    "Severity",
]
