"""Generic forward/backward worklist solver over join semilattices.

A :class:`DataflowProblem` supplies the lattice (``bottom``/``join``),
the boundary state, and a per-instruction transfer function; the solver
iterates blocks to a fixpoint and exposes per-instruction in/out states.

Conventions:

* Forward problems: ``in_states[i]`` is the fact *before* instruction
  ``i`` in program order, ``out_states[i]`` the fact after it.
* Backward problems: ``out_states[i]`` is the fact after instruction
  ``i`` (the state the transfer function consumes), ``in_states[i]``
  the fact before it (what the transfer function produces).  Exit
  blocks (those ending in a return) seed their after-state from
  ``boundary``.

Unreachable instructions keep ``None`` in both state lists.
"""

from __future__ import annotations

from ...isa.method import Method
from ...isa.opcodes import OPINFO
from .cfg import CFG, build_cfg


class DataflowProblem:
    """Subclass and override; states must be immutable values."""

    direction = "forward"          # or "backward"

    def boundary(self, method: Method):
        raise NotImplementedError

    def bottom(self, method: Method):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def transfer(self, method: Method, idx: int, instr, state):
        raise NotImplementedError

    def equals(self, a, b) -> bool:
        return a == b


class Solution:
    """Per-instruction dataflow facts (see module docstring)."""

    __slots__ = ("cfg", "in_states", "out_states")

    def __init__(self, cfg: CFG, in_states: list, out_states: list) -> None:
        self.cfg = cfg
        self.in_states = in_states
        self.out_states = out_states


def _exit_blocks(cfg: CFG) -> list[int]:
    return [b.index for b in cfg.blocks
            if OPINFO[cfg.method.code[b.end - 1].op].kind == "return"]


def solve(method: Method, problem: DataflowProblem,
          cfg: CFG | None = None) -> Solution:
    """Run ``problem`` to a fixpoint over ``method`` and return facts."""
    cfg = cfg or build_cfg(method)
    code = method.code
    n = len(code)
    in_states: list = [None] * n
    out_states: list = [None] * n
    reachable = cfg.reachable_rpo()
    rpo_pos = {b: i for i, b in enumerate(reachable)}

    if problem.direction == "forward":
        block_in = {b: problem.bottom(method) for b in reachable}
        block_in[0] = problem.boundary(method)
        worklist = list(reachable)
        pending = set(worklist)
        while worklist:
            worklist.sort(key=rpo_pos.__getitem__)
            b = worklist.pop(0)
            pending.discard(b)
            block = cfg.blocks[b]
            state = block_in[b]
            for i in range(block.start, block.end):
                in_states[i] = state
                state = problem.transfer(method, i, code[i], state)
                out_states[i] = state
            for succ, _kind in block.succs:
                if succ not in block_in:
                    continue
                merged = problem.join(block_in[succ], state)
                if not problem.equals(merged, block_in[succ]):
                    block_in[succ] = merged
                    if succ not in pending:
                        pending.add(succ)
                        worklist.append(succ)
        return Solution(cfg, in_states, out_states)

    # backward
    exits = set(_exit_blocks(cfg))
    block_out = {}
    for b in reachable:
        block_out[b] = (problem.boundary(method) if b in exits
                        else problem.bottom(method))
    worklist = list(reachable)
    pending = set(worklist)
    while worklist:
        worklist.sort(key=rpo_pos.__getitem__, reverse=True)
        b = worklist.pop(0)
        pending.discard(b)
        block = cfg.blocks[b]
        state = block_out[b]
        for i in range(block.end - 1, block.start - 1, -1):
            out_states[i] = state
            state = problem.transfer(method, i, code[i], state)
            in_states[i] = state
        for pred in cfg.blocks[b].preds:
            if pred not in block_out:
                continue
            # A predecessor's after-state absorbs this block's before-state;
            # exit blocks keep their boundary contribution in the join.
            base = block_out[pred]
            merged = problem.join(base, state)
            if not problem.equals(merged, base):
                block_out[pred] = merged
                if pred not in pending:
                    pending.add(pred)
                    worklist.append(pred)
    return Solution(cfg, in_states, out_states)


def check_fixpoint(method: Method, problem: DataflowProblem,
                   solution: Solution) -> bool:
    """True iff ``solution`` is a genuine fixpoint of ``problem``.

    Re-applies the transfer function to every reachable instruction and
    re-checks edge consistency (each edge's source fact is absorbed by
    its target fact).  Used by the property tests to show solver runs
    are idempotent.
    """
    cfg = solution.cfg
    code = method.code
    reachable = set(cfg.reachable_rpo())
    for b in reachable:
        block = cfg.blocks[b]
        if problem.direction == "forward":
            for i in range(block.start, block.end):
                redone = problem.transfer(method, i, code[i],
                                          solution.in_states[i])
                if not problem.equals(redone, solution.out_states[i]):
                    return False
            for succ, _kind in block.succs:
                if succ not in reachable:
                    continue
                tgt = solution.in_states[cfg.blocks[succ].start]
                merged = problem.join(tgt, solution.out_states[block.end - 1])
                if not problem.equals(merged, tgt):
                    return False
        else:
            for i in range(block.end - 1, block.start - 1, -1):
                redone = problem.transfer(method, i, code[i],
                                          solution.out_states[i])
                if not problem.equals(redone, solution.in_states[i]):
                    return False
            for succ, _kind in block.succs:
                if succ not in reachable:
                    continue
                src = solution.out_states[block.end - 1]
                merged = problem.join(
                    src, solution.in_states[cfg.blocks[succ].start])
                if not problem.equals(merged, src):
                    return False
    return True
