"""Interprocedural escape analysis over NEW / field / invoke flows.

Proves allocation sites *thread-local*: an object allocated at a
non-escaping site is only ever reachable from the allocating frame (and
callee frames during calls), so every monitor operation on it is by the
allocating thread and the VM may elide the lock — the static analogue
of the paper's Table 3 observation that most lock acquisitions never
contend.

Per-parameter escape summaries form a three-point lattice::

    NO_ESCAPE (0)  <  RETURNED (1)  <  GLOBAL (2)

``RETURNED`` means the callee may return (an alias of) the argument —
the value stays in the caller's hands (``StringBuffer.append`` returning
``this`` is the canonical case).  ``GLOBAL`` means it may become
reachable beyond the caller: stored to a static or an object field,
stored into an array, passed to an unknown callee, or handed to an
unannotated native.

Intraprocedural facts are origin sets flowing through stack and locals:
``("p", slot)`` for parameters, ``("a", idx)`` for allocation sites.
Summaries are solved by an outer fixpoint over the whole program —
monotone over a finite lattice, so it terminates; virtual calls join
the summaries of every by-name candidate target reachable from the
static receiver class.  Native methods default to all-``GLOBAL``
unless they carry a ``native_escape`` annotation.

Deliberate conservatisms (documented in docs/analysis.md): field
stores are field-insensitive (the stored value escapes even if the base
object is local), and an allocation returned out of its allocating
method is treated as escaped rather than tracked into callers.
"""

from __future__ import annotations

from ...isa.method import Method, Program
from ...isa.opcodes import Op, OPINFO
from ...isa.pool import MethodRef
from ...isa.verifier import VerifyError, _stack_delta
from .cfg import build_cfg
from .findings import Finding
from .solver import DataflowProblem, solve

NO_ESCAPE = 0
RETURNED = 1
GLOBAL = 2

_NATIVE_LEVELS = {"none": NO_ESCAPE, "returned": RETURNED, "global": GLOBAL}

_EMPTY: frozenset = frozenset()


class _OriginProblem(DataflowProblem):
    """Forward flow of origin sets; states are ``(stack, locals)``."""

    direction = "forward"

    def __init__(self, summaries: "EscapeSummaries") -> None:
        self.summaries = summaries
        # events observed by the reporting pass (None while iterating)
        self.events = None

    def boundary(self, method: Method):
        locs = [_EMPTY] * method.max_locals
        for i in range(method.n_param_slots):
            locs[i] = frozenset(((("p", i)),))
        return ((), tuple(locs))

    def bottom(self, method: Method):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return (tuple(x | y for x, y in zip(a[0], b[0])),
                tuple(x | y for x, y in zip(a[1], b[1])))

    def _escape(self, origins) -> None:
        if self.events is not None:
            self.events["global"] |= origins

    def transfer(self, method: Method, idx: int, instr, state):
        if state is None:
            return None
        stack, locs = list(state[0]), list(state[1])
        op = instr.op
        kind = OPINFO[op].kind

        def pop():
            return stack.pop() if stack else _EMPTY

        if kind == "load_local":
            stack.append(locs[instr.a])
        elif kind == "store_local":
            locs[instr.a] = pop()
        elif kind == "stack":
            if op is Op.POP:
                pop()
            elif op is Op.DUP:
                t = pop()
                stack.extend((t, t))
            elif op is Op.DUP_X1:
                b = pop()
                a = pop()
                stack.extend((b, a, b))
            else:  # SWAP
                b = pop()
                a = pop()
                stack.extend((b, a))
        elif kind == "new":
            if op is not Op.NEW:
                pop()   # array length
            stack.append(frozenset((("a", idx),)))
        elif kind == "field":
            if op is Op.PUTSTATIC:
                self._escape(pop())
            elif op is Op.PUTFIELD:
                self._escape(pop())   # the stored value escapes
                pop()                 # the base object does not
            elif op is Op.GETFIELD:
                pop()
                stack.append(_EMPTY)
            else:  # GETSTATIC
                stack.append(_EMPTY)
        elif kind == "array":
            if OPINFO[op].pops == 3:     # typed array stores
                self._escape(pop())      # stored value escapes the frame
                pop()
                pop()
            elif op is Op.ARRAYLENGTH:
                pop()
                stack.append(_EMPTY)
            else:                        # typed array loads
                pop()
                pop()
                stack.append(_EMPTY)
        elif kind == "invoke":
            result = self._transfer_invoke(method, instr, pop)
            if result is not None:
                stack.append(result)
        elif kind == "typecheck":
            t = pop()
            stack.append(t if op is Op.CHECKCAST else _EMPTY)
        elif kind == "return":
            if op is Op.ARETURN:
                t = pop()
                if self.events is not None:
                    self.events["returned"] |= t
            elif OPINFO[op].pops:
                pop()
        elif kind == "monitor":
            t = pop()
            if self.events is not None:
                self.events["monitors"].setdefault(idx, set()).update(t)
        else:
            # const/iinc/binop/unop/branch/switch/misc: nothing tracked
            try:
                pops, pushes = _stack_delta(method, instr)
            except VerifyError:
                return (tuple(stack), tuple(locs))
            if pops:
                del stack[len(stack) - pops:]
            stack.extend(_EMPTY for _ in range(pushes))
        return (tuple(stack), tuple(locs))

    def _transfer_invoke(self, method: Method, instr, pop):
        ref = method.pool[instr.a]
        if not isinstance(ref, MethodRef):
            return None
        n_args = ref.argc + (0 if instr.op is Op.INVOKESTATIC else 1)
        # stack: [receiver,] arg1 .. argN — pop args last-first
        arg_origins = [pop() for _ in range(n_args)]
        arg_origins.reverse()
        targets = self.summaries._candidates(instr.op, ref)
        result = _EMPTY
        if targets is None:
            # unknown callee: everything handed to it escapes
            for origins in arg_origins:
                self._escape(origins)
        else:
            for slot, origins in enumerate(arg_origins):
                level = max((self.summaries.summary(t)[slot]
                             for t in targets), default=GLOBAL)
                if level == GLOBAL:
                    self._escape(origins)
                elif level == RETURNED:
                    result = result | origins
        return result if ref.has_result else None


class MethodEscape:
    """Per-method analysis product."""

    __slots__ = ("summary", "alloc_sites", "escaped_allocs",
                 "elidable_allocs", "monitor_sites")

    def __init__(self, summary, alloc_sites, escaped_allocs,
                 elidable_allocs, monitor_sites) -> None:
        self.summary = summary                   # per-param escape levels
        self.alloc_sites = alloc_sites           # reachable NEW* indices
        self.escaped_allocs = escaped_allocs
        self.elidable_allocs = elidable_allocs   # provably thread-local
        self.monitor_sites = monitor_sites       # idx -> True if elidable


class EscapeSummaries:
    """Whole-program escape fixpoint plus per-method results."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._summary: dict[Method, tuple] = {}
        self._info: dict[Method, MethodEscape | None] = {}
        self._subclasses = self._index_subclasses(program)
        self._solve()

    # -- hierarchy ----------------------------------------------------------

    @staticmethod
    def _index_subclasses(program: Program) -> dict[str, list]:
        """class name -> classes at-or-below it (by super_name chains)."""
        index: dict[str, list] = {name: [] for name in program.classes}
        for cls in program.classes.values():
            cur = cls
            seen = set()
            while cur is not None and cur.name not in seen:
                seen.add(cur.name)
                if cur.name in index:
                    index[cur.name].append(cls)
                cur = (program.classes.get(cur.super_name)
                       if cur.super_name else None)
        return index

    def _resolve_static(self, class_name: str, method_name: str):
        cls = self.program.classes.get(class_name)
        while cls is not None:
            m = cls.methods.get(method_name)
            if m is not None:
                return m
            cls = (self.program.classes.get(cls.super_name)
                   if cls.super_name else None)
        return None

    def _candidates(self, op, ref: MethodRef):
        """Possible targets of a call, or None when unresolvable."""
        if ref.class_name not in self.program.classes:
            return None
        if op in (Op.INVOKESTATIC, Op.INVOKESPECIAL):
            m = self._resolve_static(ref.class_name, ref.method_name)
            return [m] if m is not None else None
        # virtual: the static resolution plus every subclass override
        out = []
        m = self._resolve_static(ref.class_name, ref.method_name)
        if m is not None:
            out.append(m)
        for cls in self._subclasses.get(ref.class_name, ()):
            m = cls.methods.get(ref.method_name)
            if m is not None and m not in out:
                out.append(m)
        return out or None

    # -- fixpoint -----------------------------------------------------------

    def summary(self, method: Method) -> tuple:
        s = self._summary.get(method)
        if s is not None:
            return s
        if method.is_native:
            ann = getattr(method, "native_escape", None)
            if ann is None:
                s = (GLOBAL,) * method.n_param_slots
            else:
                s = tuple(_NATIVE_LEVELS[a] for a in ann)
                if len(s) < method.n_param_slots:
                    s = s + (GLOBAL,) * (method.n_param_slots - len(s))
        else:
            s = (NO_ESCAPE,) * method.n_param_slots   # optimistic seed
        self._summary[method] = s
        return s

    def _analyze(self, method: Method):
        """One intraprocedural pass under the current summaries."""
        problem = _OriginProblem(self)
        cfg = build_cfg(method)
        solution = solve(method, problem, cfg=cfg)
        events = {"global": set(), "returned": set(), "monitors": {}}
        problem.events = events
        alloc_sites = set()
        for i, instr in enumerate(method.code):
            if solution.in_states[i] is None:
                continue
            if OPINFO[instr.op].kind == "new":
                alloc_sites.add(i)
            problem.transfer(method, i, instr, solution.in_states[i])
        problem.events = None
        return events, alloc_sites

    def _solve(self) -> None:
        bytecode_methods = [m for m in self.program.all_methods()
                            if not m.is_native and m.code]
        for m in bytecode_methods:
            self.summary(m)   # seed
        broken: set[Method] = set()
        changed = True
        while changed:
            changed = False
            for m in bytecode_methods:
                if m in broken:
                    continue
                try:
                    events, _allocs = self._analyze(m)
                except VerifyError:
                    broken.add(m)
                    self._summary[m] = (GLOBAL,) * m.n_param_slots
                    changed = True
                    continue
                new = []
                for slot in range(m.n_param_slots):
                    p = ("p", slot)
                    if p in events["global"]:
                        new.append(GLOBAL)
                    elif p in events["returned"]:
                        new.append(RETURNED)
                    else:
                        new.append(NO_ESCAPE)
                new = tuple(new)
                if new != self._summary[m]:
                    self._summary[m] = new
                    changed = True

        # final reporting pass per method
        for m in bytecode_methods:
            if m in broken:
                self._info[m] = None
                continue
            events, alloc_sites = self._analyze(m)
            escaped = {i for i in alloc_sites
                       if ("a", i) in events["global"]
                       or ("a", i) in events["returned"]}
            elidable = frozenset(alloc_sites - escaped)
            monitor_sites = {}
            for idx, origins in events["monitors"].items():
                monitor_sites[idx] = bool(origins) and all(
                    o[0] == "a" and o[1] in elidable for o in origins)
            self._info[m] = MethodEscape(
                self._summary[m], frozenset(alloc_sites),
                frozenset(escaped), elidable, monitor_sites)

    # -- public -------------------------------------------------------------

    def info(self, method: Method) -> MethodEscape | None:
        return self._info.get(method)

    def elidable_allocs(self, method: Method) -> frozenset:
        info = self._info.get(method)
        return info.elidable_allocs if info is not None else frozenset()

    def findings(self, method: Method) -> list[Finding]:
        """``RL005`` info findings for provably-elidable monitor sites."""
        info = self._info.get(method)
        if info is None:
            return []
        qn = method.qualified_name
        return [Finding("RL005", qn, idx,
                        "monitor operand is a non-escaping allocation; "
                        "the lock is elidable")
                for idx, ok in sorted(info.monitor_sites.items()) if ok]


def analyze_program(program: Program) -> EscapeSummaries:
    return EscapeSummaries(program)
