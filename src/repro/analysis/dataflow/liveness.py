"""Backward liveness of locals, def-use chains, and stack def-use.

Three related facts the JIT's optimizer consumes:

* :func:`live_out_locals` — per instruction, the set of locals that may
  still be read after it; a ``store_local``/``iinc`` whose target is
  not in its live-out set is a dead store (the frame write can be
  dropped from the generated code without changing any later load).
* :func:`def_use_chains` — reaching-definition chains mapping each
  store site to the load sites it can reach (forward problem; shows the
  solver running both directions over the same CFG).
* :func:`stack_def_use` — which instruction produced each operand-stack
  value and who consumes it; used to skip spill stores for values whose
  only consumers are ``POP``.
"""

from __future__ import annotations

from ...isa.method import Method
from ...isa.opcodes import Op, OPINFO
from ...isa.verifier import _stack_delta
from .cfg import CFG, build_cfg
from .solver import DataflowProblem, Solution, solve


class LivenessProblem(DataflowProblem):
    """Backward may-liveness of local slots; states are frozensets."""

    direction = "backward"

    def boundary(self, method: Method):
        return frozenset()           # nothing outlives a return

    def bottom(self, method: Method):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, method: Method, idx: int, instr, state):
        kind = OPINFO[instr.op].kind
        if kind == "store_local":
            return state - {instr.a}
        if kind == "load_local" or kind == "iinc":
            # iinc both reads and writes; the read keeps it live upward
            return state | {instr.a}
        return state


def live_out_locals(method: Method, cfg: CFG | None = None) -> Solution:
    """Solve liveness; ``solution.out_states[i]`` is live-after of ``i``."""
    return solve(method, LivenessProblem(), cfg=cfg)


def dead_stores(method: Method, cfg: CFG | None = None) -> list[int]:
    """Indices of ``store_local``/``iinc`` whose written local is dead.

    Writes to parameter slots are reported too — the caller's argument
    copy is the store that made them live, and an unread overwrite is
    still dead.  Unreachable instructions are not reported here (the
    CFG pass flags them separately).
    """
    cfg = cfg or build_cfg(method)
    solution = live_out_locals(method, cfg=cfg)
    out = []
    for i, instr in enumerate(method.code):
        if solution.out_states[i] is None:
            continue
        kind = OPINFO[instr.op].kind
        if kind in ("store_local", "iinc") and instr.a not in solution.out_states[i]:
            out.append(i)
    return out


class ReachingDefsProblem(DataflowProblem):
    """Forward reaching definitions of locals.

    States map local -> frozenset of def sites; site ``-1`` is the
    method-entry definition (parameters and the VM's zero-fill).
    """

    direction = "forward"

    def boundary(self, method: Method):
        return tuple(frozenset((-1,)) for _ in range(method.max_locals))

    def bottom(self, method: Method):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return tuple(x | y for x, y in zip(a, b))

    def transfer(self, method: Method, idx: int, instr, state):
        if state is None:
            return None
        kind = OPINFO[instr.op].kind
        if kind in ("store_local", "iinc"):
            state = list(state)
            state[instr.a] = frozenset((idx,))
            return tuple(state)
        return state


def def_use_chains(method: Method, cfg: CFG | None = None) -> dict[int, set[int]]:
    """Map each local def site to the load/iinc sites it reaches.

    Every ``store_local``/``iinc`` index appears as a key (possibly with
    an empty use set — a dead store); the pseudo-def ``-1`` covers
    parameters and zero-initialized locals.
    """
    cfg = cfg or build_cfg(method)
    solution = solve(method, ReachingDefsProblem(), cfg=cfg)
    chains: dict[int, set[int]] = {}
    for i, instr in enumerate(method.code):
        kind = OPINFO[instr.op].kind
        if kind in ("store_local", "iinc") and solution.in_states[i] is not None:
            chains.setdefault(i, set())
    for i, instr in enumerate(method.code):
        state = solution.in_states[i]
        if state is None:
            continue
        kind = OPINFO[instr.op].kind
        if kind in ("load_local", "iinc"):
            for d in state[instr.a]:
                chains.setdefault(d, set()).add(i)
    return chains


class StackDefsProblem(DataflowProblem):
    """Forward producer tracking: each stack slot carries the frozenset
    of instruction indices that may have produced its value.  Pure
    stack shuffles (DUP/SWAP/DUP_X1) propagate producer sets; every
    other push produces a fresh def at its own index."""

    direction = "forward"

    def boundary(self, method: Method):
        return ()

    def bottom(self, method: Method):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return tuple(x | y for x, y in zip(a, b))

    def transfer(self, method: Method, idx: int, instr, state):
        if state is None:
            return None
        op = instr.op
        stack = list(state)
        if op is Op.DUP:
            stack.append(stack[-1])
            return tuple(stack)
        if op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
            return tuple(stack)
        if op is Op.DUP_X1:
            b = stack.pop()
            a = stack.pop()
            stack.extend((b, a, b))
            return tuple(stack)
        pops, pushes = _stack_delta(method, instr)
        del stack[len(stack) - pops:]
        stack.extend(frozenset((idx,)) for _ in range(pushes))
        return tuple(stack)


def stack_def_use(method: Method, cfg: CFG | None = None) -> dict[int, set[tuple[int, Op]]]:
    """Map each producing instruction to its ``(consumer idx, op)`` set."""
    cfg = cfg or build_cfg(method)
    problem = StackDefsProblem()
    solution = solve(method, problem, cfg=cfg)
    consumers: dict[int, set[tuple[int, Op]]] = {}
    for i, instr in enumerate(method.code):
        state = solution.in_states[i]
        if state is None:
            continue
        op = instr.op
        if op in (Op.DUP, Op.SWAP, Op.DUP_X1):
            continue   # shuffles move values, they don't consume them
        pops, _pushes = _stack_delta(method, instr)
        for producers in state[len(state) - pops:]:
            for p in producers:
                consumers.setdefault(p, set()).add((i, op))
    return consumers


def pop_only_pushes(method: Method, cfg: CFG | None = None) -> set[int]:
    """Producer indices whose every consumer is a plain ``POP``.

    The value's computation may still be needed for its side effects,
    but its *spill store* is not: nothing ever reloads the slot.  Only
    single-push producers qualify (shuffles and invokes are excluded by
    construction: shuffles aren't producers, invokes push at most one).
    """
    cfg = cfg or build_cfg(method)
    consumers = stack_def_use(method, cfg=cfg)
    out = set()
    for producer, uses in consumers.items():
        if uses and all(op is Op.POP for _i, op in uses):
            out.add(producer)
    return out
