"""Stable, machine-readable analysis findings.

Every diagnostic the analyses (and ``repro.lint``) can produce carries a
stable code so golden files and CI can pin exact sets of findings.

Code families:

* ``RS0xx`` — structural verification (stack shape, ranges, pool).
* ``RM0xx`` — monitor balance.
* ``RT0xx`` — type errors from the typed verifier.
* ``RL0xx`` — lint-grade dataflow facts (dead code, dead stores,
  constant branches, uninitialized reads, elidable locks).
* ``RC0xx`` — interprocedural concurrency facts (lockset races,
  static lock-elision safety) from ``repro.analysis.concurrency``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Ordered severities; ``error`` findings make ``repro.lint --strict`` fail.
Severity = str
SEVERITIES: tuple[Severity, ...] = ("error", "warning", "info")

#: code -> (severity, short description)
CODES: dict[str, tuple[Severity, str]] = {
    # structural (raised as VerifyError by isa.verifier)
    "RS001": ("error", "operand stack underflow"),
    "RS002": ("error", "operand stack overflow"),
    "RS003": ("error", "inconsistent stack depth at merge"),
    "RS004": ("error", "control falls off the end of the code"),
    "RS005": ("error", "branch target out of range"),
    "RS006": ("error", "local variable index out of range"),
    "RS007": ("error", "bad constant-pool operand"),
    "RS008": ("error", "empty code array"),
    # monitor balance (isa.verifier)
    "RM001": ("error", "method returns while holding a monitor"),
    "RM002": ("error", "monitorexit without a matching monitorenter"),
    "RM003": ("error", "inconsistent monitor depth at merge"),
    # typed verifier (dataflow.typestate)
    "RT001": ("error", "stack operand has conflicting types at merge"),
    "RT002": ("error", "operand type mismatch"),
    "RT003": ("error", "load of type-conflicted local"),
    "RT004": ("error", "return kind disagrees with method signature"),
    # dataflow lint facts
    "RL001": ("warning", "unreachable code"),
    "RL002": ("warning", "dead store to local"),
    "RL003": ("warning", "branch condition is compile-time constant"),
    "RL004": ("warning", "read of a local no path initializes"),
    "RL005": ("info", "monitor on provably thread-local object (elidable)"),
    # concurrency analysis (analysis.concurrency)
    "RC001": ("warning", "possible data race on an instance field"),
    "RC002": ("warning", "possible data race on a static field"),
    "RC003": ("warning", "possible data race on array elements"),
    "RC004": ("info", "allocation consistently locked by one thread "
                      "(statically elidable beyond escape analysis)"),
    "RC005": ("info", "allocation of a lock-shared class "
                      "(elision pre-blacklisted)"),
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic, anchored to a method and instruction index."""

    code: str
    method: str          # qualified method name
    index: int           # instruction index, -1 for whole-method findings
    message: str

    @property
    def severity(self) -> Severity:
        return CODES[self.code][0]

    @property
    def key(self) -> str:
        """Stable identity used by golden-findings files."""
        return f"{self.code} {self.method}@{self.index}"

    def render(self) -> str:
        return f"[{self.code}:{self.severity}] {self.method}@{self.index}: {self.message}"
