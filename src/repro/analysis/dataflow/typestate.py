r"""Typed bytecode verification: per-slot/per-local type inference.

The structural verifier (`isa.verifier`) proves stack *depths*; this
pass proves stack *types*.  Method signatures in this ISA carry no
parameter or return types (name + arity only), so parameters enter as
the wildcard ``any`` — the receiver slot of instance methods gets the
precise declaring-class reference type — and precision grows from
constants, field types (fields *are* typed) and allocation sites.

Type lattice (join semilattice, ``conflict`` on top)::

              conflict
         /    |     |     \
      int  float   any     |
                  / | \    |
            (ref C) (arr t) null       uninit -- joins to conflict

``any`` is the sound wildcard for untyped parameters and invoke
results: it satisfies every operand check.  ``conflict`` is the join
of incompatible types; *consuming* it is an error (``RT001``/``RT003``),
merely carrying it across a join is not — matching the JVM's
``unusable`` treatment of dead locals.

The fixpoint is solved with the generic framework; findings are
collected in a single post-fixpoint reporting pass so iteration order
cannot duplicate or hide diagnostics.  Per-branch-target entry frames
are exposed as JVM-style stack maps on ``method.stack_maps``.
"""

from __future__ import annotations

from ...isa.method import Method, Program
from ...isa.opcodes import Op, OPINFO, ArrayType
from ...isa.pool import ClassRef, FieldRef, FloatConst, MethodRef, StringConst
from ...isa.verifier import VerifyError
from .findings import Finding
from .solver import DataflowProblem, Solution, solve

# -- the type lattice ---------------------------------------------------------

INT = "int"
FLOAT = "float"
NULL = "null"
ANY = "any"
CONFLICT = "conflict"
UNINIT = "uninit"

_ARRAY_ELEM = {
    ArrayType.BOOLEAN: "bool",
    ArrayType.CHAR: "char",
    ArrayType.FLOAT: "float",
    ArrayType.BYTE: "byte",
    ArrayType.SHORT: "short",
    ArrayType.INT: "int",
}

#: which array element kinds each typed array op accepts
_ARRAY_OP_ELEMS = {
    Op.IALOAD: ("int", "short"), Op.IASTORE: ("int", "short"),
    Op.FALOAD: ("float",), Op.FASTORE: ("float",),
    Op.AALOAD: ("ref",), Op.AASTORE: ("ref",),
    Op.BALOAD: ("byte", "bool"), Op.BASTORE: ("byte", "bool"),
    Op.CALOAD: ("char",), Op.CASTORE: ("char",),
}

_ARRAY_LOAD_RESULT = {
    Op.IALOAD: INT, Op.FALOAD: FLOAT, Op.AALOAD: ("ref", None),
    Op.BALOAD: INT, Op.CALOAD: INT,
}


def ref(name: str | None = None):
    return ("ref", name)


def arr(elem: str):
    return ("arr", elem)


def is_reflike(t) -> bool:
    return t in (NULL, ANY) or (isinstance(t, tuple) and t[0] in ("ref", "arr"))


def is_intlike(t) -> bool:
    return t in (INT, ANY)


def is_floatlike(t) -> bool:
    return t in (FLOAT, ANY)


def join_type(a, b):
    if a == b:
        return a
    if a is None:
        return b
    if b is None:
        return a
    if CONFLICT in (a, b) or UNINIT in (a, b):
        return CONFLICT
    if ANY in (a, b):
        # the wildcard absorbs anything it could legally be
        other = b if a == ANY else a
        return ANY if other in (INT, FLOAT) or is_reflike(other) else CONFLICT
    if is_reflike(a) and is_reflike(b):
        if a == NULL:
            return b
        if b == NULL:
            return a
        # distinct ref/arr types: common supertype is the plain object ref
        return ref(None)
    return CONFLICT


# -- the dataflow problem -----------------------------------------------------

def _entry_locals(method: Method):
    locals_ = [ANY] * method.max_locals
    for i in range(method.n_param_slots, method.max_locals):
        locals_[i] = UNINIT
    if not method.is_static and method.max_locals > 0 and method.jclass:
        locals_[0] = ref(method.jclass.name)
    return tuple(locals_)


def _resolve_field(program: Program | None, fref: FieldRef):
    """Declared lattice type of a field, or ANY when unresolvable."""
    if program is None:
        return ANY
    cls = program.classes.get(fref.class_name)
    while cls is not None:
        for field in cls.fields:
            if field.name == fref.field_name:
                return {"int": INT, "byte": INT, "char": INT,
                        "float": FLOAT, "ref": ref(None)}[field.ftype]
        cls = program.classes.get(cls.super_name) if cls.super_name else None
    return ANY


class TypeProblem(DataflowProblem):
    """Forward type inference.  States are ``(stack, locals)`` tuples.

    ``transfer`` optionally reports findings through ``self.report``;
    during fixpoint iteration it is ``None`` so repeated visits stay
    silent, and the post-pass re-runs transfers with reporting on.
    """

    direction = "forward"

    def __init__(self, program: Program | None = None) -> None:
        self.program = program
        self.report = None   # callable(code, idx, message) or None

    def boundary(self, method: Method):
        return ((), _entry_locals(method))

    def bottom(self, method: Method):
        return None   # "no path reaches here yet"; join treats None as identity

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        stack_a, locals_a = a
        stack_b, locals_b = b
        # depths agree (structural verifier ran first)
        stack = tuple(join_type(x, y) for x, y in zip(stack_a, stack_b))
        locs = tuple(join_type(x, y) for x, y in zip(locals_a, locals_b))
        return (stack, locs)

    # -- operand checks, silent unless reporting is enabled ------------------

    def _bad(self, idx: int, code: str, message: str) -> None:
        if self.report is not None:
            self.report(code, idx, message)

    def _want_int(self, idx, t, what):
        if t == CONFLICT:
            self._bad(idx, "RT001", f"{what} has conflicting types at merge")
        elif not is_intlike(t):
            self._bad(idx, "RT002", f"{what} must be int, found {fmt(t)}")

    def _want_float(self, idx, t, what):
        if t == CONFLICT:
            self._bad(idx, "RT001", f"{what} has conflicting types at merge")
        elif not is_floatlike(t):
            self._bad(idx, "RT002", f"{what} must be float, found {fmt(t)}")

    def _want_ref(self, idx, t, what):
        if t == CONFLICT:
            self._bad(idx, "RT001", f"{what} has conflicting types at merge")
        elif not is_reflike(t):
            self._bad(idx, "RT002", f"{what} must be a reference, found {fmt(t)}")

    def _want_array(self, idx, t, op, what):
        elems = _ARRAY_OP_ELEMS[op]
        if t == CONFLICT:
            self._bad(idx, "RT001", f"{what} has conflicting types at merge")
        elif isinstance(t, tuple) and t[0] == "arr":
            if t[1] not in elems:
                self._bad(idx, "RT002",
                          f"{OPINFO[op].mnemonic} on {fmt(t)} "
                          f"(needs {'/'.join(elems)} array)")
        elif t not in (ANY, NULL) and not (isinstance(t, tuple) and t[0] == "ref"
                                           and t[1] is None):
            # a known non-array type (int, float, a concrete class ref)
            self._bad(idx, "RT002",
                      f"{OPINFO[op].mnemonic} on non-array {fmt(t)}")

    # -- transfer ------------------------------------------------------------

    def transfer(self, method: Method, idx: int, instr, state):
        if state is None:
            return None
        stack, locs = state
        stack = list(stack)
        locs = list(locs)
        op = instr.op
        info = OPINFO[op]
        kind = info.kind

        def pop():
            return stack.pop() if stack else ANY

        if kind == "const":
            if op is Op.ICONST:
                stack.append(INT)
            elif op is Op.FCONST:
                stack.append(FLOAT)
            elif op is Op.ACONST_NULL:
                stack.append(NULL)
            else:  # LDC
                entry = method.pool[instr.a]
                stack.append(FLOAT if isinstance(entry, FloatConst)
                             else ref("java/lang/String"))
        elif kind == "load_local":
            t = locs[instr.a]
            if t == UNINIT:
                self._bad(idx, "RL004",
                          f"local {instr.a} read before any store "
                          f"(zero-initialized by the VM)")
                t = ANY
            elif t == CONFLICT:
                self._bad(idx, "RT003",
                          f"local {instr.a} holds conflicting types here")
                t = ANY
            if op is Op.ILOAD:
                if not is_intlike(t):
                    self._bad(idx, "RT002",
                              f"iload of {fmt(t)} local {instr.a}")
                stack.append(INT)
            elif op is Op.FLOAD:
                if not is_floatlike(t):
                    self._bad(idx, "RT002",
                              f"fload of {fmt(t)} local {instr.a}")
                stack.append(FLOAT)
            else:  # ALOAD
                if not is_reflike(t):
                    self._bad(idx, "RT002",
                              f"aload of {fmt(t)} local {instr.a}")
                    t = ANY
                stack.append(t if is_reflike(t) else ANY)
        elif kind == "store_local":
            t = pop()
            if op is Op.ISTORE:
                self._want_int(idx, t, "istore operand")
                locs[instr.a] = INT
            elif op is Op.FSTORE:
                self._want_float(idx, t, "fstore operand")
                locs[instr.a] = FLOAT
            else:  # ASTORE
                self._want_ref(idx, t, "astore operand")
                locs[instr.a] = t if is_reflike(t) else ANY
        elif kind == "iinc":
            t = locs[instr.a]
            if t == UNINIT:
                self._bad(idx, "RL004",
                          f"local {instr.a} read before any store "
                          f"(zero-initialized by the VM)")
            elif not is_intlike(t):
                self._bad(idx, "RT002", f"iinc of {fmt(t)} local {instr.a}")
            locs[instr.a] = INT
        elif kind == "stack":
            if op is Op.POP:
                pop()
            elif op is Op.DUP:
                t = pop()
                stack.extend((t, t))
            elif op is Op.DUP_X1:
                b = pop()
                a = pop()
                stack.extend((b, a, b))
            else:  # SWAP
                b = pop()
                a = pop()
                stack.extend((b, a))
        elif kind == "binop":
            b = pop()
            a = pop()
            if op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV,
                      Op.FCMPL, Op.FCMPG):
                self._want_float(idx, a, f"{info.mnemonic} left operand")
                self._want_float(idx, b, f"{info.mnemonic} right operand")
                stack.append(INT if op in (Op.FCMPL, Op.FCMPG) else FLOAT)
            else:
                self._want_int(idx, a, f"{info.mnemonic} left operand")
                self._want_int(idx, b, f"{info.mnemonic} right operand")
                stack.append(INT)
        elif kind == "unop":
            t = pop()
            if op is Op.FNEG:
                self._want_float(idx, t, "fneg operand")
                stack.append(FLOAT)
            elif op is Op.I2F:
                self._want_int(idx, t, "i2f operand")
                stack.append(FLOAT)
            elif op is Op.F2I:
                self._want_float(idx, t, "f2i operand")
                stack.append(INT)
            else:  # INEG, I2B, I2C, I2S
                self._want_int(idx, t, f"{info.mnemonic} operand")
                stack.append(INT)
        elif kind == "branch":
            if op in (Op.IFNULL, Op.IFNONNULL):
                self._want_ref(idx, pop(), f"{info.mnemonic} operand")
            elif op in (Op.IF_ACMPEQ, Op.IF_ACMPNE):
                self._want_ref(idx, pop(), f"{info.mnemonic} right operand")
                self._want_ref(idx, pop(), f"{info.mnemonic} left operand")
            elif info.pops == 2:
                self._want_int(idx, pop(), f"{info.mnemonic} right operand")
                self._want_int(idx, pop(), f"{info.mnemonic} left operand")
            else:
                self._want_int(idx, pop(), f"{info.mnemonic} operand")
        elif kind == "switch":
            self._want_int(idx, pop(), f"{info.mnemonic} key")
        elif kind == "return":
            if op is Op.RETURN:
                if method.has_result:
                    self._bad(idx, "RT004",
                              "void return in a method declared to "
                              "produce a result")
            else:
                if not method.has_result:
                    self._bad(idx, "RT004",
                              f"{info.mnemonic} in a void method")
                t = pop()
                if op is Op.IRETURN:
                    self._want_int(idx, t, "ireturn operand")
                elif op is Op.FRETURN:
                    self._want_float(idx, t, "freturn operand")
                else:
                    self._want_ref(idx, t, "areturn operand")
        elif kind == "field":
            fref = method.pool[instr.a]
            ftype = _resolve_field(self.program, fref)
            if op is Op.GETSTATIC:
                stack.append(ftype)
            elif op is Op.PUTSTATIC:
                self._check_field_value(idx, pop(), ftype, fref)
            elif op is Op.GETFIELD:
                self._want_ref(idx, pop(), "getfield receiver")
                stack.append(ftype)
            else:  # PUTFIELD
                v = pop()
                self._want_ref(idx, pop(), "putfield receiver")
                self._check_field_value(idx, v, ftype, fref)
        elif kind == "invoke":
            mref = method.pool[instr.a]
            argc = mref.argc if isinstance(mref, MethodRef) else 0
            for k in range(argc):
                t = pop()
                if t == CONFLICT:
                    self._bad(idx, "RT001",
                              f"argument {argc - k} of "
                              f"{mref.method_name} has conflicting types")
            if op is not Op.INVOKESTATIC:
                self._want_ref(idx, pop(),
                               f"receiver of {getattr(mref, 'method_name', '?')}")
            if isinstance(mref, MethodRef) and mref.has_result:
                stack.append(ANY)
        elif kind == "new":
            if op is Op.NEW:
                cref = method.pool[instr.a]
                stack.append(ref(cref.class_name if isinstance(cref, ClassRef)
                                 else None))
            elif op is Op.NEWARRAY:
                self._want_int(idx, pop(), "newarray length")
                try:
                    elem = _ARRAY_ELEM[ArrayType(instr.a)]
                except ValueError:
                    elem = "int"
                stack.append(arr(elem))
            else:  # ANEWARRAY
                self._want_int(idx, pop(), "anewarray length")
                stack.append(arr("ref"))
        elif kind == "array":
            if op is Op.ARRAYLENGTH:
                t = pop()
                self._want_array_or_any(idx, t)
                stack.append(INT)
            elif info.pops == 2:   # typed loads
                self._want_int(idx, pop(), f"{info.mnemonic} index")
                self._want_array(idx, pop(), op, f"{info.mnemonic} array")
                stack.append(_ARRAY_LOAD_RESULT[op])
            else:                  # typed stores, pops 3
                v = pop()
                self._want_int(idx, pop(), f"{info.mnemonic} index")
                self._want_array(idx, pop(), op, f"{info.mnemonic} array")
                if op is Op.FASTORE:
                    self._want_float(idx, v, "fastore value")
                elif op is Op.AASTORE:
                    self._want_ref(idx, v, "aastore value")
                else:
                    self._want_int(idx, v, f"{info.mnemonic} value")
        elif kind == "typecheck":
            t = pop()
            self._want_ref(idx, t, f"{info.mnemonic} operand")
            if op is Op.CHECKCAST:
                cref = method.pool[instr.a]
                stack.append(ref(cref.class_name
                                 if isinstance(cref, ClassRef) else None))
            else:
                stack.append(INT)
        elif kind == "monitor":
            self._want_ref(idx, pop(), f"{info.mnemonic} operand")
        # NOP / misc: no effect

        return (tuple(stack), tuple(locs))

    def _want_array_or_any(self, idx, t):
        if t == CONFLICT:
            self._bad(idx, "RT001",
                      "arraylength operand has conflicting types at merge")
        elif isinstance(t, tuple) and t[0] == "ref" and t[1] is not None:
            self._bad(idx, "RT002",
                      f"arraylength on non-array {fmt(t)}")
        elif t not in (ANY, NULL) and not (isinstance(t, tuple)
                                           and t[0] in ("arr", "ref")):
            self._bad(idx, "RT002", f"arraylength on non-array {fmt(t)}")

    def _check_field_value(self, idx, v, ftype, fref):
        what = f"value stored to {fref.class_name}.{fref.field_name}"
        if ftype == INT:
            self._want_int(idx, v, what)
        elif ftype == FLOAT:
            self._want_float(idx, v, what)
        elif isinstance(ftype, tuple):
            self._want_ref(idx, v, what)
        elif v == CONFLICT:
            self._bad(idx, "RT001", f"{what} has conflicting types at merge")


def fmt(t) -> str:
    if isinstance(t, tuple):
        if t[0] == "ref":
            return t[1] or "ref"
        return f"{t[1]}[]"
    return t


# -- public API ---------------------------------------------------------------

class TypedVerifyError(VerifyError):
    """A type-confused program; ``findings`` carries every diagnostic."""

    def __init__(self, message: str, code: str = "RT002",
                 findings: list[Finding] | None = None) -> None:
        super().__init__(message, code=code)
        self.findings = findings or []


class TypeCheckResult:
    __slots__ = ("method", "solution", "findings", "stack_maps")

    def __init__(self, method, solution, findings, stack_maps) -> None:
        self.method = method
        self.solution = solution
        self.findings = findings
        self.stack_maps = stack_maps

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]


def typecheck_method(method: Method, program: Program | None = None,
                     cfg=None) -> TypeCheckResult:
    """Infer types for ``method`` and collect findings.

    Requires the structural verifier to have run (consistent stack
    depths); call ``isa.verifier.verify_method`` first.  Returns a
    :class:`TypeCheckResult`; raises nothing for type errors — use
    :func:`assert_types` for reject-on-error behaviour.
    """
    problem = TypeProblem(program)
    solution = solve(method, problem, cfg=cfg)
    findings: list[Finding] = []
    seen: set[tuple] = set()
    qn = method.qualified_name

    def report(code: str, idx: int, message: str) -> None:
        key = (code, idx, message)
        if key not in seen:
            seen.add(key)
            findings.append(Finding(code, qn, idx, message))

    problem.report = report
    for i, instr in enumerate(method.code):
        if solution.in_states[i] is not None:
            problem.transfer(method, i, instr, solution.in_states[i])
    problem.report = None

    # JVM-style stack maps: the inferred frame at every block entry
    stack_maps = []
    for block in solution.cfg.blocks:
        state = solution.in_states[block.start]
        if state is not None:
            stack_maps.append((block.start, state[0], state[1]))
    method.stack_maps = stack_maps
    return TypeCheckResult(method, solution, findings, stack_maps)


def assert_types(method: Method, program: Program | None = None) -> TypeCheckResult:
    """Typecheck and raise :class:`TypedVerifyError` on any type error."""
    result = typecheck_method(method, program)
    errors = result.errors
    if errors:
        first = errors[0]
        raise TypedVerifyError(
            f"{first.method}@{first.index}: {first.message}",
            code=first.code, findings=errors)
    return result
