"""Race detection over harvested lockset facts.

Two passes on top of :mod:`lockset`:

* **Lock context** — a must-analysis propagating lock names *into*
  callees: a callee called only while ``("g", C, F)`` is held inherits
  that name; a callee whose receiver/argument *is* a held lock inherits
  ``("p", slot)``.  Contributions from all call sites intersect
  (optimistic greatest-fixpoint over a finite name set).
* **Pairing** — accesses are grouped by location key, pairs with at
  least one write whose contexts may happen in parallel and that share
  no common lock name are candidate races.

Guard rules: two accesses are considered guarded when their *absolute*
lock names (``("g", ...)``/``("class", ...)``) intersect, or — for
instance fields and elements — when each side holds the very object it
accesses (self-guarding, which covers synchronized methods like mtrt's
``Result.addSamples``/``getTotal``).

Known, documented imprecision: joins are not modeled (post-join reads
stay parallel with thread writes) and element accesses whose base is a
parameter fall into a shared ``elem-any`` bucket.
"""

from __future__ import annotations

from ..dataflow.findings import Finding
from .lockset import Access

_ABSOLUTE_TAGS = ("g", "class")


def held_names(held: frozenset, ctx: frozenset) -> frozenset:
    """Singleton lock identities in ``held`` plus the inherited context."""
    out = {t for entry in held if len(entry) == 1 for t in entry}
    return frozenset(out) | ctx


def absolute_names(names: frozenset) -> frozenset:
    return frozenset(t for t in names if t[0] in _ABSOLUTE_TAGS)


def compute_contexts(infos: dict, reachable, entry_methods: set) -> dict:
    """method -> must-held lock names inherited from every call site."""
    ctx: dict = {m: frozenset() for m in entry_methods}
    changed = True
    while changed:
        changed = False
        contrib: dict = {}
        for m in reachable:
            info = infos.get(m)
            if info is None:
                continue
            cctx = ctx.get(m)   # None = not yet known = universe
            for _idx, targets, arg_origins, held in info.calls:
                if not targets:
                    continue
                if cctx is None:
                    passed = None
                else:
                    names = held_names(held, cctx)
                    out = set(absolute_names(names))
                    for slot, origins in enumerate(arg_origins):
                        if len(origins) == 1:
                            tok = next(iter(origins))
                            if tok in names:
                                out.add(("p", slot))
                    passed = frozenset(out)
                for t in targets:
                    if t.is_native or not t.code:
                        continue
                    cur = contrib.get(t, "unset")
                    if cur == "unset" or cur is None:
                        contrib[t] = passed
                    elif passed is not None:
                        contrib[t] = cur & passed
        for t, v in contrib.items():
            if t in entry_methods or v is None:
                continue
            if ctx.get(t) != v:
                ctx[t] = v
                changed = True
    return {m: v for m, v in ctx.items() if v is not None}


class SiteAccess:
    """An :class:`Access` lifted to whole-program context."""

    __slots__ = ("method", "access", "names", "self_guarded", "contexts")

    def __init__(self, method, access: Access, names: frozenset,
                 self_guarded: bool, contexts: tuple) -> None:
        self.method = method
        self.access = access
        self.names = names
        self.self_guarded = self_guarded
        self.contexts = contexts


class RaceReport:
    """One candidate race: a racing pair anchored at a write."""

    __slots__ = ("code", "location", "description", "write", "other",
                 "entries", "witness")

    def __init__(self, code, location, description, write, other,
                 entries, witness) -> None:
        self.code = code
        self.location = location
        self.description = description
        self.write = write           # (qualified_name, index)
        self.other = other           # (qualified_name, index)
        self.entries = entries       # sorted entry keys involved
        self.witness = witness       # call chain to the write

    def finding(self) -> Finding:
        locks = "unlocked" if not self.entries else None
        msg = (f"possible race on {self.description}: write at "
               f"{self.write[0]}@{self.write[1]} vs access at "
               f"{self.other[0]}@{self.other[1]} "
               f"[{', '.join(self.entries)}]"
               + (f"; via {' -> '.join(self.witness)}" if self.witness
                  else ""))
        return Finding(self.code, self.write[0], self.write[1], msg)


_CODE_BY_KIND = {"field": "RC001", "static": "RC002", "elem": "RC003"}


def location_keys(access: Access, method) -> tuple:
    """Stable location keys an access may alias (usually exactly one)."""
    if access.kind == "field":
        return (("field", access.cls, access.name),)
    if access.kind == "static":
        return (("static", access.cls, access.name),)
    keys = []
    for tok in (access.base or _EMPTY_SET):
        if tok[0] == "a":
            keys.append(("elem-site", method.qualified_name, tok[1]))
        elif tok[0] in ("g", "f"):
            keys.append(("elem-field", tok[1], tok[2]))
        else:
            keys.append(("elem-any",))
    return tuple(keys) or (("elem-any",),)


_EMPTY_SET: frozenset = frozenset()


def _describe(key) -> str:
    if key[0] == "field":
        return f"field {key[1]}.{key[2]}"
    if key[0] == "static":
        return f"static field {key[1]}.{key[2]}"
    if key[0] == "elem-site":
        return f"elements of the array allocated at {key[1]}@{key[2]}"
    if key[0] == "elem-field":
        return f"elements of the array in {key[1]}.{key[2]}"
    return "array elements (unresolved base)"


def guarded(a: SiteAccess, b: SiteAccess, kind: str) -> bool:
    if absolute_names(a.names) & absolute_names(b.names):
        return True
    if kind != "static" and a.self_guarded and b.self_guarded:
        return True
    return False


def detect_races(site_accesses: list, mhp) -> list:
    """Group accesses by location and report one race per racy location."""
    groups: dict = {}
    for sa in site_accesses:
        for key in location_keys(sa.access, sa.method):
            groups.setdefault(key, []).append(sa)
    reports = []
    for key in sorted(groups, key=repr):
        members = groups[key]
        writes = [sa for sa in members if sa.access.write]
        if not writes:
            continue
        kind = members[0].access.kind
        hit = None
        for w in writes:
            for o in members:
                if guarded(w, o, kind):
                    continue
                pair = _parallel_pair(w, o, mhp)
                if pair is not None:
                    hit = (w, o, pair)
                    break
            if hit:
                break
        if hit is None:
            continue
        w, o, (c1, c2) = hit
        entries = sorted({c1[0], c2[0]})
        reports.append(RaceReport(
            _CODE_BY_KIND[kind], key, _describe(key),
            (w.method.qualified_name, w.access.index),
            (o.method.qualified_name, o.access.index),
            entries, mhp.witness(c1[0], w.method)))
    return reports


def _parallel_pair(w: SiteAccess, o: SiteAccess, mhp):
    # ``may_parallel(c, c)`` is True exactly for multi-instance thread
    # entries, so the same statement racing against its sibling-thread
    # twin (two mtrt-style workers) falls out of the same check.
    for c1 in w.contexts:
        for c2 in o.contexts:
            if mhp.may_parallel(c1, c2):
                return (c1, c2)
    return None
