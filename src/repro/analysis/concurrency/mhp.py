"""Thread-entry discovery and a may-happen-in-parallel relation.

Thread entries are the roots concurrent execution can start from:

* ``main`` — the program entry method.
* ``daemon:<class>`` — the VM's boot daemons (``repro/Finalizer``,
  ``repro/RefCleaner``), present whenever the library is linked.  They
  are modeled unconditionally (the VM may or may not spawn them at
  runtime; assuming they run is the conservative direction).
* ``thread:<class>`` — each ``java/lang/Thread`` subclass with a
  bytecode ``run`` and at least one reachable ``NEW`` site.  The entry
  is *multi-instance* unless exactly one such site exists, it sits in
  ``main`` itself, and its block is not part of a loop — mtrt's two
  worker constructions therefore yield a multi-instance entry.

MHP is phase-aware for ``main`` only: a forward may-analysis marks each
instruction of main-reachable methods as possibly-after-a-spawn, so
writes main performs *before* starting any thread (mtrt filling the
scene) never pair with thread-side reads.  Joins are deliberately not
modeled; post-join reads stay in the ``("main", "post")`` phase, which
over-reports and is counted as imprecision by the fuzz cross-check.
"""

from __future__ import annotations

from ..dataflow.cfg import build_cfg
from ..dataflow.solver import DataflowProblem, solve
from ...isa.method import Method, Program
from ...isa.opcodes import Op
from .callgraph import CallGraph, is_thread_class

DAEMON_CLASSES = ("repro/Finalizer", "repro/RefCleaner")


class ThreadEntry:
    """One root of concurrent execution."""

    __slots__ = ("key", "kind", "cls_name", "method", "multi")

    def __init__(self, key: str, kind: str, cls_name: str,
                 method: Method, multi: bool) -> None:
        self.key = key
        self.kind = kind            # "main" | "daemon" | "thread"
        self.cls_name = cls_name
        self.method = method
        self.multi = multi

    def __repr__(self) -> str:
        return f"ThreadEntry({self.key}, multi={self.multi})"


def _is_start_native(target) -> bool:
    return (target.is_native and target.name == "start"
            and target.jclass is not None
            and target.jclass.name == "java/lang/Thread")


class _SpawnPhaseProblem(DataflowProblem):
    """Forward may-be-post-spawn over {None < False < True}."""

    direction = "forward"

    def __init__(self, boundary_post: bool, spawn_sites: frozenset) -> None:
        self._boundary = boundary_post
        self._spawn_sites = spawn_sites    # instruction indices that may spawn

    def boundary(self, method: Method):
        return self._boundary

    def bottom(self, method: Method):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a or b

    def transfer(self, method: Method, idx: int, instr, state):
        if state is None:
            return None
        return True if idx in self._spawn_sites else state


class MHP:
    """Entries, per-entry reachability, phases, and the parallel relation."""

    def __init__(self, program: Program, callgraph: CallGraph) -> None:
        self.program = program
        self.cg = callgraph
        self.entries: dict[str, ThreadEntry] = {}
        self._paths: dict[str, dict] = {}      # entry key -> {method: chain}
        self.reachable: set = set()
        self.may_spawn: set = set()
        self._post_in: dict[Method, bool] = {}
        self._phase_cache: dict[Method, list] = {}
        self._cfg_cache: dict[Method, object] = {}
        self._discover()
        self._compute_may_spawn()
        self._compute_phases()

    # -- discovery ----------------------------------------------------------

    def _cfg(self, method: Method):
        cfg = self._cfg_cache.get(method)
        if cfg is None:
            cfg = self._cfg_cache[method] = build_cfg(method)
        return cfg

    def _site_in_cycle(self, method: Method, idx: int) -> bool:
        cfg = self._cfg(method)
        b = cfg.block_index[idx]
        seen, stack = set(), [s for s, _ in cfg.blocks[b].succs]
        while stack:
            cur = stack.pop()
            if cur == b:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(s for s, _ in cfg.blocks[cur].succs)
        return False

    def _discover(self) -> None:
        main = self.program.entry_method
        self.entries["main"] = ThreadEntry(
            "main", "main", self.program.main_class, main, False)
        if "repro/Finalizer" in self.program.classes:
            for name in DAEMON_CLASSES:
                run = self.cg.escape._resolve_static(name, "run")
                if run is not None and not run.is_native and run.code:
                    self.entries[f"daemon:{name}"] = ThreadEntry(
                        f"daemon:{name}", "daemon", name, run, False)

        # Thread subclasses constructed from reachable code become entries;
        # new entries can make more code reachable, so iterate to fixpoint.
        changed = True
        while changed:
            changed = False
            roots = [e.method for e in self.entries.values()]
            reach = self.cg.reachable_from(roots)
            sites: dict[str, list] = {}
            for m in reach:
                if m.is_native or not m.code:
                    continue
                for idx, instr in enumerate(m.code):
                    if instr.op is not Op.NEW:
                        continue
                    cname = m.pool[instr.a].class_name
                    if is_thread_class(self.program, cname):
                        sites.setdefault(cname, []).append((m, idx))
            for cname, slist in sorted(sites.items()):
                run = self.cg.escape._resolve_static(cname, "run")
                if run is None or run.is_native or not run.code:
                    continue
                multi = (len(slist) > 1
                         or any(m is not main for m, _ in slist)
                         or any(self._site_in_cycle(m, i) for m, i in slist))
                key = f"thread:{cname}"
                cur = self.entries.get(key)
                if cur is None or cur.multi != multi:
                    self.entries[key] = ThreadEntry(
                        key, "thread", cname, run, multi)
                    changed = True

        for key, entry in self.entries.items():
            self._paths[key] = self.cg.witness_paths(entry.method)
            self.reachable |= set(self._paths[key])

    def entries_of(self, method: Method) -> tuple:
        """Sorted entry keys whose reachable set contains ``method``."""
        return tuple(k for k in sorted(self._paths)
                     if method in self._paths[k])

    def witness(self, key: str, method: Method) -> tuple:
        """Shortest call chain from ``key``'s entry method to ``method``."""
        return self._paths.get(key, {}).get(method, ())

    # -- spawning -----------------------------------------------------------

    def _spawn_sites(self, method: Method) -> frozenset:
        out = set()
        for site in self.cg.call_sites(method):
            if site.targets is None:
                out.add(site.index)
            elif any(_is_start_native(t) or t in self.may_spawn
                     for t in site.targets):
                out.add(site.index)
        return frozenset(out)

    def _compute_may_spawn(self) -> None:
        bytecode = [m for m in self.reachable if not m.is_native and m.code]
        changed = True
        while changed:
            changed = False
            for m in bytecode:
                if m in self.may_spawn:
                    continue
                if self._spawn_sites(m):
                    self.may_spawn.add(m)
                    changed = True

    # -- main phases --------------------------------------------------------

    def _phase_states(self, method: Method, boundary: bool) -> list:
        """Per-instruction may-be-post-spawn *before* each instruction."""
        problem = _SpawnPhaseProblem(boundary, self._spawn_sites(method))
        solution = solve(method, problem, cfg=self._cfg(method))
        return solution.in_states

    def _compute_phases(self) -> None:
        main = self.program.entry_method
        self._post_in = {main: False}
        changed = True
        while changed:
            changed = False
            for m in list(self._post_in):
                if m.is_native or not m.code:
                    continue
                states = self._phase_states(m, self._post_in[m])
                for site in self.cg.call_sites(m):
                    # A callee begins before any spawn it performs itself,
                    # so it inherits the phase *before* the call.
                    before = states[site.index]
                    if before is None:
                        continue
                    for t in (site.targets or ()):
                        if t.is_native or not t.code:
                            continue
                        cur = self._post_in.get(t)
                        merged = before if cur is None else (cur or before)
                        if merged != cur:
                            self._post_in[t] = merged
                            changed = True

    def phase_flags(self, method: Method) -> list | None:
        """Per-instruction may-be-post-spawn flags (main context)."""
        if method not in self._post_in:
            return None
        flags = self._phase_cache.get(method)
        if flags is None:
            problem = _SpawnPhaseProblem(
                self._post_in[method], self._spawn_sites(method))
            solution = solve(method, problem, cfg=self._cfg(method))
            flags = self._phase_cache[method] = solution.in_states
        return flags

    # -- the relation -------------------------------------------------------

    def contexts(self, method: Method, idx: int) -> tuple:
        """Contexts ``(entry_key, phase)`` this instruction may run in."""
        out = []
        flags = None
        for key in self.entries_of(method):
            if key == "main":
                flags = self.phase_flags(method)
                out.append(("main", "pre"))
                if flags is not None and flags[idx]:
                    out.append(("main", "post"))
            else:
                out.append((key, None))
        return tuple(out)

    def may_parallel(self, c1: tuple, c2: tuple) -> bool:
        k1, p1 = c1
        k2, p2 = c2
        if k1 == k2:
            if k1 == "main":
                return False
            return self.entries[k1].multi
        e1, e2 = self.entries[k1], self.entries[k2]
        if k1 == "main" and p1 == "pre" and e2.kind == "thread":
            return False
        if k2 == "main" and p2 == "pre" and e1.kind == "thread":
            return False
        return True
