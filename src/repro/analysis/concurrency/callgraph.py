"""Whole-program call graph with by-name candidate resolution.

Edges come from the same resolution rules the escape analysis uses
(:meth:`EscapeSummaries._candidates`): ``invokestatic``/``invokespecial``
resolve along the super chain, ``invokevirtual`` additionally fans out to
every subclass override of the static receiver type.  Unresolvable call
sites (the referenced class is not in the program) are kept as explicit
``targets=None`` sites so downstream passes can stay conservative.
"""

from __future__ import annotations

from collections import deque

from ...isa.method import Method, Program
from ...isa.opcodes import Op, OPINFO
from ...isa.pool import MethodRef


class CallSite:
    """One invoke instruction: ``targets`` is ``None`` when unresolvable."""

    __slots__ = ("method", "index", "op", "ref", "targets")

    def __init__(self, method: Method, index: int, op, ref: MethodRef,
                 targets: tuple | None) -> None:
        self.method = method
        self.index = index
        self.op = op
        self.ref = ref
        self.targets = targets

    def __repr__(self) -> str:
        n = "?" if self.targets is None else len(self.targets)
        return (f"CallSite({self.method.qualified_name}@{self.index} -> "
                f"{self.ref.class_name}.{self.ref.method_name} [{n}])")


def declaring_class(program: Program, class_name: str, field_name: str) -> str:
    """Walk the super chain to the class that declares ``field_name``.

    Falls back to the symbolic class when the field (or the class) is
    unknown, so tokens built from dangling refs still compare stably.
    """
    cls = program.classes.get(class_name)
    while cls is not None:
        if any(f.name == field_name for f in cls.fields):
            return cls.name
        cls = (program.classes.get(cls.super_name)
               if cls.super_name else None)
    return class_name


def is_thread_class(program: Program, class_name: str) -> bool:
    """True when ``class_name`` is ``java/lang/Thread`` or a subclass."""
    seen = set()
    cur = program.classes.get(class_name)
    while cur is not None and cur.name not in seen:
        if cur.name == "java/lang/Thread":
            return True
        seen.add(cur.name)
        cur = (program.classes.get(cur.super_name)
               if cur.super_name else None)
    return False


class CallGraph:
    """Per-method call sites plus reachability over resolved edges."""

    def __init__(self, program: Program, escape) -> None:
        self.program = program
        self.escape = escape              # EscapeSummaries (resolution rules)
        self._sites: dict[Method, list[CallSite]] = {}

    def call_sites(self, method: Method) -> list[CallSite]:
        sites = self._sites.get(method)
        if sites is None:
            sites = []
            if not method.is_native and method.code:
                for idx, instr in enumerate(method.code):
                    if OPINFO[instr.op].kind != "invoke":
                        continue
                    ref = method.pool[instr.a]
                    if not isinstance(ref, MethodRef):
                        continue
                    targets = self.escape._candidates(instr.op, ref)
                    sites.append(CallSite(
                        method, idx, instr.op, ref,
                        tuple(targets) if targets is not None else None))
            self._sites[method] = sites
        return sites

    def callees(self, method: Method) -> tuple[set, bool]:
        """(resolved callee set, had-unresolved-site flag)."""
        out, unresolved = set(), False
        for site in self.call_sites(method):
            if site.targets is None:
                unresolved = True
            else:
                out.update(site.targets)
        return out, unresolved

    def reachable_from(self, roots) -> set:
        """Methods (bytecode and native) reachable via resolved edges."""
        seen: set = set()
        queue = deque(roots)
        while queue:
            m = queue.popleft()
            if m in seen:
                continue
            seen.add(m)
            if m.is_native or not m.code:
                continue
            callees, _ = self.callees(m)
            for c in callees:
                if c not in seen:
                    queue.append(c)
        return seen

    def witness_paths(self, root: Method) -> dict:
        """method -> shortest call chain (qualified names) from ``root``."""
        paths: dict[Method, tuple] = {root: (root.qualified_name,)}
        queue = deque((root,))
        while queue:
            m = queue.popleft()
            if m.is_native or not m.code:
                continue
            base = paths[m]
            callees, _ = self.callees(m)
            for c in sorted(callees, key=lambda t: t.qualified_name):
                if c not in paths:
                    paths[c] = base + (c.qualified_name,)
                    queue.append(c)
        return paths
