"""Interprocedural concurrency analysis: races and lock-elision proofs.

Four passes over a linked :class:`~repro.isa.method.Program`:

1. **Call graph** (`callgraph`) — by-name candidate resolution, shared
   with the escape analysis.
2. **Thread entries + MHP** (`mhp`) — discovers ``main``, the boot
   daemons, and every ``java/lang/Thread`` subclass constructed from
   reachable code; a spawn-phase dataflow keeps main's pre-start writes
   out of the parallel relation.
3. **Locksets** (`lockset`) — Eraser-style per-method flow of origin
   sets plus the must-held monitor set at every heap access.
4. **Races + proofs** (`races` and this facade) — accesses grouped by
   location, unguarded parallel pairs with a write become ``RC001``
   (instance field), ``RC002`` (static field) or ``RC003`` (array
   element) findings; allocation sites are classified **safe** (every
   thread that can lock instances of that class is the single thread
   that allocates — elidable with no deopt risk, ``RC004``) or
   **racy** (a lock-shared class — speculation pre-blacklisted,
   ``RC005``).

The ``safe``/``racy`` site sets feed the tiered JIT through
:meth:`repro.vm.machine.JavaVM.concurrency_plan`, and the fuzz
cross-check (`repro.fuzz.crosscheck`) compares both against what the
VM actually observes.
"""

from __future__ import annotations

from ..dataflow.escape import GLOBAL, EscapeSummaries
from ..dataflow.findings import Finding
from ...isa.method import Method, Program
from .callgraph import CallGraph
from .lockset import MethodConcurrency, analyze_method
from .mhp import MHP, ThreadEntry
from .races import (RaceReport, SiteAccess, compute_contexts, detect_races,
                    held_names)

__all__ = [
    "CallGraph",
    "MHP",
    "ThreadEntry",
    "MethodConcurrency",
    "RaceReport",
    "ConcurrencyAnalysis",
    "analyze_program",
]

#: Statics the VM's native boot assigns before ``main`` runs; the store
#: is invisible to bytecode, so the value classes are seeded here.
BOOT_STATICS: dict[tuple, frozenset] = {
    ("repro/Finalizer", "queue"): frozenset(("java/lang/Object",)),
    ("repro/RefCleaner", "queue"): frozenset(("java/lang/Object",)),
    ("java/lang/System", "out"): frozenset(("java/io/PrintStream",)),
}

_EMPTY: frozenset = frozenset()


class ConcurrencyAnalysis:
    """Whole-program concurrency facts (see module docstring)."""

    def __init__(self, program: Program,
                 escape: EscapeSummaries | None = None) -> None:
        self.program = program
        self.escape = escape if escape is not None else EscapeSummaries(program)
        self.cg = CallGraph(program, self.escape)
        self.mhp = MHP(program, self.cg)
        self.entries = self.mhp.entries
        self._infos: dict[Method, MethodConcurrency | None] = {}
        self._reachable_bytecode: list[Method] = []
        for m in self.mhp.reachable:
            if not m.is_native and m.code:
                self._reachable_bytecode.append(m)
                self._infos[m] = analyze_method(m, self.escape)
        self._reachable_bytecode.sort(key=lambda m: m.method_id)
        entry_methods = {e.method for e in self.entries.values()}
        self._ctx = compute_contexts(
            self._infos, self._reachable_bytecode, entry_methods)
        self._field_classes = self._infer_field_classes()
        self._lock_entries, self._top_entries = self._collect_lock_entries()
        self._safe: dict[Method, frozenset] = {}
        self._racy: dict[Method, frozenset] = {}
        self._site_findings: dict[Method, list] = {}
        self._classify_sites()
        self.races: list[RaceReport] = self._detect()

    # -- lock-class inference ----------------------------------------------

    def _infer_field_classes(self) -> dict:
        """(declaring class, field) -> value classes, or None for unknown."""
        out: dict = {k: set(v) for k, v in BOOT_STATICS.items()}
        for m in self._reachable_bytecode:
            info = self._infos.get(m)
            if info is None:
                continue
            for (key, origins) in info.stores:
                if key in out and out[key] is None:
                    continue
                classes = set()
                for tok in origins:
                    c = (info.alloc_classes.get(tok[1])
                         if tok[0] == "a" else None)
                    if c is None:
                        classes = None
                        break
                    classes.add(c)
                if not origins:
                    classes = None
                if classes is None:
                    out[key] = None
                else:
                    out.setdefault(key, set()).update(classes)
        return {k: (frozenset(v) if v is not None else None)
                for k, v in out.items()}

    def _origin_classes(self, info: MethodConcurrency,
                        origins: frozenset) -> frozenset | None:
        """Classes a monitor operand may be an instance of (None=unknown)."""
        if not origins:
            return None
        out: set = set()
        for tok in origins:
            if tok[0] == "a":
                c = info.alloc_classes.get(tok[1])
                if c is None:
                    return None
                out.add(c)
            elif tok[0] in ("g", "f"):
                fc = self._field_classes.get((tok[1], tok[2]))
                if fc is None:
                    return None
                out |= fc
            else:
                return None
        return frozenset(out)

    def _collect_lock_entries(self) -> tuple[dict, frozenset]:
        lock_entries: dict[str, set] = {}
        top: set = set()
        for m in self._reachable_bytecode:
            ents = self.mhp.entries_of(m)
            info = self._infos.get(m)
            if info is None:
                top.update(ents)          # unverifiable: could lock anything
                continue
            for (_idx, origins) in info.monitors:
                classes = self._origin_classes(info, origins)
                if classes is None:
                    top.update(ents)
                else:
                    for c in classes:
                        lock_entries.setdefault(c, set()).update(ents)
            for (_idx, rcls, is_class_lock) in info.sync_calls:
                if is_class_lock:
                    continue              # class locks never alias instances
                for cls in self.escape._subclasses.get(rcls, ()):
                    lock_entries.setdefault(cls.name, set()).update(ents)
        return lock_entries, frozenset(top)

    # -- elision safety ----------------------------------------------------

    def _classify_sites(self) -> None:
        for m in self._reachable_bytecode:
            info = self._infos.get(m)
            if info is None:
                self._safe[m] = self._racy[m] = frozenset()
                continue
            ents = set(self.mhp.entries_of(m))
            elidable = self.escape.elidable_allocs(m)
            safe, racy, findings = set(), set(), []
            qn = m.qualified_name
            for idx in sorted(info.alloc_classes):
                if idx in elidable:
                    continue              # escape analysis already proves it
                cname = info.alloc_classes[idx]
                explicit = self._lock_entries.get(cname, _EMPTY)
                locked_by = set(explicit) | set(self._top_entries)
                if not locked_by:
                    safe.add(idx)         # class is never locked: harmless
                    continue
                involved = locked_by | ents
                only = next(iter(involved)) if len(involved) == 1 else None
                if only is not None and not self.entries[only].multi:
                    safe.add(idx)
                    if explicit:
                        findings.append(Finding(
                            "RC004", qn, idx,
                            f"{cname} instances allocated here are only "
                            f"locked by '{only}'; statically safe to elide "
                            "without speculation"))
                else:
                    racy.add(idx)
                    if explicit:
                        findings.append(Finding(
                            "RC005", qn, idx,
                            f"{cname} instances may be locked from "
                            f"[{', '.join(sorted(locked_by))}]; elision "
                            "is speculation-blacklisted"))
            self._safe[m] = frozenset(safe)
            self._racy[m] = frozenset(racy)
            if findings:
                self._site_findings[m] = findings

    # -- races -------------------------------------------------------------

    def _detect(self) -> list:
        site_accesses: list[SiteAccess] = []
        for m in self._reachable_bytecode:
            info = self._infos.get(m)
            if info is None:
                continue
            mctx = self._ctx.get(m, _EMPTY)
            elidable = self.escape.elidable_allocs(m)
            # Constructor accesses to ``this`` are pre-publication when
            # the receiver provably doesn't escape the constructor (the
            # NEW-dup-<init> idiom hands it a fresh, unshared object).
            ctor_exempt = (m.name == "<init>"
                           and self.escape.summary(m)[0] < GLOBAL)
            this_only = frozenset((("p", 0),))
            for a in info.accesses:
                if a.base and all(t[0] == "a" and t[1] in elidable
                                  for t in a.base):
                    continue              # base is provably thread-local
                if ctor_exempt and a.base == this_only:
                    continue
                ctxs = self.mhp.contexts(m, a.index)
                if not ctxs:
                    continue
                names = held_names(a.held, mctx)
                selfg = (a.base is not None and len(a.base) == 1
                         and next(iter(a.base)) in names)
                site_accesses.append(SiteAccess(m, a, names, selfg, ctxs))
        return detect_races(site_accesses, self.mhp)

    # -- public ------------------------------------------------------------

    def entries_of(self, method: Method) -> tuple:
        return self.mhp.entries_of(method)

    def safe_sites(self, method: Method) -> frozenset:
        """Alloc sites elidable with no deopt risk (beyond escape)."""
        return self._safe.get(method, _EMPTY)

    def racy_sites(self, method: Method) -> frozenset:
        """Alloc sites where elision speculation is pre-blacklisted."""
        return self._racy.get(method, _EMPTY)

    def safe_claims(self) -> set:
        """All (qualified name, site) pairs claimed elision-safe."""
        out = set()
        for m, sites in self._safe.items():
            qn = m.qualified_name
            out.update((qn, idx) for idx in sites)
        return out

    def racy_locations(self) -> list:
        """(kind, class, field) for every racy field/static location."""
        out = []
        for r in self.races:
            if r.location[0] in ("field", "static"):
                out.append(r.location)
        return sorted(out)

    def findings(self, method: Method) -> list:
        qn = method.qualified_name
        out = list(self._site_findings.get(method, ()))
        out.extend(r.finding() for r in self.races if r.write[0] == qn)
        out.sort(key=lambda f: (f.index, f.code))
        return out

    def all_findings(self) -> list:
        out = []
        for m in self._reachable_bytecode:
            out.extend(self.findings(m))
        return out


def analyze_program(program: Program,
                    escape: EscapeSummaries | None = None
                    ) -> ConcurrencyAnalysis:
    return ConcurrencyAnalysis(program, escape=escape)
