"""Eraser-style lockset dataflow over one method.

Extends the escape analysis' origin flow with a *held lockset*: states
are ``(stack, locals, held)`` where stack/locals carry origin-token sets
and ``held`` is the set of monitors provably held (a must-analysis —
joins intersect).  Each heap access is harvested with the base object's
origins and the lockset in force, which is all the race detector needs.

Origin tokens:

* ``("p", slot)`` — parameter (receiver is slot 0),
* ``("a", idx)`` — allocation at instruction ``idx``,
* ``("g", cls, field)`` — value read from a static field,
* ``("f", cls, field)`` — value read from an instance field,
* ``("class", cls)`` — the class object (static synchronized methods).

``("g", ...)``/``("class", ...)`` names are treated as stable lock
identities by the race detector (the usual lockset-tool assumption that
lock-holding statics are assigned once); field/param tokens only count
for self-guarding, where both sides lock the very object they access.
"""

from __future__ import annotations

from ..dataflow.solver import DataflowProblem, solve
from ..dataflow.cfg import build_cfg
from ...isa.method import Method
from ...isa.opcodes import Op, OPINFO
from ...isa.pool import MethodRef
from ...isa.verifier import VerifyError, _stack_delta
from ..dataflow.escape import GLOBAL, RETURNED
from .callgraph import declaring_class

_EMPTY: frozenset = frozenset()
_NO_LOCKS: frozenset = frozenset()


class Access:
    """One heap access with its base origins and held lockset."""

    __slots__ = ("kind", "cls", "name", "index", "write", "base", "held")

    def __init__(self, kind: str, cls: str | None, name: str | None,
                 index: int, write: bool, base: frozenset | None,
                 held: frozenset) -> None:
        self.kind = kind          # "field" | "static" | "elem"
        self.cls = cls
        self.name = name
        self.index = index
        self.write = write
        self.base = base          # None for statics
        self.held = held          # frozenset of origin-frozensets

    def __repr__(self) -> str:
        rw = "W" if self.write else "R"
        return f"Access({rw} {self.kind} {self.cls}.{self.name}@{self.index})"


class MethodConcurrency:
    """Everything the interprocedural passes need from one method."""

    __slots__ = ("accesses", "monitors", "sync_calls", "calls", "stores",
                 "alloc_classes")

    def __init__(self) -> None:
        self.accesses: list[Access] = []
        #: MONITORENTER sites: (index, operand origins)
        self.monitors: list[tuple] = []
        #: calls that may lock: (index, static receiver class, is_class_lock)
        self.sync_calls: list[tuple] = []
        #: all resolved-or-not calls: (index, targets|None, arg_origins, held)
        self.calls: list[tuple] = []
        #: field stores for class inference: ((decl_cls, name), value origins)
        self.stores: list[tuple] = []
        #: reachable allocation sites: index -> class name ("[arr]" arrays)
        self.alloc_classes: dict[int, str] = {}


class _LockProblem(DataflowProblem):
    """Forward origin+lockset flow; see the module docstring."""

    direction = "forward"

    def __init__(self, summaries) -> None:
        self.summaries = summaries          # EscapeSummaries
        self.program = summaries.program
        self.events: MethodConcurrency | None = None
        self._decl_cache: dict[tuple, str] = {}

    def _decl(self, class_name: str, field_name: str) -> str:
        key = (class_name, field_name)
        decl = self._decl_cache.get(key)
        if decl is None:
            decl = self._decl_cache[key] = declaring_class(
                self.program, class_name, field_name)
        return decl

    def boundary(self, method: Method):
        locs = [_EMPTY] * method.max_locals
        for i in range(method.n_param_slots):
            locs[i] = frozenset((("p", i),))
        held = _NO_LOCKS
        if method.is_synchronized:
            if method.is_static:
                cls = method.jclass.name if method.jclass else "?"
                held = frozenset((frozenset((("class", cls),)),))
            else:
                held = frozenset((frozenset((("p", 0),)),))
        return ((), tuple(locs), held)

    def bottom(self, method: Method):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return (tuple(x | y for x, y in zip(a[0], b[0])),
                tuple(x | y for x, y in zip(a[1], b[1])),
                a[2] & b[2])

    def transfer(self, method: Method, idx: int, instr, state):
        if state is None:
            return None
        stack, locs = list(state[0]), list(state[1])
        held = state[2]
        ev = self.events
        op = instr.op
        kind = OPINFO[op].kind

        def pop():
            return stack.pop() if stack else _EMPTY

        if kind == "load_local":
            stack.append(locs[instr.a])
        elif kind == "store_local":
            locs[instr.a] = pop()
        elif kind == "stack":
            if op is Op.POP:
                pop()
            elif op is Op.DUP:
                t = pop()
                stack.extend((t, t))
            elif op is Op.DUP_X1:
                b = pop()
                a = pop()
                stack.extend((b, a, b))
            else:  # SWAP
                b = pop()
                a = pop()
                stack.extend((b, a))
        elif kind == "new":
            if op is not Op.NEW:
                pop()   # array length
            stack.append(frozenset((("a", idx),)))
        elif kind == "field":
            ref = method.pool[instr.a]
            decl = self._decl(ref.class_name, ref.field_name)
            if op is Op.PUTSTATIC:
                v = pop()
                if ev is not None:
                    ev.accesses.append(Access(
                        "static", decl, ref.field_name, idx, True, None, held))
                    ev.stores.append(((decl, ref.field_name), v))
            elif op is Op.PUTFIELD:
                v = pop()
                base = pop()
                if ev is not None:
                    ev.accesses.append(Access(
                        "field", decl, ref.field_name, idx, True, base, held))
                    ev.stores.append(((decl, ref.field_name), v))
            elif op is Op.GETFIELD:
                base = pop()
                if ev is not None:
                    ev.accesses.append(Access(
                        "field", decl, ref.field_name, idx, False, base, held))
                stack.append(frozenset((("f", decl, ref.field_name),)))
            else:  # GETSTATIC
                if ev is not None:
                    ev.accesses.append(Access(
                        "static", decl, ref.field_name, idx, False, None,
                        held))
                stack.append(frozenset((("g", decl, ref.field_name),)))
        elif kind == "array":
            if OPINFO[op].pops == 3:         # typed array stores
                pop()                        # value
                pop()                        # index
                base = pop()
                if ev is not None:
                    ev.accesses.append(Access(
                        "elem", None, None, idx, True, base, held))
            elif op is Op.ARRAYLENGTH:       # length is immutable: no access
                pop()
                stack.append(_EMPTY)
            else:                            # typed array loads
                pop()                        # index
                base = pop()
                if ev is not None:
                    ev.accesses.append(Access(
                        "elem", None, None, idx, False, base, held))
                stack.append(_EMPTY)
        elif kind == "invoke":
            result, held = self._transfer_invoke(method, idx, instr, pop, held)
            if result is not None:
                stack.append(result)
        elif kind == "typecheck":
            t = pop()
            stack.append(t if op is Op.CHECKCAST else _EMPTY)
        elif kind == "return":
            if OPINFO[op].pops:
                pop()
        elif kind == "monitor":
            t = pop()
            if op is Op.MONITORENTER:
                if ev is not None:
                    ev.monitors.append((idx, t))
                held = held | frozenset((t,))
            else:
                if t in held:
                    held = held - frozenset((t,))
                else:
                    # Lost track of which lock this releases: drop them
                    # all rather than claim protection we can't prove.
                    held = _NO_LOCKS
        else:
            # const/iinc/binop/unop/branch/switch/misc: nothing tracked
            try:
                pops, pushes = _stack_delta(method, instr)
            except VerifyError:
                return (tuple(stack), tuple(locs), held)
            if pops:
                del stack[len(stack) - pops:]
            stack.extend(_EMPTY for _ in range(pushes))
        return (tuple(stack), tuple(locs), held)

    def _transfer_invoke(self, method: Method, idx: int, instr, pop, held):
        ref = method.pool[instr.a]
        if not isinstance(ref, MethodRef):
            return None, held
        n_args = ref.argc + (0 if instr.op is Op.INVOKESTATIC else 1)
        arg_origins = [pop() for _ in range(n_args)]
        arg_origins.reverse()
        targets = self.summaries._candidates(instr.op, ref)
        ev = self.events
        if ev is not None:
            ev.calls.append((idx, tuple(targets) if targets else None,
                             tuple(arg_origins), held))
            if targets is not None:
                for t in targets:
                    if not t.is_synchronized:
                        continue
                    ev.sync_calls.append(
                        (idx, ref.class_name, bool(t.is_static)))
        result = _EMPTY
        if targets is not None:
            for slot, origins in enumerate(arg_origins):
                level = max((self.summaries.summary(t)[slot]
                             for t in targets), default=GLOBAL)
                if level == RETURNED:
                    result = result | origins
        return (result if ref.has_result else None), held


def analyze_method(method: Method, summaries) -> MethodConcurrency | None:
    """Lockset facts for one bytecode method (None when unverifiable)."""
    if method.is_native or not method.code:
        return None
    problem = _LockProblem(summaries)
    try:
        cfg = build_cfg(method)
        solution = solve(method, problem, cfg=cfg)
        info = MethodConcurrency()
        problem.events = info
        for i, instr in enumerate(method.code):
            if solution.in_states[i] is None:
                continue
            if OPINFO[instr.op].kind == "new":
                if instr.op is Op.NEW:
                    info.alloc_classes[i] = method.pool[instr.a].class_name
                else:
                    info.alloc_classes[i] = "[arr]"
            problem.transfer(method, i, instr, solution.in_states[i])
        problem.events = None
        return info
    except (VerifyError, ValueError):
        return None
