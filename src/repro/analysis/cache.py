"""Content-addressed on-disk cache shared by traces and VM results.

The old scheme keyed archives on a hand-bumped ``CACHE_VERSION``; any
change to trace-affecting code silently served stale traces until
someone remembered to bump it.  Here every archive is addressed by a
key that hashes

- the *source* of every trace-affecting module (``repro.isa``,
  ``repro.native``, ``repro.sync``, ``repro.vm``, ``repro.workloads``
  and the runner itself), and
- the full job configuration (workload, scale, mode, VM options).

Editing any of those modules, or changing any config field, changes the
key — no manual invalidation step exists anymore.  Stale archives are
simply never addressed again (and can be pruned with ``prune``).

Concurrent workers share one cache directory safely: writes go to a
temp file in the same directory followed by an atomic ``os.replace``,
serialized per-entry by an ``flock``-based file lock.  Corrupt or
truncated archives are detected on load, removed, and recomputed rather
than crashing the run.

All lookups/stores update a module-level :class:`CacheStats` so the CLI
can report hit/miss/latency counters in the run summary.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import json
import os
import pickle
import time
import zipfile

import numpy as np

from ..native.trace import Trace
from ..obs import TRACER

try:  # pragma: no cover - fcntl exists on every POSIX we target
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback: no inter-lock
    fcntl = None

#: Package-relative sources whose content feeds the cache key.  A file
#: entry names one module; a directory entry covers every ``.py`` below.
TRACE_AFFECTING = (
    "isa",
    "native",
    "sync",
    "vm",
    "workloads",
    os.path.join("analysis", "runner.py"),
)

#: Errors that mean "archive unreadable", never "bug": recompute instead.
_CORRUPT_ERRORS = (
    zipfile.BadZipFile,
    pickle.UnpicklingError,
    EOFError,
    KeyError,
    ValueError,
    OSError,
    AttributeError,
    ImportError,
)


def default_cache_dir() -> str | None:
    """The cache directory, resolved from the environment *at call time*
    (so tests and tools can redirect it per-call).  Empty string disables
    caching."""
    return os.environ.get("REPRO_TRACE_CACHE", ".trace_cache") or None


def resolve_dir(cache_dir: str | None) -> str | None:
    """Map a ``cache_dir`` argument to an effective directory.

    ``None`` means "use the environment default"; an empty string (or
    any falsy value) disables caching.
    """
    if cache_dir is None:
        return default_cache_dir()
    return cache_dir or None


# -- source digest -----------------------------------------------------

_digest_cache: dict[str, str] = {}


def package_root() -> str:
    """Root of the installed ``repro`` package."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def trace_affecting_files(root: str | None = None) -> list[str]:
    """Absolute paths of every source file that feeds the digest."""
    root = root or package_root()
    files: list[str] = []
    for entry in TRACE_AFFECTING:
        path = os.path.join(root, entry)
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            files.extend(
                os.path.join(dirpath, f)
                for f in sorted(filenames)
                if f.endswith(".py")
            )
    return files


def source_digest(root: str | None = None) -> str:
    """Digest of all trace-affecting module sources (memoized per root)."""
    root = root or package_root()
    cached = _digest_cache.get(root)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for path in trace_affecting_files(root):
        h.update(os.path.relpath(path, root).encode())
        h.update(b"\0")
        with open(path, "rb") as fh:
            h.update(fh.read())
        h.update(b"\0")
    digest = h.hexdigest()
    _digest_cache[root] = digest
    return digest


def reset_source_digest() -> None:
    """Drop the digest memo (tests; long-lived processes editing code)."""
    _digest_cache.clear()


def cache_key(kind: str, *, root: str | None = None, **fields) -> str:
    """Content-addressed key for one cache entry.

    ``fields`` must be JSON-serializable; the key covers the source
    digest, the entry kind, and every field — so any source or config
    change produces a different key.
    """
    payload = {"kind": kind, "source": source_digest(root), **fields}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- statistics --------------------------------------------------------

_STAT_FIELDS = (
    "trace_hits", "trace_misses", "run_hits", "run_misses",
    "corrupt", "stores",
)
_TIME_FIELDS = ("lookup_seconds", "store_seconds")


class CacheStats:
    """Hit/miss/latency counters for the shared cache."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for f in _STAT_FIELDS:
            setattr(self, f, 0)
        for f in _TIME_FIELDS:
            setattr(self, f, 0.0)

    # -- accounting ---------------------------------------------------
    def count(self, field: str, n: int = 1) -> None:
        setattr(self, field, getattr(self, field) + n)

    def time(self, field: str, seconds: float) -> None:
        setattr(self, field, getattr(self, field) + seconds)

    # -- aggregation --------------------------------------------------
    def snapshot(self) -> dict:
        return {f: getattr(self, f) for f in _STAT_FIELDS + _TIME_FIELDS}

    def merge(self, snap: dict) -> None:
        for f in _STAT_FIELDS + _TIME_FIELDS:
            setattr(self, f, getattr(self, f) + snap.get(f, 0))

    @property
    def hits(self) -> int:
        return self.trace_hits + self.run_hits

    @property
    def misses(self) -> int:
        return self.trace_misses + self.run_misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def format_summary(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.1f}% hit rate; "
            f"traces {self.trace_hits}/{self.trace_hits + self.trace_misses},"
            f" runs {self.run_hits}/{self.run_hits + self.run_misses}), "
            f"{self.corrupt} corrupt recomputed, "
            f"lookup {self.lookup_seconds:.2f}s, "
            f"store {self.store_seconds:.2f}s"
        )

    @staticmethod
    def diff(after: dict, before: dict) -> dict:
        return {k: after[k] - before.get(k, 0) for k in after}


#: Process-wide counters; workers ship snapshots back to the parent.
STATS = CacheStats()


def reset_stats() -> None:
    STATS.reset()


# -- file locking and atomic writes ------------------------------------

class FileLock:
    """``flock``-based advisory lock guarding one cache entry.

    Lock files live next to the entry (``<path>.lock``) so concurrent
    workers targeting the same key serialize their writes while writers
    of other entries proceed in parallel.
    """

    def __init__(self, path: str) -> None:
        self.lock_path = path + ".lock"
        self._fd: int | None = None

    def __enter__(self) -> "FileLock":
        os.makedirs(os.path.dirname(self.lock_path) or ".", exist_ok=True)
        self._fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        if fcntl is not None:
            if TRACER.enabled:
                started = time.perf_counter()
                fcntl.flock(self._fd, fcntl.LOCK_EX)
                TRACER.emit("cache.lock_wait",
                            time.perf_counter() - started,
                            entry=os.path.basename(self.lock_path))
            else:
                fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


#: Monotonic suffix making temp names unique *within* a process too: a
#: pid-only name lets two threads storing the same key truncate and
#: rename each other's in-flight temp file.
_TMP_IDS = itertools.count(1)


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file and an
    atomic rename, so readers never observe a partial archive."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp = os.path.join(
        directory,
        f".tmp-{os.getpid()}-{next(_TMP_IDS)}-{os.path.basename(path)}",
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on write failure
            try:
                os.remove(tmp)
            except OSError:
                pass


def _discard(path: str) -> None:
    """Remove a corrupt archive so the recomputed one replaces it."""
    with FileLock(path):
        try:
            os.remove(path)
        except OSError:
            pass


# -- entry paths -------------------------------------------------------

def trace_path(cache_dir: str, workload: str, scale: str, mode: str,
               key: str) -> str:
    # ``.npy`` record arrays reopen with ``mmap_mode="r"``: a warm
    # lookup maps pages instead of decompressing the whole archive.
    return os.path.join(
        cache_dir, "traces", f"{workload}-{scale}-{mode}-{key[:16]}.npy"
    )


def run_path(cache_dir: str, workload: str, scale: str, mode: str,
             key: str) -> str:
    return os.path.join(
        cache_dir, "runs", f"{workload}-{scale}-{mode}-{key[:16]}.pkl"
    )


# -- trace archives ----------------------------------------------------

def load_trace(path: str) -> Trace | None:
    """Load a trace archive, tolerating absent/corrupt files.

    Counts a hit, a miss, or a corrupt-recompute in :data:`STATS`.
    """
    started = time.perf_counter()
    trace = None
    outcome = "hit"
    try:
        trace = Trace.load(path)
    except FileNotFoundError:
        outcome = "miss"
        STATS.count("trace_misses")
    except _CORRUPT_ERRORS:
        outcome = "corrupt"
        STATS.count("corrupt")
        STATS.count("trace_misses")
        _discard(path)
    else:
        STATS.count("trace_hits")
    elapsed = time.perf_counter() - started
    STATS.time("lookup_seconds", elapsed)
    if TRACER.enabled:
        TRACER.emit("cache.lookup", elapsed, kind="trace", outcome=outcome)
        TRACER.add(f"cache.trace_{outcome}")
    return trace


def store_trace(path: str, trace: Trace) -> None:
    started = time.perf_counter()
    buf = io.BytesIO()
    # Trace.save's ``.npy`` format, staged through memory so the write
    # is atomic.
    np.save(buf, trace.to_records(), allow_pickle=False)
    with FileLock(path):
        _atomic_write(path, buf.getvalue())
    STATS.count("stores")
    elapsed = time.perf_counter() - started
    STATS.time("store_seconds", elapsed)
    if TRACER.enabled:
        TRACER.emit("cache.store", elapsed, kind="trace")


# -- pickled run results -----------------------------------------------

def load_run(path: str):
    """Load a cached ``VMResult``; ``None`` on absence or corruption."""
    started = time.perf_counter()
    result = None
    outcome = "hit"
    try:
        with open(path, "rb") as fh:
            result = pickle.load(fh)
    except FileNotFoundError:
        outcome = "miss"
        STATS.count("run_misses")
    except _CORRUPT_ERRORS:
        outcome = "corrupt"
        STATS.count("corrupt")
        STATS.count("run_misses")
        _discard(path)
    else:
        STATS.count("run_hits")
    elapsed = time.perf_counter() - started
    STATS.time("lookup_seconds", elapsed)
    if TRACER.enabled:
        TRACER.emit("cache.lookup", elapsed, kind="run", outcome=outcome)
        TRACER.add(f"cache.run_{outcome}")
    return result


def store_run(path: str, result) -> None:
    started = time.perf_counter()
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    with FileLock(path):
        _atomic_write(path, blob)
    STATS.count("stores")
    elapsed = time.perf_counter() - started
    STATS.time("store_seconds", elapsed)
    if TRACER.enabled:
        TRACER.emit("cache.store", elapsed, kind="run")


def prune(cache_dir: str | None = None) -> int:
    """Housekeeping: delete stale lock files and temp droppings.

    Content addressing means superseded archives are never served, so
    pruning is purely about disk space; returns the number removed.
    """
    cache_dir = resolve_dir(cache_dir)
    if not cache_dir or not os.path.isdir(cache_dir):
        return 0
    removed = 0
    for sub in ("traces", "runs"):
        directory = os.path.join(cache_dir, sub)
        if not os.path.isdir(directory):
            continue
        for name in os.listdir(directory):
            if name.endswith(".lock") or name.startswith(".tmp-"):
                try:
                    os.remove(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
    return removed
