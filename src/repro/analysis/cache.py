"""Content-addressed on-disk cache shared by traces and VM results.

The old scheme keyed archives on a hand-bumped ``CACHE_VERSION``; any
change to trace-affecting code silently served stale traces until
someone remembered to bump it.  Here every archive is addressed by a
key that hashes

- the *source* of every trace-affecting module (``repro.isa``,
  ``repro.native``, ``repro.sync``, ``repro.vm``, ``repro.workloads``
  and the runner itself), and
- the full job configuration (workload, scale, mode, VM options).

Editing any of those modules, or changing any config field, changes the
key — no manual invalidation step exists anymore.  Stale archives are
simply never addressed again (and can be pruned with ``prune``).

Concurrent workers share one cache directory safely: writes go to a
temp file in the same directory followed by an atomic ``os.replace``,
serialized per-entry by a pid-file lock that detects and breaks locks
abandoned by dead processes (owner pid + liveness probe).  Every store
records a content-digest sidecar (``<entry>.sha256``) verified on
load; corrupt or truncated archives — parse failures *or* digest
mismatches — are moved to ``quarantine/`` and recomputed rather than
crashing the run.

All lookups/stores update a module-level :class:`CacheStats` so the CLI
can report hit/miss/latency counters in the run summary.  Hook sites
for :mod:`repro.faults` (guarded by ``faults.ACTIVE``) let a seeded
fault plan corrupt stores, plant stale locks, and slow IO so the
recovery paths above stay exercised in CI.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import json
import os
import pickle
import time
import zipfile

import numpy as np

from .. import faults
from ..native.trace import Trace
from ..obs import TRACER

#: Package-relative sources whose content feeds the cache key.  A file
#: entry names one module; a directory entry covers every ``.py`` below.
TRACE_AFFECTING = (
    "isa",
    "native",
    "sync",
    "vm",
    "workloads",
    os.path.join("analysis", "runner.py"),
)

class CorruptEntry(Exception):
    """Archive bytes fail their recorded content digest."""


#: Errors that mean "archive unreadable", never "bug": recompute instead.
_CORRUPT_ERRORS = (
    CorruptEntry,
    zipfile.BadZipFile,
    pickle.UnpicklingError,
    EOFError,
    KeyError,
    ValueError,
    OSError,
    AttributeError,
    ImportError,
)


def default_cache_dir() -> str | None:
    """The cache directory, resolved from the environment *at call time*
    (so tests and tools can redirect it per-call).  Empty string disables
    caching."""
    return os.environ.get("REPRO_TRACE_CACHE", ".trace_cache") or None


def resolve_dir(cache_dir: str | None) -> str | None:
    """Map a ``cache_dir`` argument to an effective directory.

    ``None`` means "use the environment default"; an empty string (or
    any falsy value) disables caching.
    """
    if cache_dir is None:
        return default_cache_dir()
    return cache_dir or None


# -- source digest -----------------------------------------------------

_digest_cache: dict[str, str] = {}


def package_root() -> str:
    """Root of the installed ``repro`` package."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def trace_affecting_files(root: str | None = None) -> list[str]:
    """Absolute paths of every source file that feeds the digest."""
    root = root or package_root()
    files: list[str] = []
    for entry in TRACE_AFFECTING:
        path = os.path.join(root, entry)
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            files.extend(
                os.path.join(dirpath, f)
                for f in sorted(filenames)
                if f.endswith(".py")
            )
    return files


def source_digest(root: str | None = None) -> str:
    """Digest of all trace-affecting module sources (memoized per root)."""
    root = root or package_root()
    cached = _digest_cache.get(root)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for path in trace_affecting_files(root):
        h.update(os.path.relpath(path, root).encode())
        h.update(b"\0")
        with open(path, "rb") as fh:
            h.update(fh.read())
        h.update(b"\0")
    digest = h.hexdigest()
    _digest_cache[root] = digest
    return digest


def reset_source_digest() -> None:
    """Drop the digest memo (tests; long-lived processes editing code)."""
    _digest_cache.clear()


def cache_key(kind: str, /, *, root: str | None = None, **fields) -> str:
    """Content-addressed key for one cache entry.

    ``fields`` must be JSON-serializable; the key covers the source
    digest, the entry kind, and every field — so any source or config
    change produces a different key.  ``kind`` is positional-only and
    the fields are namespaced in the payload, so a config field named
    ``kind`` (or ``source``) can neither collide with the parameter nor
    shadow the entry kind in the digest.
    """
    payload = {"kind": kind, "source": source_digest(root), "fields": fields}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- statistics --------------------------------------------------------

_STAT_FIELDS = (
    "trace_hits", "trace_misses", "run_hits", "run_misses",
    "corrupt", "stores", "quarantined", "locks_broken",
    # Shared compiled-code archive (repro.vm.codecache_archive); kept
    # here so pool workers ship them parent-side with the other fields.
    "code_hits", "code_misses", "code_stores", "code_evicted",
)
_TIME_FIELDS = ("lookup_seconds", "store_seconds")


class CacheStats:
    """Hit/miss/latency counters for the shared cache."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for f in _STAT_FIELDS:
            setattr(self, f, 0)
        for f in _TIME_FIELDS:
            setattr(self, f, 0.0)

    # -- accounting ---------------------------------------------------
    def count(self, field: str, n: int = 1) -> None:
        setattr(self, field, getattr(self, field) + n)

    def time(self, field: str, seconds: float) -> None:
        setattr(self, field, getattr(self, field) + seconds)

    # -- aggregation --------------------------------------------------
    def snapshot(self) -> dict:
        return {f: getattr(self, f) for f in _STAT_FIELDS + _TIME_FIELDS}

    def merge(self, snap: dict) -> None:
        for f in _STAT_FIELDS + _TIME_FIELDS:
            setattr(self, f, getattr(self, f) + snap.get(f, 0))

    @property
    def hits(self) -> int:
        return self.trace_hits + self.run_hits

    @property
    def misses(self) -> int:
        return self.trace_misses + self.run_misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def format_summary(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.1f}% hit rate; "
            f"traces {self.trace_hits}/{self.trace_hits + self.trace_misses},"
            f" runs {self.run_hits}/{self.run_hits + self.run_misses}), "
            f"{self.corrupt} corrupt recomputed, "
            f"lookup {self.lookup_seconds:.2f}s, "
            f"store {self.store_seconds:.2f}s"
        )

    @staticmethod
    def diff(after: dict, before: dict) -> dict:
        return {k: after[k] - before.get(k, 0) for k in after}


#: Process-wide counters; workers ship snapshots back to the parent.
STATS = CacheStats()


def reset_stats() -> None:
    STATS.reset()


# -- file locking and atomic writes ------------------------------------

#: Waiters poll with capped exponential backoff.
LOCK_POLL_SECONDS = 0.002
LOCK_POLL_CAP = 0.05
#: Grace before an *unreadable* lock file (owner mid-write) is stale.
LOCK_UNREADABLE_GRACE = 1.0


def default_lock_timeout() -> float:
    """Max seconds to wait on a lock held by a live owner before
    breaking it anyway (``REPRO_LOCK_TIMEOUT`` overrides)."""
    try:
        return float(os.environ.get("REPRO_LOCK_TIMEOUT", "") or 10.0)
    except ValueError:  # pragma: no cover - bad env value
        return 10.0


def _pid_alive(pid: int) -> bool:
    """Liveness probe: can ``pid`` receive signals?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # EPERM and friends: exists, not ours
        return True
    return True


def _read_pid(path: str) -> int | None:
    """The pid recorded in a lock file, or ``None`` if unreadable."""
    try:
        with open(path) as fh:
            return int(fh.read().strip() or "0") or None
    except (OSError, ValueError):
        return None


class FileLock:
    """Pid-file advisory lock guarding one cache entry.

    The lock is the *existence* of ``<path>.lock`` holding the owner's
    pid.  A ``flock`` would evaporate with its owner, but it also cannot
    be probed, reported on, or (in the pathological cases fault plans
    simulate) left behind; a pid file makes the failure mode explicit
    and recoverable: waiters probe the recorded owner for liveness and
    break locks whose owner is dead.  A live owner is waited on for at
    most ``timeout`` seconds, after which the lock is broken anyway —
    entry writes are atomic replaces, so losing exclusion costs at worst
    a duplicated store, never a torn archive.
    """

    def __init__(self, path: str, timeout: float | None = None) -> None:
        self.lock_path = path + ".lock"
        self.timeout = default_lock_timeout() if timeout is None else timeout
        self._held = False

    def __enter__(self) -> "FileLock":
        if faults.ACTIVE is not None:
            faults.ACTIVE.on_lock_acquire(self.lock_path)
        os.makedirs(os.path.dirname(self.lock_path) or ".", exist_ok=True)
        started = time.perf_counter()
        deadline = started + self.timeout
        pause = LOCK_POLL_SECONDS
        while True:
            try:
                fd = os.open(self.lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                if self._break_if_stale(deadline):
                    continue
                time.sleep(pause)
                pause = min(pause * 2, LOCK_POLL_CAP)
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            self._held = True
            break
        if TRACER.enabled:
            TRACER.emit("cache.lock_wait", time.perf_counter() - started,
                        entry=os.path.basename(self.lock_path))
        return self

    def __exit__(self, *exc) -> None:
        if self._held:
            self._held = False
            # Only remove a lock file that still records *our* pid: if a
            # waiter force-broke this lock and re-acquired, the file on
            # disk is theirs now and removing it would hand the entry to
            # a third contender.
            if _read_pid(self.lock_path) == os.getpid():
                try:
                    os.remove(self.lock_path)
                except OSError:  # pragma: no cover - broken by a waiter
                    pass

    # -- stale detection ----------------------------------------------
    def _owner_pid(self) -> int | None:
        return _read_pid(self.lock_path)

    def _age(self) -> float:
        try:
            return max(0.0, time.time() - os.stat(self.lock_path).st_mtime)
        except OSError:
            return float("inf")

    def _break_if_stale(self, deadline: float) -> bool:
        """Break the competing lock if its owner is dead (liveness
        probe), unreadable past its grace, or the wait deadline passed;
        returns True when broken."""
        owner = self._owner_pid()
        if owner is not None and _pid_alive(owner):
            if time.perf_counter() < deadline:
                return False
            kind, reason = "lock_break_forced", "timeout"
        elif owner is None:
            if (self._age() < LOCK_UNREADABLE_GRACE
                    and time.perf_counter() < deadline):
                return False
            kind, reason = "lock_break", "unreadable"
        else:
            kind, reason = "lock_break", "dead-owner"
        # Commit point: capture the lock file with an atomic rename.  Of
        # all the waiters that concluded "stale", exactly one wins the
        # rename; the losers see ENOENT and go back to the acquire loop,
        # where they observe either no lock or the winner's fresh one.
        # A bare ``os.remove`` here let a *slow* waiter — one that
        # probed the dead owner, then got descheduled while the winner
        # broke the lock and re-acquired — delete the winner's fresh
        # live lock, putting two processes inside the critical section.
        grave = f"{self.lock_path}.break-{os.getpid()}-{next(_TMP_IDS)}"
        try:
            os.rename(self.lock_path, grave)
        except OSError:
            return False  # released or broken by someone else first
        captured = _read_pid(grave)
        if captured is not None and captured != owner and _pid_alive(captured):
            # We captured a lock *re-acquired* by a live owner between
            # our staleness probe and the rename.  Give it back: ``link``
            # is atomic, so if yet another contender re-created the lock
            # file meanwhile the restore is abandoned and the displaced
            # owner's ownership-checked release stays a no-op.
            try:
                os.link(grave, self.lock_path)
            except OSError:
                pass
            try:
                os.remove(grave)
            except OSError:  # pragma: no cover - grave name is private
                pass
            return False
        try:
            os.remove(grave)
        except OSError:  # pragma: no cover - grave name is private
            pass
        STATS.count("locks_broken")
        faults.note_recovery(kind, reason=reason,
                             entry=os.path.basename(self.lock_path))
        return True


#: Monotonic suffix making temp names unique *within* a process too: a
#: pid-only name lets two threads storing the same key truncate and
#: rename each other's in-flight temp file.
_TMP_IDS = itertools.count(1)


def _atomic_write(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp file and an
    atomic rename, so readers never observe a partial archive."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp = os.path.join(
        directory,
        f".tmp-{os.getpid()}-{next(_TMP_IDS)}-{os.path.basename(path)}",
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on write failure
            try:
                os.remove(tmp)
            except OSError:
                pass


def _digest_path(path: str) -> str:
    return path + ".sha256"


def _read_verified(path: str) -> bytes:
    """Archive bytes, checked against the stored content digest.

    Raises ``FileNotFoundError`` on absence and :class:`CorruptEntry`
    on a digest mismatch; entries predating digests (no sidecar) pass
    unverified, as parse errors still catch gross corruption.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    try:
        with open(_digest_path(path)) as fh:
            expect = fh.read().strip()
    except OSError:
        return data
    if expect and hashlib.sha256(data).hexdigest() != expect:
        raise CorruptEntry(os.path.basename(path))
    return data


def _store_bytes(path: str, data: bytes) -> None:
    """Store archive bytes plus their content-digest sidecar under the
    entry lock.  The digest is computed *before* the fault layer can
    mutate the payload, so injected corruption is always detectable on
    the next load."""
    digest = hashlib.sha256(data).hexdigest()
    if faults.ACTIVE is not None:
        faults.ACTIVE.on_io("store")
        data = faults.ACTIVE.corrupt_store(path, data)
    with FileLock(path):
        _atomic_write(path, data)
        _atomic_write(_digest_path(path), digest.encode())


def _quarantine(path: str) -> None:
    """Move a corrupt archive (and drop its sidecar) into the cache's
    ``quarantine/`` directory: the recomputed entry replaces it while
    the bad bytes stay available for diagnosis."""
    qdir = os.path.join(os.path.dirname(os.path.dirname(path)),
                        "quarantine")
    moved = False
    with FileLock(path):
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
            moved = True
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass
        try:
            os.remove(_digest_path(path))
        except OSError:
            pass
    if moved:
        STATS.count("quarantined")
        faults.note_recovery("quarantine", entry=os.path.basename(path))


# -- entry paths -------------------------------------------------------

def trace_path(cache_dir: str, workload: str, scale: str, mode: str,
               key: str) -> str:
    # ``.npy`` record arrays reopen with ``mmap_mode="r"``: a warm
    # lookup maps pages instead of decompressing the whole archive.
    return os.path.join(
        cache_dir, "traces", f"{workload}-{scale}-{mode}-{key[:16]}.npy"
    )


def run_path(cache_dir: str, workload: str, scale: str, mode: str,
             key: str) -> str:
    return os.path.join(
        cache_dir, "runs", f"{workload}-{scale}-{mode}-{key[:16]}.pkl"
    )


# -- trace archives ----------------------------------------------------

def load_trace(path: str) -> Trace | None:
    """Load a trace archive, tolerating absent/corrupt files.

    Counts a hit, a miss, or a corrupt-recompute in :data:`STATS`.
    """
    if faults.ACTIVE is not None:
        faults.ACTIVE.on_io("load")
    started = time.perf_counter()
    trace = None
    outcome = "hit"
    try:
        _read_verified(path)
        trace = Trace.load(path)
    except FileNotFoundError:
        outcome = "miss"
        STATS.count("trace_misses")
    except _CORRUPT_ERRORS:
        outcome = "corrupt"
        STATS.count("corrupt")
        STATS.count("trace_misses")
        _quarantine(path)
    else:
        STATS.count("trace_hits")
    elapsed = time.perf_counter() - started
    STATS.time("lookup_seconds", elapsed)
    if TRACER.enabled:
        TRACER.emit("cache.lookup", elapsed, kind="trace", outcome=outcome)
        TRACER.add(f"cache.trace_{outcome}")
    return trace


def store_trace(path: str, trace: Trace) -> None:
    started = time.perf_counter()
    buf = io.BytesIO()
    # Trace.save's ``.npy`` format, staged through memory so the write
    # is atomic.
    np.save(buf, trace.to_records(), allow_pickle=False)
    _store_bytes(path, buf.getvalue())
    STATS.count("stores")
    elapsed = time.perf_counter() - started
    STATS.time("store_seconds", elapsed)
    if TRACER.enabled:
        TRACER.emit("cache.store", elapsed, kind="trace")


# -- pickled run results -----------------------------------------------

def load_run(path: str):
    """Load a cached ``VMResult``; ``None`` on absence or corruption."""
    if faults.ACTIVE is not None:
        faults.ACTIVE.on_io("load")
    started = time.perf_counter()
    result = None
    outcome = "hit"
    try:
        result = pickle.loads(_read_verified(path))
    except FileNotFoundError:
        outcome = "miss"
        STATS.count("run_misses")
    except _CORRUPT_ERRORS:
        outcome = "corrupt"
        STATS.count("corrupt")
        STATS.count("run_misses")
        _quarantine(path)
    else:
        STATS.count("run_hits")
    elapsed = time.perf_counter() - started
    STATS.time("lookup_seconds", elapsed)
    if TRACER.enabled:
        TRACER.emit("cache.lookup", elapsed, kind="run", outcome=outcome)
        TRACER.add(f"cache.run_{outcome}")
    return result


def store_run(path: str, result) -> None:
    started = time.perf_counter()
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    _store_bytes(path, blob)
    STATS.count("stores")
    elapsed = time.perf_counter() - started
    STATS.time("store_seconds", elapsed)
    if TRACER.enabled:
        TRACER.emit("cache.store", elapsed, kind="run")


def prune(cache_dir: str | None = None) -> int:
    """Housekeeping: delete stale lock files, temp droppings, and
    quarantined corpses.

    Content addressing means superseded archives are never served, so
    pruning is purely about disk space; returns the number removed.
    """
    cache_dir = resolve_dir(cache_dir)
    if not cache_dir or not os.path.isdir(cache_dir):
        return 0
    removed = 0
    for sub in ("traces", "runs"):
        directory = os.path.join(cache_dir, sub)
        if not os.path.isdir(directory):
            continue
        for name in os.listdir(directory):
            if (name.endswith(".lock") or name.startswith(".tmp-")
                    or ".lock.break-" in name):
                try:
                    os.remove(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
    qdir = os.path.join(cache_dir, "quarantine")
    if os.path.isdir(qdir):
        for name in os.listdir(qdir):
            try:
                os.remove(os.path.join(qdir, name))
                removed += 1
            except OSError:
                pass
    return removed
