"""Analyses: hybrid oracle model, instruction mix, runners, reporting."""

from .hybrid import MethodDecision, OracleAnalysis
from .mix import indirect_fraction, mix_from_counts, mix_from_trace, summarize
from .report import format_bars, format_stacked_bars, format_table
from .runner import (
    CACHE_VERSION,
    get_trace,
    make_strategy,
    oracle_analysis,
    oracle_run,
    run_vm,
)

__all__ = [
    "CACHE_VERSION",
    "MethodDecision",
    "OracleAnalysis",
    "format_bars",
    "format_stacked_bars",
    "format_table",
    "get_trace",
    "indirect_fraction",
    "make_strategy",
    "mix_from_counts",
    "mix_from_trace",
    "oracle_analysis",
    "oracle_run",
    "run_vm",
    "summarize",
]
