"""Analyses: hybrid oracle model, instruction mix, runners, reporting."""

from .cache import CacheStats, cache_key, default_cache_dir, source_digest
from .hybrid import MethodDecision, OracleAnalysis
from .mix import indirect_fraction, mix_from_counts, mix_from_trace, summarize
from .parallel import Job, oracle_job, run_job, run_jobs, trace_job
from .report import format_bars, format_stacked_bars, format_table
from .runner import (
    get_trace,
    make_strategy,
    oracle_analysis,
    oracle_run,
    run_vm,
)

__all__ = [
    "CacheStats",
    "Job",
    "MethodDecision",
    "OracleAnalysis",
    "cache_key",
    "default_cache_dir",
    "format_bars",
    "format_stacked_bars",
    "format_table",
    "get_trace",
    "indirect_fraction",
    "make_strategy",
    "mix_from_counts",
    "mix_from_trace",
    "oracle_analysis",
    "oracle_job",
    "oracle_run",
    "run_job",
    "run_jobs",
    "run_vm",
    "source_digest",
    "summarize",
    "trace_job",
]
