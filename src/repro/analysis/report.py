"""ASCII table / figure rendering for experiment results."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """A boxed, right-aligned ASCII table."""
    columns = [
        [str(h)] + [_fmt(r[i]) for r in rows] for i, h in enumerate(headers)
    ]
    widths = [max(len(v) for v in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in rows:
        lines.append(
            " | ".join(_fmt(v).rjust(w) for v, w in zip(r, widths))
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,d}"
    return str(value)


def format_bars(items: Sequence[tuple[str, float]], width: int = 50,
                title: str = "", unit: str = "") -> str:
    """A horizontal ASCII bar chart (for figure-style results)."""
    if not items:
        return title
    peak = max(v for _, v in items) or 1.0
    name_w = max(len(n) for n, _ in items)
    lines = [title] if title else []
    for name, value in items:
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{name.rjust(name_w)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def format_stacked_bars(
    items: Sequence[tuple[str, Sequence[tuple[str, float]]]],
    width: int = 50,
    title: str = "",
) -> str:
    """Stacked horizontal bars (e.g. translate vs execute in Figure 1)."""
    glyphs = "#=+*o"
    peak = max((sum(v for _, v in parts) for _, parts in items), default=1.0) or 1.0
    name_w = max(len(n) for n, _ in items)
    lines = [title] if title else []
    legend = []
    for name, parts in items:
        bar = ""
        for k, (part_name, value) in enumerate(parts):
            g = glyphs[k % len(glyphs)]
            bar += g * max(0, int(round(width * value / peak)))
            if len(legend) <= k:
                legend.append(f"{g}={part_name}")
        total = sum(v for _, v in parts)
        lines.append(f"{name.rjust(name_w)} | {bar} {total:.3g}")
    lines.append("legend: " + "  ".join(legend))
    return "\n".join(lines)
