"""The oracle ("opt") hybrid model of Section 3.

For a method ``i`` with interpret cost ``I_i`` per invocation, translate
cost ``T_i``, compiled-execute cost ``E_i`` per invocation and ``n_i``
invocations, the crossover point is ``N_i = T_i / (I_i - E_i)``: compile
iff ``n_i > N_i``.  With profiles from one interpreter run and one
JIT run (the runs are deterministic, so ``n_i`` matches), the oracle's
total time for each method is simply ``min(T_i + E_i*n_i, I_i*n_i)``.

This module computes the per-method decisions, the oracle's projected
total time, and an :class:`~repro.vm.strategy.OracleStrategy` that makes
a real mixed-mode VM run enact them.
"""

from __future__ import annotations

import math

from ..vm.strategy import OracleStrategy


class MethodDecision:
    """The oracle's verdict for one method."""

    __slots__ = ("name", "n", "interp_total", "translate", "exec_total",
                 "crossover", "compile")

    def __init__(self, name: str, n: int, interp_total: float,
                 translate: float, exec_total: float) -> None:
        self.name = name
        self.n = n
        self.interp_total = interp_total
        self.translate = translate
        self.exec_total = exec_total
        interp_per = interp_total / n if n else 0.0
        exec_per = exec_total / n if n else 0.0
        if interp_per > exec_per:
            self.crossover = translate / (interp_per - exec_per)
        else:
            self.crossover = math.inf
        self.compile = (translate + exec_total) < interp_total

    @property
    def oracle_cost(self) -> float:
        return min(self.translate + self.exec_total, self.interp_total)

    def __repr__(self) -> str:
        verdict = "compile" if self.compile else "interpret"
        return (
            f"MethodDecision({self.name}, n={self.n}, N={self.crossover:.1f},"
            f" -> {verdict})"
        )


class OracleAnalysis:
    """Combines an interpreter-run profile with a JIT-run profile."""

    def __init__(self, interp_result, jit_result) -> None:
        self.interp_result = interp_result
        self.jit_result = jit_result
        self.decisions: dict[str, MethodDecision] = {}
        self._build()

    def _build(self) -> None:
        ip = self.interp_result.profiles
        jp = self.jit_result.profiles
        for name, j in jp.items():
            if j.get("is_native"):
                continue
            i = ip.get(name)
            n = j["invocations"]
            if n == 0 or i is None:
                continue
            interp_total = i["interp_cycles"]
            if interp_total == 0:
                continue
            self.decisions[name] = MethodDecision(
                name=name,
                n=n,
                interp_total=interp_total,
                translate=j["translate_cycles"],
                exec_total=j["compiled_cycles"],
            )

    # ------------------------------------------------------------------
    @property
    def methods_to_compile(self) -> set[str]:
        return {d.name for d in self.decisions.values() if d.compile}

    def strategy(self) -> OracleStrategy:
        """An enactable strategy for a real mixed-mode run."""
        return OracleStrategy(self.methods_to_compile)

    # ------------------------------------------------------------------
    # projected times (the paper's analytical opt model)
    # ------------------------------------------------------------------
    @property
    def jit_total(self) -> float:
        return float(self.jit_result.cycles)

    @property
    def interp_total(self) -> float:
        return float(self.interp_result.cycles)

    @property
    def oracle_total(self) -> float:
        """Projected cycles under per-method-optimal decisions.

        Starts from the always-JIT total and swaps each decided method's
        JIT-run cost (translate + execute) for the better of its two
        options; everything undecided (natives, loader, allocator,
        synchronization) is common to both configurations.
        """
        jp = self.jit_result.profiles
        total = self.jit_total
        for d in self.decisions.values():
            j = jp[d.name]
            jit_cost = (j["interp_cycles"] + j["compiled_cycles"]
                        + j["translate_cycles"])
            total += d.oracle_cost - jit_cost
        return total

    @property
    def oracle_saving(self) -> float:
        """Fractional saving of opt vs. always-JIT (the 10-15 % result)."""
        if self.jit_total == 0:
            return 0.0
        return 1.0 - self.oracle_total / self.jit_total

    @property
    def interp_to_jit_ratio(self) -> float:
        """The number printed on top of each Figure 1 bar."""
        return self.interp_total / self.jit_total if self.jit_total else 0.0

    def summary(self) -> dict:
        compiled = self.methods_to_compile
        return {
            "methods": len(self.decisions),
            "compiled_by_oracle": len(compiled),
            "interpreted_by_oracle": len(self.decisions) - len(compiled),
            "jit_total": self.jit_total,
            "interp_total": self.interp_total,
            "oracle_total": self.oracle_total,
            "oracle_saving": self.oracle_saving,
            "interp_to_jit_ratio": self.interp_to_jit_ratio,
        }
