"""Bytecode and method locality statistics.

Section 4.3 of the paper explains the interpreter's cache behaviour via
statistics it cites from [27]: fewer than 20 % of distinct bytecodes
account for 90 % of the dynamic stream (15 unique bytecodes cover
60-85 %), and 45 % of dynamically invoked methods are 16 bytes or
shorter (mean bytecode 1.8 bytes).  This module computes the same
statistics for our workloads from the VM's dynamic opcode histogram and
method profiles.
"""

from __future__ import annotations

import numpy as np

from ..isa.opcodes import N_OPCODES, Op


class BytecodeLocality:
    """Dynamic bytecode-frequency concentration statistics."""

    def __init__(self, opcode_counts: np.ndarray) -> None:
        counts = np.asarray(opcode_counts, dtype=np.int64)
        if len(counts) != N_OPCODES:
            raise ValueError("expected one count per opcode")
        self.total = int(counts.sum())
        order = np.argsort(counts)[::-1]
        self.ranked = [(Op(int(i)), int(counts[i]))
                       for i in order if counts[i] > 0]

    @property
    def distinct(self) -> int:
        """Number of distinct opcodes that actually executed."""
        return len(self.ranked)

    def coverage_of_top(self, k: int) -> float:
        """Fraction of the dynamic stream covered by the top-k opcodes."""
        if self.total == 0:
            return 0.0
        return sum(c for _, c in self.ranked[:k]) / self.total

    def opcodes_for_coverage(self, fraction: float) -> int:
        """How many distinct opcodes cover ``fraction`` of the stream."""
        if self.total == 0:
            return 0
        needed = fraction * self.total
        running = 0
        for k, (_, count) in enumerate(self.ranked, start=1):
            running += count
            if running >= needed:
                return k
        return self.distinct

    def summary(self) -> dict:
        return {
            "dynamic_bytecodes": self.total,
            "distinct_opcodes": self.distinct,
            "top15_coverage": self.coverage_of_top(15),
            "opcodes_for_90pct": self.opcodes_for_coverage(0.90),
        }


class MethodLocality:
    """Method-size and reuse statistics from a run's profiles.

    ``method_sizes`` maps qualified name -> static bytecode bytes; the
    profiles provide dynamic invocation counts.
    """

    def __init__(self, profiles: dict, method_sizes: dict[str, int]) -> None:
        self.records = []
        for name, p in profiles.items():
            n = p.get("invocations", 0)
            size = method_sizes.get(name)
            if n > 0 and size is not None:
                self.records.append((name, n, size))

    @property
    def total_invocations(self) -> int:
        return sum(n for _, n, _ in self.records)

    def fraction_invocations_small(self, byte_limit: int = 16) -> float:
        """Dynamic fraction of invocations of methods <= byte_limit bytes
        (the paper cites ~45% at 16 bytes)."""
        total = self.total_invocations
        if total == 0:
            return 0.0
        small = sum(n for _, n, size in self.records if size <= byte_limit)
        return small / total

    def reuse_histogram(self, buckets=(1, 2, 10, 100)) -> dict[str, int]:
        """Method counts by invocation-count bucket, e.g.
        ``{"1": 12, "2-2": 3, "3-10": 5, "11-100": 4, ">100": 2}``."""
        edges = []
        lo = 1
        for hi in buckets:
            label = str(lo) if hi == lo else f"{lo}-{hi}"
            edges.append((label, lo, hi))
            lo = hi + 1
        edges.append((f">{buckets[-1]}", lo, float("inf")))
        histogram = {label: 0 for label, _, _ in edges}
        for _, n, _ in self.records:
            for label, low, high in edges:
                if low <= n <= high:
                    histogram[label] += 1
                    break
        return histogram

    def summary(self) -> dict:
        sizes = [size for _, _, size in self.records]
        return {
            "methods_invoked": len(self.records),
            "total_invocations": self.total_invocations,
            "mean_method_bytes": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "small_method_invocation_fraction":
                self.fraction_invocations_small(16),
        }


def method_sizes_of(program) -> dict[str, int]:
    """Static bytecode bytes per method of a (built) program."""
    sizes = {}
    for method in program.all_methods():
        if not method.is_native:
            if not method.bc_offsets:
                method.compute_layout()
            sizes[method.qualified_name] = method.bc_length
    return sizes
