"""Parallel experiment scheduler.

Experiments declare the (workload, scale, mode, config) combinations
they will measure as :class:`Job` descriptors — plain frozen dataclasses
that pickle cleanly under the ``spawn`` start method.  The scheduler
fans the deduplicated job list out over a ``ProcessPoolExecutor`` whose
workers populate the shared content-addressed cache
(:mod:`repro.analysis.cache`); the experiments themselves then run
serially against a warm cache, so parallel and serial invocations
produce byte-identical output while a cold full-suite run scales with
cores.

Workers ship per-job timing, cache-stats, and fault-ledger deltas back
to the parent, which streams progress lines and aggregates the counters
for the run summary.

The pooled path is hardened against infrastructure faults so one bad
worker can never abort a suite run.  The degradation order (see
:class:`RetryPolicy` and ``docs/robustness.md``) is:

1. **retry** the job with bounded attempts and exponential backoff;
2. **replace the pool** when it breaks (a worker crashed —
   ``BrokenProcessPool`` — or a job exceeded its wall-clock timeout and
   its worker had to be terminated), requeueing innocent in-flight jobs
   without charging them an attempt;
3. **recompute serially** in the parent once pool attempts are
   exhausted (or the pool-replacement budget is spent), so the job's
   result still lands even if every worker path fails.

A job that fails all three stages is reported as an error outcome —
callers decide whether that is fatal.  All recovery actions are
recorded in :data:`repro.faults.LEDGER` and, when tracing, as obs
counters, so run manifests show what the scheduler had to survive.
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from multiprocessing import get_context

from .. import faults
from ..obs import TRACER
from . import cache

#: Job kinds and the runner entry point each one exercises.
KINDS = ("trace", "run", "oracle")


@dataclass(frozen=True)
class Job:
    """One unit of schedulable work, hashable and spawn-safe.

    ``mode`` is a mode name (or a ``("counter", n)`` tuple) and
    ``options`` a sorted tuple of extra ``run_vm`` keyword pairs, so two
    textually different declarations of the same measurement compare
    (and deduplicate) equal.
    """

    kind: str
    workload: str
    scale: str = "s1"
    mode: object = "jit"
    options: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")

    def describe(self) -> str:
        opts = " ".join(f"{k}={v}" for k, v in self.options)
        mode = "" if self.kind == "oracle" else f"/{self.mode}"
        return (f"{self.kind:6s} {self.workload}/{self.scale}{mode}"
                + (f" [{opts}]" if opts else ""))


def trace_job(workload: str, scale: str = "s1", mode: str = "jit") -> Job:
    """A job that records (and caches) one full native trace."""
    return Job("trace", workload, scale, mode)


def run_job(workload: str, scale: str = "s1", mode="jit", **options) -> Job:
    """A job that executes (and caches) one non-recording VM run."""
    return Job("run", workload, scale, mode,
               tuple(sorted(options.items())))


def oracle_job(workload: str, scale: str = "s1") -> Job:
    """A job covering the interp + JIT profile runs and the mixed-mode
    oracle run they induce."""
    return Job("oracle", workload, scale, "oracle")


def trace_jobs(benchmarks, scale: str = "s1",
               modes=("interp", "jit")) -> list[Job]:
    """Trace jobs for each benchmark under each mode (the common
    shape of the cache/branch/pipeline experiments)."""
    return [trace_job(n, scale, m) for n in benchmarks for m in modes]


def dedupe(jobs) -> list[Job]:
    """Drop duplicate jobs, preserving first-seen order."""
    seen: set[Job] = set()
    out: list[Job] = []
    for job in jobs:
        if job not in seen:
            seen.add(job)
            out.append(job)
    return out


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler responds to failing, crashing, or hung jobs.

    ``max_attempts`` bounds pool attempts per job (first try included);
    between attempts the scheduler backs off exponentially from
    ``backoff_base`` up to ``backoff_cap`` seconds.  ``job_timeout``
    (wall-clock, ``None`` = none) declares a pooled job hung: its pool
    is terminated and replaced, at most ``max_pool_replacements`` times
    per run.  With ``serial_fallback`` a job that exhausts its pool
    attempts is recomputed inline in the parent as the last resort.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    job_timeout: float | None = None
    max_pool_replacements: int = 3
    serial_fallback: bool = True

    def backoff(self, attempt: int) -> float:
        return min(self.backoff_base * (2 ** max(0, attempt - 1)),
                   self.backoff_cap)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Defaults, overridable via ``REPRO_JOB_RETRIES`` (extra
        attempts after the first) and ``REPRO_JOB_TIMEOUT`` (seconds)."""
        kwargs = {}
        try:
            retries = os.environ.get("REPRO_JOB_RETRIES")
            if retries:
                kwargs["max_attempts"] = max(1, int(retries) + 1)
            timeout = os.environ.get("REPRO_JOB_TIMEOUT")
            if timeout:
                kwargs["job_timeout"] = float(timeout) or None
        except ValueError:  # pragma: no cover - bad env values
            pass
        return cls(**kwargs)


def execute_job(job: Job, cache_dir: str | None = None,
                ship_events: bool = False, fault=None,
                ship_faults: bool = False) -> dict:
    """Run one job (in a worker or inline), returning its outcome.

    The useful side effect is cache population; the outcome carries
    timing plus the cache-stats delta so the parent can aggregate
    hit/miss counters across processes.  With ``ship_events`` (set by
    the pool when the parent's tracer is on) the worker enables its own
    tracer and drains its span/counter buffer into the outcome, so the
    parent can absorb per-job spans at join; ``ship_faults`` does the
    same for the fault ledger.

    ``fault`` is a worker-fault directive ``(kind, params)`` the
    scheduler routes to a job under an active fault plan.  It is applied
    *before* the runner's error handling, so an injected raise takes the
    same unhandled-executor path a real worker bug would.
    """
    from . import runner  # late import: workers pay it once

    if fault is not None:
        faults.apply_worker_fault(fault)
    if ship_events and not TRACER.enabled:
        TRACER.enable()
    ledger_before = faults.LEDGER.snapshot() if ship_faults else None
    before = cache.STATS.snapshot()
    started = time.perf_counter()
    error = None
    with TRACER.span("job", kind=job.kind, workload=job.workload,
                     scale=job.scale, mode=str(job.mode)):
        try:
            if job.kind == "trace":
                runner.get_trace(job.workload, job.scale, job.mode,
                                 cache_dir=cache_dir)
            elif job.kind == "run":
                runner.run_vm(job.workload, scale=job.scale, mode=job.mode,
                              cache_dir=cache_dir, **dict(job.options))
            else:
                runner.oracle_run(job.workload, job.scale,
                                  cache_dir=cache_dir)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            error = f"{type(exc).__name__}: {exc}"
    outcome = {
        "job": job,
        "seconds": time.perf_counter() - started,
        "stats": cache.CacheStats.diff(cache.STATS.snapshot(), before),
        "error": error,
    }
    if ship_faults:
        delta = faults.FaultLedger.diff(faults.LEDGER.snapshot(),
                                        ledger_before)
        if delta:
            outcome["faults"] = delta
    if ship_events:
        outcome["events"] = TRACER.drain()
    return outcome


def _worker_init(path: list, fault_plan: str | None = None) -> None:
    """Make ``repro`` importable in spawn children even when the parent
    got it from a PYTHONPATH/sys.path edit the child does not inherit,
    and activate the parent's fault plan (covers ``--faults``
    activations that never touched the environment)."""
    for entry in reversed(path):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    # A worker process can outlive many jobs while sources change under
    # it (watch-style drivers, test suites editing fixtures): drop the
    # source-digest memo so cache keys — including the shared code
    # archive's — are computed against the sources as they are *now*,
    # not as they were when some earlier worker generation first hashed
    # them.  A stale digest would let the archive serve native code
    # compiled from old sources.
    cache.reset_source_digest()
    if fault_plan:
        faults.activate(fault_plan)


class RunSummary:
    """Aggregate of one scheduling pass."""

    def __init__(self) -> None:
        self.outcomes: list[dict] = []
        self.stats = cache.CacheStats()
        self.wall_seconds = 0.0
        self.retries = 0
        self.pool_replacements = 0
        self.serial_recoveries = 0

    @property
    def errors(self) -> list[dict]:
        return [o for o in self.outcomes if o["error"]]

    @property
    def cpu_seconds(self) -> float:
        return sum(o["seconds"] for o in self.outcomes)

    def format_summary(self) -> str:
        resilience = ""
        if self.retries or self.pool_replacements or self.serial_recoveries:
            resilience = (f"{self.retries} retries, "
                          f"{self.pool_replacements} pool replacements, "
                          f"{self.serial_recoveries} serial recoveries; ")
        return (
            f"{len(self.outcomes)} jobs in {self.wall_seconds:.1f}s wall "
            f"({self.cpu_seconds:.1f}s cpu, {len(self.errors)} errors); "
            + resilience + self.stats.format_summary()
        )


def _run_inline(job: Job, cache_dir: str | None, policy: RetryPolicy,
                summary: RunSummary) -> dict:
    """Execute one job in-process with bounded retries + backoff."""
    attempts = 0
    while True:
        attempts += 1
        outcome = execute_job(job, cache_dir)
        if outcome["error"] is not None:
            faults.note_observed("job_error", job=job.describe())
        if outcome["error"] is None or attempts >= policy.max_attempts:
            break
        summary.retries += 1
        time.sleep(policy.backoff(attempts))
    outcome["attempts"] = attempts
    if outcome["error"] is None and attempts > 1:
        outcome["recovery"] = "retry"
        faults.note_recovery("retry", job=job.describe())
    return outcome


def run_jobs(
    jobs,
    max_workers: int = 1,
    cache_dir: str | None = None,
    progress=None,
    policy: RetryPolicy | None = None,
) -> RunSummary:
    """Execute ``jobs`` (deduplicated) and return the aggregate summary.

    ``max_workers <= 1`` executes inline; otherwise a spawn-based
    ``ProcessPoolExecutor`` shares the on-disk cache across workers,
    with the fault-containment ladder ``policy`` describes (default:
    :meth:`RetryPolicy.from_env`).  ``progress(i, total, outcome)`` is
    called as each job reaches its final outcome.
    """
    jobs = dedupe(jobs)
    policy = policy or RetryPolicy.from_env()
    summary = RunSummary()
    started = time.perf_counter()
    total = len(jobs)

    def finish(i: int, outcome: dict) -> None:
        events = outcome.pop("events", None)
        if events:
            # Per-process buffers merge at join: the parent inherits
            # the worker's spans (job, vm phases, cache traffic).
            TRACER.absorb(events)
        faults.LEDGER.absorb(outcome.pop("faults", None))
        outcome.setdefault("attempts", 1)
        outcome.setdefault("recovery", None)
        summary.outcomes.append(outcome)
        summary.stats.merge(outcome["stats"])
        if progress is not None:
            progress(i, total, outcome)

    if max_workers <= 1 or total <= 1:
        for i, job in enumerate(jobs, 1):
            finish(i, _run_inline(job, cache_dir, policy, summary))
        summary.wall_seconds = time.perf_counter() - started
        return summary

    _PoolScheduler(jobs, max_workers, cache_dir, policy,
                   summary, finish).run()
    summary.wall_seconds = time.perf_counter() - started
    return summary


class _PoolScheduler:
    """Pooled execution with fault containment.

    Tracks per-job attempts, throttles submissions so every in-flight
    future is actually executing (which makes the wall-clock watchdog
    meaningful), and walks the retry → replace-pool → serial ladder
    described on :class:`RetryPolicy`.
    """

    def __init__(self, jobs, max_workers, cache_dir, policy,
                 summary, finish) -> None:
        self.jobs = jobs
        self.max_workers = min(max_workers, len(jobs),
                               (os.cpu_count() or 1) * 2)
        self.cache_dir = cache_dir
        self.policy = policy
        self.summary = summary
        self.finish = finish
        self.attempts = [0] * len(jobs)
        self.plan = faults.active()
        self.fault_targets = (self.plan.worker_targets(len(jobs))
                              if self.plan else {})
        self.ready: deque[int] = deque(range(len(jobs)))
        self.waiting: list[tuple[float, int]] = []  # (eligible_at, idx)
        self.inflight: dict = {}  # future -> (idx, submitted_at)
        self.pool = None
        self.done_count = 0

    # -- pool lifecycle ------------------------------------------------
    def _make_pool(self) -> ProcessPoolExecutor:
        plan_text = self.plan.plan.describe() if self.plan else None
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=get_context("spawn"),
            initializer=_worker_init,
            initargs=(list(sys.path), plan_text),
        )

    def _retire_pool(self) -> None:
        """Terminate worker processes and drop the executor without
        waiting on hung futures."""
        pool, self.pool = self.pool, None
        if pool is None:
            return
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001 - already gone
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken pools may throw
            pass

    def _replace_pool(self, reason: str) -> None:
        self._retire_pool()
        # Reclaim in-flight jobs: innocent bystanders of a crash or a
        # neighbour's timeout go back in the queue with their attempt
        # refunded (their failure was the pool's, not theirs).
        for idx, _t0 in self.inflight.values():
            self.attempts[idx] = max(0, self.attempts[idx] - 1)
            self.ready.append(idx)
        self.inflight.clear()
        self.summary.pool_replacements += 1
        faults.note_recovery("pool_replace", reason=reason)
        if self.summary.pool_replacements > self.policy.max_pool_replacements:
            return  # budget spent: remaining work drains serially
        self.pool = self._make_pool()

    # -- main loop -----------------------------------------------------
    def run(self) -> None:
        self.pool = self._make_pool()
        try:
            while self.ready or self.waiting or self.inflight:
                self._promote_waiting()
                if self.pool is None and not self.inflight:
                    self._drain_serially()
                    continue
                self._submit_ready()
                if self.inflight:
                    self._reap()
                elif self.waiting:
                    self._sleep_until_next()
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        if self.pool is None:
            return
        if self.inflight:  # pragma: no cover - only on unexpected raise
            self._retire_pool()
            return
        try:
            self.pool.shutdown(wait=True)
        except Exception:  # noqa: BLE001 - pragma: no cover
            pass
        self.pool = None

    def _promote_waiting(self) -> None:
        now = time.perf_counter()
        still = []
        for eligible_at, idx in self.waiting:
            if eligible_at <= now:
                self.ready.append(idx)
            else:
                still.append((eligible_at, idx))
        self.waiting = still

    def _sleep_until_next(self) -> None:
        soonest = min(eligible_at for eligible_at, _ in self.waiting)
        time.sleep(max(0.0, min(soonest - time.perf_counter(), 0.5)))

    def _submit_ready(self) -> None:
        ship = TRACER.enabled
        while (self.ready and self.pool is not None
               and len(self.inflight) < self.max_workers):
            idx = self.ready.popleft()
            fault = None
            spec_index = self.fault_targets.get(idx)
            if spec_index is not None and self.plan is not None:
                fault = self.plan.take_worker_fault(spec_index)
            self.attempts[idx] += 1
            try:
                fut = self.pool.submit(execute_job, self.jobs[idx],
                                       self.cache_dir, ship, fault, True)
            except Exception:  # noqa: BLE001 - pool died between reaps
                self.attempts[idx] -= 1
                self.ready.appendleft(idx)
                self._replace_pool("submit-failed")
                return
            self.inflight[fut] = (idx, time.perf_counter())

    def _wait_timeout(self) -> float:
        timeout = 0.5
        if self.policy.job_timeout:
            now = time.perf_counter()
            soonest_expiry = min(t0 + self.policy.job_timeout - now
                                 for _, t0 in self.inflight.values())
            timeout = min(timeout, max(0.0, soonest_expiry))
        if self.waiting:
            soonest = min(e for e, _ in self.waiting) - time.perf_counter()
            timeout = min(timeout, max(0.0, soonest))
        return timeout

    def _reap(self) -> None:
        done, _ = wait(set(self.inflight), timeout=self._wait_timeout(),
                       return_when=FIRST_COMPLETED)
        broken = None
        for fut in done:
            idx, _t0 = self.inflight.pop(fut)
            try:
                outcome = fut.result()
            except Exception as exc:  # noqa: BLE001 - crash/pickle/etc.
                faults.note_observed("worker_crash",
                                     error=type(exc).__name__,
                                     job=self.jobs[idx].describe())
                if isinstance(exc, BrokenExecutor):
                    broken = "broken-pool"
                self._failure(idx, f"{type(exc).__name__}: {exc}")
                continue
            self._success_or_retry(idx, outcome)
        if self.policy.job_timeout and self.inflight and self.pool is not None:
            now = time.perf_counter()
            expired = [fut for fut, (idx, t0) in self.inflight.items()
                       if now - t0 > self.policy.job_timeout]
            for fut in expired:
                idx, t0 = self.inflight.pop(fut)
                faults.note_observed("job_timeout",
                                     job=self.jobs[idx].describe(),
                                     seconds=round(now - t0, 1))
                self._failure(idx, "TimeoutError: job exceeded "
                                   f"{self.policy.job_timeout:g}s wall clock")
                broken = broken or "job-timeout"
        if broken:
            self._replace_pool(broken)

    # -- outcome handling ----------------------------------------------
    def _success_or_retry(self, idx: int, outcome: dict) -> None:
        if outcome["error"] is None:
            if self.attempts[idx] > 1:
                outcome["recovery"] = "retry"
                faults.note_recovery("retry", job=self.jobs[idx].describe())
            self._finish_idx(idx, outcome)
            return
        faults.note_observed("job_error", job=self.jobs[idx].describe())
        # The failed attempt still observed faults/cache traffic worth
        # keeping even though its outcome is discarded for the retry.
        faults.LEDGER.absorb(outcome.pop("faults", None))
        self._failure(idx, outcome["error"])

    def _failure(self, idx: int, error: str) -> None:
        if self.attempts[idx] < self.policy.max_attempts:
            self.summary.retries += 1
            delay = self.policy.backoff(self.attempts[idx])
            self.waiting.append((time.perf_counter() + delay, idx))
            return
        if self.policy.serial_fallback:
            # Last rung of the ladder: one inline recompute in the
            # parent, immune to pool infrastructure.
            outcome = execute_job(self.jobs[idx], self.cache_dir)
            outcome["attempts"] = self.attempts[idx] + 1
            if outcome["error"] is None:
                outcome["recovery"] = "serial"
                self.summary.serial_recoveries += 1
                faults.note_recovery("serial",
                                     job=self.jobs[idx].describe())
            self._finish_idx(idx, outcome)
            return
        self._finish_idx(idx, {"job": self.jobs[idx], "seconds": 0.0,
                               "stats": {}, "error": error,
                               "attempts": self.attempts[idx]})

    def _drain_serially(self) -> None:
        """Pool-replacement budget exhausted: everything left runs in
        the parent — slower, but the suite still completes."""
        pending = sorted(set(self.ready)
                         | {idx for _, idx in self.waiting})
        self.ready.clear()
        self.waiting.clear()
        for idx in pending:
            outcome = _run_inline(self.jobs[idx], self.cache_dir,
                                  self.policy, self.summary)
            if outcome["error"] is None:
                outcome["recovery"] = "serial"
                self.summary.serial_recoveries += 1
                faults.note_recovery("serial",
                                     job=self.jobs[idx].describe())
            self._finish_idx(idx, outcome)

    def _finish_idx(self, idx: int, outcome: dict) -> None:
        self.done_count += 1
        outcome.setdefault("attempts", self.attempts[idx])
        self.finish(self.done_count, outcome)
