"""Parallel experiment scheduler.

Experiments declare the (workload, scale, mode, config) combinations
they will measure as :class:`Job` descriptors — plain frozen dataclasses
that pickle cleanly under the ``spawn`` start method.  The scheduler
fans the deduplicated job list out over a ``ProcessPoolExecutor`` whose
workers populate the shared content-addressed cache
(:mod:`repro.analysis.cache`); the experiments themselves then run
serially against a warm cache, so parallel and serial invocations
produce byte-identical output while a cold full-suite run scales with
cores.

Workers ship per-job timing and cache-stats deltas back to the parent,
which streams progress lines and aggregates the counters for the run
summary.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import get_context

from ..obs import TRACER
from . import cache

#: Job kinds and the runner entry point each one exercises.
KINDS = ("trace", "run", "oracle")


@dataclass(frozen=True)
class Job:
    """One unit of schedulable work, hashable and spawn-safe.

    ``mode`` is a mode name (or a ``("counter", n)`` tuple) and
    ``options`` a sorted tuple of extra ``run_vm`` keyword pairs, so two
    textually different declarations of the same measurement compare
    (and deduplicate) equal.
    """

    kind: str
    workload: str
    scale: str = "s1"
    mode: object = "jit"
    options: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")

    def describe(self) -> str:
        opts = " ".join(f"{k}={v}" for k, v in self.options)
        mode = "" if self.kind == "oracle" else f"/{self.mode}"
        return (f"{self.kind:6s} {self.workload}/{self.scale}{mode}"
                + (f" [{opts}]" if opts else ""))


def trace_job(workload: str, scale: str = "s1", mode: str = "jit") -> Job:
    """A job that records (and caches) one full native trace."""
    return Job("trace", workload, scale, mode)


def run_job(workload: str, scale: str = "s1", mode="jit", **options) -> Job:
    """A job that executes (and caches) one non-recording VM run."""
    return Job("run", workload, scale, mode,
               tuple(sorted(options.items())))


def oracle_job(workload: str, scale: str = "s1") -> Job:
    """A job covering the interp + JIT profile runs and the mixed-mode
    oracle run they induce."""
    return Job("oracle", workload, scale, "oracle")


def trace_jobs(benchmarks, scale: str = "s1",
               modes=("interp", "jit")) -> list[Job]:
    """Trace jobs for each benchmark under each mode (the common
    shape of the cache/branch/pipeline experiments)."""
    return [trace_job(n, scale, m) for n in benchmarks for m in modes]


def dedupe(jobs) -> list[Job]:
    """Drop duplicate jobs, preserving first-seen order."""
    seen: set[Job] = set()
    out: list[Job] = []
    for job in jobs:
        if job not in seen:
            seen.add(job)
            out.append(job)
    return out


def execute_job(job: Job, cache_dir: str | None = None,
                ship_events: bool = False) -> dict:
    """Run one job (in a worker or inline), returning its outcome.

    The useful side effect is cache population; the outcome carries
    timing plus the cache-stats delta so the parent can aggregate
    hit/miss counters across processes.  With ``ship_events`` (set by
    the pool when the parent's tracer is on) the worker enables its own
    tracer and drains its span/counter buffer into the outcome, so the
    parent can absorb per-job spans at join.
    """
    from . import runner  # late import: workers pay it once

    if ship_events and not TRACER.enabled:
        TRACER.enable()
    before = cache.STATS.snapshot()
    started = time.perf_counter()
    error = None
    with TRACER.span("job", kind=job.kind, workload=job.workload,
                     scale=job.scale, mode=str(job.mode)):
        try:
            if job.kind == "trace":
                runner.get_trace(job.workload, job.scale, job.mode,
                                 cache_dir=cache_dir)
            elif job.kind == "run":
                runner.run_vm(job.workload, scale=job.scale, mode=job.mode,
                              cache_dir=cache_dir, **dict(job.options))
            else:
                runner.oracle_run(job.workload, job.scale,
                                  cache_dir=cache_dir)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            error = f"{type(exc).__name__}: {exc}"
    outcome = {
        "job": job,
        "seconds": time.perf_counter() - started,
        "stats": cache.CacheStats.diff(cache.STATS.snapshot(), before),
        "error": error,
    }
    if ship_events:
        outcome["events"] = TRACER.drain()
    return outcome


def _worker_init(path: list) -> None:
    """Make ``repro`` importable in spawn children even when the parent
    got it from a PYTHONPATH/sys.path edit the child does not inherit."""
    for entry in reversed(path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


class RunSummary:
    """Aggregate of one scheduling pass."""

    def __init__(self) -> None:
        self.outcomes: list[dict] = []
        self.stats = cache.CacheStats()
        self.wall_seconds = 0.0

    @property
    def errors(self) -> list[dict]:
        return [o for o in self.outcomes if o["error"]]

    @property
    def cpu_seconds(self) -> float:
        return sum(o["seconds"] for o in self.outcomes)

    def format_summary(self) -> str:
        return (
            f"{len(self.outcomes)} jobs in {self.wall_seconds:.1f}s wall "
            f"({self.cpu_seconds:.1f}s cpu, {len(self.errors)} errors); "
            + self.stats.format_summary()
        )


def run_jobs(
    jobs,
    max_workers: int = 1,
    cache_dir: str | None = None,
    progress=None,
) -> RunSummary:
    """Execute ``jobs`` (deduplicated) and return the aggregate summary.

    ``max_workers <= 1`` executes inline; otherwise a spawn-based
    ``ProcessPoolExecutor`` shares the on-disk cache across workers.
    ``progress(i, total, outcome)`` is called as each job completes.
    """
    jobs = dedupe(jobs)
    summary = RunSummary()
    started = time.perf_counter()
    total = len(jobs)

    def finish(i: int, outcome: dict) -> None:
        events = outcome.pop("events", None)
        if events:
            # Per-process buffers merge at join: the parent inherits
            # the worker's spans (job, vm phases, cache traffic).
            TRACER.absorb(events)
        summary.outcomes.append(outcome)
        summary.stats.merge(outcome["stats"])
        if progress is not None:
            progress(i, total, outcome)

    if max_workers <= 1 or total <= 1:
        for i, job in enumerate(jobs, 1):
            finish(i, execute_job(job, cache_dir))
        summary.wall_seconds = time.perf_counter() - started
        return summary

    max_workers = min(max_workers, total, (os.cpu_count() or 1) * 2)
    with ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=get_context("spawn"),
        initializer=_worker_init,
        initargs=(list(sys.path),),
    ) as pool:
        ship_events = TRACER.enabled
        pending = {pool.submit(execute_job, job, cache_dir, ship_events): job
                   for job in jobs}
        done_count = 0
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                job = pending.pop(fut)
                done_count += 1
                try:
                    outcome = fut.result()
                except Exception as exc:  # pragma: no cover - pool failure
                    outcome = {"job": job, "seconds": 0.0, "stats": {},
                               "error": f"{type(exc).__name__}: {exc}"}
                finish(done_count, outcome)
    summary.wall_seconds = time.perf_counter() - started
    return summary
