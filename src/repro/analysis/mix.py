"""Instruction-mix analysis (Figure 2)."""

from __future__ import annotations

import numpy as np

from ..native.nisa import MIX_BUCKETS, N_CATEGORIES, NCat, mix_bucket

#: Summary groups used in the paper's prose.
SUMMARY_GROUPS = {
    "memory": ("load", "store"),
    "transfer": ("branch", "call", "ijump", "jump", "ret"),
    "compute": ("ialu", "fpu"),
    "other": ("nop",),
}


def mix_from_counts(cat_counts: np.ndarray) -> dict[str, float]:
    """Bucket fractions from a per-category count vector."""
    total = int(cat_counts.sum())
    if total == 0:
        return {b: 0.0 for b in MIX_BUCKETS}
    buckets = {b: 0 for b in MIX_BUCKETS}
    for c in range(N_CATEGORIES):
        buckets[mix_bucket(c)] += int(cat_counts[c])
    return {b: v / total for b, v in buckets.items()}


def mix_from_trace(trace) -> dict[str, float]:
    return mix_from_counts(trace.category_counts())


def summarize(mix: dict[str, float]) -> dict[str, float]:
    """Collapse the fine buckets into memory/transfer/compute groups."""
    return {
        group: sum(mix[b] for b in members)
        for group, members in SUMMARY_GROUPS.items()
    }


def indirect_fraction(cat_counts: np.ndarray) -> float:
    """Dynamic fraction of indirect control transfers (ijump + icall + ret)."""
    total = int(cat_counts.sum())
    if total == 0:
        return 0.0
    ind = (int(cat_counts[NCat.IJUMP]) + int(cat_counts[NCat.ICALL])
           + int(cat_counts[NCat.RET]))
    return ind / total
