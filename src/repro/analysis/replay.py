"""Single-pass trace replay: decode each cached trace once.

Every figure used to re-derive the same streams from a trace it fetched
itself — the memory mask, the data-reference columns, the transfer
events, the branch replay context.  A :class:`TraceReplay` wraps one
:class:`~repro.native.trace.Trace` and memoizes those derived streams,
and :func:`get_replay` adds a small process-level LRU so consecutive
consumers of the same (workload, scale, mode) share one decode.

The simulators accept a ``TraceReplay`` wherever they accept a
``Trace`` (duck-typed: ``simulate_split_l1`` uses the cached streams,
``extract_transfers``/``compare_predictors`` use ``transfers()`` /
``branch_context()``, ``simulate_pipeline`` unwraps ``.trace``).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..native.trace import Trace


class TraceReplay:
    """One trace plus its memoized derived streams."""

    __slots__ = ("trace", "_memo")

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._memo: dict = {}

    @property
    def n(self) -> int:
        return self.trace.n

    def _get(self, key, build):
        value = self._memo.get(key)
        if value is None:
            value = build()
            self._memo[key] = value
        return value

    # -- shared derived streams ---------------------------------------
    def memory_mask(self) -> np.ndarray:
        return self._get("memory_mask", lambda: self.trace.is_memory)

    def instruction_stream(self):
        """(pcs, translate_mask) of the instruction fetches."""
        return self._get(
            "instruction_stream",
            lambda: (self.trace.pc, self.trace.in_translate),
        )

    def data_stream(self):
        """(addrs, writes, translate_mask) of the data references."""
        def build():
            mem = self.memory_mask()
            t = self.trace
            return (t.ea[mem], t.is_write[mem], t.in_translate[mem])
        return self._get("data_stream", build)

    def transfers(self):
        """(pc, cat, taken, target) arrays of the control transfers."""
        def build():
            t = self.trace
            mask = t.is_transfer
            return (t.pc[mask], t.cat[mask], t.is_taken[mask],
                    t.target[mask])
        return self._get("transfers", build)

    def branch_context(self, btb_entries: int = 1024, use_ras: bool = True):
        """Shared :class:`~repro.arch.branch.vector.BranchReplayContext`
        (read-only, so safe to reuse across predictors and calls)."""
        def build():
            from ..arch.branch.vector import BranchReplayContext
            return BranchReplayContext(*self.transfers(),
                                       btb_entries=btb_entries,
                                       use_ras=use_ras)
        return self._get(("branch_context", btb_entries, use_ras), build)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceReplay(n={self.n}, derived={sorted(self._memo)})"


#: Process-level LRU of decoded replays, keyed by (workload, scale,
#: mode, resolved cache dir).  Small: replays hold full traces.
_REPLAY_MEMO: "OrderedDict[tuple, TraceReplay]" = OrderedDict()
_REPLAY_CAPACITY = 4


def get_replay(workload: str, scale: str = "s1", mode: str = "jit",
               cache_dir: str | None = None) -> TraceReplay:
    """The :class:`TraceReplay` for (workload, scale, mode), decoding
    the cached trace at most once per process (LRU-bounded)."""
    from . import cache as _cache
    from .runner import get_trace

    key = (workload, scale, mode, _cache.resolve_dir(cache_dir))
    replay = _REPLAY_MEMO.get(key)
    if replay is not None:
        _REPLAY_MEMO.move_to_end(key)
        return replay
    replay = TraceReplay(get_trace(workload, scale, mode,
                                   cache_dir=cache_dir))
    _REPLAY_MEMO[key] = replay
    while len(_REPLAY_MEMO) > _REPLAY_CAPACITY:
        _REPLAY_MEMO.popitem(last=False)
    return replay


def clear_replay_memo() -> None:
    """Drop memoized replays (benchmarks; fresh CLI invocations)."""
    _REPLAY_MEMO.clear()
