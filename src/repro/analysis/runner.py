"""High-level run-and-measure API used by experiments, examples, tests.

``run_vm`` executes one workload under one configuration and returns the
:class:`~repro.vm.machine.VMResult`.  ``get_trace`` additionally records
the full native trace.  Both are backed by a transparent on-disk cache
(:mod:`repro.analysis.cache`): every experiment replays the same
deterministic traces through different simulators, so recording each
(workload, scale, mode, config) once pays off across the whole harness
— and across concurrent worker processes, which share one
content-addressed store.

Cache entries are addressed by a hash of the trace-affecting module
sources plus the full job configuration; there is no version constant to
bump.  Set ``REPRO_TRACE_CACHE=""`` (or pass ``cache_dir=""``) to
disable caching; the environment variable is consulted at *call* time,
so tests can redirect the cache per-test.
"""

from __future__ import annotations

from ..native.trace import Trace
from ..sync import LOCK_MANAGERS
from ..vm.machine import JavaVM, VMResult
from ..vm.strategy import (
    CompileOnFirstUse,
    CounterThreshold,
    InterpretOnly,
    OracleStrategy,
    Strategy,
    TieredStrategy,
)
from ..workloads.base import get_workload
from . import cache
from .hybrid import OracleAnalysis

MODES = ("interp", "jit")


def make_strategy(mode, oracle_set=None) -> Strategy:
    """Strategy instance from a mode name."""
    if isinstance(mode, Strategy):
        return mode
    if mode == "interp":
        return InterpretOnly()
    if mode == "jit":
        return CompileOnFirstUse()
    if mode == "oracle":
        return OracleStrategy(oracle_set or set())
    if mode == "tiered":
        return TieredStrategy()
    if isinstance(mode, tuple) and mode[0] == "counter":
        return CounterThreshold(mode[1])
    if isinstance(mode, tuple) and mode[0] == "tiered":
        t1, t2, osr = mode[1], mode[2], mode[3]
        kwargs = {}
        if len(mode) > 4:                       # optional compile_ratio
            kwargs["compile_ratio"] = mode[4]
        return TieredStrategy(t1_invocations=t1, t2_invocations=t2,
                              osr_backedges=osr, t2_backedges=8 * osr,
                              **kwargs)
    raise ValueError(f"unknown mode {mode!r}")


def mode_token(mode) -> str | None:
    """A stable string for a mode, or ``None`` when it cannot be keyed
    (ad-hoc :class:`Strategy` instances are not content-addressable)."""
    if isinstance(mode, str):
        return mode
    if isinstance(mode, tuple) and len(mode) == 2 and mode[0] == "counter":
        return f"counter{int(mode[1])}"
    if isinstance(mode, tuple) and mode[0] == "tiered" and len(mode) in (4, 5):
        token = "tiered{}-{}-{}".format(*(int(v) for v in mode[1:4]))
        if len(mode) == 5:
            token += f"-r{float(mode[4]):g}"
        return token
    return None


def run_vm(
    workload: str,
    scale: str = "s1",
    mode="jit",
    record: bool = False,
    lock_manager: str = "monitor-cache",
    inline: bool = True,
    profile: bool = True,
    oracle_set: set | None = None,
    folding: bool = False,
    jit_opt: bool = False,
    lock_elision: bool = False,
    cache_dir: str | None = None,
    code_archive: str | None = None,
) -> VMResult:
    """Build a fresh VM for the workload and run it to completion.

    Non-recording runs with nameable modes are served from the
    content-addressed result cache when one is configured
    (``cache_dir=None`` resolves ``REPRO_TRACE_CACHE`` at call time;
    pass ``""`` to force a fresh run).  Runs are deterministic, so a
    cached result is byte-identical to a fresh one.

    ``code_archive`` names a shared compiled-code archive directory
    (``None`` resolves ``REPRO_CODE_ARCHIVE``; ``""`` disables).
    Archive-enabled runs bypass the run-*result* cache: whether the
    archive is warm changes the translate/install split a fresh run
    reports, so serving a pickled cold result would misreport it.
    """
    from ..vm.codecache_archive import resolve_archive_dir
    archive_dir = resolve_archive_dir(code_archive)
    token = mode_token(mode)
    resolved = (None if record or token is None or archive_dir
                else cache.resolve_dir(cache_dir))
    path = None
    if resolved:
        key = cache.cache_key(
            "run",
            workload=workload,
            scale=scale,
            mode=token,
            lock_manager=lock_manager,
            inline=inline,
            profile=profile,
            folding=folding,
            jit_opt=jit_opt,
            lock_elision=lock_elision,
            oracle=sorted(oracle_set) if oracle_set else None,
        )
        path = cache.run_path(resolved, workload, scale, token, key)
        cached = cache.load_run(path)
        if cached is not None:
            return cached
    program = get_workload(workload).build(scale)
    vm = JavaVM(
        program,
        strategy=make_strategy(mode, oracle_set),
        lock_manager=LOCK_MANAGERS[lock_manager](),
        record=record,
        inline=inline,
        profile=profile,
        folding=folding,
        jit_opt=jit_opt,
        lock_elision=lock_elision,
        code_archive=archive_dir or "",
    )
    result = vm.run()
    if path:
        cache.store_run(path, result)
    return result


def get_trace(
    workload: str,
    scale: str = "s1",
    mode: str = "jit",
    cache_dir: str | None = None,
) -> Trace:
    """Full native trace for (workload, scale, mode), cached on disk.

    ``cache_dir=None`` resolves ``REPRO_TRACE_CACHE`` at call time;
    pass ``""`` to disable the cache for this call.
    """
    resolved = cache.resolve_dir(cache_dir)
    path = None
    if resolved:
        key = cache.cache_key("trace", workload=workload, scale=scale,
                              mode=mode)
        path = cache.trace_path(resolved, workload, scale, mode, key)
        trace = cache.load_trace(path)
        if trace is not None:
            return trace
    folding = mode.endswith("-fold")
    vm_mode = mode[:-5] if folding else mode
    result = run_vm(workload, scale=scale, mode=vm_mode, record=True,
                    profile=False, folding=folding)
    trace = result.trace
    if path:
        cache.store_trace(path, trace)
    return trace


def oracle_analysis(workload: str, scale: str = "s1",
                    cache_dir: str | None = None) -> OracleAnalysis:
    """Profile interpreter and JIT runs; return the opt-model analysis."""
    interp = run_vm(workload, scale=scale, mode="interp",
                    cache_dir=cache_dir)
    jit = run_vm(workload, scale=scale, mode="jit", cache_dir=cache_dir)
    return OracleAnalysis(interp, jit)


def oracle_run(workload: str, scale: str = "s1",
               cache_dir: str | None = None
               ) -> tuple[OracleAnalysis, VMResult]:
    """The opt analysis plus a *real* mixed-mode run enacting it."""
    analysis = oracle_analysis(workload, scale, cache_dir=cache_dir)
    mixed = run_vm(workload, scale=scale, mode="oracle",
                   oracle_set=analysis.methods_to_compile,
                   cache_dir=cache_dir)
    return analysis, mixed
