"""High-level run-and-measure API used by experiments, examples, tests.

``run_vm`` executes one workload under one configuration and returns the
:class:`~repro.vm.machine.VMResult`.  ``get_trace`` additionally records
the full native trace, with a transparent on-disk cache — every
experiment replays the same (deterministic) traces through different
simulators, so recording each (workload, scale, mode) once pays off
across the whole harness.
"""

from __future__ import annotations

import os

from ..native.trace import Trace
from ..sync import LOCK_MANAGERS
from ..vm.machine import JavaVM, VMResult
from ..vm.strategy import (
    CompileOnFirstUse,
    CounterThreshold,
    InterpretOnly,
    OracleStrategy,
    Strategy,
)
from ..workloads.base import get_workload
from .hybrid import OracleAnalysis

#: Bump when trace-affecting code changes to invalidate cached archives.
CACHE_VERSION = 10

#: Default cache directory (created on demand; set to None to disable).
DEFAULT_CACHE_DIR = os.environ.get("REPRO_TRACE_CACHE", ".trace_cache")

MODES = ("interp", "jit")


def make_strategy(mode, oracle_set=None) -> Strategy:
    """Strategy instance from a mode name."""
    if isinstance(mode, Strategy):
        return mode
    if mode == "interp":
        return InterpretOnly()
    if mode == "jit":
        return CompileOnFirstUse()
    if mode == "oracle":
        return OracleStrategy(oracle_set or set())
    if isinstance(mode, tuple) and mode[0] == "counter":
        return CounterThreshold(mode[1])
    raise ValueError(f"unknown mode {mode!r}")


def run_vm(
    workload: str,
    scale: str = "s1",
    mode="jit",
    record: bool = False,
    lock_manager: str = "monitor-cache",
    inline: bool = True,
    profile: bool = True,
    oracle_set: set | None = None,
    folding: bool = False,
) -> VMResult:
    """Build a fresh VM for the workload and run it to completion."""
    program = get_workload(workload).build(scale)
    vm = JavaVM(
        program,
        strategy=make_strategy(mode, oracle_set),
        lock_manager=LOCK_MANAGERS[lock_manager](),
        record=record,
        inline=inline,
        profile=profile,
        folding=folding,
    )
    return vm.run()


def _cache_path(cache_dir: str, workload: str, scale: str, mode: str) -> str:
    return os.path.join(
        cache_dir, f"{workload}-{scale}-{mode}-v{CACHE_VERSION}.npz"
    )


def get_trace(
    workload: str,
    scale: str = "s1",
    mode: str = "jit",
    cache_dir: str | None = DEFAULT_CACHE_DIR,
) -> Trace:
    """Full native trace for (workload, scale, mode), cached on disk."""
    if cache_dir:
        path = _cache_path(cache_dir, workload, scale, mode)
        if os.path.exists(path):
            return Trace.load(path)
    folding = mode.endswith("-fold")
    vm_mode = mode[:-5] if folding else mode
    result = run_vm(workload, scale=scale, mode=vm_mode, record=True,
                    profile=False, folding=folding)
    trace = result.trace
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
        trace.save(_cache_path(cache_dir, workload, scale, mode))
    return trace


def oracle_analysis(workload: str, scale: str = "s1") -> OracleAnalysis:
    """Profile interpreter and JIT runs; return the opt-model analysis."""
    interp = run_vm(workload, scale=scale, mode="interp")
    jit = run_vm(workload, scale=scale, mode="jit")
    return OracleAnalysis(interp, jit)


def oracle_run(workload: str, scale: str = "s1") -> tuple[OracleAnalysis, VMResult]:
    """The opt analysis plus a *real* mixed-mode run enacting it."""
    analysis = oracle_analysis(workload, scale)
    mixed = run_vm(workload, scale=scale, mode="oracle",
                   oracle_set=analysis.methods_to_compile)
    return analysis, mixed
